#!/usr/bin/env python3
"""Hermes replication walk-through (§3.5.1's consistency substrate).

RackBlox redirects reads between replicas, which is only safe because the
replication protocol (Hermes) makes *every* replica serve linearizable
reads.  This example drives the protocol directly:

  1. a write broadcasts INV, commits on all ACKs, then broadcasts VAL;
  2. a read that lands on an INValid copy waits for the VAL;
  3. two concurrent writes to the same key converge by timestamp;
  4. a coordinator dies between INV and VAL, and a survivor replays.

Run:
    python examples/hermes_consistency.py
"""

from repro.cluster.consistency import HermesCluster, Timestamp
from repro.sim import Simulator, Timeout


def main() -> None:
    sim = Simulator()
    hermes = HermesCluster(sim, num_replicas=3, delay_fn=lambda: 50.0)
    print("3 replicas, 50 us one-way messages\n")

    print("[1] write 'blue' via replica 0")
    log = []

    def writer():
        ts = yield sim.spawn(hermes.write("color", "blue", coordinator_id=0))
        log.append((sim.now, ts))

    sim.spawn(writer())
    sim.run()
    t, ts = log[0]
    print(f"    committed at t={t:.0f}us with ts={ts} "
          "(one INV round-trip: all replicas hold the DRAM copy)")

    print("\n[2] a read during the next write blocks until VAL")
    events = []

    def slow_writer():
        yield sim.spawn(hermes.write("color", "green", coordinator_id=1))
        events.append(("write done", sim.now))

    def eager_reader():
        yield Timeout(sim, 60.0)  # lands between INV arrival and VAL
        value = yield sim.spawn(hermes.read("color", 2))
        events.append((f"read -> {value}", sim.now))

    start = sim.now
    sim.spawn(slow_writer())
    sim.spawn(eager_reader())
    sim.run()
    for what, when in sorted(events, key=lambda e: e[1]):
        print(f"    t=+{when - start:.0f}us  {what}")

    print("\n[3] concurrent writes converge everywhere")

    def conc(coordinator, value):
        yield sim.spawn(hermes.write("color", value, coordinator_id=coordinator))

    sim.spawn(conc(0, "red"))
    sim.spawn(conc(2, "gold"))
    sim.run()
    finals = []
    for rid in range(3):
        hit, value = hermes.replicas[rid].try_read("color")
        finals.append(value)
    print(f"    final values per replica: {finals} (single winner by timestamp)")

    print("\n[4] coordinator dies mid-write; a survivor replays")
    orphan_ts = Timestamp(99, 0)
    hermes.replicas[1].handle_inv("color", orphan_ts, "orphaned-write")
    hermes.replicas[2].handle_inv("color", orphan_ts, "orphaned-write")
    hermes.replicas[0].alive = False
    print("    replica 0 (the coordinator) crashed before VAL;")
    print("    replicas 1 and 2 hold an INV they cannot read past")

    def replay():
        ok = yield sim.spawn(hermes.replay_write("color", surviving_id=1))
        return ok

    proc = sim.spawn(replay())
    sim.run()
    print(f"    replica 1 replayed the write: {proc.value}")
    for rid in (1, 2):
        hit, value = hermes.replicas[rid].try_read("color")
        print(f"    replica {rid}: valid={hit} value={value!r}")


if __name__ == "__main__":
    main()
