#!/usr/bin/env python3
"""Device/network pairing study (§4.5.3, Figures 19-20).

Coordinated I/O scheduling hides network latency behind storage latency
and vice versa -- so the benefit is largest when the two sides are
matched.  This example sweeps three SSD classes against three network
regimes and prints RackBlox's P99.9 improvement over VDC for each pairing.

Run:
    python examples/device_network_pairing.py        (few minutes)
"""

from repro.cluster import RackConfig, SystemType
from repro.experiments import run_rack_experiment
from repro.flash.timing import profile_by_name
from repro.net.latency import profile_by_name as net_by_name
from repro.workloads import ycsb

DEVICES = ("optane", "intel-dc", "pssd")
NETWORKS = ("fast", "medium", "slow")


def run_cell(system, device, network):
    config = RackConfig(
        system=system,
        device_profile=profile_by_name(device),
        network_profile=net_by_name(network),
        num_servers=4, num_pairs=4, seed=42,
    )
    return run_rack_experiment(
        config, ycsb(0.5), requests_per_pair=1500, rate_iops_per_pair=1500
    )


def main() -> None:
    print("YCSB-A (50% writes); cells are RackBlox's P99.9 read-latency")
    print("improvement over VDC (higher = co-design matters more)\n")
    corner = "SSD / network"
    header = f"{corner:>14s}" + "".join(f"{n:>10s}" for n in NETWORKS)
    print(header)
    for device in DEVICES:
        cells = []
        for network in NETWORKS:
            vdc = run_cell(SystemType.VDC, device, network)
            rb = run_cell(SystemType.RACKBLOX, device, network)
            improvement = (
                vdc.metrics.read_total.p999() / rb.metrics.read_total.p999()
            )
            cells.append(improvement)
        row = f"{device:>14s}" + "".join(f"{c:>9.1f}x" for c in cells)
        print(row)
    print("\npaper's conclusion: pair fast storage with fast networks --")
    print("upgrading only one side leaves the other dominating the tail.")


if __name__ == "__main__":
    main()
