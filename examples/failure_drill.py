#!/usr/bin/env python3
"""Failure drill: crash a storage server mid-workload and keep serving.

RackBlox handles failures with heartbeats (§3.7): when a server dies, the
switch's GC-redirection machinery doubles as fail-over -- the dead
server's vSSDs get their GC bits set so Algorithm 1 steers reads to the
in-rack replicas, and clients drop the dead server from their write
fan-out.

Run:
    python examples/failure_drill.py
"""

from repro.cluster import FailureManager, Rack, RackConfig, SystemType
from repro.experiments import run_rack_experiment
from repro.sim.core import MSEC
from repro.workloads import ycsb


def main() -> None:
    config = RackConfig(
        system=SystemType.RACKBLOX, num_servers=4, num_pairs=4, seed=11
    )
    rack = Rack(config)
    manager = FailureManager(rack, heartbeat_interval_us=5 * MSEC, miss_threshold=3)
    manager.start()

    victim_ip = rack.pairs[0].primary_server_ip
    victim = rack.server_by_ip[victim_ip]
    print(f"rack up: {len(rack.servers)} servers, {len(rack.pairs)} vSSD pairs")
    print(f"heartbeats every {manager.heartbeat_interval_us/1000:.0f} ms, "
          f"declared dead after {manager.miss_threshold} misses "
          f"(detection <= {manager.detection_delay_us/1000:.0f} ms)\n")

    print(f"[t={rack.sim.now/1000:.0f}ms] killing {victim.name} ({victim_ip}) -- "
          f"it hosts {len(victim.vssds)} vSSDs")
    manager.fail_server(victim_ip)
    rack.sim.run(until=rack.sim.now + 60 * MSEC)
    print(f"[t={rack.sim.now/1000:.0f}ms] heartbeat monitor detected "
          f"{manager.failures_detected} failure(s); failed set = "
          f"{sorted(rack.failed_ips)}")

    print("\nrunning YCSB (30% writes) against the degraded rack...")
    result = run_rack_experiment(
        config, ycsb(0.3), requests_per_pair=1000, rack=rack
    )
    s = result.summary()
    total = int(s["read_count"] + s["write_count"])
    print(f"  completed {total}/{4 * 1000} requests "
          f"(read P99.9 = {s['read_p999_us']:.0f} us)")
    print(f"  reads redirected around the dead server: {result.redirects}")

    print(f"\n[t={rack.sim.now/1000:.0f}ms] recovering {victim.name}")
    manager.recover_server(victim_ip)
    result = run_rack_experiment(config, ycsb(0.3), requests_per_pair=500,
                                 rack=rack)
    s = result.summary()
    print(f"  healthy again: {int(s['read_count'] + s['write_count'])}/"
          f"{4 * 500} requests completed, "
          f"read P99.9 = {s['read_p999_us']:.0f} us")


if __name__ == "__main__":
    main()
