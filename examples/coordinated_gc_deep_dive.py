#!/usr/bin/env python3
"""Deep dive: watch coordinated GC work packet-by-packet.

Builds the switch data plane and two storage servers by hand (no client
load) and walks through the §3.5 state machine:

  1. vSSD 1 requests *soft* GC -> accepted, reads redirect to vSSD 2;
  2. vSSD 2 then requests soft GC -> **delayed** (its replica is busy);
  3. vSSD 1 finishes -> vSSD 2's retry is accepted;
  4. a *regular* (hard-threshold) request is never denied, even when the
     replica is collecting.

Run:
    python examples/coordinated_gc_deep_dive.py
"""

from repro.net.packet import GcKind, OpType, Packet, gc_op
from repro.switch import SwitchControlPlane, SwitchDataPlane


def show_read_routing(plane: SwitchDataPlane, vssd_id: int) -> None:
    pkt = Packet(op=OpType.READ, vssd_id=vssd_id)
    action = plane.process_packet(pkt)
    arrow = "REDIRECTED ->" if action.redirected else "forwarded  ->"
    print(f"    read for vSSD {vssd_id}: {arrow} {action.dst_ip} "
          f"(served by vSSD {action.packet.vssd_id})")


def send_gc(plane: SwitchDataPlane, vssd_id: int, kind: GcKind, src: str) -> GcKind:
    reply = plane.process_packet(gc_op(vssd_id, kind, src=src))
    verdict = reply.packet.gc_kind
    print(f"    gc_op({kind.name}) from vSSD {vssd_id}: switch says "
          f"{verdict.name}")
    return verdict


def main() -> None:
    plane = SwitchDataPlane()
    control = SwitchControlPlane(plane)
    # Two vSSDs that replicate each other, on different servers.
    control.register_vssd(1, "10.0.0.16", 2, "10.0.0.20")
    control.register_vssd(2, "10.0.0.20", 1, "10.0.0.16")

    print("[1] both idle: reads go to the primary")
    show_read_routing(plane, 1)

    print("\n[2] vSSD 1 falls below the soft threshold and asks to GC")
    verdict = send_gc(plane, 1, GcKind.SOFT, src="10.0.0.16")
    assert verdict is GcKind.ACCEPT
    print("    while vSSD 1 collects, the switch steers its reads away:")
    show_read_routing(plane, 1)

    print("\n[3] vSSD 2 also wants soft GC -- but its replica is collecting")
    verdict = send_gc(plane, 2, GcKind.SOFT, src="10.0.0.20")
    assert verdict is GcKind.DELAY
    print("    (the switch delayed it so one replica always serves fast;")
    print(f"     this check cost a packet recirculation: "
          f"{plane.recirculations} so far)")

    print("\n[4] vSSD 1 finishes GC")
    send_gc(plane, 1, GcKind.FINISH, src="10.0.0.16")
    show_read_routing(plane, 1)
    print("    now vSSD 2's retry is admitted:")
    verdict = send_gc(plane, 2, GcKind.SOFT, src="10.0.0.20")
    assert verdict is GcKind.ACCEPT
    show_read_routing(plane, 2)

    print("\n[5] hard-threshold (regular) GC is never denied")
    # vSSD 2 is still collecting, yet vSSD 1's regular request passes.
    verdict = send_gc(plane, 1, GcKind.REGULAR, src="10.0.0.16")
    assert verdict is GcKind.ACCEPT
    print("    both replicas are now collecting; reads stop redirecting")
    show_read_routing(plane, 1)

    print(f"\nswitch counters: {plane.gc_accepted} accepts, "
          f"{plane.gc_delayed} delays, {plane.reads_redirected} redirects, "
          f"{plane.recirculations} recirculations")


if __name__ == "__main__":
    main()
