#!/usr/bin/env python3
"""The multi-rack extension: GC state consistent among switches (§3.7).

The paper's future work: "extend it to multiple racks by modifying
Algorithm 1 to keep GC states consistent among switches."  This example
drives that extension:

  1. two racks whose ToR switches mirror each other's GC state
     (propagated with an inter-switch delay);
  2. a read arriving at the *peer* rack routes using its synced view;
  3. when BOTH in-rack replicas are collecting, the read fails over to
     the third, cross-rack replica instead of queueing behind GC.

Run:
    python examples/multirack_extension.py
"""

from repro.cluster.multirack import CrossRackEntry, MultiRackFabric
from repro.net.packet import GcKind, OpType, Packet, gc_op
from repro.sim import Simulator

PRIMARY, REPLICA, REMOTE = 201, 202, 203
IP_P, IP_R, IP_X = "10.0.0.16", "10.0.0.20", "10.1.0.16"


def route(fabric, rack_id, vssd_id):
    action = fabric.process_read(rack_id, Packet(op=OpType.READ, vssd_id=vssd_id))
    tag = "REDIRECTED ->" if action.redirected else "forwarded  ->"
    print(f"    rack {rack_id} read for vSSD {vssd_id}: {tag} {action.dst_ip}")
    return action


def main() -> None:
    sim = Simulator()
    fabric = MultiRackFabric(sim, num_racks=2, sync_delay_us=40.0)
    fabric.register_vssd(
        PRIMARY, home_rack=0, server_ip=IP_P,
        in_rack_replica_id=REPLICA, in_rack_replica_ip=IP_R,
        cross_rack=CrossRackEntry(REMOTE, rack_id=1, server_ip=IP_X),
    )
    fabric.register_vssd(
        REPLICA, home_rack=0, server_ip=IP_R,
        in_rack_replica_id=PRIMARY, in_rack_replica_ip=IP_P,
    )
    print(f"two racks; inter-switch sync delay {fabric.sync_delay_us:.0f}us")
    print(f"vSSD {PRIMARY} lives in rack 0; its cross-rack replica "
          f"{REMOTE} in rack 1\n")

    print("[1] vSSD", PRIMARY, "starts GC at its home switch")
    fabric.process_gc_op(0, gc_op(PRIMARY, GcKind.REGULAR, src=IP_P))
    print(f"    switch views of its GC bit right now: "
          f"{fabric.gc_status_views(PRIMARY)} (peer is stale)")
    route(fabric, 1, PRIMARY)
    print("    -- the peer switch still forwards to the busy server")

    sim.run(until=50.0)
    print(f"\n[2] after the sync delay: views = "
          f"{fabric.gc_status_views(PRIMARY)}, consistent = "
          f"{fabric.consistent(PRIMARY)}")
    route(fabric, 1, PRIMARY)
    print("    -- now the peer redirects to the in-rack replica too")

    print(f"\n[3] the in-rack replica {REPLICA} also hits its hard threshold")
    fabric.process_gc_op(0, gc_op(REPLICA, GcKind.REGULAR, src=IP_R))
    action = route(fabric, 0, PRIMARY)
    assert action.dst_ip == IP_X
    print(f"    -- both in-rack copies busy: the read crossed racks "
          f"({fabric.cross_rack_redirects} cross-rack redirects)")

    print(f"\n[4] GC finishes; everything clears")
    fabric.process_gc_op(0, gc_op(PRIMARY, GcKind.FINISH, src=IP_P))
    fabric.process_gc_op(0, gc_op(REPLICA, GcKind.FINISH, src=IP_R))
    sim.run(until=sim.now + 50.0)
    route(fabric, 0, PRIMARY)
    print(f"    switches synced {fabric.syncs_sent} state updates in total")


if __name__ == "__main__":
    main()
