#!/usr/bin/env python3
"""Three-year wear campaign: watch a rack of SSDs age (§3.6, Figs 22-23).

Simulates 8 servers x 16 SSDs hosting Table 2 workloads for three years
under three policies -- No Swap (today's load-balanced-but-wear-blind
infrastructure), local-only balancing, and RackBlox's two-level scheme --
and prints the wear-balance trajectory of each.

Run:
    python examples/wear_leveling_campaign.py
"""

from repro.wear import WearSimulation

DAYS = 3 * 365
FLEET = dict(num_servers=8, ssds_per_server=16, vssds_per_ssd=4, seed=3,
             replacement_rate_per_year=0.08)


def run(policy_name: str, enable_local: bool, enable_global: bool):
    sim = WearSimulation(
        enable_local=enable_local, enable_global=enable_global, **FLEET
    )
    result = sim.run(days=DAYS, sample_every=90)
    print(f"\n=== {policy_name} ===")
    print("  day   worst-server λ   rack wear variance")
    worst_series = [
        max(series[i] for series in result.server_imbalance.values())
        for i in range(len(result.days))
    ]
    for day, worst, var in zip(result.days, worst_series, result.rack_variance):
        print(f"  {int(day):4d}   {worst:14.2f}   {var:18.1f}")
    print(f"  swaps: local={result.local_swaps} global={result.global_swaps}")
    return result


def main() -> None:
    print(f"fleet: {FLEET['num_servers']} servers x "
          f"{FLEET['ssds_per_server']} SSDs x {FLEET['vssds_per_ssd']} vSSDs, "
          f"{DAYS} days, Table 2 workload mix, 8%/yr SSD replacement churn")
    noswap = run("No Swap (baseline)", False, False)
    local = run("Local balancer only", True, False)
    both = run("RackBlox two-level", True, True)

    print("\n=== verdict ===")
    print(f"  final worst-server λ : no-swap {noswap.final_server_imbalance():.2f}"
          f" -> two-level {both.final_server_imbalance():.2f}"
          f"  (λ=1.0 is perfectly uniform; bound is 1+γ=1.10)")
    print(f"  final rack variance  : no-swap {noswap.final_rack_variance():.0f}"
          f" -> local-only {local.final_rack_variance():.0f}"
          f" -> two-level {both.final_rack_variance():.0f}")
    print(f"  swap budget spent    : {both.local_swaps} local swaps, "
          f"{both.global_swaps} global swaps over {DAYS} days")


if __name__ == "__main__":
    main()
