#!/usr/bin/env python3
"""Quickstart: build a RackBlox rack, run YCSB, compare against VDC.

This is the five-minute tour: two simulated racks -- one running the
uncoordinated VDC baseline, one running RackBlox's network-storage
co-design -- serve the same YCSB workload (50% writes, zipfian keys), and
we print the end-to-end latency profile of each.

Run:
    python examples/quickstart.py
"""

from repro.cluster import RackConfig, SystemType
from repro.experiments import run_rack_experiment
from repro.workloads import ycsb


def main() -> None:
    workload = ycsb(write_ratio=0.5)  # YCSB-A: 50% reads, 50% writes
    print(f"workload: {workload.name} (zipfian, theta={workload.zipf_theta})\n")

    results = {}
    for system in (SystemType.VDC, SystemType.RACKBLOX):
        config = RackConfig(
            system=system,
            num_servers=4,   # four storage servers behind one ToR switch
            num_pairs=4,     # four replicated vSSDs (primary + replica)
            seed=42,
        )
        results[system] = run_rack_experiment(
            config, workload, requests_per_pair=2000, rate_iops_per_pair=1500
        )

    print(f"{'':24s}{'VDC':>12s}{'RackBlox':>12s}")
    vdc = results[SystemType.VDC]
    rb = results[SystemType.RACKBLOX]
    rows = [
        ("read avg (us)", "read_avg_us"),
        ("read P99 (us)", "read_p99_us"),
        ("read P99.9 (us)", "read_p999_us"),
        ("write avg (us)", "write_avg_us"),
        ("write P99.9 (us)", "write_p999_us"),
    ]
    vdc_summary, rb_summary = vdc.summary(), rb.summary()
    for label, key in rows:
        print(f"{label:24s}{vdc_summary[key]:>12.0f}{rb_summary[key]:>12.0f}")

    print()
    print(f"GC passes during the run:   VDC={vdc.gc_runs}  RackBlox={rb.gc_runs}")
    print(f"reads redirected by switch: VDC={vdc.redirects}  RackBlox={rb.redirects}")
    speedup = vdc_summary["read_p999_us"] / rb_summary["read_p999_us"]
    print(f"\nRackBlox read P99.9 improvement over VDC: {speedup:.1f}x")
    print("(the paper reports up to 4.4x on the YCSB sweep, Figure 9)")


if __name__ == "__main__":
    main()
