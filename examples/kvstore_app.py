#!/usr/bin/env python3
"""A key-value application on RackBlox, end to end.

Two layers of the storage story in one script:

1. an **LSM tree** running directly on a vSSD (application-managed flash:
   memtable flushes, leveled compaction, bloom-filtered reads) -- the
   write pattern that generates real GC pressure;
2. a **replicated KV store** over the whole rack: the same PUT/GET
   traffic served by VDC and by RackBlox, with the tail latency an
   *application* would observe.

Run:
    python examples/kvstore_app.py
"""

import random

from repro.cluster import Rack, RackConfig, SystemType
from repro.experiments.runner import run_until
from repro.flash import FlashGeometry, Ssd
from repro.kvstore import LsmTree, RackKvStore
from repro.sim import Simulator
from repro.vssd import VssdAllocator


def lsm_demo() -> None:
    print("=== layer 1: LSM tree on one vSSD ===")
    sim = Simulator()
    geo = FlashGeometry(channels=2, chips_per_channel=2, blocks_per_chip=128,
                        pages_per_block=16)
    ssd = Ssd(sim, "kv-ssd", geometry=geo)
    vssd = VssdAllocator(ssd).create_hardware_isolated("kv", channels=[0, 1])
    lsm = LsmTree(vssd, memtable_entries=32, level_fanout=3, entries_per_page=8)

    rng = random.Random(7)

    def workload():
        for i in range(600):
            key = f"user:{rng.randrange(150)}"
            yield sim.spawn(lsm.put(key, f"profile-{i}"))
        # Read a few back through the full stack.
        for key in ("user:3", "user:77", "user:149"):
            value = yield sim.spawn(lsm.get(key))
            print(f"    get({key}) -> {value}")

    proc = sim.spawn(workload())
    run_until(sim, proc)
    print(f"  600 puts -> {lsm.flushes} flushes, {lsm.compactions} compactions,"
          f" {lsm.pages_written} pages written, {lsm.pages_read} read")
    print(f"  levels: {lsm.level_sizes()}  bloom skips: {lsm.bloom_skips}")
    print(f"  device: free ratio {vssd.free_block_ratio():.2f}, "
          f"write amplification {vssd.ftl.write_amplification():.2f}")


def rack_demo(system: SystemType):
    config = RackConfig(system=system, num_servers=4, num_pairs=4, seed=21)
    rack = Rack(config)
    rack.precondition()
    store = RackKvStore(rack)
    rng = random.Random(9)

    def workload():
        # Load phase.
        for i in range(400):
            yield rack.sim.spawn(store.put(f"item:{i}", f"payload-{i}"))
        # Mixed phase: zipf-ish hot reads + updates (GC builds up).
        for i in range(2500):
            if rng.random() < 0.5:
                hot = rng.randrange(40) if rng.random() < 0.8 else rng.randrange(400)
                yield rack.sim.spawn(store.get(f"item:{hot}"))
            else:
                yield rack.sim.spawn(store.put(f"item:{rng.randrange(400)}",
                                               f"update-{i}"))

    proc = rack.sim.spawn(workload())
    run_until(rack.sim, proc)
    return store, rack


def main() -> None:
    lsm_demo()
    print("\n=== layer 2: replicated KV store on the rack ===")
    results = {}
    for system in (SystemType.VDC, SystemType.RACKBLOX):
        store, rack = rack_demo(system)
        results[system] = (store, rack)
        reads = store.metrics.read_total
        writes = store.metrics.write_total
        print(f"  {system.value:10s} GET p50={reads.p50():6.0f}us "
              f"p99={reads.p99():7.0f}us p99.9={reads.p999():7.0f}us | "
              f"PUT p99={writes.p99():7.0f}us | "
              f"redirects={rack.redirect_count()} gc={rack.total_gc_runs()}")
    vdc_reads = results[SystemType.VDC][0].metrics.read_total
    rb_reads = results[SystemType.RACKBLOX][0].metrics.read_total
    print(f"\n  application-observed GET P99.9 improvement: "
          f"{vdc_reads.p999() / rb_reads.p999():.1f}x")


if __name__ == "__main__":
    main()
