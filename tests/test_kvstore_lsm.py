"""Tests for the LSM tree on a vSSD."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.flash import FlashGeometry, Ssd
from repro.kvstore import LsmTree
from repro.sim import Simulator
from repro.vssd import VssdAllocator


def make_lsm(memtable_entries=8, level_fanout=2, entries_per_page=4,
             blocks=128, pages=16):
    sim = Simulator()
    geo = FlashGeometry(channels=2, chips_per_channel=2, blocks_per_chip=blocks,
                        pages_per_block=pages)
    ssd = Ssd(sim, "kv-ssd", geometry=geo)
    vssd = VssdAllocator(ssd).create_hardware_isolated("kv", channels=[0, 1])
    lsm = LsmTree(
        vssd, memtable_entries=memtable_entries, level_fanout=level_fanout,
        entries_per_page=entries_per_page,
    )
    return sim, lsm


def run(sim, gen):
    proc = sim.spawn(gen)
    sim.run()
    assert proc.ok, proc._exception
    return proc.value


class TestBasicOps:
    def test_put_get_from_memtable(self):
        sim, lsm = make_lsm()
        run(sim, lsm.put("a", "1"))
        assert run(sim, lsm.get("a")) == "1"
        assert lsm.flushes == 0  # never left memory

    def test_get_missing(self):
        sim, lsm = make_lsm()
        assert run(sim, lsm.get("ghost")) is None

    def test_flush_then_get_reads_flash(self):
        sim, lsm = make_lsm(memtable_entries=4)
        for i in range(4):
            run(sim, lsm.put(f"k{i}", f"v{i}"))
        assert lsm.flushes == 1
        before = lsm.pages_read
        assert run(sim, lsm.get("k2")) == "v2"
        assert lsm.pages_read == before + 1  # one timed page read

    def test_overwrite_visible_after_flush(self):
        sim, lsm = make_lsm(memtable_entries=4)
        run(sim, lsm.put("key", "old"))
        for i in range(3):
            run(sim, lsm.put(f"pad{i}", "x"))  # forces flush with 'old'
        run(sim, lsm.put("key", "new"))
        assert run(sim, lsm.get("key")) == "new"

    def test_delete_masks_flushed_value(self):
        sim, lsm = make_lsm(memtable_entries=4)
        run(sim, lsm.put("doomed", "v"))
        for i in range(3):
            run(sim, lsm.put(f"pad{i}", "x"))
        run(sim, lsm.delete("doomed"))
        assert run(sim, lsm.get("doomed")) is None

    def test_explicit_flush_empties_memtable(self):
        sim, lsm = make_lsm()
        run(sim, lsm.put("a", "1"))
        run(sim, lsm.flush())
        assert lsm.flushes == 1
        assert run(sim, lsm.get("a")) == "1"

    def test_flush_of_empty_memtable_is_noop(self):
        sim, lsm = make_lsm()
        run(sim, lsm.flush())
        assert lsm.flushes == 0

    def test_validation(self):
        sim, lsm = make_lsm()
        with pytest.raises(ConfigError):
            LsmTree(lsm.vssd, memtable_entries=0)
        with pytest.raises(ConfigError):
            LsmTree(lsm.vssd, level_fanout=1)


class TestCompaction:
    def test_compaction_triggers_on_fanout(self):
        sim, lsm = make_lsm(memtable_entries=4, level_fanout=2)
        # 3 flushes > fanout 2 -> compaction into level 1.
        for i in range(12):
            run(sim, lsm.put(f"k{i}", f"v{i}"))
        assert lsm.flushes == 3
        assert lsm.compactions >= 1
        assert lsm.level_sizes()[1] >= 1

    def test_data_survives_compaction(self):
        sim, lsm = make_lsm(memtable_entries=4, level_fanout=2)
        expected = {}
        for i in range(40):
            key = f"k{i % 10}"
            value = f"v{i}"
            run(sim, lsm.put(key, value))
            expected[key] = value
        for key, value in expected.items():
            assert run(sim, lsm.get(key)) == value, key
        lsm.check_invariants()

    def test_compaction_reclaims_space(self):
        sim, lsm = make_lsm(memtable_entries=4, level_fanout=2)
        # Rewriting the same keys: compaction dedupes shadowed versions.
        for i in range(64):
            run(sim, lsm.put(f"k{i % 4}", f"v{i}"))
        assert lsm.resident_entries() < 64
        lsm.check_invariants()

    def test_trim_frees_flash_pages(self):
        sim, lsm = make_lsm(memtable_entries=4, level_fanout=2)
        for i in range(48):
            run(sim, lsm.put(f"k{i % 6}", f"v{i}"))
        # Old extents were trimmed: mapped pages track live tables only,
        # not the full write history.
        assert lsm.vssd.ftl.mapped_page_count() <= lsm.space_pages()

    def test_tombstones_dropped_at_bottom_level(self):
        sim, lsm = make_lsm(memtable_entries=2, level_fanout=2)
        lsm.max_levels = 2  # bottom is level 1
        run(sim, lsm.put("dead", "v"))
        run(sim, lsm.put("pad", "x"))     # flush 1 (with 'dead')
        run(sim, lsm.delete("dead"))
        run(sim, lsm.put("pad2", "x"))    # flush 2 (with tombstone)
        run(sim, lsm.put("pad3", "x"))
        run(sim, lsm.put("pad4", "x"))    # flush 3 -> compaction to bottom
        assert run(sim, lsm.get("dead")) is None
        # After a bottom-level merge no tombstone entries survive.
        from repro.kvstore.lsm import _TOMBSTONE

        bottom = lsm._levels[1]
        for table in bottom:
            for page in table.pages.values():
                assert _TOMBSTONE not in page.values()


class TestLsmProperties:
    @settings(max_examples=15, deadline=None)
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["put", "delete"]),
                  st.integers(min_value=0, max_value=15),
                  st.integers(min_value=0, max_value=99)),
        min_size=1, max_size=120,
    ))
    def test_matches_dict_semantics(self, ops):
        """Property: the LSM agrees with a plain dict under any op mix."""
        sim, lsm = make_lsm(memtable_entries=4, level_fanout=2)
        model = {}
        for op, key_i, val_i in ops:
            key = f"k{key_i}"
            if op == "put":
                run(sim, lsm.put(key, f"v{val_i}"))
                model[key] = f"v{val_i}"
            else:
                run(sim, lsm.delete(key))
                model.pop(key, None)
        for key_i in range(16):
            key = f"k{key_i}"
            assert run(sim, lsm.get(key)) == model.get(key), key
        lsm.check_invariants()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=999))
    def test_extent_allocator_never_overlaps(self, seed):
        import random

        rng = random.Random(seed)
        sim, lsm = make_lsm(memtable_entries=4, level_fanout=2)
        for _ in range(60):
            run(sim, lsm.put(f"k{rng.randrange(12)}", "v"))
        lsm.check_invariants()
