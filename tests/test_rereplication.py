"""Tests for post-failure re-replication (§3.7)."""

from repro.cluster import FailureManager, Rack, RackConfig, SystemType
from repro.experiments.runner import run_until
from repro.net.packet import OpType, Packet
from repro.sim.core import MSEC


def failed_world(num_servers=4):
    """A rack where pair 0's primary server has crashed and been detected."""
    config = RackConfig(system=SystemType.RACKBLOX, num_servers=num_servers,
                        num_pairs=num_servers, seed=13)
    rack = Rack(config)
    manager = FailureManager(rack, heartbeat_interval_us=2 * MSEC)
    manager.start()
    pair = rack.pairs[0]
    # Put some live data on both replicas (state-level, no timing needed).
    for lpn in range(40):
        pair.primary.ftl.place_write(lpn)
        pair.replica.ftl.place_write(lpn)
    manager.fail_server(pair.primary_server_ip)
    rack.sim.run(until=rack.sim.now + 30 * MSEC)
    assert pair.primary_server_ip in rack.failed_ips
    return rack, manager, pair


def run(rack, gen):
    proc = rack.sim.spawn(gen)
    run_until(rack.sim, proc)
    assert proc.ok, getattr(proc, "_exception", None)
    return proc.value


class TestRereplication:
    def test_restores_pair_on_healthy_server(self):
        rack, manager, pair = failed_world()
        dead_vssd = pair.primary
        dead_ip = pair.primary_server_ip
        copied = run(rack, manager.rereplicate_pair(pair))
        assert copied == 40
        assert manager.rereplications == 1
        assert pair.primary is not dead_vssd
        assert pair.primary_server_ip != dead_ip
        assert pair.primary_server_ip not in rack.failed_ips
        # New member holds the survivor's live pages.
        assert pair.primary.ftl.mapped_page_count() == 40

    def test_target_avoids_both_current_servers(self):
        rack, manager, pair = failed_world()
        run(rack, manager.rereplicate_pair(pair))
        assert pair.primary_server_ip != pair.replica_server_ip

    def test_switch_tables_rewired(self):
        rack, manager, pair = failed_world()
        dead_id = pair.primary.vssd_id
        run(rack, manager.rereplicate_pair(pair))
        new_id = pair.primary.vssd_id
        assert dead_id not in rack.switch.replica_table
        assert new_id in rack.switch.replica_table
        assert rack.switch.replica_table.replica_of(pair.replica.vssd_id) == new_id
        assert (
            rack.switch.destination_table.server_ip(new_id)
            == pair.primary_server_ip
        )

    def test_reads_route_normally_after_rebuild(self):
        rack, manager, pair = failed_world()
        run(rack, manager.rereplicate_pair(pair))
        # The survivor's fail-over redirection bit was cleared: reads to
        # it are served locally again.
        action = rack.switch.process_packet(
            Packet(op=OpType.READ, vssd_id=pair.replica.vssd_id)
        )
        assert not action.redirected
        # And the rebuilt member is routable.
        action = rack.switch.process_packet(
            Packet(op=OpType.READ, vssd_id=pair.primary.vssd_id)
        )
        assert action.dst_ip == pair.primary_server_ip

    def test_copy_takes_simulated_time(self):
        rack, manager, pair = failed_world()
        before = rack.sim.now
        run(rack, manager.rereplicate_pair(pair))
        # 40 reads + 40 programs through the channels is not free.
        assert rack.sim.now - before > 40 * 0.8  # at least the program time

    def test_rejects_healthy_pair(self):
        config = RackConfig(system=SystemType.RACKBLOX, num_servers=3,
                            num_pairs=3, seed=13)
        rack = Rack(config)
        manager = FailureManager(rack)
        proc = rack.sim.spawn(manager.rereplicate_pair(rack.pairs[0]))
        rack.sim.run(until=10 * MSEC)
        assert proc.triggered and not proc.ok  # ConfigError inside

    def test_explicit_dead_target_rejected(self):
        rack, manager, pair = failed_world()
        proc = rack.sim.spawn(
            manager.rereplicate_pair(pair, target_ip=pair.primary_server_ip)
        )
        rack.sim.run(until=rack.sim.now + 10 * MSEC)
        assert proc.triggered and not proc.ok

    def test_workload_runs_against_rebuilt_pair(self):
        from repro.experiments import run_rack_experiment
        from repro.workloads import ycsb

        rack, manager, pair = failed_world()
        run(rack, manager.rereplicate_pair(pair))
        config = rack.config
        result = run_rack_experiment(config, ycsb(0.3), requests_per_pair=200,
                                     rack=rack)
        s = result.metrics.summary()
        assert s["read_count"] + s["write_count"] == len(rack.pairs) * 200
