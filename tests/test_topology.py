"""Tests for the multi-hop topology and per-hop INT accumulation."""

import random

import pytest

from repro.errors import ConfigError, NetworkError
from repro.net.packet import OpType, Packet
from repro.net.topology import NetworkPath, SwitchHop, fat_tree_path
from repro.sim import Simulator


class TestSwitchHop:
    def test_zero_jitter_is_deterministic(self):
        hop = SwitchHop("tor", 5.0, jitter=0.0)
        rng = random.Random(1)
        assert hop.sample(rng) == 5.0

    def test_jitter_bounds(self):
        hop = SwitchHop("tor", 10.0, jitter=0.5)
        rng = random.Random(2)
        for _ in range(200):
            sample = hop.sample(rng)
            assert 10.0 / 1.5 <= sample <= 15.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            SwitchHop("bad", 0.0)
        with pytest.raises(ConfigError):
            SwitchHop("bad", 1.0, jitter=-1)


class TestNetworkPath:
    def test_needs_hops(self):
        with pytest.raises(NetworkError):
            NetworkPath([], random.Random(1))

    def test_expected_latency_sums_hops(self):
        path = NetworkPath(
            [SwitchHop("a", 2.0), SwitchHop("b", 3.0)], random.Random(1)
        )
        assert path.expected_latency_us() == 5.0

    def test_int_accumulates_exactly_the_per_hop_sum(self):
        """§3.4's invariant: the LAT field equals the per-hop latency sum."""
        sim = Simulator()
        # Deterministic hops so the sum is checkable.
        path = NetworkPath(
            [SwitchHop("a", 2.0, jitter=0.0),
             SwitchHop("b", 6.0, jitter=0.0),
             SwitchHop("c", 2.0, jitter=0.0)],
            random.Random(3),
        )
        pkt = Packet(op=OpType.READ, vssd_id=1)
        done = sim.spawn(path.traverse(sim, pkt))
        sim.run()
        assert done.triggered
        assert pkt.lat == pytest.approx(10.0)
        assert sim.now == pytest.approx(10.0)

    def test_int_matches_wall_time_with_jitter(self):
        sim = Simulator()
        path = NetworkPath(
            [SwitchHop("a", 3.0), SwitchHop("b", 7.0)], random.Random(9)
        )
        pkt = Packet(op=OpType.READ, vssd_id=1)
        sim.spawn(path.traverse(sim, pkt))
        sim.run()
        # Whatever the draws were, INT recorded the true elapsed time.
        assert pkt.lat == pytest.approx(sim.now)

    def test_packets_carried_counter(self):
        sim = Simulator()
        path = NetworkPath([SwitchHop("a", 1.0)], random.Random(4))
        for _ in range(3):
            sim.spawn(path.traverse(sim, Packet(op=OpType.READ, vssd_id=1)))
        sim.run()
        assert path.packets_carried == 3


class TestFatTree:
    def test_intra_pod_has_three_hops(self):
        path = fat_tree_path(random.Random(1), cross_pod=False)
        assert len(path) == 3
        assert [h.name for h in path.hops] == ["client-tor", "agg-up", "rack-tor"]

    def test_cross_pod_adds_core(self):
        path = fat_tree_path(random.Random(1), cross_pod=True)
        assert len(path) == 5
        assert "core" in [h.name for h in path.hops]

    def test_cross_pod_costs_more(self):
        intra = fat_tree_path(random.Random(1), cross_pod=False)
        cross = fat_tree_path(random.Random(1), cross_pod=True)
        assert cross.expected_latency_us() > intra.expected_latency_us()
