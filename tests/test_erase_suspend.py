"""Tests for erase suspend/resume on flash channels."""

import pytest

from repro.flash import Channel, PSSD
from repro.sim import Simulator


def make_channel(enabled=True, slice_us=500.0, penalty=50.0):
    sim = Simulator()
    channel = Channel(sim, 0, PSSD)
    channel.configure_suspend(enabled, slice_us=slice_us,
                              resume_penalty_us=penalty)
    return sim, channel


class TestEraseSuspend:
    def test_disabled_erase_is_atomic(self):
        sim, channel = make_channel(enabled=False)
        read_done = []

        def eraser():
            yield sim.spawn(channel.erase_block())

        def reader():
            yield sim.spawn(channel.read_page(4.0))
            read_done.append(sim.now)

        sim.spawn(eraser())
        sim.spawn(reader())
        sim.run()
        # The read waited out the whole 5 ms erase.
        assert read_done[0] >= PSSD.erase_us

    def test_suspended_erase_lets_read_through(self):
        sim, channel = make_channel(enabled=True, slice_us=500.0)
        read_done = []

        def eraser():
            yield sim.spawn(channel.erase_block())

        def reader():
            yield sim.spawn(channel.read_page(4.0))
            read_done.append(sim.now)

        sim.spawn(eraser())
        sim.spawn(reader())
        sim.run()
        # The read slipped in after one slice, not after the full erase.
        assert read_done[0] < 2 * 500.0 + PSSD.read_latency(4.0)
        assert channel.suspensions >= 1

    def test_suspension_stretches_the_erase(self):
        # With contention, the erase finishes later than its raw time.
        sim, channel = make_channel(enabled=True, slice_us=500.0, penalty=100.0)
        erase_done = []

        def eraser():
            yield sim.spawn(channel.erase_block())
            erase_done.append(sim.now)

        def reader():
            yield sim.spawn(channel.read_page(4.0))

        sim.spawn(eraser())
        sim.spawn(reader())
        sim.run()
        assert erase_done[0] > PSSD.erase_us

    def test_uncontended_suspendable_erase_pays_nothing(self):
        sim, channel = make_channel(enabled=True)
        done = sim.spawn(channel.erase_block())
        sim.run()
        assert done.triggered
        assert sim.now == pytest.approx(PSSD.erase_us)
        assert channel.suspensions == 0

    def test_erase_counted_once(self):
        sim, channel = make_channel(enabled=True)
        sim.spawn(channel.erase_block())
        sim.run()
        assert channel.op_counts["erase"] == 1

    def test_configure_validation(self):
        sim, channel = make_channel()
        with pytest.raises(ValueError):
            channel.configure_suspend(True, slice_us=0.0)
        with pytest.raises(ValueError):
            channel.configure_suspend(True, resume_penalty_us=-1.0)


class TestRackIntegration:
    def test_config_flag_wires_channels(self):
        from repro.cluster import Rack, RackConfig, SystemType

        config = RackConfig(system=SystemType.VDC, num_servers=3, num_pairs=3,
                            seed=2, erase_suspend=True)
        rack = Rack(config)
        for vssd in rack.vssd_by_id.values():
            assert all(c.suspend_enabled for c in vssd.ssd.channels)

    def test_default_off(self):
        from repro.cluster import Rack, RackConfig, SystemType

        rack = Rack(RackConfig(system=SystemType.VDC, num_servers=3,
                               num_pairs=3, seed=2))
        for vssd in rack.vssd_by_id.values():
            assert not any(c.suspend_enabled for c in vssd.ssd.channels)
