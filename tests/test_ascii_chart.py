"""Tests for the terminal chart renderers."""

import pytest

from repro.errors import ConfigError
from repro.metrics.ascii_chart import bar_chart, cdf_chart, grouped_bar_chart


class TestBarChart:
    def test_bars_scale_to_peak(self):
        chart = bar_chart([("a", 10.0), ("b", 20.0)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_labels_aligned(self):
        chart = bar_chart([("short", 1.0), ("a-long-label", 2.0)], width=8)
        lines = chart.splitlines()
        assert lines[0].index("#") == lines[1].index("#")

    def test_title_and_unit(self):
        chart = bar_chart([("a", 3.0)], width=5, unit="us", title="Latency")
        assert chart.startswith("Latency")
        assert "3.0us" in chart

    def test_zero_value_has_no_bar(self):
        chart = bar_chart([("zero", 0.0), ("one", 1.0)], width=5)
        assert "#" not in chart.splitlines()[0]

    def test_validation(self):
        with pytest.raises(ConfigError):
            bar_chart([])
        with pytest.raises(ConfigError):
            bar_chart([("a", -1.0)])
        with pytest.raises(ConfigError):
            bar_chart([("a", 1.0)], width=1)


class TestGroupedBarChart:
    def test_groups_rendered(self):
        chart = grouped_bar_chart([
            ("20%", {"VDC": 20.0, "RackBlox": 8.0}),
            ("50%", {"VDC": 25.0, "RackBlox": 9.0}),
        ])
        assert "20%:" in chart and "50%:" in chart
        assert chart.count("VDC") == 2

    def test_missing_value_marked(self):
        chart = grouped_bar_chart(
            [("g", {"a": 1.0, "b": None})], series_order=["a", "b"]
        )
        assert "(no data)" in chart

    def test_validation(self):
        with pytest.raises(ConfigError):
            grouped_bar_chart([])
        with pytest.raises(ConfigError):
            grouped_bar_chart([("g", {"a": None})], series_order=["a"])


class TestCdfChart:
    def test_marker_positions_ordered(self):
        fast = [100.0] * 99 + [200.0]
        slow = [1000.0] * 99 + [20000.0]
        chart = cdf_chart({"fast": fast, "slow": slow}, quantiles=(50.0, 99.0))
        lines = chart.splitlines()
        fast_rows = [l for l in lines if l.strip().startswith("fast")]
        slow_rows = [l for l in lines if l.strip().startswith("slow")]
        # The slow curve's markers sit to the right of the fast curve's.
        assert fast_rows[0].index("*") < slow_rows[0].index("*")

    def test_values_annotated(self):
        chart = cdf_chart({"x": [50.0, 100.0, 150.0]}, quantiles=(50.0,))
        assert "100us" in chart

    def test_validation(self):
        with pytest.raises(ConfigError):
            cdf_chart({})
        with pytest.raises(ConfigError):
            cdf_chart({"x": []})
