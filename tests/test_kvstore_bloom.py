"""Tests for the Bloom filter."""

import pytest

from repro.errors import ConfigError
from repro.kvstore import BloomFilter


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(capacity=500, false_positive_rate=0.01)
        keys = [f"key-{i}" for i in range(500)]
        for key in keys:
            bloom.add(key)
        assert all(bloom.might_contain(k) for k in keys)

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter(capacity=1000, false_positive_rate=0.01)
        for i in range(1000):
            bloom.add(f"present-{i}")
        probes = 5000
        false_positives = sum(
            1 for i in range(probes) if bloom.might_contain(f"absent-{i}")
        )
        assert false_positives / probes < 0.05  # target 1%, generous bound

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(capacity=10)
        assert not bloom.might_contain("anything")

    def test_sizing_scales_with_capacity(self):
        small = BloomFilter(capacity=100)
        large = BloomFilter(capacity=10_000)
        assert large.num_bits > small.num_bits
        assert large.size_bytes > small.size_bytes

    def test_tighter_fp_rate_uses_more_bits(self):
        loose = BloomFilter(capacity=1000, false_positive_rate=0.1)
        tight = BloomFilter(capacity=1000, false_positive_rate=0.001)
        assert tight.num_bits > loose.num_bits
        assert tight.num_hashes >= loose.num_hashes

    def test_fill_ratio_grows(self):
        bloom = BloomFilter(capacity=100)
        assert bloom.fill_ratio() == 0.0
        for i in range(100):
            bloom.add(f"k{i}")
        assert 0.0 < bloom.fill_ratio() < 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            BloomFilter(capacity=0)
        with pytest.raises(ConfigError):
            BloomFilter(capacity=10, false_positive_rate=1.0)
