"""Tests for flash geometry and device timing profiles."""

import pytest

from repro.errors import ConfigError
from repro.flash import DEVICE_PROFILES, INTEL_DC, OPTANE, PSSD, FlashGeometry
from repro.flash.timing import DeviceProfile, profile_by_name


class TestGeometry:
    def test_defaults_are_consistent(self):
        geo = FlashGeometry()
        assert geo.total_chips == geo.channels * geo.chips_per_channel
        assert geo.total_pages == geo.total_chips * geo.pages_per_chip
        assert geo.capacity_kb == geo.total_pages * geo.page_size_kb

    def test_capacity_gb(self):
        geo = FlashGeometry(
            channels=2, chips_per_channel=2, blocks_per_chip=64,
            pages_per_block=64, page_size_kb=4,
        )
        # 4 chips * 64 blocks * 64 pages * 4KB = 64 MB
        assert geo.capacity_gb == pytest.approx(64 / 1024)

    def test_chip_flattening_roundtrip(self):
        geo = FlashGeometry(channels=4, chips_per_channel=3)
        for channel in range(4):
            for chip in range(3):
                flat = geo.chip_of(channel, chip)
                assert geo.channel_of_chip(flat) == channel

    def test_chip_of_bounds(self):
        geo = FlashGeometry(channels=2, chips_per_channel=2)
        with pytest.raises(ConfigError):
            geo.chip_of(2, 0)
        with pytest.raises(ConfigError):
            geo.chip_of(0, 2)
        with pytest.raises(ConfigError):
            geo.channel_of_chip(99)

    def test_nonpositive_fields_rejected(self):
        with pytest.raises(ConfigError):
            FlashGeometry(channels=0)
        with pytest.raises(ConfigError):
            FlashGeometry(pages_per_block=-1)


class TestDeviceProfiles:
    def test_three_builtin_profiles(self):
        assert set(DEVICE_PROFILES) == {"optane", "intel-dc", "pssd"}

    def test_speed_ordering_matches_paper(self):
        # Optane fastest, P-SSD slowest (Figure 19's premise).
        assert OPTANE.read_us < INTEL_DC.read_us < PSSD.read_us
        assert OPTANE.program_us < INTEL_DC.program_us < PSSD.program_us
        assert OPTANE.erase_us < INTEL_DC.erase_us < PSSD.erase_us

    def test_latency_includes_transfer(self):
        assert PSSD.read_latency(4.0) > PSSD.read_us
        assert PSSD.program_latency(4.0) > PSSD.program_us

    def test_lookup_by_name(self):
        assert profile_by_name("optane") is OPTANE
        with pytest.raises(ConfigError):
            profile_by_name("nvme-gen9")

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            DeviceProfile(name="bad", read_us=-1.0, program_us=1.0, erase_us=1.0)
