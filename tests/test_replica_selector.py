"""The load-aware read selector, deterministically.

Load-dependent routing is nondeterministic in production, so the
contract is tested against the scripted half of the harness: a
:class:`FakeLoadView` timeline drives the selector and a
:class:`RoutingTrace` replays exactly which replica every read chose
*and why*.  The ladder of honest fallbacks (policy off, single, dead,
migrating, stale) each has a pinned reason; a seeded property sweep
then checks the global invariants -- the selector never *diverts* onto
a dead, draining, migrating, or epoch-retired replica, and with no
trustworthy stats it degrades to strict hash order.  The final class
pins the wire contract: ``--read-policy hash`` is byte-identical to a
router that never heard of the selector.
"""

import asyncio
import random

import pytest

from repro.errors import ConfigError
from repro.service import protocol, schema
from repro.service.client import ServiceClient
from repro.service.router import ShardedRackService, ShardRouter
from repro.service.selector import (
    POLICY_HASH,
    POLICY_P2C,
    REASON_MIGRATING,
    REASON_NO_LIVE,
    REASON_P2C,
    REASON_POLICY_HASH,
    REASON_SINGLE,
    REASON_STALE,
    Decision,
    FakeLoadView,
    ReplicaSelector,
    ReplicaStats,
    RoutingTrace,
)

from tests.test_migration import base_config, start_sharded

pytestmark = [pytest.mark.routing]


def fresh_view(*nodes, depth=0.0, ewma_us=100.0):
    """A view where every listed node is live with fresh stats."""
    view = FakeLoadView()
    for node in nodes:
        view.set_replica(node, depth=depth, ewma_us=ewma_us)
    return view


class TestScoring:
    def test_picks_the_cheaper_of_the_first_two(self):
        view = fresh_view(0, 1)
        view.set_replica(0, depth=6.0, ewma_us=100.0)   # cost 700
        view.set_replica(1, depth=1.0, ewma_us=100.0)   # cost 200
        selector = ReplicaSelector(view)
        decision = selector.choose("pair:0", [0, 1])
        assert decision.chosen == 1 and decision.reason == REASON_P2C
        assert decision.diverted
        assert decision.scores == ((0, 700.0), (1, 200.0))

    def test_idle_replica_costs_one_service_time_not_zero(self):
        # depth 0 with a 900us EWMA must still lose to depth 0 at 100us.
        view = fresh_view(0, 1)
        view.set_replica(0, depth=0.0, ewma_us=900.0)
        view.set_replica(1, depth=0.0, ewma_us=100.0)
        decision = ReplicaSelector(view).choose("pair:0", [0, 1])
        assert decision.chosen == 1 and decision.scores == ((0, 900.0),
                                                            (1, 100.0))

    def test_tie_goes_to_hash_order(self):
        view = fresh_view(0, 1, depth=2.0, ewma_us=150.0)
        decision = ReplicaSelector(view).choose("pair:0", [1, 0])
        assert decision.chosen == 1 and decision.reason == REASON_P2C
        assert not decision.diverted

    def test_penalty_flips_an_otherwise_winning_replica(self):
        # The router's GC view rides through here: the hash owner is
        # idle but both its copies are collecting, so it loses.
        view = fresh_view(0, 1)
        view.set_replica(0, depth=0.0, ewma_us=100.0)
        view.set_replica(1, depth=3.0, ewma_us=100.0)
        selector = ReplicaSelector(view)
        assert selector.choose("pair:0", [0, 1]).chosen == 0
        decision = selector.choose("pair:0", [0, 1],
                                   penalties={0: 1e6})
        assert decision.chosen == 1 and decision.diverted

    def test_only_first_two_live_candidates_race(self):
        # Power of TWO choices: a dirt-cheap third replica is not
        # considered (it exists for membership transitions, not racing).
        view = fresh_view(0, 1, 2)
        view.set_replica(0, depth=5.0, ewma_us=100.0)
        view.set_replica(1, depth=4.0, ewma_us=100.0)
        view.set_replica(2, depth=0.0, ewma_us=1.0)
        decision = ReplicaSelector(view).choose("pair:0", [0, 1, 2])
        assert decision.chosen == 1
        assert [node for node, _ in decision.scores] == [0, 1]


class TestFallbackLadder:
    def test_policy_hash_never_looks_at_the_view(self):
        view = fresh_view(0, 1)
        view.set_replica(0, depth=99.0, ewma_us=9999.0)
        selector = ReplicaSelector(view, policy=POLICY_HASH)
        decision = selector.choose("pair:0", [0, 1])
        assert decision.chosen == 0
        assert decision.reason == REASON_POLICY_HASH
        assert decision.scores == ()

    def test_single_live_candidate_is_taken_without_scoring(self):
        view = fresh_view(0)
        decision = ReplicaSelector(view).choose("pair:0", [0])
        assert decision.chosen == 0 and decision.reason == REASON_SINGLE

    def test_dead_first_candidate_is_skipped(self):
        view = fresh_view(1)
        view.set_replica(0, live=False)
        decision = ReplicaSelector(view).choose("pair:0", [0, 1])
        assert decision.chosen == 1 and decision.reason == REASON_SINGLE

    def test_unknown_node_reads_as_dead(self):
        # An epoch-retired rack is simply absent from the live view.
        view = fresh_view(1)
        decision = ReplicaSelector(view).choose("pair:0", [7, 1])
        assert decision.chosen == 1 and decision.reason == REASON_SINGLE

    def test_no_live_candidate_falls_back_to_hash_first(self):
        view = FakeLoadView()
        view.set_replica(0, live=False)
        view.set_replica(1, live=False)
        decision = ReplicaSelector(view).choose("pair:0", [0, 1])
        assert decision.chosen == 0 and decision.reason == REASON_NO_LIVE

    def test_draining_contender_forces_hash_order(self):
        view = fresh_view(0, 1)
        view.set_replica(1, ewma_us=1.0, draining=True)
        decision = ReplicaSelector(view).choose("pair:0", [0, 1])
        assert decision.chosen == 0 and decision.reason == REASON_MIGRATING

    def test_migrating_node_forces_hash_order(self):
        view = fresh_view(0, 1)
        view.set_replica(1, ewma_us=1.0)
        decision = ReplicaSelector(view).choose("pair:0", [0, 1],
                                                migrating_node=1)
        assert decision.chosen == 0 and decision.reason == REASON_MIGRATING

    def test_stale_stats_force_hash_order(self):
        view = fresh_view(0, 1)
        view.set_replica(1, ewma_us=1.0, age_s=60.0)
        decision = ReplicaSelector(view).choose("pair:0", [0, 1])
        assert decision.chosen == 0 and decision.reason == REASON_STALE

    def test_zero_ewma_counts_as_stale(self):
        # "Fresh but never observed" is not a usable latency signal.
        view = fresh_view(0)
        view.set_replica(1, ewma_us=0.0)
        decision = ReplicaSelector(view).choose("pair:0", [0, 1])
        assert decision.chosen == 0 and decision.reason == REASON_STALE

    def test_counters_tally_every_reason(self):
        view = FakeLoadView()
        view.set_replica(0, ewma_us=100.0)
        view.set_replica(1, ewma_us=50.0)
        selector = ReplicaSelector(view)
        selector.choose("a", [0, 1])                       # p2c, diverted
        selector.choose("b", [0])                          # single
        view.set_replica(1, ewma_us=50.0, age_s=60.0)
        selector.choose("c", [0, 1])                       # stale
        view.set_replica(1, ewma_us=50.0, draining=True)
        selector.choose("d", [0, 1])                       # migrating
        view.set_replica(0, live=False)
        view.set_replica(1, live=False)
        selector.choose("e", [0, 1])                       # no-live
        assert selector.counters["decisions"] == 5
        assert selector.counters["p2c_picks"] == 1
        assert selector.counters["p2c_diverted"] == 1
        assert selector.counters["fallbacks"] == 4
        assert selector.counters["stale_fallbacks"] == 1
        assert selector.counters["migrating_fallbacks"] == 1
        assert selector.counters["single_candidate"] == 1
        assert selector.counters["no_live_fallbacks"] == 1
        assert selector.counters["dead_skips"] == 2
        section = selector.stats_section()
        assert section["policy_p2c"] == 1.0
        assert section["decisions"] == 5.0


class TestRoutingTrace:
    def test_scripted_timeline_replays_exactly(self):
        # Replica 1 is overloaded for two decisions, then recovers and
        # wins, then its feed goes stale -- every step pinned by reason.
        view = FakeLoadView()
        view.set_replica(0, depth=2.0, ewma_us=100.0)
        view.script(1, [
            {"depth": 9.0, "ewma_us": 100.0},   # loses to 0
            {"depth": 9.0, "ewma_us": 100.0},   # still losing
            {"depth": 0.0, "ewma_us": 100.0},   # recovered: wins
            {"depth": 0.0, "ewma_us": 100.0, "age_s": 60.0},  # stale
        ])
        trace = RoutingTrace()
        selector = ReplicaSelector(view, trace=trace)
        for _ in range(4):
            selector.choose("pair:7", [0, 1])
            view.advance()
        trace.expect([
            ("pair:7", 0, REASON_P2C),
            ("pair:7", 0, REASON_P2C),
            ("pair:7", 1, REASON_P2C),
            ("pair:7", 0, REASON_STALE),
        ])
        assert trace.chosen_nodes() == [0, 0, 1, 0]
        assert [d.seq for d in trace.decisions()] == [0, 1, 2, 3]

    def test_last_timeline_entry_sticks(self):
        view = FakeLoadView()
        view.script(0, [{"ewma_us": 100.0}, {"ewma_us": 500.0}])
        view.advance(10)
        assert view.replica(0).ewma_us == 500.0

    def test_script_installed_mid_run_starts_at_its_first_entry(self):
        view = FakeLoadView()
        view.set_replica(0, ewma_us=100.0)
        view.advance(5)
        view.script(1, [{"ewma_us": 10.0}, {"ewma_us": 20.0}])
        assert view.replica(1).ewma_us == 10.0
        view.advance()
        assert view.replica(1).ewma_us == 20.0

    def test_expect_names_the_first_divergence(self):
        trace = RoutingTrace()
        trace.record(Decision(0, "k", (0, 1), 0, REASON_P2C))
        with pytest.raises(AssertionError, match="diverges at decision 0"):
            trace.expect([("k", 1, REASON_P2C)])

    def test_expect_flags_length_mismatch(self):
        trace = RoutingTrace()
        trace.record(Decision(0, "k", (0, 1), 0, REASON_P2C))
        with pytest.raises(AssertionError, match="length mismatch"):
            trace.expect([("k", 0, REASON_P2C), ("k", 0, REASON_P2C)])

    def test_trace_is_bounded(self):
        trace = RoutingTrace(maxlen=4)
        for seq in range(10):
            trace.record(Decision(seq, "k", (0,), 0, REASON_SINGLE))
        assert len(trace) == 4
        assert [d.seq for d in trace] == [6, 7, 8, 9]
        trace.clear()
        assert len(trace) == 0

    def test_removed_replica_reads_dead(self):
        view = fresh_view(0, 1)
        view.remove_replica(1)
        stats = view.replica(1)
        assert not stats.live and stats.age_s == float("inf")
        assert view.nodes() == [0]


class TestValidation:
    def test_bad_policy_is_a_config_error(self):
        with pytest.raises(ConfigError, match="read policy"):
            ReplicaSelector(FakeLoadView(), policy="roulette")

    def test_bad_staleness_window_is_a_config_error(self):
        with pytest.raises(ConfigError, match="stale_after_s"):
            ReplicaSelector(FakeLoadView(), stale_after_s=0.0)

    def test_empty_candidates_is_a_config_error(self):
        with pytest.raises(ConfigError, match="at least one candidate"):
            ReplicaSelector(fresh_view(0)).choose("k", [])

    def test_empty_timeline_is_a_config_error(self):
        with pytest.raises(ConfigError, match="at least one step"):
            FakeLoadView().script(0, [])


class TestPropertySweep:
    """Seeded random sweep over view states: the safety invariants.

    Whatever the load data says, the selector must never *divert* a
    read onto a replica that is dead, draining, migrating, stale, or
    missing from the view -- and whenever it cannot score, the choice
    must be exactly what strict hash order (restricted to live
    replicas) would have produced.
    """

    SWEEPS = 2000

    def _random_view(self, rng):
        view = FakeLoadView()
        nodes = rng.sample(range(8), k=rng.randint(1, 5))
        for node in nodes:
            if rng.random() < 0.15:
                continue  # epoch-retired: absent from the view entirely
            view.set_replica(
                node,
                depth=rng.choice([0.0, 1.0, 5.0, 40.0]),
                ewma_us=rng.choice([0.0, 10.0, 100.0, 5000.0]),
                age_s=rng.choice([0.0, 0.1, 1.0, 60.0]),
                live=rng.random() > 0.2,
                draining=rng.random() < 0.15,
            )
        return view, nodes

    def test_divert_targets_are_always_safe(self):
        rng = random.Random(20260808)
        diverted = 0
        for _ in range(self.SWEEPS):
            view, nodes = self._random_view(rng)
            candidates = sorted(nodes, key=lambda n: rng.random())
            migrating = rng.choice([None] + candidates)
            selector = ReplicaSelector(view, stale_after_s=0.25)
            decision = selector.choose("k", candidates,
                                       migrating_node=migrating)
            assert decision.chosen in candidates
            stats = view.replica(decision.chosen)
            live_order = [n for n in candidates if view.replica(n).live]
            if decision.reason == REASON_NO_LIVE:
                # Blind: hash-first, exactly like the plain router.
                assert decision.chosen == candidates[0]
            elif decision.chosen != live_order[0]:
                diverted += 1
                # Leaving strict (live-restricted) hash order is only
                # ever a scored p2c pick, and only onto a live, fresh,
                # non-draining, non-migrating replica.
                assert decision.reason == REASON_P2C
                assert stats.live and not stats.draining
                assert decision.chosen != migrating
                assert stats.age_s <= 0.25 and stats.ewma_us > 0.0
            else:
                # Every fallback (and every non-diverting p2c pick) is
                # the first live replica in strict hash order -- what
                # the plain router would have picked.
                assert stats.live
                assert decision.chosen == live_order[0]
        assert diverted > 0, "sweep never exercised the divert path"

    def test_all_stale_degrades_to_strict_hash_order(self):
        rng = random.Random(7)
        for _ in range(500):
            view = FakeLoadView()
            candidates = rng.sample(range(6), k=rng.randint(2, 4))
            for node in candidates:
                view.set_replica(node, depth=rng.random() * 10,
                                 ewma_us=rng.random() * 1000,
                                 age_s=1.0 + rng.random())
            decision = ReplicaSelector(view).choose("k", candidates)
            assert decision.chosen == candidates[0]
            assert decision.reason == REASON_STALE


class TestRouterIntegration:
    """The selector wired into the in-process router, over real TCP."""

    def test_p2c_router_serves_and_reports(self):
        trace = RoutingTrace()

        async def scenario():
            service = await start_sharded(racks=2, read_policy=POLICY_P2C,
                                          routing_trace=trace)
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    hello = await c.hello()
                    for pair in range(4):
                        await c.write(pair, lpn=pair)
                    reads = [await c.read(pair % 4, lpn=pair % 4)
                             for pair in range(12)]
                    stats = await c.stats()
                return hello, reads, stats
            finally:
                await service.stop()

        hello, reads, stats = asyncio.run(scenario())
        assert hello["read_policy"] == POLICY_P2C
        assert all(r["ok"] for r in reads)
        schema.validate_stats(stats, client=True)
        routing = stats["routing"]
        assert routing["policy_p2c"] == 1.0
        assert routing["decisions"] == 12.0
        assert routing["decisions"] == (routing["p2c_picks"]
                                        + routing["fallbacks"])
        assert set(routing["replicas"]) == {"0", "1"}
        # Every wire read left a replayable decision behind it.
        assert len(trace) == 12
        assert all(d.epoch == 0 for d in trace)

    def test_router_rejects_unknown_policy(self):
        with pytest.raises(ConfigError, match="read_policy"):
            ShardRouter.from_config(base_config(), 2,
                                    read_policy="roulette",
                                    precondition=False)


class TestHashModeByteIdentical:
    """``--read-policy hash`` must be invisible on the wire.

    The same frame sequence is sent to a default router and to one
    built with an explicit ``read_policy="hash"``.  Frames that carry
    no timing (hello) must come back as the same raw bytes; frames with
    measured latencies (the sim pump rides wall time, so latency values
    jitter between *any* two runs, policy aside) must agree on every
    other field -- same keys, same placement, same payloads -- and the
    stats body must have the exact same shape, with no routing section
    in either.
    """

    OPS = [
        {"type": "hello", "v": protocol.PROTOCOL_VERSION, "id": 1},
        {"type": "write", "pair": 0, "lpn": 3, "id": 2},
        {"type": "write", "pair": 3, "lpn": 1, "id": 3},
        {"type": "read", "pair": 0, "lpn": 3, "id": 4},
        {"type": "read", "pair": 3, "lpn": 1, "id": 5},
        {"type": "put", "key": "alpha", "value": "1", "id": 6},
        {"type": "get", "key": "alpha", "id": 7},
        {"type": "scan", "start": "", "count": 8, "id": 8},
        {"type": "stats", "id": 9},
    ]

    async def _run_wire(self, **router_kwargs):
        # The GC view sync rides a wall timer; its commit counter would
        # differ run to run, so both runs pin it off -- the comparison
        # is about the read policy, not wall-clock jitter.
        router_kwargs.setdefault("gc_sync_s", 0.0)
        service = await start_sharded(racks=2, **router_kwargs)
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            raw = []
            splitter = protocol.FrameSplitter(protocol.DEFAULT_MAX_FRAME_BYTES)
            for op in self.OPS:
                writer.write(protocol.encode_frame(op))
                await writer.drain()
                while True:
                    frames = splitter.feed(await reader.read(65536))
                    if frames:
                        raw.extend(bytes(f) for f in frames)
                        break
            writer.close()
            return raw
        finally:
            await service.stop()

    @staticmethod
    def _shape(value):
        """The payload with every number replaced by a type marker --
        what is left of a response once wall-jittery timings are
        ignored: keys, structure, strings, booleans."""
        if isinstance(value, dict):
            return {k: TestHashModeByteIdentical._shape(v)
                    for k, v in sorted(value.items())}
        if isinstance(value, list):
            return [TestHashModeByteIdentical._shape(v) for v in value]
        if isinstance(value, float):
            return "float"
        return value

    def test_default_and_explicit_hash_are_indistinguishable(self):
        import json

        async def scenario():
            default = await self._run_wire()
            explicit = await self._run_wire(read_policy=POLICY_HASH)
            return default, explicit

        default, explicit = asyncio.run(scenario())
        assert len(default) == len(explicit) == len(self.OPS)
        # hello carries no timing: raw bytes must match exactly.
        assert default[0] == explicit[0]
        for op, d_raw, e_raw in zip(self.OPS[1:], default[1:], explicit[1:]):
            d, e = json.loads(d_raw[4:]), json.loads(e_raw[4:])
            assert sorted(d) == sorted(e), op
            if op["type"] == "stats":
                assert self._shape(d) == self._shape(e)
                continue
            for field in d:
                if field in ("latency_us", "storage_us"):
                    continue
                assert d[field] == e[field], (op, field)
        # And neither run grew the payloads: the routing section (and
        # the hello read_policy field) exist only under p2c.
        stats = json.loads(default[-1][4:])
        hello = json.loads(default[0][4:])
        assert "routing" not in stats
        assert "read_policy" not in hello
