"""Wire-protocol codec tests: framing, truncation, and size limits."""

import asyncio
import struct

import pytest

from repro.service import protocol


class TestEncodeDecode:
    def test_round_trip_single_frame(self):
        message = {"type": "read", "pair": 1, "lpn": 42, "id": 7}
        decoder = protocol.FrameDecoder()
        out = decoder.feed(protocol.encode_frame(message))
        assert out == [message]

    def test_round_trip_many_frames_one_feed(self):
        messages = [{"id": i, "type": "ping"} for i in range(25)]
        blob = b"".join(protocol.encode_frame(m) for m in messages)
        decoder = protocol.FrameDecoder()
        assert decoder.feed(blob) == messages

    def test_byte_at_a_time_reassembly(self):
        message = {"type": "put", "key": "k1", "value": "v" * 100}
        blob = protocol.encode_frame(message)
        decoder = protocol.FrameDecoder()
        out = []
        for i in range(len(blob)):
            out.extend(decoder.feed(blob[i:i + 1]))
        assert out == [message]

    def test_split_across_frame_boundary(self):
        a = protocol.encode_frame({"id": 1})
        b = protocol.encode_frame({"id": 2})
        blob = a + b
        decoder = protocol.FrameDecoder()
        first = decoder.feed(blob[: len(a) + 3])
        second = decoder.feed(blob[len(a) + 3:])
        assert first == [{"id": 1}]
        assert second == [{"id": 2}]

    def test_unicode_payload_survives(self):
        message = {"key": "ключ-鍵-🔑"}
        decoder = protocol.FrameDecoder()
        assert decoder.feed(protocol.encode_frame(message)) == [message]


class TestDecoderErrors:
    def test_oversized_frame_rejected_at_prefix(self):
        decoder = protocol.FrameDecoder(max_frame_bytes=64)
        prefix = struct.pack(">I", 65)
        with pytest.raises(protocol.FrameTooLarge):
            decoder.feed(prefix)

    def test_oversized_rejected_before_body_arrives(self):
        # The decoder must reject on the prefix alone -- it never waits
        # for (or buffers) the advertised body.
        decoder = protocol.FrameDecoder(max_frame_bytes=1024)
        with pytest.raises(protocol.FrameTooLarge):
            decoder.feed(struct.pack(">I", 1 << 30))

    def test_at_limit_frame_accepted(self):
        body = b'{"k":"' + b"x" * 50 + b'"}'
        decoder = protocol.FrameDecoder(max_frame_bytes=len(body))
        out = decoder.feed(struct.pack(">I", len(body)) + body)
        assert out[0]["k"] == "x" * 50

    def test_non_json_body_raises(self):
        decoder = protocol.FrameDecoder()
        bad = b"not json at all"
        with pytest.raises(protocol.FrameError):
            decoder.feed(struct.pack(">I", len(bad)) + bad)

    def test_non_object_json_raises(self):
        decoder = protocol.FrameDecoder()
        body = b"[1,2,3]"
        with pytest.raises(protocol.FrameError):
            decoder.feed(struct.pack(">I", len(body)) + body)

    def test_truncated_frame_on_close(self):
        decoder = protocol.FrameDecoder()
        blob = protocol.encode_frame({"id": 1})
        decoder.feed(blob[:-2])
        with pytest.raises(protocol.TruncatedFrame):
            decoder.close()

    def test_truncated_prefix_on_close(self):
        decoder = protocol.FrameDecoder()
        decoder.feed(b"\x00\x00")
        with pytest.raises(protocol.TruncatedFrame):
            decoder.close()

    def test_clean_close_after_whole_frames(self):
        decoder = protocol.FrameDecoder()
        decoder.feed(protocol.encode_frame({"id": 1}))
        decoder.close()  # no leftover bytes -> no error


class TestStreamHelpers:
    def _feed_reader(self, *chunks: bytes) -> "asyncio.StreamReader":
        reader = asyncio.StreamReader()
        for chunk in chunks:
            reader.feed_data(chunk)
        reader.feed_eof()
        return reader

    def test_read_frame_round_trip(self):
        async def scenario():
            reader = self._feed_reader(protocol.encode_frame({"id": 9}))
            return await protocol.read_frame(reader)

        assert asyncio.run(scenario()) == {"id": 9}

    def test_read_frame_none_on_clean_eof(self):
        async def scenario():
            return await protocol.read_frame(self._feed_reader())

        assert asyncio.run(scenario()) is None

    def test_read_frame_truncated_body(self):
        async def scenario():
            blob = protocol.encode_frame({"id": 9})
            return await protocol.read_frame(self._feed_reader(blob[:-1]))

        with pytest.raises(protocol.TruncatedFrame):
            asyncio.run(scenario())

    def test_read_frame_oversized(self):
        async def scenario():
            reader = self._feed_reader(struct.pack(">I", 100), b"x" * 100)
            return await protocol.read_frame(reader, max_frame_bytes=10)

        with pytest.raises(protocol.FrameTooLarge):
            asyncio.run(scenario())


class TestResponseShapes:
    def test_ok_response_echoes_id(self):
        out = protocol.ok_response(17, latency_us=3.5)
        assert out == {"ok": True, "id": 17, "latency_us": 3.5}

    def test_ok_response_without_id(self):
        assert protocol.ok_response() == {"ok": True}

    def test_error_response(self):
        out = protocol.error_response(protocol.BUSY, "shed", 4)
        assert out["ok"] is False
        assert out["error"] == "BUSY"
        assert out["message"] == "shed"
        assert out["id"] == 4
