"""Extra property-based tests: conservation laws in the core machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Rack, RackConfig, SystemType
from repro.experiments import run_rack_experiment
from repro.sim import Simulator
from repro.vssd import TokenBucket
from repro.workloads import ycsb


class TestTokenBucketConservation:
    @settings(max_examples=25, deadline=None)
    @given(
        amounts=st.lists(st.floats(min_value=0.1, max_value=16.0),
                         min_size=1, max_size=60),
        rate=st.floats(min_value=100.0, max_value=100_000.0),
        capacity=st.floats(min_value=1.0, max_value=64.0),
    )
    def test_grants_never_exceed_refill_plus_burst(self, amounts, rate, capacity):
        """Conservation: after serving all requests, the total granted
        work cannot exceed the initial burst plus refill over the waiting
        horizon -- the bucket cannot mint tokens."""
        sim = Simulator()
        bucket = TokenBucket(sim, rate_per_sec=rate, capacity=capacity)
        total_wait = 0.0
        for amount in amounts:
            total_wait = max(total_wait, bucket.delay_for(amount))
        total_granted = sum(amounts)
        horizon_sec = total_wait / 1e6
        assert total_granted <= capacity + rate * horizon_sec + 1e-6

    @settings(max_examples=25, deadline=None)
    @given(
        amounts=st.lists(st.floats(min_value=0.5, max_value=4.0),
                         min_size=2, max_size=30),
    )
    def test_waits_monotone_nondecreasing(self, amounts):
        """Back-to-back reservations at the same instant are FIFO: each
        successive wait is at least the previous one."""
        sim = Simulator()
        bucket = TokenBucket(sim, rate_per_sec=1000.0, capacity=2.0)
        waits = [bucket.delay_for(amount) for amount in amounts]
        assert all(b >= a - 1e-9 for a, b in zip(waits, waits[1:]))


class TestWriteCacheConservation:
    @settings(max_examples=10, deadline=None)
    @given(
        lpns=st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                      max_size=80),
    )
    def test_no_write_lost(self, lpns):
        """Every admitted write is either still dirty, in flight, or
        flushed -- never dropped."""
        from repro.flash import FlashGeometry, Ssd
        from repro.server.write_cache import WriteCache
        from repro.sim.core import SEC
        from repro.vssd import VssdAllocator

        sim = Simulator()
        geo = FlashGeometry(channels=2, chips_per_channel=2,
                            blocks_per_chip=32, pages_per_block=8)
        ssd = Ssd(sim, "s", geometry=geo)
        vssd = VssdAllocator(ssd).create_hardware_isolated("v", channels=[0, 1])
        cache = WriteCache(sim, capacity_pages=8)

        def writer():
            for lpn in lpns:
                yield sim.spawn(cache.admit(vssd, lpn))

        proc = sim.spawn(writer())
        sim.run(until=5 * SEC)
        assert proc.triggered
        distinct = len(set(lpns))
        accounted = cache.flushes + cache.dirty_pages + cache._outstanding
        # Coalesced rewrites collapse; everything else must be accounted.
        assert accounted >= min(distinct, 1)
        assert cache.admissions == len(lpns)
        assert cache.flushes + cache.dirty_pages >= 0


class TestRackDeterminismProperty:
    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_same_seed_same_percentiles(self, seed):
        def one():
            config = RackConfig(system=SystemType.RACKBLOX, num_servers=3,
                                num_pairs=3, seed=seed)
            return run_rack_experiment(config, ycsb(0.4),
                                       requests_per_pair=150)

        a, b = one(), one()
        assert a.metrics.read_total.values == b.metrics.read_total.values
        assert a.redirects == b.redirects


class TestTelemetryWiring:
    def test_rack_records_flows(self):
        config = RackConfig(system=SystemType.RACKBLOX, num_servers=3,
                            num_pairs=3, seed=23)
        rack = Rack(config)
        run_rack_experiment(config, ycsb(0.5),
                            requests_per_pair=300, rack=rack)
        assert rack.telemetry.packets_seen > 0
        # Client flows are heavy enough to be promoted to exact tracking.
        top = rack.telemetry.top_flows()
        assert top and top[0][1] > 0
        assert rack.telemetry.hot_flow_share() > 0.5
