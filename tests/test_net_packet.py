"""Tests for the RackBlox packet format, latency models, and INT."""

import random

import pytest

from repro.errors import ConfigError, NetworkError
from repro.net import (
    FAST_NETWORK,
    GcKind,
    LatencyProcess,
    MEDIUM_NETWORK,
    OpType,
    Packet,
    SLOW_NETWORK,
    add_hop_latency,
)
from repro.net.packet import (
    create_vssd,
    del_vssd,
    gc_op,
    read_request,
    write_request,
)


class TestPacketFormat:
    def test_table1_has_five_operations(self):
        assert {op.name for op in OpType} == {
            "CREATE_VSSD", "DEL_VSSD", "WRITE", "READ", "GC_OP",
        }

    def test_gc_field_values_match_paper(self):
        # §3.5.1 fixes the wire values: soft=0, regular=1, bg=2, accept=3,
        # delay=4, finish=5.
        assert GcKind.SOFT == 0
        assert GcKind.REGULAR == 1
        assert GcKind.BG == 2
        assert GcKind.ACCEPT == 3
        assert GcKind.DELAY == 4
        assert GcKind.FINISH == 5

    def test_header_roundtrip(self):
        pkt = Packet(op=OpType.READ, vssd_id=12345, lat=678.0)
        decoded = Packet.decode_header(pkt.encode_header())
        assert decoded.op is OpType.READ
        assert decoded.vssd_id == 12345
        assert decoded.lat == 678.0

    def test_header_is_nine_bytes(self):
        # 1-byte OP + 4-byte vSSD_ID + 4-byte LAT (Figure 6).
        pkt = Packet(op=OpType.WRITE, vssd_id=1)
        assert len(pkt.encode_header()) == 9

    def test_decode_rejects_short_buffer(self):
        with pytest.raises(NetworkError):
            Packet.decode_header(b"\x01\x02")

    def test_decode_rejects_unknown_op(self):
        import struct

        data = struct.pack("!BIi", 99, 1, 0)
        with pytest.raises(NetworkError):
            Packet.decode_header(data)

    def test_vssd_id_must_fit_four_bytes(self):
        with pytest.raises(NetworkError):
            Packet(op=OpType.READ, vssd_id=2**32)

    def test_gc_kind_accessor(self):
        pkt = gc_op(7, GcKind.SOFT, src="10.0.0.1")
        assert pkt.gc_kind is GcKind.SOFT
        plain = read_request(1, "c", "s", 0.0)
        assert plain.gc_kind is None

    def test_response_swaps_endpoints_and_keeps_lat(self):
        pkt = read_request(9, "client", "server", issue_time=5.0)
        add_hop_latency(pkt, 40.0)
        resp = pkt.make_response(size_kb=4.0)
        assert resp.src == "server" and resp.dst == "client"
        assert resp.lat == 40.0
        assert resp.is_response
        assert resp.issue_time == 5.0

    def test_read_write_sizes_are_asymmetric(self):
        # Reads: small request, 4KB response; writes: the reverse (§3.4
        # keeps separate predictor windows because of this asymmetry).
        read = read_request(1, "c", "s", 0.0)
        write = write_request(1, "c", "s", 0.0)
        assert read.size_kb < write.size_kb

    def test_create_vssd_payload(self):
        pkt = create_vssd(11, "10.0.0.16", 12, "10.0.0.20")
        assert pkt.op is OpType.CREATE_VSSD
        assert pkt.payload == {
            "server_ip": "10.0.0.16",
            "replica_vssd_id": 12,
            "replica_ip": "10.0.0.20",
        }

    def test_del_vssd(self):
        pkt = del_vssd(11, "10.0.0.16")
        assert pkt.op is OpType.DEL_VSSD and pkt.dst == "switch"

    def test_packet_ids_unique(self):
        a = read_request(1, "c", "s", 0.0)
        b = read_request(1, "c", "s", 0.0)
        assert a.packet_id != b.packet_id


class TestIntTelemetry:
    def test_hops_accumulate(self):
        pkt = read_request(1, "c", "s", 0.0)
        add_hop_latency(pkt, 10.0)
        add_hop_latency(pkt, 15.0)
        assert pkt.lat == 25.0

    def test_negative_hop_rejected(self):
        pkt = read_request(1, "c", "s", 0.0)
        with pytest.raises(NetworkError):
            add_hop_latency(pkt, -1.0)


class TestLatencyModels:
    def test_three_regimes_ordered(self):
        assert FAST_NETWORK.base_us < MEDIUM_NETWORK.base_us < SLOW_NETWORK.base_us

    def test_sampling_is_positive(self):
        proc = LatencyProcess(FAST_NETWORK, random.Random(1))
        assert all(proc.sample(float(t)) > 0 for t in range(100))

    def test_deterministic_given_seed(self):
        a = LatencyProcess(FAST_NETWORK, random.Random(7))
        b = LatencyProcess(FAST_NETWORK, random.Random(7))
        assert [a.sample(0.0) for _ in range(10)] == [b.sample(0.0) for _ in range(10)]

    def test_median_near_base(self):
        proc = LatencyProcess(MEDIUM_NETWORK, random.Random(3))
        # Sample at t=0 slices before any congestion episode with high
        # probability; use many draws at fixed (uncongested) time.
        draws = sorted(proc.sample(0.0) for _ in range(2001))
        median = draws[1000]
        assert median == pytest.approx(MEDIUM_NETWORK.base_us, rel=0.2)

    def test_congestion_inflates_latency(self):
        proc = LatencyProcess(FAST_NETWORK, random.Random(11))
        # Find a congested instant by scanning the schedule.
        t = 0.0
        while not proc.congested(t) and t < 60e6:
            t += 10_000.0
        assert proc.congested(t), "no congestion episode found in 60s"
        congested = sorted(proc.sample(t) for _ in range(501))[250]
        clear = sorted(proc.sample(0.0) for _ in range(501))[250]
        assert congested > clear * 3

    def test_congestion_schedule_is_consistent(self):
        proc = LatencyProcess(FAST_NETWORK, random.Random(5))
        probe_times = [i * 5000.0 for i in range(200)]
        first = [proc.congested(t) for t in probe_times]
        second = [proc.congested(t) for t in probe_times]
        assert first == second

    def test_profile_validation(self):
        from repro.net.latency import NetworkProfile

        with pytest.raises(ConfigError):
            NetworkProfile("x", base_us=0, sigma=1, congestion_factor=2,
                           congestion_on_us=1, congestion_off_us=1)
        with pytest.raises(ConfigError):
            NetworkProfile("x", base_us=1, sigma=1, congestion_factor=0.5,
                           congestion_on_us=1, congestion_off_us=1)

    def test_profile_lookup(self):
        from repro.net.latency import profile_by_name

        assert profile_by_name("slow") is SLOW_NETWORK
        with pytest.raises(ConfigError):
            profile_by_name("warp")
