"""Tests for latency metrics and CDFs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.metrics import ExperimentMetrics, LatencyRecorder, cdf_points, percentile


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([1.0, 2.0, 3.0], 50.0) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 50.0) == 5.0

    def test_extremes(self):
        vals = [5.0, 1.0, 9.0]
        assert percentile(vals, 0.0) == 1.0
        assert percentile(vals, 100.0) == 9.0

    def test_p999_tracks_tail(self):
        vals = [1.0] * 999 + [1000.0]
        assert percentile(vals, 99.9) > 1.0

    def test_single_sample(self):
        assert percentile([7.0], 99.9) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            percentile([], 50.0)

    def test_out_of_range_q(self):
        with pytest.raises(ConfigError):
            percentile([1.0], 101.0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1,
                    max_size=200),
           st.floats(min_value=0, max_value=100))
    def test_percentile_within_range(self, values, q):
        p = percentile(values, q)
        assert min(values) <= p <= max(values)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2,
                    max_size=100))
    def test_percentile_monotone_in_q(self, values):
        ps = [percentile(values, q) for q in (10, 50, 90, 99, 99.9)]
        assert all(a <= b + 1e-9 for a, b in zip(ps, ps[1:]))


class TestCdf:
    def test_endpoints(self):
        pts = cdf_points([1.0, 2.0, 3.0, 4.0], points=4)
        assert pts[0][0] == 1.0
        assert pts[-1] == (4.0, 1.0)

    def test_fractions_monotone(self):
        pts = cdf_points(list(range(100)), points=50)
        fracs = [f for _, f in pts]
        assert fracs == sorted(fracs)

    def test_validation(self):
        with pytest.raises(ConfigError):
            cdf_points([], 10)
        with pytest.raises(ConfigError):
            cdf_points([1.0], 1)


class TestLatencyRecorder:
    def test_basic_stats(self):
        rec = LatencyRecorder("r")
        for v in (10.0, 20.0, 30.0):
            rec.record(v, at=float(v))
        assert rec.count == 3
        assert rec.mean() == 20.0
        assert rec.p50() == 20.0
        assert rec.max() == 30.0

    def test_throughput(self):
        rec = LatencyRecorder()
        # 1000 completions spread over 1 second = 1 kIOPS.
        for i in range(1000):
            rec.record(1.0, at=i * 1000.0)
        assert rec.throughput_kiops() == pytest.approx(1.0, rel=0.01)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            LatencyRecorder().record(-1.0)

    def test_stats_require_samples(self):
        rec = LatencyRecorder("empty")
        with pytest.raises(ConfigError):
            rec.mean()

    def test_zero_span_throughput(self):
        rec = LatencyRecorder()
        rec.record(1.0, at=5.0)
        assert rec.throughput_kiops() == 0.0


class TestExperimentMetrics:
    def test_summary_keys(self):
        m = ExperimentMetrics()
        m.record("read", 100.0, at=0.0, storage_us=40.0)
        m.record("read", 200.0, at=1000.0, storage_us=60.0)
        m.record("write", 300.0, at=500.0)
        s = m.summary()
        assert s["read_count"] == 2
        assert s["read_avg_us"] == 150.0
        assert s["read_storage_avg_us"] == 50.0
        assert "write_p999_us" in s

    def test_reads_only_summary(self):
        m = ExperimentMetrics()
        m.record("read", 10.0, at=0.0)
        s = m.summary()
        assert "write_count" not in s

    def test_invalid_kind(self):
        with pytest.raises(ConfigError):
            ExperimentMetrics().record("erase", 1.0, at=0.0)

    def test_total_kiops_combines_classes(self):
        m = ExperimentMetrics()
        for i in range(500):
            m.record("read", 1.0, at=i * 1000.0)
            m.record("write", 1.0, at=i * 1000.0 + 500.0)
        assert m.total_kiops() == pytest.approx(2.0, rel=0.05)

    def test_total_kiops_same_timestamp_falls_back_to_1us_floor(self):
        # Every completion at one instant used to report 0.0 kIOPS; the
        # 1-µs floor now reports the burst as count/1µs instead.
        m = ExperimentMetrics()
        for _ in range(5):
            m.record("read", 10.0, at=1234.0)
        assert m.total_kiops() == pytest.approx(5.0 * 1000.0)

    def test_total_kiops_empty_is_zero(self):
        assert ExperimentMetrics().total_kiops() == 0.0

    def test_summary_exposes_redirect_and_gc_blocked_counters(self):
        m = ExperimentMetrics()
        m.record("read", 10.0, at=0.0)
        m.redirected_reads = 7
        m.gc_blocked_reads = 3
        s = m.summary()
        assert s["redirected_reads"] == 7.0
        assert s["gc_blocked_reads"] == 3.0

    def test_summary_counters_default_zero(self):
        s = ExperimentMetrics().summary()
        assert s["redirected_reads"] == 0.0
        assert s["gc_blocked_reads"] == 0.0
