"""Tests for two-level rack-scale wear leveling."""

import pytest

from repro.errors import ConfigError
from repro.wear import (
    GlobalWearBalancer,
    LocalWearBalancer,
    SsdWearState,
    VssdWorkload,
    WearRack,
    WearServer,
    WearSimulation,
)


def ssd(ssd_id="s", wear=0.0, rate=1.0):
    state = SsdWearState(ssd_id=ssd_id, wear=wear)
    state.workloads.append(VssdWorkload(name=f"{ssd_id}-w", erase_rate_per_day=rate))
    return state


class TestWearModel:
    def test_advance_accrues_wear(self):
        s = ssd(rate=2.0)
        s.advance(3.0)
        assert s.wear == 6.0

    def test_wear_rate_sums_workloads(self):
        s = ssd(rate=1.0)
        s.workloads.append(VssdWorkload(name="x", erase_rate_per_day=0.5))
        assert s.wear_rate == 1.5

    def test_exchange_swaps_rates_and_charges_cost(self):
        hot = ssd("hot", wear=100.0, rate=5.0)
        cold = ssd("cold", wear=10.0, rate=0.1)
        hot.exchange_workloads(cold, swap_cost=1.0)
        assert hot.wear == 101.0 and cold.wear == 11.0
        assert hot.wear_rate == 0.1 and cold.wear_rate == 5.0
        assert hot.swaps == 1 and cold.swaps == 1

    def test_server_wear_is_mean(self):
        server = WearServer("srv", [ssd("a", wear=10.0), ssd("b", wear=30.0)])
        assert server.wear == 20.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigError):
            VssdWorkload(name="x", erase_rate_per_day=-1.0)

    def test_empty_server_rejected(self):
        with pytest.raises(ConfigError):
            WearServer("empty", [])


class TestLocalBalancer:
    def _server(self):
        # Two hot, two cold SSDs.
        return WearServer("srv", [
            ssd("h1", rate=2.0), ssd("h2", rate=1.8),
            ssd("c1", rate=0.1), ssd("c2", rate=0.05),
        ])

    def test_no_swap_before_period(self):
        server = self._server()
        balancer = LocalWearBalancer(server, period_days=12.0)
        server.advance(5.0)
        assert not balancer.tick(5.0)

    def test_swap_targets_max_wear_and_min_rate(self):
        server = self._server()
        balancer = LocalWearBalancer(server, period_days=12.0)
        server.advance(12.0)
        assert balancer.needs_swap()
        pick = balancer.pick_swap()
        assert pick is not None
        hottest, coldest = pick
        assert hottest.ssd_id == "h1"  # max wear after 12 days
        assert coldest.ssd_id == "c2"  # min rate

    def test_tick_performs_swap_when_due(self):
        server = self._server()
        balancer = LocalWearBalancer(server, period_days=12.0)
        server.advance(12.0)
        assert balancer.tick(12.0)
        assert balancer.swaps_performed >= 1

    def test_no_swap_when_balanced(self):
        server = WearServer("srv", [ssd("a", rate=1.0), ssd("b", rate=1.0)])
        balancer = LocalWearBalancer(server, period_days=1.0)
        server.advance(10.0)
        assert not balancer.tick(10.0)

    def test_unproductive_swap_refused(self):
        # Most-worn SSD already hosts the coldest stream.
        hot_history_cold_future = ssd("a", wear=100.0, rate=0.1)
        fresh_hot_future = ssd("b", wear=1.0, rate=2.0)
        server = WearServer("srv", [hot_history_cold_future, fresh_hot_future])
        balancer = LocalWearBalancer(server, period_days=1.0)
        assert balancer.pick_swap() is None

    def test_balancer_bounds_long_run_imbalance(self):
        server = self._server()
        unbalanced = self._server()
        balancer = LocalWearBalancer(server, gamma=0.1, period_days=12.0)
        for _ in range(365 * 3):
            server.advance(1.0)
            unbalanced.advance(1.0)
            balancer.tick(1.0)
        from repro.flash.wear import wear_imbalance

        balanced_lambda = wear_imbalance([s.wear for s in server.ssds])
        unbalanced_lambda = wear_imbalance([s.wear for s in unbalanced.ssds])
        assert balanced_lambda < unbalanced_lambda / 1.5

    def test_validation(self):
        server = self._server()
        with pytest.raises(ConfigError):
            LocalWearBalancer(server, gamma=0.0)
        with pytest.raises(ConfigError):
            LocalWearBalancer(server, period_days=0.0)
        with pytest.raises(ConfigError):
            LocalWearBalancer(server, max_swaps_per_check=0)


class TestGlobalBalancer:
    def _rack(self):
        hot_server = WearServer("hot", [ssd("h1", rate=2.0), ssd("h2", rate=1.5)])
        cold_server = WearServer("cold", [ssd("c1", rate=0.1), ssd("c2", rate=0.2)])
        return WearRack([hot_server, cold_server])

    def test_swap_crosses_servers(self):
        rack = self._rack()
        balancer = GlobalWearBalancer(rack, period_days=56.0)
        rack.advance(56.0)
        assert balancer.tick(56.0)
        # The hot server's worst SSD now carries a cold stream.
        hot_rates = sorted(s.wear_rate for s in rack.servers[0].ssds)
        assert hot_rates[0] <= 0.2

    def test_relaxed_cadence(self):
        rack = self._rack()
        balancer = GlobalWearBalancer(rack, period_days=56.0)
        rack.advance(30.0)
        assert not balancer.tick(30.0)  # not due yet

    def test_variance_reduction_over_time(self):
        rack_swap = self._rack()
        rack_noswap = self._rack()
        balancer = GlobalWearBalancer(rack_swap, period_days=56.0)
        for _ in range(730):
            rack_swap.advance(1.0)
            rack_noswap.advance(1.0)
            balancer.tick(1.0)
        from repro.flash.wear import wear_variance

        var_swap = wear_variance([s.wear for s in rack_swap.servers])
        var_noswap = wear_variance([s.wear for s in rack_noswap.servers])
        assert var_swap < var_noswap / 2

    def test_balanced_rack_never_swaps(self):
        rack = WearRack([
            WearServer("a", [ssd("a1", rate=1.0)]),
            WearServer("b", [ssd("b1", rate=1.0)]),
        ])
        balancer = GlobalWearBalancer(rack, period_days=1.0)
        for _ in range(100):
            rack.advance(1.0)
            balancer.tick(1.0)
        assert balancer.swaps_performed == 0


class TestWearSimulation:
    def test_local_balancer_beats_no_swap(self):
        kw = dict(num_servers=4, ssds_per_server=8, seed=11,
                  replacement_rate_per_year=0.0)
        noswap = WearSimulation(enable_local=False, enable_global=False, **kw).run(
            days=365, sample_every=30
        )
        balanced = WearSimulation(enable_local=True, enable_global=False, **kw).run(
            days=365, sample_every=30
        )
        assert balanced.mean_final_server_imbalance() < (
            noswap.mean_final_server_imbalance()
        )
        assert balanced.local_swaps > 0

    def test_global_balancer_reduces_rack_variance(self):
        kw = dict(num_servers=8, ssds_per_server=8, seed=5,
                  replacement_rate_per_year=0.1)
        local_only = WearSimulation(enable_local=True, enable_global=False, **kw).run(
            days=730, sample_every=30
        )
        both = WearSimulation(enable_local=True, enable_global=True, **kw).run(
            days=730, sample_every=30
        )
        assert both.final_rack_variance() < local_only.final_rack_variance()
        assert both.global_swaps > 0

    def test_round_robin_covers_all_ssds(self):
        sim = WearSimulation(num_servers=2, ssds_per_server=4, vssds_per_ssd=2,
                             seed=1)
        for ssd_state in sim.rack.all_ssds():
            assert len(ssd_state.workloads) == 2

    def test_trajectories_sampled(self):
        sim = WearSimulation(num_servers=2, ssds_per_server=4, seed=1)
        result = sim.run(days=60, sample_every=10)
        assert len(result.days) >= 6
        assert all(len(s) == len(result.days) for s in result.server_imbalance.values())
        assert len(result.rack_variance) == len(result.days)

    def test_table2_rates_proportional_to_write_ratio(self):
        from repro.wear.simulate import table2_erase_rates

        rates = {w.name: w.erase_rate_per_day for w in table2_erase_rates()}
        assert rates["twitter"] > rates["tpcc"] > rates["seats"] > rates["tpch"]

    def test_validation(self):
        with pytest.raises(ConfigError):
            WearSimulation(num_servers=0)
        sim = WearSimulation(num_servers=2, ssds_per_server=2)
        with pytest.raises(ConfigError):
            sim.run(days=0)
