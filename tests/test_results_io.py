"""Tests for figure-result persistence."""

import pytest

from repro.errors import ConfigError
from repro.experiments.figures import FigureResult
from repro.experiments.results_io import (
    figure_from_dict,
    figure_to_dict,
    load_figure,
    load_figures,
    save_figure,
    save_figures,
)


def sample_figure(name="Figure 9"):
    return FigureResult(
        figure=name,
        title="demo sweep",
        columns=["x", "y"],
        rows=[{"x": "20%", "y": 12.5}, {"x": "40%", "y": None}],
        notes="a note",
    )


class TestRoundTrip:
    def test_dict_roundtrip(self):
        original = sample_figure()
        restored = figure_from_dict(figure_to_dict(original))
        assert restored.figure == original.figure
        assert restored.rows == original.rows
        assert restored.to_table() == original.to_table()

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "fig.json")
        save_figure(sample_figure(), path)
        restored = load_figure(path)
        assert restored.title == "demo sweep"
        assert restored.rows[1]["y"] is None

    def test_directory_roundtrip(self, tmp_path):
        results = {"fig9": sample_figure("Figure 9"),
                   "fig10": sample_figure("Figure 10")}
        paths = save_figures(results, str(tmp_path / "out"))
        assert set(paths) == {"fig9", "fig10"}
        restored = load_figures(str(tmp_path / "out"))
        assert set(restored) == {"fig9", "fig10"}
        assert restored["fig10"].figure == "Figure 10"


class TestValidation:
    def test_version_checked(self):
        payload = figure_to_dict(sample_figure())
        payload["format_version"] = 99
        with pytest.raises(ConfigError):
            figure_from_dict(payload)

    def test_missing_fields_rejected(self):
        payload = figure_to_dict(sample_figure())
        del payload["rows"]
        with pytest.raises(ConfigError):
            figure_from_dict(payload)

    def test_load_figures_requires_directory(self, tmp_path):
        with pytest.raises(ConfigError):
            load_figures(str(tmp_path / "missing"))
