"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    PriorityStore,
    Process,
    Resource,
    Simulator,
    Store,
    Timeout,
)


class TestSimulatorClock:
    def test_starts_at_zero(self):
        sim = Simulator()
        assert sim.now == 0.0

    def test_call_after_advances_clock(self):
        sim = Simulator()
        seen = []
        sim.call_after(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_call_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.call_at(10.0, lambda: seen.append("x"))
        sim.run()
        assert seen == ["x"] and sim.now == 10.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.call_after(3.0, lambda: order.append("c"))
        sim.call_after(1.0, lambda: order.append("a"))
        sim.call_after(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_is_fifo(self):
        sim = Simulator()
        order = []
        for tag in range(5):
            sim.call_after(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_run_until_stops_clock_at_horizon(self):
        sim = Simulator()
        sim.call_after(100.0, lambda: None)
        final = sim.run(until=50.0)
        assert final == 50.0
        assert sim.peek() == 100.0

    def test_run_until_past_all_events(self):
        sim = Simulator()
        sim.call_after(10.0, lambda: None)
        assert sim.run(until=500.0) == 500.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_after(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.call_after(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_cancel_prevents_execution(self):
        sim = Simulator()
        seen = []
        handle = sim.call_after(1.0, lambda: seen.append("x"))
        handle.cancel()
        sim.run()
        assert seen == []
        assert handle.cancelled

    def test_max_events_budget(self):
        sim = Simulator()
        for i in range(10):
            sim.call_after(float(i), lambda: None)
        sim.run(max_events=3)
        assert sim.event_count == 3


class TestCancelledEntryCompaction:
    def test_heap_stays_bounded_under_cancel_churn(self):
        # Schedule-then-cancel churn (timeout guards that never fire) must
        # not grow the heap without limit: cancelled entries are compacted
        # once they could make up half of it.
        sim = Simulator()
        live = [sim.call_after(1e9 + i, lambda: None) for i in range(10)]
        for _ in range(5000):
            sim.call_after(1e6, lambda: None).cancel()
        assert sim.pending_count < 200
        assert all(not h.cancelled for h in live)

    def test_compaction_preserves_pending_events(self):
        sim = Simulator()
        seen = []
        for i in range(50):
            sim.call_after(100.0 + i, lambda i=i: seen.append(i))
        for _ in range(1000):
            sim.call_after(50.0, lambda: None).cancel()
        sim.run()
        assert seen == list(range(50))

    def test_compaction_during_run_keeps_order(self):
        # Cancelling from inside a callback triggers compaction while the
        # run loop holds its heap alias; execution order must not change.
        sim = Simulator()
        order = []

        def churn():
            for _ in range(200):
                sim.call_after(1000.0, lambda: None).cancel()

        sim.call_after(1.0, lambda: order.append("a"))
        sim.call_after(2.0, churn)
        sim.call_after(3.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b"]

    def test_cancel_is_idempotent_in_accounting(self):
        sim = Simulator()
        handle = sim.call_after(10.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim._cancelled == 1  # noqa: SLF001 - accounting invariant

    def test_peek_reaps_cancelled_entries(self):
        sim = Simulator()
        cancelled = sim.call_after(1.0, lambda: None)
        sim.call_after(2.0, lambda: None)
        cancelled.cancel()
        assert sim.peek() == 2.0
        assert sim.pending_count == 1


class TestEvent:
    def test_succeed_delivers_value(self):
        sim = Simulator()
        ev = Event(sim)
        ev.succeed(42)
        assert ev.triggered and ev.ok and ev.value == 42

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = Event(sim).succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_raises_on_value_access(self):
        sim = Simulator()
        ev = Event(sim).fail(ValueError("boom"))
        assert ev.triggered and not ev.ok
        with pytest.raises(ValueError):
            _ = ev.value

    def test_callback_after_trigger_runs_immediately(self):
        sim = Simulator()
        ev = Event(sim).succeed("v")
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        assert got == ["v"]

    def test_value_before_trigger_is_error(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            _ = Event(sim).value


class TestProcess:
    def test_process_returns_value(self):
        sim = Simulator()

        def proc():
            yield Timeout(sim, 5.0)
            return "done"

        p = sim.spawn(proc())
        sim.run()
        assert p.value == "done"
        assert sim.now == 5.0

    def test_timeout_value_passthrough(self):
        sim = Simulator()
        got = []

        def proc():
            v = yield Timeout(sim, 1.0, value="payload")
            got.append(v)

        sim.spawn(proc())
        sim.run()
        assert got == ["payload"]

    def test_process_waits_on_process(self):
        sim = Simulator()

        def inner():
            yield Timeout(sim, 3.0)
            return 7

        def outer():
            v = yield sim.spawn(inner())
            return v * 2

        p = sim.spawn(outer())
        sim.run()
        assert p.value == 14

    def test_exception_propagates_to_waiter(self):
        sim = Simulator()

        def failing():
            yield Timeout(sim, 1.0)
            raise RuntimeError("inner failure")

        def outer():
            try:
                yield sim.spawn(failing())
            except RuntimeError as exc:
                return f"caught: {exc}"

        p = sim.spawn(outer())
        sim.run()
        assert p.value == "caught: inner failure"

    def test_yielding_non_event_fails_process(self):
        sim = Simulator()

        def bad():
            yield 42

        p = sim.spawn(bad())
        sim.run()
        assert p.triggered and not p.ok

    def test_spawn_rejects_non_generator(self):
        sim = Simulator()

        def not_a_generator():
            return 1

        with pytest.raises(SimulationError):
            Process(sim, not_a_generator)  # type: ignore[arg-type]

    def test_tight_loop_over_ready_events_does_not_recurse(self):
        # A process consuming thousands of immediately-available items must
        # not exhaust the interpreter stack.
        sim = Simulator()
        store = Store(sim)
        for i in range(5000):
            store.put(i)
        total = []

        def consumer():
            for _ in range(5000):
                item = yield store.get()
                total.append(item)

        sim.spawn(consumer())
        sim.run()
        assert len(total) == 5000 and total[-1] == 4999

    def test_interrupt_wakes_blocked_process(self):
        sim = Simulator()
        from repro.sim import Interrupt

        log = []

        def sleeper():
            try:
                yield Timeout(sim, 1000.0)
                log.append("slept")
            except Interrupt as intr:
                log.append((sim.now, f"interrupted:{intr.cause}"))

        p = sim.spawn(sleeper())
        sim.call_after(5.0, lambda: p.interrupt("wakeup"))
        sim.run()
        # The interrupt is delivered at t=5; the abandoned timeout later
        # fires harmlessly into the void.
        assert log == [(5.0, "interrupted:wakeup")]


class TestComposites:
    def test_allof_collects_values(self):
        sim = Simulator()
        evs = [Timeout(sim, d, value=d) for d in (3.0, 1.0, 2.0)]
        combo = AllOf(sim, evs)
        sim.run()
        assert combo.value == [3.0, 1.0, 2.0]
        assert sim.now == 3.0

    def test_allof_empty_fires_immediately(self):
        sim = Simulator()
        combo = AllOf(sim, [])
        assert combo.triggered and combo.value == []

    def test_anyof_fires_on_first(self):
        sim = Simulator()
        slow = Timeout(sim, 10.0, value="slow")
        fast = Timeout(sim, 1.0, value="fast")
        combo = AnyOf(sim, [slow, fast])
        sim.run(until=2.0)
        assert combo.triggered
        assert combo.value.value == "fast"

    def test_anyof_requires_events(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            AnyOf(sim, [])


class TestStore:
    def test_fifo_order(self):
        sim = Simulator()
        store = Store(sim)
        store.put("a")
        store.put("b")
        assert store.get().value == "a"
        assert store.get().value == "b"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        sim.spawn(consumer())
        sim.call_after(7.0, lambda: store.put("late"))
        sim.run()
        assert got == [(7.0, "late")]

    def test_try_get_nonblocking(self):
        sim = Simulator()
        store = Store(sim)
        assert store.try_get() is None
        store.put(1)
        assert store.try_get() == 1

    def test_len_and_items(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2 and store.items == (1, 2)


class TestPriorityStore:
    def test_min_priority_first(self):
        sim = Simulator()
        ps = PriorityStore(sim)
        ps.put(5.0, "low")
        ps.put(1.0, "high")
        ps.put(3.0, "mid")
        assert ps.get().value == "high"
        assert ps.get().value == "mid"
        assert ps.get().value == "low"

    def test_ties_break_fifo(self):
        sim = Simulator()
        ps = PriorityStore(sim)
        ps.put(1.0, "first")
        ps.put(1.0, "second")
        assert ps.get().value == "first"

    def test_blocked_getter_served_on_put(self):
        sim = Simulator()
        ps = PriorityStore(sim)
        got = []

        def consumer():
            item = yield ps.get()
            got.append(item)

        sim.spawn(consumer())
        sim.call_after(1.0, lambda: ps.put(9.0, "item"))
        sim.run()
        assert got == ["item"]


class TestResource:
    def test_capacity_enforced(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        timeline = []

        def holder(name, hold):
            yield res.acquire()
            timeline.append((sim.now, name, "acquired"))
            yield Timeout(sim, hold)
            res.release()

        sim.spawn(holder("a", 10.0))
        sim.spawn(holder("b", 10.0))
        sim.spawn(holder("c", 10.0))
        sim.run()
        acquire_times = [t for t, _, _ in timeline]
        assert acquire_times == [0.0, 0.0, 10.0]

    def test_release_without_acquire_is_error(self):
        sim = Simulator()
        res = Resource(sim)
        with pytest.raises(SimulationError):
            res.release()

    def test_capacity_must_be_positive(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_queued_count(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.acquire()
        res.acquire()  # queued
        assert res.in_use == 1 and res.queued == 1


class TestRandomSource:
    def test_streams_are_deterministic(self):
        from repro.sim import RandomSource

        a = RandomSource(42).stream("net")
        b = RandomSource(42).stream("net")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_independent(self):
        from repro.sim import RandomSource

        src = RandomSource(42)
        net = src.stream("net")
        disk = src.stream("disk")
        assert [net.random() for _ in range(3)] != [disk.random() for _ in range(3)]

    def test_spawn_derives_child(self):
        from repro.sim import RandomSource

        a = RandomSource(1).spawn("server-0")
        b = RandomSource(1).spawn("server-0")
        c = RandomSource(1).spawn("server-1")
        assert a.seed == b.seed and a.seed != c.seed


class TestZipfian:
    def test_weights_sum_to_one(self):
        from repro.sim.rng import zipfian_weights

        weights = zipfian_weights(100)
        assert abs(sum(weights) - 1.0) < 1e-9

    def test_weights_decrease(self):
        from repro.sim.rng import zipfian_weights

        weights = zipfian_weights(50, theta=0.99)
        assert all(weights[i] >= weights[i + 1] for i in range(49))

    def test_sampler_skews_to_low_ranks(self):
        import random

        from repro.sim.rng import ZipfianSampler

        sampler = ZipfianSampler(1000, rng=random.Random(7))
        draws = [sampler.sample() for _ in range(2000)]
        head = sum(1 for d in draws if d < 100)
        assert head > len(draws) * 0.5  # top 10% of keys get most traffic

    def test_sampler_range(self):
        import random

        from repro.sim.rng import ZipfianSampler

        sampler = ZipfianSampler(10, rng=random.Random(3))
        assert all(0 <= sampler.sample() < 10 for _ in range(500))

    def test_zero_keys_rejected(self):
        from repro.sim.rng import zipfian_weights

        with pytest.raises(ValueError):
            zipfian_weights(0)
