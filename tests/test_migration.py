"""Live fleet membership, end to end over TCP: racks join and leave a
serving fleet while clients keep reading and writing.

The acceptance drills:

* **add under load** -- a third rack joins a live 2-rack fleet: only
  ~1/(N+1) of the keys move, every acked write stays readable, the
  epoch bumps exactly once, and scans stay duplicate-free;
* **write mid-stream** -- a key rewritten while its range is streaming
  resolves to the *rewritten* value (write-forwarding wins over the
  stream's older copy);
* **drain** -- a rack leaves and its keys are all still served by the
  survivors; draining a rack that is *crashed* rides the retry path and
  still completes once the rack recovers;
* **abort + retry** -- a migration that cannot finish aborts cleanly
  (old ring keeps ruling, zero lost writes) and the same change retried
  later succeeds;
* **epoch fencing** -- a client that pinned a routing epoch gets
  ``WRONG_SHARD`` after the cutover and transparently refreshes;
* **load-aware reads across the window** -- under ``--read-policy p2c``
  a rack joins (and another drains) mid-load with zero failed or stale
  reads, and the routing trace proves the selector never diverted onto
  the migrating rack nor targeted the retiree after its cutover.
"""

import asyncio

import pytest

from repro.chaos import FaultEvent, FaultSchedule
from repro.cluster.config import RackConfig, SystemType
from repro.service import protocol, schema
from repro.service.bridge import SimTimeBridge
from repro.service.client import ServiceClient, ServiceError
from repro.service.membership import MembershipError
from repro.service.router import ShardedRackService, ShardRouter
from repro.service.selector import REASON_P2C, POLICY_P2C, RoutingTrace

pytestmark = [pytest.mark.fleet, pytest.mark.shard]

MS = 1000.0


def base_config(schedule=None, **overrides) -> RackConfig:
    defaults = dict(
        system=SystemType("rackblox"), num_servers=2, num_pairs=2, seed=11,
        fault_schedule=schedule,
    )
    defaults.update(overrides)
    return RackConfig(**defaults)


async def start_sharded(racks, schedule=None, **router_kwargs):
    router_kwargs.setdefault("precondition", False)
    router_kwargs.setdefault("chunk_us", 2000.0)
    router = ShardRouter.from_config(base_config(schedule), racks,
                                     **router_kwargs)
    service = ShardedRackService(router, port=0)
    await service.start()
    return service


async def seed_keys(client, count):
    """Write ``count`` keys; returns the acked {key: value} map."""
    acked = {}
    for i in range(count):
        key = f"k{i:05d}"
        await client.put(key, f"v{i}")
        acked[key] = f"v{i}"
    return acked


async def scan_everything(client):
    """Paginate scans to exhaustion; returns every (key, value) seen."""
    items, start = [], ""
    while True:
        page = await client.scan(start, count=64)
        items.extend((k, v) for k, v in page["items"])
        if len(page["items"]) < 64:
            return items
        start = page["items"][-1][0] + "\x00"


def flaky_migrate_puts(monkeypatch, fails):
    """Make the next ``fails`` migration-stream puts raise (-1: all)."""
    real = SimTimeBridge.submit_put
    state = {"left": fails}

    def wrapper(self, key, value, client="live"):
        if client == "migrate" and state["left"] != 0:
            if state["left"] > 0:
                state["left"] -= 1
            raise ConnectionError("injected migrate-put failure")
        return real(self, key, value, client)

    monkeypatch.setattr(SimTimeBridge, "submit_put", wrapper)
    return state


class TestAddRackLive:
    @pytest.mark.slow
    def test_add_under_load_moves_one_share_and_loses_nothing(self):
        load_errors = []

        async def scenario():
            service = await start_sharded(racks=2)
            try:
                admin = ServiceClient("127.0.0.1", service.port, "admin")
                worker = ServiceClient("127.0.0.1", service.port, "worker")
                async with admin, worker:
                    acked = await seed_keys(admin, 200)
                    stop = asyncio.Event()

                    async def background_load():
                        i = 0
                        while not stop.is_set():
                            key = f"k{i % 200:05d}"
                            try:
                                if i % 3 == 0:
                                    acked[key] = f"live-{i}"
                                    await worker.put(key, f"live-{i}")
                                else:
                                    await worker.get(key)
                            except ServiceError as exc:
                                load_errors.append(exc.code)
                            i += 1
                            await asyncio.sleep(0)

                    load = asyncio.ensure_future(background_load())
                    result = await admin.fleet_add_rack(
                        batch_size=16, pause_s=0.001,
                    )
                    stop.set()
                    await load
                    survived = {k: (await admin.get(k)) for k in acked}
                    stats = await admin.stats()
                    status = await admin.fleet_status()
                return result, acked, survived, stats, status
            finally:
                await service.stop()

        result, acked, survived, stats, status = asyncio.run(scenario())
        assert load_errors == [], "live ops must not fail during the window"
        assert result["kind"] == "add" and result["rack"] == 2
        assert result["epoch"] == 1 and result["racks"] == [0, 1, 2]
        # The rebalance property, live: ~1/(N+1) of the keys moved, with
        # the same generous slack the ring property tests allow.
        assert 0 < result["keys_moved"] <= 1.8 * len(acked) / 3
        assert 0 < result["moved_fraction"] <= 1.8 / 3
        # Zero lost acked writes: every key reads back its last acked
        # value, including keys rewritten mid-migration.
        for key, value in acked.items():
            response = survived[key]
            assert response["found"] and response["value"] == value, key
        schema.validate_stats(stats, client=True)
        migration = stats["migration"]
        assert migration["epoch"] == 1.0 and migration["racks_added"] == 1.0
        assert migration["keys_moved"] == float(result["keys_moved"])
        assert migration["aborts"] == 0.0
        assert stats["router"]["epoch"] == 1.0
        assert schema.shard_ids(stats) == [0, 1, 2]
        assert status["epoch"] == 1 and status["migrating"] is False

    def test_add_to_empty_fleet_streams_nothing(self):
        async def scenario():
            service = await start_sharded(racks=2)
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    result = await c.fleet_add_rack()
                    hello = await c.hello()
                return result, hello
            finally:
                await service.stop()

        result, hello = asyncio.run(scenario())
        assert result["keys_moved"] == 0 and result["epoch"] == 1
        assert result["racks"] == [0, 1, 2]
        assert hello["racks"] == 3 and hello["epoch"] == 1

    def test_scan_is_duplicate_free_after_the_cutover(self):
        async def scenario():
            service = await start_sharded(racks=2)
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    acked = await seed_keys(c, 150)
                    await c.fleet_add_rack(batch_size=32)
                    return acked, await scan_everything(c)
            finally:
                await service.stop()

        acked, items = asyncio.run(scenario())
        keys = [k for k, _ in items]
        assert len(keys) == len(set(keys)), "scan returned duplicates"
        assert dict(items) == acked


class TestWriteDuringMigration:
    def test_write_mid_stream_forwarding_wins(self):
        async def scenario():
            service = await start_sharded(racks=2)
            fleet = service.router.fleet
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    acked = await seed_keys(c, 150)
                    # A slow stream (1 key per batch, wall pauses)
                    # guarantees the window is open while we rewrite.
                    admit = asyncio.ensure_future(
                        service.router.admit_rack(batch_size=1,
                                                  pause_s=0.005)
                    )
                    while not fleet.migrating:
                        await asyncio.sleep(0)
                    rewritten = {}
                    i = 0
                    while fleet.migrating and i < 150:
                        key = f"k{i:05d}"
                        moving = (
                            fleet.plan is not None and
                            fleet.plan.moving_range_for_key(key) is not None
                        )
                        await c.put(key, f"fresh-{i}")
                        acked[key] = f"fresh-{i}"
                        if moving:
                            rewritten[key] = f"fresh-{i}"
                        i += 1
                    result = await admit
                    reads = {k: await c.get(k) for k in acked}
                    counters = dict(fleet.counters)
                return result, acked, rewritten, reads, counters
            finally:
                await service.stop()

        result, acked, rewritten, reads, counters = asyncio.run(scenario())
        assert rewritten, "no key was rewritten inside the window"
        assert counters["write_forwards"] >= len(rewritten)
        # The dual-written value -- not the stream's older copy -- is
        # what the new owner serves after the cutover.
        for key, value in acked.items():
            assert reads[key]["found"] and reads[key]["value"] == value, key
        assert result["epoch"] == 1


class TestDrainRack:
    def test_drain_moves_every_key_to_the_survivors(self):
        async def scenario():
            service = await start_sharded(racks=3)
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    acked = await seed_keys(c, 150)
                    result = await c.fleet_drain_rack(1)
                    reads = {k: await c.get(k) for k in acked}
                    stats = await c.stats()
                    items = await scan_everything(c)
                return result, acked, reads, stats, items
            finally:
                await service.stop()

        result, acked, reads, stats, items = asyncio.run(scenario())
        assert result["kind"] == "drain" and result["rack"] == 1
        assert result["racks"] == [0, 2] and result["epoch"] == 1
        for key, value in acked.items():
            assert reads[key]["found"] and reads[key]["value"] == value, key
        assert schema.shard_ids(stats) == [0, 2]
        assert {r["rack"] for r in reads.values()} <= {0, 2}
        keys = [k for k, _ in items]
        assert len(keys) == len(set(keys)) and dict(items) == acked

    def test_drain_rejects_strangers_and_the_last_rack(self):
        async def scenario():
            service = await start_sharded(racks=2)
            codes = []
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    try:
                        await c.fleet_drain_rack(7)     # never a member
                    except ServiceError as exc:
                        codes.append(exc.code)
                    await c.fleet_drain_rack(1)
                    try:
                        await c.fleet_drain_rack(0)     # last one standing
                    except ServiceError as exc:
                        codes.append(exc.code)
                return codes
            finally:
                await service.stop()

        codes = asyncio.run(scenario())
        assert codes == [protocol.INTERNAL, protocol.INTERNAL]

    @pytest.mark.chaos
    @pytest.mark.slow
    def test_drain_of_a_crashed_rack_retries_to_completion(self):
        schedule = FaultSchedule(
            events=(
                FaultEvent(10.0 * MS, "server_crash", "server:0", rack=1),
                FaultEvent(100.0 * MS, "server_recover", "server:0", rack=1),
            ),
            heartbeat_interval_us=3.0 * MS,
            miss_threshold=3,
        )

        async def scenario():
            service = await start_sharded(
                racks=3, schedule=schedule, request_timeout_us=30.0 * MS,
            )
            try:
                client = ServiceClient(
                    "127.0.0.1", service.port,
                    max_retries=8, retry_backoff_s=0.001,
                )
                async with client:
                    acked = await seed_keys(client, 120)
                    result = await client.fleet_drain_rack(
                        1, max_attempts=8,
                    )
                    reads = {k: await client.get(k) for k in acked}
                    stats = await client.stats()
                return result, acked, reads, stats
            finally:
                await service.stop()

        result, acked, reads, stats = asyncio.run(scenario())
        assert result["kind"] == "drain" and result["racks"] == [0, 2]
        for key, value in acked.items():
            assert reads[key]["found"] and reads[key]["value"] == value, key
        # The survivors' recovery invariants stay CLEAN: the drain lost
        # no acked write even with the source mid-crash.
        for shard_id, section in stats["shards"].items():
            chaos = section.get("chaos")
            if chaos is not None:
                assert chaos["lost_acked_writes"] == 0.0, shard_id
                assert chaos["invariant_violations"] == 0.0, shard_id


class TestAbortAndRetry:
    def test_failed_add_aborts_cleanly_and_retries_idempotently(self,
                                                                monkeypatch):
        state = flaky_migrate_puts(monkeypatch, fails=-1)

        async def scenario():
            service = await start_sharded(racks=2)
            router = service.router
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    acked = await seed_keys(c, 100)
                    with pytest.raises(MembershipError):
                        await router.admit_rack(max_attempts=2,
                                                retry_backoff_s=0.0)
                    aborted = (
                        router.fleet.epoch, router.fleet.ring.nodes,
                        router.fleet.migrating, len(router.shards),
                        dict(router.fleet.counters),
                    )
                    mid_reads = {k: await c.get(k) for k in acked}
                    # Heal the fault: the same change, retried from the
                    # outside, lands on its first fresh attempt.
                    state["left"] = 0
                    result = await router.admit_rack()
                    final_reads = {k: await c.get(k) for k in acked}
                return acked, aborted, mid_reads, result, final_reads
            finally:
                await service.stop()

        acked, aborted, mid_reads, result, final_reads = asyncio.run(
            scenario())
        epoch, nodes, migrating, shard_count, counters = aborted
        # The abort restored the exact pre-change fleet...
        assert epoch == 0 and nodes == [0, 1] and not migrating
        assert shard_count == 2
        assert counters["aborts"] == 2 and counters["racks_added"] == 0
        # ...with zero lost acked writes...
        for key, value in acked.items():
            assert mid_reads[key]["found"] and \
                mid_reads[key]["value"] == value, key
        # ...and the retried change is a plain, clean add.
        assert result["rack"] == 2 and result["epoch"] == 1
        assert result["attempts"] == 1
        for key, value in acked.items():
            assert final_reads[key]["found"] and \
                final_reads[key]["value"] == value, key

    def test_mid_stream_failure_retries_tainted_within_the_call(self,
                                                                monkeypatch):
        flaky_migrate_puts(monkeypatch, fails=1)

        async def scenario():
            service = await start_sharded(racks=2)
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    acked = await seed_keys(c, 100)
                    result = await service.router.admit_rack(
                        retry_backoff_s=0.0,
                    )
                    reads = {k: await c.get(k) for k in acked}
                    counters = dict(service.router.fleet.counters)
                return acked, result, reads, counters
            finally:
                await service.stop()

        acked, result, reads, counters = asyncio.run(scenario())
        assert result["attempts"] == 2, "first attempt must have failed"
        assert counters["aborts"] == 1
        assert result["epoch"] == 1
        for key, value in acked.items():
            assert reads[key]["found"] and reads[key]["value"] == value, key

    def test_scan_after_aborted_drain_filters_shadows(self, monkeypatch):
        # An aborted drain leaves half-streamed shadow copies on the
        # survivors; the scan merge must keep only the authoritative
        # owner's copy of every key.
        state = flaky_migrate_puts(monkeypatch, fails=40)

        async def scenario():
            service = await start_sharded(racks=3)
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    acked = await seed_keys(c, 120)
                    with pytest.raises(MembershipError):
                        await service.router.drain_rack(
                            1, batch_size=4, max_attempts=1,
                        )
                    state["left"] = 0
                    items = await scan_everything(c)
                    reads = {k: await c.get(k) for k in acked}
                return acked, items, reads
            finally:
                await service.stop()

        acked, items, reads = asyncio.run(scenario())
        keys = [k for k, _ in items]
        assert len(keys) == len(set(keys)), "shadow copies leaked into scan"
        assert dict(items) == acked
        for key, value in acked.items():
            assert reads[key]["found"] and reads[key]["value"] == value, key


class TestEpochFencing:
    def test_pinned_client_refreshes_transparently_after_cutover(self):
        async def scenario():
            service = await start_sharded(racks=2)
            try:
                pinned = ServiceClient("127.0.0.1", service.port, "pinned",
                                       track_epoch=True)
                admin = ServiceClient("127.0.0.1", service.port, "admin")
                async with pinned, admin:
                    await pinned.hello()
                    await pinned.put("fence", "before")
                    await admin.fleet_add_rack()
                    # The pinned epoch (0) is now stale: the server
                    # fences the op, the client re-hellos and retries.
                    response = await pinned.get("fence")
                    return (response, dict(pinned.counters),
                            pinned.ring_epoch)
            finally:
                await service.stop()

        response, counters, ring_epoch = asyncio.run(scenario())
        assert response["found"] and response["value"] == "before"
        assert counters["ring_refreshes"] == 1
        assert ring_epoch == 1

    def test_stale_epoch_is_a_typed_wrong_shard_error(self):
        async def scenario():
            service = await start_sharded(racks=2)
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    try:
                        await c.request({"type": "get", "key": "x",
                                         "epoch": 99})
                    except ServiceError as exc:
                        return exc
            finally:
                await service.stop()

        exc = asyncio.run(scenario())
        assert exc.code == protocol.WRONG_SHARD
        assert "99" in exc.message


class TestLoadAwareReadsAcrossMigration:
    """``--read-policy p2c`` through a live membership change.

    The selector adds a degree of freedom (reads may leave the hash
    owner), so the migration drills re-run with it on: correctness must
    be byte-for-byte what the hash fleet guarantees -- no failed op, no
    stale value -- and the decision trace must show the policy kept its
    hands off the racks the membership change owns.
    """

    pytestmark = [pytest.mark.routing]

    @pytest.mark.slow
    def test_add_under_p2c_load_loses_nothing(self):
        trace = RoutingTrace(maxlen=100_000)
        load_errors, stale_reads = [], []

        async def scenario():
            service = await start_sharded(racks=2, read_policy=POLICY_P2C,
                                          routing_trace=trace)
            try:
                admin = ServiceClient("127.0.0.1", service.port, "admin")
                worker = ServiceClient("127.0.0.1", service.port, "worker")
                async with admin, worker:
                    acked = await seed_keys(admin, 120)
                    for pair in range(4):
                        await admin.write(pair, lpn=0)
                    stop = asyncio.Event()

                    async def background_load():
                        i = 0
                        while not stop.is_set():
                            try:
                                if i % 2 == 0:
                                    await worker.read(i % 4, lpn=0)
                                else:
                                    key = f"k{i % 120:05d}"
                                    got = await worker.get(key)
                                    if got["value"] != acked[key]:
                                        stale_reads.append((key, got))
                            except ServiceError as exc:
                                load_errors.append(exc.code)
                            i += 1
                            await asyncio.sleep(0)

                    load = asyncio.ensure_future(background_load())
                    result = await admin.fleet_add_rack(
                        batch_size=8, pause_s=0.001,
                    )
                    stop.set()
                    await load
                    survived = {k: (await admin.get(k)) for k in acked}
                    stats = await admin.stats()
                return result, acked, survived, stats
            finally:
                await service.stop()

        result, acked, survived, stats = asyncio.run(scenario())
        assert load_errors == [] and stale_reads == []
        assert result["kind"] == "add" and result["epoch"] == 1
        for key, value in acked.items():
            assert survived[key]["found"] and \
                survived[key]["value"] == value, key
        # The joiner is invisible to the selector until the cutover:
        # every pre-cutover decision raced the two incumbents only.
        decisions = trace.decisions()
        assert decisions, "p2c load left no routing trace"
        for d in decisions:
            if d.epoch == 0:
                assert 2 not in d.candidates and d.chosen in (0, 1), d
        # The policy actually engaged (this is not a fallback-only run).
        assert any(d.reason == REASON_P2C for d in decisions)
        assert stats["routing"]["decisions"] == float(len(decisions))

    def test_drain_under_p2c_never_targets_the_retiree(self):
        trace = RoutingTrace(maxlen=100_000)
        load_errors = []

        async def scenario():
            service = await start_sharded(racks=3, read_policy=POLICY_P2C,
                                          routing_trace=trace)
            fleet = service.router.fleet
            try:
                admin = ServiceClient("127.0.0.1", service.port, "admin")
                worker = ServiceClient("127.0.0.1", service.port, "worker")
                async with admin, worker:
                    acked = await seed_keys(admin, 100)
                    # Pairs 0..3 stay in range after the fleet shrinks
                    # to 2 racks x 2 pairs.
                    for pair in range(4):
                        await admin.write(pair, lpn=0)
                    stop = asyncio.Event()

                    async def background_load():
                        i = 0
                        while not stop.is_set():
                            try:
                                await worker.read(i % 4, lpn=0)
                            except ServiceError as exc:
                                load_errors.append(exc.code)
                            i += 1
                            await asyncio.sleep(0)

                    load = asyncio.ensure_future(background_load())
                    drain = asyncio.ensure_future(
                        service.router.drain_rack(1, batch_size=1,
                                                  pause_s=0.005)
                    )
                    while not fleet.migrating:
                        await asyncio.sleep(0)
                    # Only window-and-later decisions carry the
                    # invariant; pre-drain picks of rack 1 were fine.
                    trace.clear()
                    result = await drain
                    stop.set()
                    await load
                    post = [await worker.read(pair % 4, lpn=0)
                            for pair in range(20)]
                    reads = {k: await worker.get(k) for k in acked}
                return result, acked, reads, post
            finally:
                await service.stop()

        result, acked, reads, post = asyncio.run(scenario())
        assert load_errors == []
        assert result["kind"] == "drain" and result["racks"] == [0, 2]
        for key, value in acked.items():
            assert reads[key]["found"] and reads[key]["value"] == value, key
        # After the cutover no read lands on the retiree...
        assert all(r["rack"] in (0, 2) for r in post)
        decisions = trace.decisions()
        assert decisions, "the drain window saw no routed reads"
        for d in decisions:
            # ...and from the moment the drain began, the selector
            # never *diverted* onto rack 1 (hash-order fallbacks may
            # still land there while it remains authoritative), and
            # post-cutover decisions do not even list it.
            if d.reason == REASON_P2C:
                assert d.chosen != 1, d
            if d.epoch >= 1:
                assert 1 not in d.candidates and d.chosen != 1, d


class TestReadCacheAcrossMigration:
    """The DRAM read cache across membership changes: a moved key must
    never serve a pre-migration value.  Two mechanisms are on trial --
    write-through invalidation (every completed write drops the cached
    copy) and the epoch fence (the cutover drops the *whole* cache)."""

    @pytest.mark.qos
    def test_moved_key_never_serves_stale_value(self):
        from repro.service.qos import QosScheduler
        from repro.service.readcache import ReadCache
        from repro.service.server import CACHE_HIT_LATENCY_US

        async def scenario():
            router = ShardRouter.from_config(base_config(), 2,
                                             precondition=False,
                                             chunk_us=2000.0)
            qos = QosScheduler(None)
            cache = ReadCache(1024, shares=qos.cache_shares())
            service = ShardedRackService(router, port=0, qos=qos,
                                         read_cache=cache)
            await service.start()
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    acked = await seed_keys(c, 120)
                    for key in acked:          # miss + fill
                        await c.get(key)
                    warm = {k: await c.get(k) for k in acked}
                    await c.fleet_add_rack(batch_size=16)
                    fenced = {k: await c.get(k) for k in acked}
                    # Rewrite, then read back: a cached pre-migration
                    # value surviving the fence or an invalidation
                    # would surface right here.
                    for key in list(acked):
                        acked[key] += "-post"
                        await c.put(key, acked[key])
                    reads = {k: await c.get(k) for k in acked}
                    stats = await c.stats()
                return acked, warm, fenced, reads, stats

            finally:
                await service.stop()

        acked, warm, fenced, reads, stats = asyncio.run(scenario())
        hit = lambda r: r.get("latency_us") == CACHE_HIT_LATENCY_US  # noqa: E731
        # The warm-up proves the cache was actually serving these keys
        # before the cutover -- without it the drill would pass trivially.
        assert all(hit(r) for r in warm.values())
        # The epoch fence dropped everything: no read immediately after
        # the cutover is served from DRAM, and none is stale.
        assert not any(hit(r) for r in fenced.values())
        for key in acked:
            assert fenced[key]["value"] == acked[key].removesuffix("-post"), key
        # Post-rewrite reads see the rewrite, never the cached original.
        for key, value in acked.items():
            assert reads[key]["found"] and reads[key]["value"] == value, key
        schema.validate_stats(stats, client=True)
        assert stats["readcache"]["invalidations"] >= 120
