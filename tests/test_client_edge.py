"""Edge-case tests for the workload client."""

from repro.cluster import Client, Rack, RackConfig, SystemType
from repro.experiments.runner import run_until
from repro.metrics import ExperimentMetrics
from repro.workloads import OpenLoopGenerator, ycsb


def make_world():
    config = RackConfig(system=SystemType.RACKBLOX, num_servers=3,
                        num_pairs=3, seed=77)
    rack = Rack(config)
    metrics = ExperimentMetrics()
    pair = rack.pairs[0]
    generator = OpenLoopGenerator(
        ycsb(0.5), key_space=rack.working_set_pages(pair),
        rate_iops=2000.0, rng=rack.rng.stream("c"),
    )
    client = Client(rack, "client-0", pair, generator, metrics)
    return rack, client, metrics


class TestClientEdges:
    def test_zero_requests_rejected(self):
        rack, client, _ = make_world()
        proc = rack.sim.spawn(client.run(0))
        rack.sim.run(until=1000.0)
        assert proc.triggered and not proc.ok  # ConfigError propagated

    def test_completion_counting(self):
        rack, client, metrics = make_world()
        proc = rack.sim.spawn(client.run(50))
        run_until(rack.sim, proc)
        assert client.issued == 50
        assert client.completed == 50
        assert proc.value == 50
        total = metrics.read_total.count + metrics.write_total.count
        assert total == 50

    def test_both_replicas_dead_write_degrades_gracefully(self):
        rack, client, metrics = make_world()
        # Client's view: both replica servers dead.
        rack.failed_ips.add(client.pair.primary_server_ip)
        rack.failed_ips.add(client.pair.replica_server_ip)
        write_only_gen = OpenLoopGenerator(
            ycsb(1.0), key_space=64, rate_iops=5000.0,
            rng=rack.rng.stream("w"),
        )
        client.generator = write_only_gen
        proc = rack.sim.spawn(client.run(20))
        run_until(rack.sim, proc)
        # All ops 'complete' (handed to the out-of-rack path) without
        # hanging the drain loop; nothing recorded as a local write.
        assert client.completed == 20
        assert metrics.write_total.count == 0

    def test_storage_breakdown_propagates(self):
        rack, client, metrics = make_world()
        proc = rack.sim.spawn(client.run(40))
        run_until(rack.sim, proc)
        assert metrics.read_storage.count == metrics.read_total.count
        assert metrics.write_storage.count == metrics.write_total.count
