"""Tests for declarative fault-injection schedules (pure data layer)."""

import pickle

import pytest

from repro.chaos.schedule import (
    EVENT_KINDS,
    PARTITION_FACTOR,
    FaultEvent,
    FaultSchedule,
)
from repro.errors import ConfigError

pytestmark = pytest.mark.chaos


def crash(at_us: float = 1000.0, target: str = "server:0") -> FaultEvent:
    return FaultEvent(at_us, "server_crash", target)


class TestFaultEvent:
    def test_known_kinds_construct(self):
        for kind in EVENT_KINDS:
            target = "server:0" if kind in (
                "server_crash", "server_recover", "channel_stall"
            ) else ("pair:0" if kind == "rereplicate" else "")
            FaultEvent(0.0, kind, target)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(0.0, "meteor_strike", "server:0")

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            crash(at_us=-1.0)

    def test_targeted_kinds_need_target(self):
        for kind in ("server_crash", "server_recover", "rereplicate",
                     "channel_stall"):
            with pytest.raises(ConfigError):
                FaultEvent(0.0, kind)

    def test_factor_below_one_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(0.0, "link_degrade", "all", (("factor", 0.5),))

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(0.0, "channel_stall", "server:0",
                       (("duration_us", -5.0),))

    def test_param_lookup_with_default(self):
        event = FaultEvent(0.0, "link_degrade", "all", (("factor", 8.0),))
        assert event.param("factor") == 8.0
        assert event.param("duration_us", 123.0) == 123.0

    def test_dict_round_trip_preserves_params(self):
        event = FaultEvent(50.0, "heartbeat_jitter", "",
                           (("duration_us", 2000.0), ("factor", 3.0)))
        clone = FaultEvent.from_dict(event.to_dict())
        assert clone == event

    def test_from_dict_requires_kind_and_time(self):
        with pytest.raises(ConfigError):
            FaultEvent.from_dict({"kind": "server_crash"})
        with pytest.raises(ConfigError):
            FaultEvent.from_dict({"at_us": 0.0})
        with pytest.raises(ConfigError):
            FaultEvent.from_dict("not-a-dict")


class TestRackQualifier:
    """The sharded-serving extension: events optionally scoped to one rack."""

    def test_default_is_broadcast(self):
        assert crash().rack is None
        assert "rack" not in crash().to_dict()

    def test_rack_round_trips_through_dict(self):
        event = FaultEvent(10.0, "server_crash", "server:0", rack=2)
        payload = event.to_dict()
        assert payload["rack"] == 2
        assert FaultEvent.from_dict(payload) == event

    def test_bad_rack_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(0.0, "server_crash", "server:0", rack=-1)
        with pytest.raises(ConfigError):
            FaultEvent(0.0, "server_crash", "server:0", rack=True)
        with pytest.raises(ConfigError):
            FaultEvent(0.0, "server_crash", "server:0", rack="1")

    def test_for_rack_keeps_broadcast_and_own_events(self):
        schedule = FaultSchedule(events=(
            FaultEvent(1.0, "server_crash", "server:0", rack=0),
            FaultEvent(2.0, "server_crash", "server:1", rack=1),
            FaultEvent(3.0, "server_recover", "server:0"),  # broadcast
        ), heartbeat_interval_us=777.0)
        sliced = schedule.for_rack(1)
        assert [e.at_us for e in sliced.events] == [2.0, 3.0]
        # Schedule-level knobs survive the slice.
        assert sliced.heartbeat_interval_us == 777.0
        with pytest.raises(ConfigError):
            schedule.for_rack(-1)


class TestFaultSchedule:
    def test_detection_delay_bound(self):
        sched = FaultSchedule(heartbeat_interval_us=2000.0, miss_threshold=2)
        assert sched.detection_delay_us == 6000.0

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            FaultSchedule(heartbeat_interval_us=0.0)
        with pytest.raises(ConfigError):
            FaultSchedule(miss_threshold=0)
        with pytest.raises(ConfigError):
            FaultSchedule(op_timeout_us=0.0)
        with pytest.raises(ConfigError):
            FaultSchedule(max_attempts=0)

    def test_horizon_includes_durations(self):
        sched = FaultSchedule(events=(
            crash(10_000.0),
            FaultEvent(20_000.0, "channel_stall", "server:1",
                       (("duration_us", 50_000.0),)),
        ))
        assert sched.horizon_us() == 70_000.0

    def test_sorted_events_orders_by_time(self):
        sched = FaultSchedule(events=(
            crash(5000.0, "server:1"), crash(1000.0, "server:0"),
        ))
        assert [e.at_us for e in sched.sorted_events()] == [1000.0, 5000.0]

    def test_hashable_and_picklable(self):
        sched = FaultSchedule(events=(crash(),))
        clone = pickle.loads(pickle.dumps(sched))
        assert clone == sched
        assert hash(clone) == hash(sched)

    def test_json_round_trip(self):
        sched = FaultSchedule(
            events=(crash(), FaultEvent(9000.0, "link_degrade", "all",
                                        (("factor", 4.0),))),
            heartbeat_interval_us=1500.0,
            miss_threshold=3,
        )
        assert FaultSchedule.from_json(sched.to_json()) == sched

    def test_json_file_round_trip(self, tmp_path):
        sched = FaultSchedule(events=(crash(),))
        path = tmp_path / "sched.json"
        path.write_text(sched.to_json(), encoding="utf-8")
        assert FaultSchedule.from_json_file(str(path)) == sched

    def test_bad_json_raises_config_error(self):
        with pytest.raises(ConfigError):
            FaultSchedule.from_json("{not json")
        with pytest.raises(ConfigError):
            FaultSchedule.from_json("[1, 2, 3]")
        with pytest.raises(ConfigError):
            FaultSchedule.from_json('{"events": 5}')

    def test_missing_file_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigError):
            FaultSchedule.from_json_file(str(tmp_path / "absent.json"))

    def test_with_events_replaces_only_events(self):
        base = FaultSchedule(heartbeat_interval_us=1234.0)
        updated = base.with_events([crash()])
        assert len(updated.events) == 1
        assert updated.heartbeat_interval_us == 1234.0

    def test_example_schedules_parse(self):
        import pathlib

        examples = pathlib.Path(__file__).resolve().parent.parent / "examples"
        for name in ("crash_recover.json", "live_crash_recover.json"):
            sched = FaultSchedule.from_json_file(str(examples / name))
            assert any(e.kind == "server_crash" for e in sched.events)
            assert any(e.kind == "server_recover" for e in sched.events)


class TestRandomSchedules:
    def test_same_seed_same_schedule(self):
        a = FaultSchedule.random(7)
        b = FaultSchedule.random(7)
        assert a == b and hash(a) == hash(b)

    def test_different_seeds_differ(self):
        assert FaultSchedule.random(1) != FaultSchedule.random(2)

    def test_crashes_are_paired_with_recoveries(self):
        sched = FaultSchedule.random(3, num_crashes=3)
        crashes = [e for e in sched.events if e.kind == "server_crash"]
        recovers = [e for e in sched.events if e.kind == "server_recover"]
        assert len(crashes) == 3 and len(recovers) == 3
        for c, r in zip(
            sorted(crashes, key=lambda e: e.at_us),
            sorted(recovers, key=lambda e: e.at_us),
        ):
            assert r.at_us > c.at_us + sched.detection_delay_us

    def test_needs_two_servers(self):
        with pytest.raises(ConfigError):
            FaultSchedule.random(1, num_servers=1)

    def test_partition_factor_is_effectively_infinite(self):
        assert PARTITION_FACTOR >= 1e9
