"""Tests for workload specs and generators."""

import random

import pytest

from repro.errors import ConfigError
from repro.workloads import (
    AUCTIONMARK,
    ClosedLoopGenerator,
    OpenLoopGenerator,
    TABLE2_WORKLOADS,
    TPCC,
    TPCH,
    TWITTER,
    WorkloadSpec,
    ycsb,
)
from repro.workloads.spec import Pattern


class TestSpecs:
    def test_table2_write_ratios(self):
        # The paper's measured write percentages (Table 2).
        assert TPCH.write_ratio == pytest.approx(0.0227)
        assert TABLE2_WORKLOADS["seats"].write_ratio == pytest.approx(0.1034)
        assert AUCTIONMARK.write_ratio == pytest.approx(0.5376)
        assert TPCC.write_ratio == pytest.approx(0.5995)
        assert TWITTER.write_ratio == pytest.approx(0.9786)

    def test_auctionmark_is_phased(self):
        # §4.3: AuctionMark's long write runs explain its lower GC impact.
        assert AUCTIONMARK.pattern is Pattern.PHASED
        assert TPCC.pattern is Pattern.MIXED

    def test_ycsb_factory(self):
        spec = ycsb(0.5)
        assert spec.write_ratio == 0.5
        assert spec.name == "ycsb-w50"

    def test_invalid_ratio(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(name="x", write_ratio=1.5)


class TestOpenLoop:
    def test_write_ratio_respected(self):
        gen = OpenLoopGenerator(ycsb(0.3), key_space=1000, rate_iops=10_000,
                                rng=random.Random(1))
        reqs = list(gen.requests(4000))
        writes = sum(1 for r in reqs if r.kind == "write")
        assert writes / len(reqs) == pytest.approx(0.3, abs=0.03)

    def test_read_only_and_write_only(self):
        ro = OpenLoopGenerator(ycsb(0.0), 100, 1000, rng=random.Random(2))
        assert all(r.kind == "read" for r in ro.requests(200))
        wo = OpenLoopGenerator(ycsb(1.0), 100, 1000, rng=random.Random(2))
        assert all(r.kind == "write" for r in wo.requests(200))

    def test_poisson_gaps_average_to_rate(self):
        gen = OpenLoopGenerator(ycsb(0.5), 100, rate_iops=10_000,
                                rng=random.Random(3))
        gaps = [r.gap_us for r in gen.requests(5000)]
        assert sum(gaps) / len(gaps) == pytest.approx(100.0, rel=0.1)

    def test_keys_in_range(self):
        gen = OpenLoopGenerator(ycsb(0.5), key_space=64, rate_iops=1000,
                                rng=random.Random(4))
        assert all(0 <= r.lpn < 64 for r in gen.requests(500))

    def test_zipfian_concentration(self):
        gen = OpenLoopGenerator(ycsb(0.5, theta=0.99), key_space=10_000,
                                rate_iops=1000, rng=random.Random(5))
        lpns = [r.lpn for r in gen.requests(3000)]
        hot = sum(1 for lpn in lpns if lpn < 1000)
        assert hot / len(lpns) > 0.5

    def test_phased_pattern_bursts(self):
        gen = OpenLoopGenerator(AUCTIONMARK, key_space=1000, rate_iops=1000,
                                rng=random.Random(6))
        kinds = [r.kind for r in gen.requests(1000)]
        # Count transitions: phased traffic has far fewer read<->write
        # switches than an iid mix at the same ratio.
        transitions = sum(1 for a, b in zip(kinds, kinds[1:]) if a != b)
        assert transitions < 100  # iid 50/50 would give ~500

    def test_phased_long_run_ratio(self):
        gen = OpenLoopGenerator(AUCTIONMARK, key_space=1000, rate_iops=1000,
                                rng=random.Random(7))
        kinds = [r.kind for r in gen.requests(6000)]
        writes = kinds.count("write")
        assert writes / len(kinds) == pytest.approx(AUCTIONMARK.write_ratio, abs=0.05)

    def test_validation(self):
        with pytest.raises(ConfigError):
            OpenLoopGenerator(ycsb(0.5), key_space=0, rate_iops=100)
        with pytest.raises(ConfigError):
            OpenLoopGenerator(ycsb(0.5), key_space=10, rate_iops=0)
        gen = OpenLoopGenerator(ycsb(0.5), 10, 100)
        with pytest.raises(ConfigError):
            list(gen.requests(-1))


class TestClosedLoop:
    def test_think_time_attached(self):
        gen = ClosedLoopGenerator(ycsb(0.2), key_space=100, think_time_us=50.0,
                                  rng=random.Random(8))
        req = gen.next_request()
        assert req.gap_us == 50.0
        assert req.kind in ("read", "write")

    def test_deterministic_with_seed(self):
        a = ClosedLoopGenerator(ycsb(0.5), 100, rng=random.Random(9))
        b = ClosedLoopGenerator(ycsb(0.5), 100, rng=random.Random(9))
        for _ in range(50):
            ra, rb = a.next_request(), b.next_request()
            assert (ra.kind, ra.lpn) == (rb.kind, rb.lpn)

    def test_negative_think_time_rejected(self):
        with pytest.raises(ConfigError):
            ClosedLoopGenerator(ycsb(0.5), 100, think_time_us=-1.0)
