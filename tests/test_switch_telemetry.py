"""Tests for switch flow telemetry and the count-min sketch."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.switch.telemetry import CountMinSketch, FlowTelemetry


class TestCountMinSketch:
    def test_never_undercounts(self):
        sketch = CountMinSketch(width=64, depth=3)
        truth = {}
        rng = random.Random(1)
        for _ in range(2000):
            key = f"flow-{rng.randrange(200)}"
            sketch.add(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_exact_when_sparse(self):
        sketch = CountMinSketch(width=1024, depth=4)
        sketch.add("a", 5)
        sketch.add("b", 3)
        assert sketch.estimate("a") == 5
        assert sketch.estimate("b") == 3
        assert sketch.estimate("never") == 0

    def test_error_bounded_by_load(self):
        # Classic CMS bound: error <= e/width * total with high probability.
        sketch = CountMinSketch(width=512, depth=4)
        rng = random.Random(2)
        for _ in range(10_000):
            sketch.add(f"k{rng.randrange(2000)}")
        overestimate = sketch.estimate("absent-key")
        assert overestimate <= 3 * 10_000 / 512  # generous multiple of n/w

    def test_validation(self):
        with pytest.raises(ConfigError):
            CountMinSketch(width=4)
        with pytest.raises(ConfigError):
            CountMinSketch(depth=0)
        sketch = CountMinSketch()
        with pytest.raises(ConfigError):
            sketch.add("k", -1)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=200))
    def test_total_preserved(self, keys):
        sketch = CountMinSketch(width=64, depth=2)
        for key in keys:
            sketch.add(key)
        assert sketch.total == len(keys)


class TestFlowTelemetry:
    def test_small_flows_stay_in_sketch(self):
        telemetry = FlowTelemetry(promote_threshold=10)
        for i in range(5):
            telemetry.record("mouse", 4.0, 10.0)
        assert telemetry.tracked("mouse") is None
        assert telemetry.estimated_packets("mouse") >= 5

    def test_heavy_flow_promoted(self):
        telemetry = FlowTelemetry(promote_threshold=10)
        for _ in range(30):
            telemetry.record("elephant", 4.0, 20.0)
        stats = telemetry.tracked("elephant")
        assert stats is not None
        assert stats.packets > 0
        assert telemetry.promotions == 1

    def test_latency_ewma_tracks_shift(self):
        telemetry = FlowTelemetry(promote_threshold=1, ewma_alpha=0.5)
        for _ in range(10):
            telemetry.record("f", 4.0, 100.0)
        low = telemetry.tracked("f").latency_ewma_us
        for _ in range(10):
            telemetry.record("f", 4.0, 1000.0)
        high = telemetry.tracked("f").latency_ewma_us
        assert low == pytest.approx(100.0)
        assert high > 800.0

    def test_top_flows_ranked(self):
        telemetry = FlowTelemetry(promote_threshold=1)
        for _ in range(50):
            telemetry.record("big", 4.0, 1.0)
        for _ in range(10):
            telemetry.record("small", 4.0, 1.0)
        top = telemetry.top_flows(k=2)
        assert top[0][0] == "big"
        assert top[0][1] > top[1][1]

    def test_table_capacity_respected(self):
        telemetry = FlowTelemetry(promote_threshold=1, max_tracked_flows=3)
        for i in range(10):
            for _ in range(5):
                telemetry.record(f"flow-{i}", 4.0, 1.0)
        assert len(telemetry._tracked) <= 3

    def test_hot_flow_share(self):
        telemetry = FlowTelemetry(promote_threshold=100)
        for _ in range(10):
            telemetry.record("cold", 4.0, 1.0)
        assert telemetry.hot_flow_share() == 0.0
        telemetry2 = FlowTelemetry(promote_threshold=1)
        for _ in range(10):
            telemetry2.record("hot", 4.0, 1.0)
        assert telemetry2.hot_flow_share() > 0.8

    def test_validation(self):
        with pytest.raises(ConfigError):
            FlowTelemetry(max_tracked_flows=0)
        with pytest.raises(ConfigError):
            FlowTelemetry(promote_threshold=0)
        with pytest.raises(ConfigError):
            FlowTelemetry(ewma_alpha=0.0)
