"""Integration tests: the full rack under all four systems."""

import pytest

from repro.cluster import (
    FailureManager,
    Rack,
    RackConfig,
    SystemType,
    rack_aware_placement,
)
from repro.errors import ConfigError
from repro.experiments import run_rack_experiment
from repro.net.packet import OpType, Packet
from repro.sim.core import MSEC
from repro.workloads import ycsb


def small_config(system=SystemType.RACKBLOX, **kwargs):
    defaults = dict(system=system, num_servers=3, num_pairs=3, seed=123)
    defaults.update(kwargs)
    return RackConfig(**defaults)


class TestPlacement:
    def test_primary_and_replica_differ(self):
        for primary, replica in rack_aware_placement(8, 4):
            assert primary != replica

    def test_round_robin_coverage(self):
        placement = rack_aware_placement(4, 4)
        assert sorted(p for p, _ in placement) == [0, 1, 2, 3]

    def test_validation(self):
        with pytest.raises(ConfigError):
            rack_aware_placement(1, 1)
        with pytest.raises(ConfigError):
            rack_aware_placement(0, 4)


class TestRackAssembly:
    def test_all_vssds_registered_in_switch(self):
        rack = Rack(small_config())
        for pair in rack.pairs:
            assert pair.primary.vssd_id in rack.switch.replica_table
            assert pair.replica.vssd_id in rack.switch.replica_table
            assert (
                rack.switch.replica_table.replica_of(pair.primary.vssd_id)
                == pair.replica.vssd_id
            )

    def test_replicas_on_distinct_servers(self):
        rack = Rack(small_config())
        for pair in rack.pairs:
            assert pair.primary_server_ip != pair.replica_server_ip

    def test_vdc_family_has_controller(self):
        assert Rack(small_config(SystemType.VDC)).controller is not None
        assert Rack(small_config(SystemType.RACKBLOX_SOFTWARE)).controller is not None
        assert Rack(small_config(SystemType.RACKBLOX)).controller is None

    def test_coordinated_scheduler_by_system(self):
        assert Rack(small_config(SystemType.VDC)).servers[0].scheduler.name == "kyber"
        assert (
            Rack(small_config(SystemType.RACKBLOX)).servers[0].scheduler.name
            == "coordinated-kyber"
        )

    def test_precondition_consumes_free_blocks(self):
        rack = Rack(small_config())
        rack.precondition()
        for vssd in rack.vssd_by_id.values():
            assert vssd.free_block_ratio() < 0.5
            vssd.ftl.check_invariants()

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            RackConfig(num_servers=1)
        with pytest.raises(ConfigError):
            RackConfig(gc_threshold=0.5, soft_threshold=0.3)

    def test_default_network_scheduler_per_system(self):
        assert small_config(SystemType.VDC).effective_network_scheduler == "tb"
        assert small_config(SystemType.RACKBLOX).effective_network_scheduler == "priority"


class TestEndToEnd:
    def _run(self, system, write_ratio=0.5, requests=400, **kw):
        config = small_config(system, **kw)
        return run_rack_experiment(
            config, ycsb(write_ratio), requests_per_pair=requests,
            rate_iops_per_pair=1500,
        )

    def test_all_requests_complete(self):
        result = self._run(SystemType.RACKBLOX)
        s = result.metrics.summary()
        assert s["read_count"] + s["write_count"] == 3 * 400

    def test_rackblox_redirects_reads_during_gc(self):
        result = self._run(SystemType.RACKBLOX, write_ratio=0.6, requests=1500)
        assert result.gc_runs > 0
        assert result.switch_counters["reads_redirected"] > 0
        assert result.switch_counters["gc_accepted"] > 0

    def test_vdc_never_redirects(self):
        result = self._run(SystemType.VDC, write_ratio=0.6, requests=1500)
        assert result.gc_runs > 0
        assert result.redirects == 0
        assert result.switch_counters["gc_accepted"] == 0

    def test_rackblox_software_redirects_in_software(self):
        result = self._run(SystemType.RACKBLOX_SOFTWARE, write_ratio=0.6,
                           requests=1500)
        assert result.gc_runs > 0
        # Redirections happened at the servers, not in the switch.
        assert result.switch_counters["reads_redirected"] == 0
        assert result.redirects > 0

    def test_rackblox_beats_vdc_read_tail(self):
        vdc = self._run(SystemType.VDC, write_ratio=0.6, requests=1500)
        rb = self._run(SystemType.RACKBLOX, write_ratio=0.6, requests=1500)
        assert (
            rb.metrics.read_total.p99()
            < vdc.metrics.read_total.p99()
        )

    def test_read_only_runs_no_gc(self):
        result = self._run(SystemType.RACKBLOX, write_ratio=0.0, requests=400)
        assert result.gc_runs == 0
        assert result.metrics.write_total.count == 0

    def test_writes_fan_out_to_both_replicas(self):
        result = self._run(SystemType.RACKBLOX, write_ratio=1.0, requests=300)
        # Every client write shows up twice at the switch.
        assert result.switch_counters["writes_forwarded"] == 2 * 3 * 300

    def test_storage_breakdown_recorded(self):
        result = self._run(SystemType.RACKBLOX, requests=300)
        assert result.metrics.read_storage.count > 0
        assert result.metrics.write_storage.count > 0
        # Storage component can never exceed end-to-end.
        assert result.metrics.read_storage.mean() < result.metrics.read_total.mean()

    def test_deterministic_given_seed(self):
        a = self._run(SystemType.RACKBLOX, requests=300)
        b = self._run(SystemType.RACKBLOX, requests=300)
        assert a.metrics.read_total.p99() == b.metrics.read_total.p99()
        assert a.redirects == b.redirects

    def test_different_seeds_differ(self):
        a = self._run(SystemType.RACKBLOX, requests=300)
        b = self._run(SystemType.RACKBLOX, requests=300, seed=999)
        assert a.metrics.read_total.values != b.metrics.read_total.values

    def test_background_traffic_injector(self):
        config = small_config(SystemType.RACKBLOX, network_scheduler="priority")
        rack = Rack(config)
        rack.start_background_traffic(burst=8, period_us=10 * MSEC)
        run_rack_experiment(
            config, ycsb(0.2), requests_per_pair=200, rack=rack
        )
        assert rack.background_packets > 0


class TestGcDelayMechanism:
    def test_soft_gc_delays_when_replica_collecting(self):
        # Drive a write-heavy load so both replicas of a pair want GC at
        # similar times; the switch must have delayed at least one soft
        # request (the whole point of shared GC state).
        config = small_config(SystemType.RACKBLOX)
        result = run_rack_experiment(
            config, ycsb(0.8), requests_per_pair=2000, rate_iops_per_pair=2000
        )
        counters = result.switch_counters
        assert counters["gc_delayed"] > 0
        assert counters["recirculations"] >= counters["gc_delayed"]


class TestFailureHandling:
    def test_heartbeat_detects_crash_and_redirects(self):
        config = small_config(SystemType.RACKBLOX)
        rack = Rack(config)
        manager = FailureManager(rack, heartbeat_interval_us=5 * MSEC)
        manager.start()
        victim = rack.pairs[0].primary_server_ip
        manager.fail_server(victim)
        rack.sim.run(until=rack.sim.now + 100 * MSEC)
        assert manager.failures_detected >= 1
        assert victim in rack.failed_ips
        # The dead server's vSSDs now have their GC bits set, so reads
        # redirect to the replica.
        dead_vssd = rack.pairs[0].primary
        pkt = Packet(op=OpType.READ, vssd_id=dead_vssd.vssd_id)
        action = rack.switch.process_packet(pkt)
        assert action.redirected
        assert action.dst_ip == rack.pairs[0].replica_server_ip

    def test_recovery_clears_redirection(self):
        config = small_config(SystemType.RACKBLOX)
        rack = Rack(config)
        manager = FailureManager(rack, heartbeat_interval_us=5 * MSEC)
        manager.start()
        victim = rack.pairs[0].primary_server_ip
        manager.fail_server(victim)
        rack.sim.run(until=rack.sim.now + 100 * MSEC)
        manager.recover_server(victim)
        assert victim not in rack.failed_ips
        pkt = Packet(op=OpType.READ, vssd_id=rack.pairs[0].primary.vssd_id)
        action = rack.switch.process_packet(pkt)
        assert not action.redirected

    def test_workload_survives_server_failure(self):
        config = small_config(SystemType.RACKBLOX)
        rack = Rack(config)
        manager = FailureManager(rack, heartbeat_interval_us=2 * MSEC)
        manager.start()
        victim = rack.pairs[0].primary_server_ip
        manager.fail_server(victim)
        rack.sim.run(until=rack.sim.now + 50 * MSEC)  # past detection
        result = run_rack_experiment(
            config, ycsb(0.3), requests_per_pair=300, rack=rack
        )
        s = result.metrics.summary()
        assert s["read_count"] + s["write_count"] == 3 * 300

    def test_switch_reboot_preserves_forwarding(self):
        config = small_config(SystemType.RACKBLOX)
        rack = Rack(config)
        manager = FailureManager(rack)
        old_switch = rack.switch
        manager.fail_and_recover_switch()
        assert rack.switch is not old_switch
        pkt = Packet(op=OpType.READ, vssd_id=rack.pairs[0].primary.vssd_id)
        action = rack.switch.process_packet(pkt)
        assert action.dst_ip == rack.pairs[0].primary_server_ip

    def test_validation(self):
        rack = Rack(small_config())
        with pytest.raises(ConfigError):
            FailureManager(rack, heartbeat_interval_us=0)
        manager = FailureManager(rack)
        with pytest.raises(ConfigError):
            manager.fail_server("10.9.9.9")

    def test_stop_ends_heartbeat_loop(self):
        rack = Rack(small_config(SystemType.RACKBLOX))
        manager = FailureManager(rack, heartbeat_interval_us=5 * MSEC)
        manager.start()
        rack.sim.run(until=rack.sim.now + 20 * MSEC)
        manager.stop()
        assert not manager.running
        # The loop wakes at most once more, sees the flag, and returns --
        # no perpetual heartbeat process is left ticking the heap.
        rack.sim.run(until=rack.sim.now + 20 * MSEC)
        assert not manager._process.is_alive

    def test_stop_is_idempotent_and_restartable(self):
        rack = Rack(small_config(SystemType.RACKBLOX))
        manager = FailureManager(rack, heartbeat_interval_us=5 * MSEC)
        manager.start()
        manager.stop()
        manager.stop()  # second stop is a no-op
        rack.sim.run(until=rack.sim.now + 20 * MSEC)
        assert not manager._process.is_alive
        # Restarting re-arms detection.
        manager.start()
        assert manager.running
        victim = rack.pairs[0].primary_server_ip
        manager.fail_server(victim)
        rack.sim.run(until=rack.sim.now + 100 * MSEC)
        assert manager.failures_detected >= 1
        manager.stop()
        rack.sim.run(until=rack.sim.now + 20 * MSEC)
        assert not manager._process.is_alive

    def test_double_start_does_not_stack_loops(self):
        rack = Rack(small_config(SystemType.RACKBLOX))
        manager = FailureManager(rack, heartbeat_interval_us=5 * MSEC)
        manager.start()
        first = manager._process
        manager.start()  # must not spawn a second loop
        assert manager._process is first
        rack.sim.run(until=rack.sim.now + 20 * MSEC)
        manager.stop()
        # One stop ends the single loop; a stacked loop would survive it.
        rack.sim.run(until=rack.sim.now + 20 * MSEC)
        assert not manager._process.is_alive


class TestPairDeletion:
    def test_delete_pair_removes_everything(self):
        rack = Rack(small_config())
        pair = rack.pairs[0]
        primary_id = pair.primary.vssd_id
        rack.delete_pair(pair)
        assert pair not in rack.pairs
        assert primary_id not in rack.switch.replica_table
        assert primary_id not in rack.pair_by_vssd
        server = rack.server_by_ip[pair.primary_server_ip]
        assert all(v.vssd_id != primary_id for v in server.vssds)

    def test_delete_unknown_pair_rejected(self):
        rack = Rack(small_config())
        other_rack = Rack(small_config())
        with pytest.raises(ConfigError):
            rack.delete_pair(other_rack.pairs[0])

    def test_remaining_pairs_still_serve(self):
        config = small_config()
        rack = Rack(config)
        rack.delete_pair(rack.pairs[-1])
        result = run_rack_experiment(
            config, ycsb(0.3), requests_per_pair=150, rack=rack
        )
        s = result.metrics.summary()
        assert s["read_count"] + s["write_count"] == len(rack.pairs) * 150
