"""Tests for storage I/O schedulers and the coordinated variants."""

import pytest

from repro.errors import ConfigError
from repro.server import (
    CoordinatedScheduler,
    DeadlineIoScheduler,
    FifoIoScheduler,
    IoRequest,
    KyberIoScheduler,
    make_scheduler,
)


def req(kind="read", arrival=0.0, net=0.0, predict=0.0, lpn=0):
    return IoRequest(
        kind=kind, vssd_id=1, lpn=lpn, arrival_time=arrival,
        net_time=net, predict_time=predict,
    )


class TestPriorityFormula:
    def test_prio_is_sum_of_three_components(self):
        r = req(arrival=10.0, net=50.0, predict=30.0)
        # Storage_time at now=25 is 15.
        assert r.priority(25.0) == pytest.approx(50.0 + 15.0 + 30.0)

    def test_prio_grows_with_queueing(self):
        r = req(arrival=0.0)
        assert r.priority(100.0) > r.priority(10.0)


class TestFifo:
    def test_arrival_order(self):
        sched = FifoIoScheduler()
        a, b = req(lpn=1), req(lpn=2)
        sched.push(a, 0.0)
        sched.push(b, 0.0)
        assert sched.pop(0.0) is a
        assert sched.pop(0.0) is b
        assert sched.pop(0.0) is None

    def test_len(self):
        sched = FifoIoScheduler()
        sched.push(req(), 0.0)
        assert len(sched) == 1


class TestDeadline:
    def test_reads_preferred_when_nothing_expired(self):
        sched = DeadlineIoScheduler()
        w, r = req(kind="write", arrival=0.0), req(kind="read", arrival=5.0)
        sched.push(w, 0.0)
        sched.push(r, 5.0)
        assert sched.pop(10.0) is r

    def test_expired_write_promoted(self):
        sched = DeadlineIoScheduler(read_deadline_us=500.0, write_deadline_us=1750.0)
        w = req(kind="write", arrival=0.0)
        r = req(kind="read", arrival=1800.0)
        sched.push(w, 0.0)
        sched.push(r, 1800.0)
        # At t=1800 the write (deadline 1750) is expired; the read is not.
        assert sched.pop(1800.0) is w

    def test_oldest_expired_wins(self):
        sched = DeadlineIoScheduler(read_deadline_us=100.0, write_deadline_us=100.0)
        w = req(kind="write", arrival=0.0)
        r = req(kind="read", arrival=50.0)
        sched.push(w, 0.0)
        sched.push(r, 50.0)
        assert sched.pop(500.0) is w  # write expired at 100 < read's 150

    def test_validation(self):
        with pytest.raises(ConfigError):
            DeadlineIoScheduler(read_deadline_us=0)


class TestKyber:
    def test_reads_dominate_by_default(self):
        sched = KyberIoScheduler()
        for i in range(8):
            sched.push(req(kind="read", lpn=i), 0.0)
            sched.push(req(kind="write", lpn=100 + i), 0.0)
        kinds = [sched.pop(0.0).kind for _ in range(8)]
        assert kinds.count("read") > kinds.count("write")

    def test_write_pressure_increases_write_share(self):
        relaxed = KyberIoScheduler()
        pressured = KyberIoScheduler()
        for _ in range(20):
            pressured.record_completion("write", 10_000.0)  # way over 3ms target
        for sched in (relaxed, pressured):
            for i in range(12):
                sched.push(req(kind="read", lpn=i), 0.0)
                sched.push(req(kind="write", lpn=100 + i), 0.0)
        relaxed_writes = sum(1 for _ in range(12) if relaxed.pop(0.0).kind == "write")
        pressured_writes = sum(
            1 for _ in range(12) if pressured.pop(0.0).kind == "write"
        )
        assert pressured_writes > relaxed_writes

    def test_read_pressure_decreases_write_share(self):
        sched = KyberIoScheduler()
        for _ in range(20):
            sched.record_completion("read", 5_000.0)  # over 750us target
        for i in range(16):
            sched.push(req(kind="read", lpn=i), 0.0)
            sched.push(req(kind="write", lpn=100 + i), 0.0)
        writes = sum(1 for _ in range(16) if sched.pop(0.0).kind == "write")
        assert writes <= 2

    def test_single_class_drains(self):
        sched = KyberIoScheduler()
        sched.push(req(kind="write"), 0.0)
        assert sched.pop(0.0).kind == "write"

    def test_validation(self):
        with pytest.raises(ConfigError):
            KyberIoScheduler(read_target_us=0)
        with pytest.raises(ConfigError):
            KyberIoScheduler(ewma_alpha=0.0)


class TestCoordinated:
    def test_max_priority_dispatches_first(self):
        sched = CoordinatedScheduler(FifoIoScheduler())
        cheap = req(net=10.0, lpn=1)
        urgent = req(net=5000.0, lpn=2)  # burned 5ms in the network
        sched.push(cheap, 0.0)
        sched.push(urgent, 0.0)
        assert sched.pop(0.0) is urgent
        assert sched.pop(0.0) is cheap

    def test_predict_time_counts_toward_priority(self):
        sched = CoordinatedScheduler(FifoIoScheduler())
        a = req(net=100.0, predict=0.0, lpn=1)
        b = req(net=50.0, predict=200.0, lpn=2)
        sched.push(a, 0.0)
        sched.push(b, 0.0)
        assert sched.pop(0.0) is b

    def test_reordering_respects_base_class_choice(self):
        # Coordinated Deadline still lets the base pick read vs write; the
        # reorder happens within the chosen class.
        base = DeadlineIoScheduler()
        sched = CoordinatedScheduler(base)
        w = req(kind="write", net=9999.0)
        r1 = req(kind="read", net=10.0, lpn=1)
        r2 = req(kind="read", net=500.0, lpn=2)
        for r in (w, r1, r2):
            sched.push(r, 0.0)
        # Reads preferred (not expired); among reads, r2 has higher prio.
        assert sched.pop(0.0) is r2

    def test_displaced_request_not_lost(self):
        sched = CoordinatedScheduler(FifoIoScheduler())
        a, b, c = req(net=1.0, lpn=1), req(net=100.0, lpn=2), req(net=50.0, lpn=3)
        for r in (a, b, c):
            sched.push(r, 0.0)
        got = [sched.pop(0.0) for _ in range(3)]
        assert set(id(x) for x in got) == {id(a), id(b), id(c)}
        assert got[0] is b

    def test_empty(self):
        sched = CoordinatedScheduler(KyberIoScheduler())
        assert sched.pop(0.0) is None

    def test_completion_feedback_passes_through(self):
        base = KyberIoScheduler()
        sched = CoordinatedScheduler(base)
        sched.record_completion("read", 123.0)
        assert base._read_ewma > 0


class TestFactory:
    def test_all_names(self):
        assert make_scheduler("fifo").name == "fifo"
        assert make_scheduler("deadline").name == "deadline"
        assert make_scheduler("kyber").name == "kyber"

    def test_coordinated_wrapping(self):
        sched = make_scheduler("kyber", coordinated=True)
        assert sched.name == "coordinated-kyber"
        # §4.5.1: coordinated Kyber raises targets to 1.75/4 ms.
        assert sched.base.read_target_us == pytest.approx(1750.0)
        assert sched.base.write_target_us == pytest.approx(4000.0)

    def test_coordinated_deadline_parameters(self):
        sched = make_scheduler("deadline", coordinated=True)
        assert sched.base.read_deadline_us == pytest.approx(1500.0)
        assert sched.base.write_deadline_us == pytest.approx(2750.0)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_scheduler("bfq")
