"""The stable public API surface (``repro.api``).

Two contracts:

* every name in ``repro.api.__all__`` resolves, and resolves to the
  *same object* as its internal definition site (the facade re-exports,
  it does not wrap);
* the old deep import paths keep working -- the facade adds a stable
  surface without breaking anything that imported internals directly.
"""

import importlib

import repro.api


class TestFacadeSurface:
    def test_every_exported_name_resolves(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None, name

    def test_all_is_sorted_by_layer_not_duplicated(self):
        assert len(set(repro.api.__all__)) == len(repro.api.__all__)

    def test_reexports_are_identities(self):
        # The facade must hand out the real objects: isinstance checks
        # and monkeypatching through either path see the same class.
        sites = {
            "RackConfig": "repro.cluster.config",
            "SystemType": "repro.cluster.config",
            "RunSpec": "repro.experiments.parallel",
            "ParallelRunner": "repro.experiments.parallel",
            "RackResult": "repro.experiments.runner",
            "FaultEvent": "repro.chaos.schedule",
            "FaultSchedule": "repro.chaos.schedule",
            "run_chaos_experiment": "repro.chaos.runner",
            "ChaosReport": "repro.chaos.runner",
            "RackService": "repro.service.server",
            "ServiceClient": "repro.service.client",
            "ClientConfig": "repro.service.client",
            "ServiceError": "repro.service.client",
            "LoadgenReport": "repro.service.loadgen",
            "run_loadgen": "repro.service.loadgen",
            "PROTOCOL_VERSION": "repro.service.protocol",
            "SUPPORTED_VERSIONS": "repro.service.protocol",
            "HashRing": "repro.service.shard",
            "KeyRange": "repro.service.shard",
            "RackShard": "repro.service.shard",
            "ShardRouter": "repro.service.router",
            "ShardedRackService": "repro.service.router",
            "ShardProxy": "repro.service.router",
            "build_shard_configs": "repro.service.router",
            "ReplicaSelector": "repro.service.selector",
            "RoutingTrace": "repro.service.selector",
            "FakeLoadView": "repro.service.selector",
            "Decision": "repro.service.selector",
            "ZipfSampler": "repro.service.loadgen",
            "FleetController": "repro.service.membership",
            "MembershipBusy": "repro.service.membership",
            "MembershipError": "repro.service.membership",
            "MigrationPlan": "repro.service.membership",
            "MigrationStream": "repro.service.migration",
            "MigrationStreamError": "repro.service.migration",
            "TenantSpec": "repro.service.qos",
            "TenantSpecError": "repro.service.qos",
            "load_tenant_specs": "repro.service.qos",
            "QosScheduler": "repro.service.qos",
            "ReadCache": "repro.service.readcache",
            "validate_stats": "repro.service.schema",
            "StatsSchemaError": "repro.service.schema",
        }
        assert sorted(sites) == sorted(repro.api.__all__)
        for name, module_path in sites.items():
            module = importlib.import_module(module_path)
            assert getattr(repro.api, name) is getattr(module, name), name

    def test_star_import_matches_all(self):
        namespace = {}
        exec("from repro.api import *", namespace)  # noqa: exec is the point
        exported = {k for k in namespace if not k.startswith("_")}
        assert exported == set(repro.api.__all__)


class TestOldPathsStillWork:
    def test_service_package_reexports(self):
        # The pre-facade import style: everything through repro.service.
        from repro.service import (  # noqa: F401
            AdmissionController,
            QosScheduler,
            RackService,
            ReadCache,
            ServiceClient,
            ShardedRackService,
            ShardRouter,
            SimTimeBridge,
            TenantSpec,
            run_loadgen,
        )

    def test_deep_module_paths(self):
        for path in (
            "repro.service.protocol",
            "repro.service.schema",
            "repro.service.shard",
            "repro.service.router",
            "repro.cluster.multirack",
            "repro.chaos.schedule",
        ):
            assert importlib.import_module(path), path
