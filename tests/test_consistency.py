"""Tests for the Hermes-style replication protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.consistency import HermesCluster, Timestamp
from repro.errors import ConfigError
from repro.sim import Simulator


def cluster(n=3, delay=10.0):
    sim = Simulator()
    return sim, HermesCluster(sim, n, delay_fn=lambda: delay)


class TestTimestamp:
    def test_ordering_by_version_then_node(self):
        assert Timestamp(1, 5) < Timestamp(2, 0)
        assert Timestamp(2, 1) < Timestamp(2, 3)

    def test_equality(self):
        assert Timestamp(1, 1) == Timestamp(1, 1)


class TestBasicWriteRead:
    def test_write_then_read_everywhere(self):
        sim, hermes = cluster()
        results = {}

        def scenario():
            yield sim.spawn(hermes.write("k", "v1", coordinator_id=0))
            for rid in range(3):
                value = yield sim.spawn(hermes.read("k", rid))
                results[rid] = value

        sim.spawn(scenario())
        sim.run()
        assert results == {0: "v1", 1: "v1", 2: "v1"}
        assert hermes.writes_committed == 1

    def test_write_commit_waits_for_all_acks(self):
        sim, hermes = cluster(n=3, delay=100.0)
        commit_time = []

        def scenario():
            yield sim.spawn(hermes.write("k", "v", coordinator_id=0))
            commit_time.append(sim.now)

        sim.spawn(scenario())
        sim.run()
        # One INV delay (100us) must elapse before all ACKs are in.
        assert commit_time[0] >= 100.0

    def test_read_during_write_blocks_until_val(self):
        sim, hermes = cluster(n=2, delay=50.0)
        log = []

        def writer():
            yield sim.spawn(hermes.write("k", "v1", coordinator_id=0))
            yield sim.spawn(hermes.write("k", "v2", coordinator_id=0))

        def reader():
            # Wait until the second write's INV has landed but VAL hasn't.
            from repro.sim import Timeout

            yield Timeout(sim, 160.0)
            value = yield sim.spawn(hermes.read("k", 1))
            log.append((sim.now, value))

        sim.spawn(writer())
        sim.spawn(reader())
        sim.run()
        # The read returned the *committed* value, never a torn state.
        assert log[0][1] in ("v1", "v2")

    def test_read_unknown_key_returns_none(self):
        sim, hermes = cluster()

        def scenario():
            value = yield sim.spawn(hermes.read("missing", 0))
            return value

        proc = sim.spawn(scenario())
        sim.run()
        assert proc.value is None

    def test_dead_coordinator_rejected(self):
        sim, hermes = cluster()
        hermes.replicas[0].alive = False
        with pytest.raises(ConfigError):
            # write() raises before becoming a process.
            hermes.write("k", "v", coordinator_id=0)

    def test_needs_replicas(self):
        with pytest.raises(ConfigError):
            HermesCluster(Simulator(), 0)


class TestConcurrentWrites:
    def test_concurrent_writes_converge(self):
        sim, hermes = cluster(n=3)

        def writer(coordinator, value):
            yield sim.spawn(hermes.write("k", value, coordinator_id=coordinator))

        sim.spawn(writer(0, "from-0"))
        sim.spawn(writer(2, "from-2"))
        sim.run()
        finals = set()
        for rid in range(3):

            def read(rid=rid):
                value = yield sim.spawn(hermes.read("k", rid))
                finals.add(value)

            sim.spawn(read())
        sim.run()
        # All replicas agree on a single winner.
        assert len(finals) == 1
        assert finals.pop() in ("from-0", "from-2")

    def test_higher_timestamp_wins(self):
        sim, hermes = cluster(n=2)
        replica = hermes.replicas[0]
        replica.handle_inv("k", Timestamp(5, 0), "new")
        # A stale INV must be ACKed but not adopted.
        assert replica.handle_inv("k", Timestamp(3, 1), "old")
        assert replica.stale_invs_ignored == 1
        replica.handle_val("k", Timestamp(5, 0))
        hit, value = replica.try_read("k")
        assert hit and value == "new"

    def test_stale_val_ignored(self):
        sim, hermes = cluster(n=2)
        replica = hermes.replicas[0]
        replica.handle_inv("k", Timestamp(5, 0), "new")
        replica.handle_val("k", Timestamp(4, 0))  # stale VAL
        hit, _ = replica.try_read("k")
        assert not hit  # still invalid: the matching VAL hasn't arrived

    @settings(max_examples=20, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(st.integers(min_value=0, max_value=2),
                      st.integers(min_value=0, max_value=9)),
            min_size=1, max_size=12,
        )
    )
    def test_replicas_always_converge(self, writes):
        """Property: any concurrent write mix leaves all replicas with the
        same value and a VALID state once the dust settles."""
        sim, hermes = cluster(n=3)
        for coordinator, payload in writes:
            def one(coordinator=coordinator, payload=payload):
                yield sim.spawn(
                    hermes.write("k", f"v{payload}", coordinator_id=coordinator)
                )
            sim.spawn(one())
        sim.run()
        values = set()
        for replica in hermes.replicas:
            hit, value = replica.try_read("k")
            assert hit, "replica left invalid after all writes completed"
            values.add(value)
        assert len(values) == 1


class TestFailureReplay:
    def test_survivor_replays_interrupted_write(self):
        sim, hermes = cluster(n=3, delay=50.0)
        # Drive the INV phase manually so we can kill the coordinator
        # before VAL: replica 1 holds a pending INV.
        ts = Timestamp(7, 0)
        hermes.replicas[1].handle_inv("k", ts, "orphan")
        hermes.replicas[2].handle_inv("k", ts, "orphan")
        hermes.replicas[0].alive = False  # coordinator dies pre-VAL

        def replay():
            ok = yield sim.spawn(hermes.replay_write("k", surviving_id=1))
            return ok

        proc = sim.spawn(replay())
        sim.run()
        assert proc.value is True
        assert hermes.writes_replayed == 1
        for replica in hermes.replicas[1:]:
            hit, value = replica.try_read("k")
            assert hit and value == "orphan"

    def test_replay_without_pending_inv_is_noop(self):
        sim, hermes = cluster(n=2)

        def replay():
            ok = yield sim.spawn(hermes.replay_write("k", surviving_id=0))
            return ok

        proc = sim.spawn(replay())
        sim.run()
        assert proc.value is False

    def test_dead_replica_does_not_ack(self):
        sim, hermes = cluster(n=2)
        hermes.replicas[1].alive = False
        assert hermes.replicas[1].handle_inv("k", Timestamp(1, 0), "v") is False
