"""Tests for the flash block/page state machine."""

import pytest

from repro.errors import FlashError
from repro.flash import Block, PageState


class TestBlockLifecycle:
    def test_fresh_block_all_free(self):
        block = Block(0, 8)
        assert block.free_pages == 8
        assert block.valid_count == 0
        assert block.erase_count == 0
        assert all(block.page_state(p) is PageState.FREE for p in range(8))

    def test_program_is_sequential(self):
        block = Block(0, 4)
        assert [block.program_next() for _ in range(4)] == [0, 1, 2, 3]

    def test_program_full_block_fails(self):
        block = Block(0, 2)
        block.program_next()
        block.program_next()
        with pytest.raises(FlashError):
            block.program_next()

    def test_invalidate_transitions_state(self):
        block = Block(0, 4)
        page = block.program_next()
        block.invalidate(page)
        assert block.page_state(page) is PageState.INVALID
        assert block.valid_count == 0
        assert block.invalid_count == 1

    def test_invalidate_free_page_fails(self):
        block = Block(0, 4)
        with pytest.raises(FlashError):
            block.invalidate(0)

    def test_double_invalidate_fails(self):
        block = Block(0, 4)
        page = block.program_next()
        block.invalidate(page)
        with pytest.raises(FlashError):
            block.invalidate(page)

    def test_erase_requires_no_valid_pages(self):
        block = Block(0, 4)
        block.program_next()
        with pytest.raises(FlashError):
            block.erase()

    def test_erase_resets_and_bumps_wear(self):
        block = Block(0, 4)
        for _ in range(4):
            block.invalidate(block.program_next())
        block.erase()
        assert block.erase_count == 1
        assert block.free_pages == 4
        assert block.is_empty
        # Reusable after erase.
        assert block.program_next() == 0

    def test_valid_pages_listing(self):
        block = Block(0, 6)
        pages = [block.program_next() for _ in range(4)]
        block.invalidate(pages[1])
        block.invalidate(pages[3])
        assert block.valid_pages() == [0, 2]

    def test_out_of_range_page_rejected(self):
        block = Block(0, 4)
        with pytest.raises(FlashError):
            block.page_state(4)
        with pytest.raises(FlashError):
            block.invalidate(-1)

    def test_counts_are_consistent(self):
        block = Block(0, 10)
        for _ in range(7):
            block.program_next()
        for page in (0, 2, 4):
            block.invalidate(page)
        assert block.valid_count == 4
        assert block.invalid_count == 3
        assert block.free_pages == 3

    def test_zero_pages_rejected(self):
        with pytest.raises(FlashError):
            Block(0, 0)
