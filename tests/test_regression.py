"""Tests for the figure regression differ."""

import pytest

from repro.errors import ConfigError
from repro.experiments.figures import FigureResult
from repro.experiments.regression import compare_figures, compare_runs


def figure(rows, name="Figure 9"):
    return FigureResult(figure=name, title="t", columns=list(rows[0]), rows=rows)


class TestCompareFigures:
    def test_identical_runs_are_clean(self):
        a = figure([{"label": "20%", "p999": 100.0}])
        report = compare_figures(a, a)
        assert report.clean
        assert report.values_compared == 1

    def test_drift_detected(self):
        base = figure([{"label": "20%", "p999": 100.0}])
        cand = figure([{"label": "20%", "p999": 200.0}])
        report = compare_figures(base, cand, tolerance=0.25)
        assert not report.clean
        assert report.drifts[0].ratio == 2.0
        assert "2.00x" in report.describe()

    def test_within_tolerance_passes(self):
        base = figure([{"label": "x", "v": 100.0}])
        cand = figure([{"label": "x", "v": 110.0}])
        assert compare_figures(base, cand, tolerance=0.25).clean

    def test_missing_row_reported(self):
        base = figure([{"label": "a", "v": 1.0}, {"label": "b", "v": 2.0}])
        cand = figure([{"label": "a", "v": 1.0}])
        report = compare_figures(base, cand)
        assert report.missing_rows == [("Figure 9", "b")]

    def test_none_values_skipped(self):
        base = figure([{"label": "a", "v": None}])
        cand = figure([{"label": "a", "v": 5.0}])
        report = compare_figures(base, cand)
        assert report.values_compared == 0

    def test_zero_baseline_vs_nonzero_flags(self):
        base = figure([{"label": "a", "v": 0.0}])
        cand = figure([{"label": "a", "v": 5.0}])
        assert not compare_figures(base, cand).clean

    def test_rows_matched_by_labels_not_order(self):
        base = figure([{"label": "a", "v": 1.0}, {"label": "b", "v": 2.0}])
        cand = figure([{"label": "b", "v": 2.0}, {"label": "a", "v": 1.0}])
        assert compare_figures(base, cand).clean

    def test_tolerance_validated(self):
        a = figure([{"label": "x", "v": 1.0}])
        with pytest.raises(ConfigError):
            compare_figures(a, a, tolerance=0.0)


class TestCompareRuns:
    def test_missing_figure_reported(self):
        base = {"fig9": figure([{"label": "a", "v": 1.0}])}
        report = compare_runs(base, {})
        assert report.missing_figures == ["fig9"]
        assert not report.clean

    def test_multi_figure_merge(self):
        base = {
            "fig9": figure([{"label": "a", "v": 1.0}]),
            "fig10": figure([{"label": "a", "v": 10.0}], name="Figure 10"),
        }
        cand = {
            "fig9": figure([{"label": "a", "v": 1.0}]),
            "fig10": figure([{"label": "a", "v": 30.0}], name="Figure 10"),
        }
        report = compare_runs(base, cand)
        assert len(report.drifts) == 1
        assert report.drifts[0].figure == "Figure 10"

    def test_roundtrip_through_disk(self, tmp_path):
        from repro.experiments.results_io import load_figures, save_figures

        run = {"fig9": figure([{"label": "a", "v": 1.0}])}
        save_figures(run, str(tmp_path / "base"))
        save_figures(run, str(tmp_path / "cand"))
        report = compare_runs(
            load_figures(str(tmp_path / "base")),
            load_figures(str(tmp_path / "cand")),
        )
        assert report.clean
