"""Smoke tests: the example scripts must run end-to-end."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_coordinated_gc_deep_dive(self, capsys):
        load_example("coordinated_gc_deep_dive").main()
        out = capsys.readouterr().out
        assert "REDIRECTED" in out
        assert "DELAY" in out

    def test_wear_leveling_campaign(self, capsys):
        load_example("wear_leveling_campaign").main()
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "two-level" in out

    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "RackBlox read P99.9 improvement" in out

    def test_failure_drill(self, capsys):
        load_example("failure_drill").main()
        out = capsys.readouterr().out
        assert "heartbeat monitor detected" in out
        assert "healthy again" in out

    def test_hermes_consistency(self, capsys):
        load_example("hermes_consistency").main()
        out = capsys.readouterr().out
        assert "single winner by timestamp" in out
        assert "replayed the write: True" in out

    def test_kvstore_app(self, capsys):
        load_example("kvstore_app").main()
        out = capsys.readouterr().out
        assert "flushes" in out and "compactions" in out
        assert "GET P99.9 improvement" in out

    def test_multirack_extension(self, capsys):
        load_example("multirack_extension").main()
        out = capsys.readouterr().out
        assert "peer is stale" in out
        assert "cross-rack redirects" in out

    @pytest.mark.parametrize("name", [
        "quickstart",
        "coordinated_gc_deep_dive",
        "wear_leveling_campaign",
        "failure_drill",
        "device_network_pairing",
        "hermes_consistency",
        "kvstore_app",
        "multirack_extension",
    ])
    def test_examples_importable(self, name):
        module = load_example(name)
        assert hasattr(module, "main")
