"""Conservation and sanity invariants across the full rack.

End-to-end checks that hold for *every* system and workload: requests are
never lost or double-completed, INT never goes backwards, switch counters
add up, and flash accounting balances.
"""

import pytest

from repro.cluster import Rack, RackConfig, SystemType
from repro.experiments import run_rack_experiment
from repro.workloads import ycsb

ALL_SYSTEMS = (
    SystemType.VDC,
    SystemType.RACKBLOX_SOFTWARE,
    SystemType.RACKBLOX,
    SystemType.RACKBLOX_COORD_IO,
)


def run(system, write_ratio=0.5, requests=400, seed=17):
    config = RackConfig(system=system, num_servers=3, num_pairs=3, seed=seed)
    rack = Rack(config)
    result = run_rack_experiment(
        config, ycsb(write_ratio), requests_per_pair=requests, rack=rack
    )
    return rack, result


class TestRequestConservation:
    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_every_request_completes_exactly_once(self, system):
        rack, result = run(system)
        m = result.metrics
        total = m.read_total.count + m.write_total.count
        assert total == 3 * 400
        # No pending entries leaked.
        assert len(rack._pending) == 0

    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_switch_saw_every_data_packet(self, system):
        rack, result = run(system)
        m = result.metrics
        reads_at_switch = (
            rack.switch.reads_forwarded + rack.switch.reads_redirected
        )
        # Software redirects bypass the switch on the second leg, so the
        # switch sees each read exactly once regardless of system.
        assert reads_at_switch == m.read_total.count
        assert rack.switch.writes_forwarded == 2 * m.write_total.count

    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_servers_completed_what_they_received(self, system):
        rack, _ = run(system)
        # Every read a server accepted was served exactly once; software
        # redirects hand the request to the replica server, which then
        # counts it as received and completes it there.
        total_completed = sum(s.reads_completed for s in rack.servers)
        total_received = sum(s.reads_received for s in rack.servers)
        total_redirected = sum(s.software_redirects for s in rack.servers)
        assert total_completed == total_received - total_redirected


class TestLatencySanity:
    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_latencies_positive_and_bounded(self, system):
        _, result = run(system)
        for recorder in (result.metrics.read_total, result.metrics.write_total):
            if recorder.count == 0:
                continue
            assert min(recorder.values) > 0
            assert recorder.max() < 10_000_000  # < 10 simulated seconds

    def test_storage_component_never_exceeds_total(self):
        _, result = run(SystemType.RACKBLOX)
        m = result.metrics
        # Aggregate property (per-request pairing is not retained).
        assert m.read_storage.mean() <= m.read_total.mean()
        assert m.read_storage.p999() <= m.read_total.p999()


class TestFlashAccounting:
    @pytest.mark.parametrize("system", (SystemType.VDC, SystemType.RACKBLOX))
    def test_ftl_invariants_after_run(self, system):
        rack, _ = run(system, write_ratio=0.7, requests=600)
        for vssd in rack.vssd_by_id.values():
            vssd.ftl.check_invariants()
            assert 0.0 <= vssd.free_block_ratio() <= 1.0

    def test_write_amplification_reasonable(self):
        rack, _ = run(SystemType.RACKBLOX, write_ratio=0.8, requests=800)
        for vssd in rack.vssd_by_id.values():
            wa = vssd.ftl.write_amplification()
            assert 1.0 <= wa < 5.0, vssd.name

    def test_gc_never_loses_mapped_pages(self):
        rack, _ = run(SystemType.RACKBLOX, write_ratio=0.7, requests=600)
        for vssd in rack.vssd_by_id.values():
            valid_pages = sum(
                b.valid_count for chip in vssd.ftl.chips for b in chip.blocks
            )
            assert valid_pages == vssd.ftl.mapped_page_count()
