"""Hello negotiation matrix (satellite #3, PR 6).

Three fleets against the same servers:

* a **v1-only client** that never says hello (or says ``v: 1``) must see
  a byte-for-byte JSON wire -- not a single binary frame, ever;
* a **bin-capable client** negotiates via hello and flips to the binary
  codec for the hot ops, with JSON fallback for everything else;
* a **mixed fleet** shares one server, each connection keeping its own
  codec -- negotiation is per-connection state, never global.

Plus the downgrade row: a server that does not advertise ``bin`` keeps
``auto`` clients on JSON and makes ``bin``-demanding clients fail loudly.
"""

import asyncio

import pytest

from repro.cluster.config import RackConfig, SystemType
from repro.service import protocol
from repro.service.client import ServiceClient, ServiceError
from repro.service.router import ShardedRackService, ShardRouter
from repro.service.server import RackService

pytestmark = pytest.mark.service


def small_config(**overrides) -> RackConfig:
    defaults = dict(system=SystemType("rackblox"), num_servers=2,
                    num_pairs=2, seed=11)
    defaults.update(overrides)
    return RackConfig(**defaults)


async def _start_service(service_cls=RackService) -> RackService:
    service = service_cls(small_config(), port=0, chunk_us=2000.0)
    await service.start()
    return service


class JsonOnlyService(RackService):
    """A pre-PR-6 server: speaks the protocol but never offers 'bin'."""

    def _capabilities(self) -> list:
        return [c for c in super()._capabilities() if c != "bin"]


async def _raw_exchange(port: int, frames, expect: int):
    """Write raw frames, collect ``expect`` response frames as bytes."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        for frame in frames:
            writer.write(frame)
        await writer.drain()
        splitter = protocol.FrameSplitter()
        out = []
        while len(out) < expect:
            data = await asyncio.wait_for(reader.read(1 << 16), timeout=10)
            if not data:
                raise AssertionError(f"EOF after {len(out)}/{expect} frames")
            out.extend(bytes(f) for f in splitter.feed(data))
        return out
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _decode_all(frames):
    decoder = protocol.FrameDecoder()
    return [m for f in frames for m in decoder.feed(f)]


class TestV1ClientUntouched:
    def test_no_hello_client_sees_pure_json_wire(self):
        # The strictest compatibility row: a client that never says
        # hello (plain v1 traffic) must get a wire with zero binary
        # bytes -- every response frame is length-prefixed JSON.
        async def scenario():
            service = await _start_service()
            try:
                return await _raw_exchange(service.port, [
                    protocol.encode_frame(
                        {"type": "read", "pair": 0, "lpn": 1, "id": 1}),
                    protocol.encode_frame(
                        {"type": "put", "key": "k", "value": "v", "id": 2}),
                    protocol.encode_frame({"type": "get", "key": "k",
                                           "id": 3}),
                ], expect=3)
            finally:
                await service.stop()

        frames = asyncio.run(scenario())
        assert all(not protocol.frame_is_binary(f) for f in frames)
        responses = {m["id"]: m for m in _decode_all(frames)}
        assert set(responses) == {1, 2, 3}
        assert all(m["ok"] for m in responses.values())
        assert responses[3]["value"] == "v"

    def test_v1_hello_client_sees_pure_json_wire(self):
        # Saying hello with v=1 is still v1 traffic: the server may
        # advertise 'bin', but unless the *client* switches codecs the
        # responses stay JSON.
        async def scenario():
            service = await _start_service()
            try:
                return await _raw_exchange(service.port, [
                    protocol.encode_frame({"type": "hello", "v": 1,
                                           "id": 1}),
                    protocol.encode_frame(
                        {"type": "read", "pair": 0, "lpn": 1, "id": 2}),
                ], expect=2)
            finally:
                await service.stop()

        frames = asyncio.run(scenario())
        assert all(not protocol.frame_is_binary(f) for f in frames)
        hello, read = _decode_all(frames)
        assert "bin" in hello["capabilities"]
        assert read["ok"] and read["id"] == 2


class TestBinCapableClient:
    def test_binary_requests_get_binary_responses(self):
        # After the hello advertises 'bin', a binary request is
        # answered in binary; a JSON request on the *same connection*
        # is still answered in JSON (codec symmetry is per request).
        async def scenario():
            service = await _start_service()
            try:
                return await _raw_exchange(service.port, [
                    protocol.encode_frame(
                        {"type": "hello", "v": 2, "id": 1}),
                    protocol.BIN_CODEC.encode(
                        {"type": "write", "pair": 0, "lpn": 3, "id": 2}),
                    protocol.encode_frame(
                        {"type": "read", "pair": 0, "lpn": 3, "id": 3}),
                    protocol.BIN_CODEC.encode(
                        {"type": "get", "key": "missing", "id": 4}),
                ], expect=4)
            finally:
                await service.stop()

        frames = asyncio.run(scenario())
        by_id = {m["id"]: (m, protocol.frame_is_binary(f))
                 for f in frames for m in _decode_all([f])}
        hello, hello_bin = by_id[1]
        assert "bin" in hello["capabilities"] and not hello_bin
        write, write_bin = by_id[2]
        assert write["ok"] and write_bin
        read, read_bin = by_id[3]
        assert read["ok"] and not read_bin  # JSON in, JSON out
        get, get_bin = by_id[4]
        assert get["ok"] and get["found"] is False and get_bin

    def test_service_client_auto_negotiates(self):
        async def scenario():
            service = await _start_service()
            try:
                async with ServiceClient("127.0.0.1", service.port,
                                         wire_protocol="auto") as c:
                    await c.write(0, 1)
                    read = await c.read(0, 1)
                    stats = await c.stats()
                    return c.negotiated_protocol, read, stats
            finally:
                await service.stop()

        negotiated, read, stats = asyncio.run(scenario())
        assert negotiated == "bin"
        assert read["ok"]
        assert stats["client"]["bytes_sent"] > 0
        assert stats["client"]["bytes_received"] > 0


class TestMixedFleet:
    def test_json_auto_and_bin_clients_share_one_server(self):
        # Per-connection negotiation: three codec policies, one server,
        # interleaved traffic, and every client both succeeds and ends
        # up on the codec its policy dictates.
        async def scenario():
            service = await _start_service()
            try:
                clients = {
                    mode: ServiceClient("127.0.0.1", service.port,
                                        wire_protocol=mode)
                    for mode in ("json", "auto", "bin")
                }
                for c in clients.values():
                    await c.connect()
                try:
                    async def worker(mode, c):
                        for i in range(8):
                            await c.write(i % 2, i)
                            await c.read(i % 2, i)
                        await c.put(f"key-{mode}", mode)
                        got = await c.get(f"key-{mode}")
                        return got["value"]

                    values = await asyncio.gather(*(
                        worker(mode, c) for mode, c in clients.items()
                    ))
                    negotiated = {mode: c.negotiated_protocol
                                  for mode, c in clients.items()}
                    return values, negotiated
                finally:
                    for c in clients.values():
                        await c.close()
            finally:
                await service.stop()

        values, negotiated = asyncio.run(scenario())
        assert values == ["json", "auto", "bin"]
        assert negotiated == {"json": "json", "auto": "bin", "bin": "bin"}

    def test_mixed_fleet_against_sharded_proxy(self):
        # The proxy advertises 'bin' too: a JSON and a binary client
        # both reach the same 2-rack fleet through it.
        async def scenario():
            router = ShardRouter.from_config(
                small_config(), racks=2, precondition=False,
                chunk_us=2000.0,
            )
            service = ShardedRackService(router, port=0)
            await service.start()
            try:
                async with ServiceClient("127.0.0.1", service.port,
                                         wire_protocol="auto") as b, \
                        ServiceClient("127.0.0.1", service.port) as j:
                    writes = [await b.write(g, 1) for g in range(4)]
                    reads = [await j.read(g, 1) for g in range(4)]
                    return (b.negotiated_protocol, j.negotiated_protocol,
                            {w["rack"] for w in writes},
                            {r["rack"] for r in reads})
            finally:
                await service.stop()

        bin_proto, json_proto, write_racks, read_racks = asyncio.run(
            scenario())
        assert (bin_proto, json_proto) == ("bin", "json")
        assert write_racks == read_racks == {0, 1}


class TestDowngrade:
    def test_auto_falls_back_to_json_on_a_v1_server(self):
        async def scenario():
            service = await _start_service(JsonOnlyService)
            try:
                async with ServiceClient("127.0.0.1", service.port,
                                         wire_protocol="auto") as c:
                    await c.write(0, 1)
                    return c.negotiated_protocol, await c.read(0, 1)
            finally:
                await service.stop()

        negotiated, read = asyncio.run(scenario())
        assert negotiated == "json"
        assert read["ok"]

    def test_bin_demanding_client_fails_loudly(self):
        async def scenario():
            service = await _start_service(JsonOnlyService)
            try:
                client = ServiceClient("127.0.0.1", service.port,
                                       wire_protocol="bin")
                try:
                    await client.connect()
                except ServiceError as exc:
                    return exc
                finally:
                    await client.close()
            finally:
                await service.stop()

        exc = asyncio.run(scenario())
        assert isinstance(exc, ServiceError)
        assert "bin" in exc.message

    def test_invalid_wire_protocol_rejected_up_front(self):
        with pytest.raises(ValueError):
            ServiceClient(wire_protocol="binary")
