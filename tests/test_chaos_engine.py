"""Tests for the deterministic fault-injection engine (tentpole).

Covers the three integration layers: schedules armed through
``RackConfig`` fire inside a bare :class:`Rack`, the batch experiment
engine replays them bit-for-bit (serial and through the process pool),
and the ``repro.cli chaos`` subcommand reports CLEAN on a healthy
crash->redirect->recover scenario.
"""

import pytest

from repro.chaos import FaultEvent, FaultSchedule
from repro.chaos.invariants import InvariantChecker, resolve_read_destination
from repro.chaos.runner import run_chaos_experiment
from repro.cluster.config import RackConfig, SystemType
from repro.cluster.rack import Rack
from repro.errors import ConfigError
from repro.workloads.spec import ycsb

MS = 1000.0

pytestmark = pytest.mark.chaos


def crash_recover_schedule(crash_at=20.0 * MS, recover_at=120.0 * MS,
                           target="server:0") -> FaultSchedule:
    return FaultSchedule(
        events=(
            FaultEvent(crash_at, "server_crash", target),
            FaultEvent(recover_at, "server_recover", target),
        ),
        heartbeat_interval_us=2.0 * MS,
        miss_threshold=2,
    )


def chaos_config(schedule, servers=3, pairs=2, seed=11) -> RackConfig:
    return RackConfig(
        system=SystemType.RACKBLOX,
        num_servers=servers,
        num_pairs=pairs,
        seed=seed,
        fault_schedule=schedule,
    )


def stable_summary(result):
    """An experiment summary minus the wall-clock-dependent keys."""
    return {
        k: v for k, v in result.summary().items()
        if k not in ("wall_clock_s", "events_per_sec")
    }


class TestInjectorOnBareRack:
    def test_rack_config_arms_the_schedule(self):
        rack = Rack(chaos_config(crash_recover_schedule()))
        assert rack.chaos is not None
        assert rack.failure_manager is not None
        assert rack.failure_manager.heartbeat_interval_us == 2.0 * MS

    def test_no_schedule_means_no_chaos(self):
        rack = Rack(chaos_config(None))
        assert rack.chaos is None and rack.failure_manager is None

    def test_crash_fires_at_exact_instant_and_is_detected(self):
        rack = Rack(chaos_config(crash_recover_schedule()))
        rack.sim.run(until=19.0 * MS)
        victim = rack.servers[0]
        assert victim.alive
        rack.sim.run(until=30.0 * MS)  # past crash + detection bound
        assert not victim.alive
        assert victim.ip in rack.failed_ips
        detected = rack.failure_manager.detected_at[victim.ip]
        assert 20.0 * MS < detected <= 20.0 * MS + rack.failure_manager.detection_delay_us

    def test_recover_clears_failure_state(self):
        rack = Rack(chaos_config(crash_recover_schedule()))
        rack.sim.run(until=140.0 * MS)
        victim = rack.servers[0]
        assert victim.alive and victim.ip not in rack.failed_ips
        assert rack.chaos.counters()["recoveries"] == 1.0

    def test_outage_redirects_reads_to_replica(self):
        rack = Rack(chaos_config(crash_recover_schedule()))
        rack.sim.run(until=40.0 * MS)  # inside the detected outage
        victim_ip = rack.servers[0].ip
        for pair in rack.pairs:
            if victim_ip not in (pair.primary_server_ip,
                                 pair.replica_server_ip):
                continue
            vssd = (pair.primary if pair.primary_server_ip == victim_ip
                    else pair.replica)
            dest, redirected = resolve_read_destination(
                rack.switch, vssd.vssd_id
            )
            assert redirected and dest != victim_ip

    def test_link_degrade_applies_and_restores(self):
        sched = FaultSchedule(events=(
            FaultEvent(10.0 * MS, "link_degrade", "all", (("factor", 4.0),)),
            FaultEvent(30.0 * MS, "link_restore", "all"),
        ))
        rack = Rack(chaos_config(sched))
        rack.sim.run(until=20.0 * MS)
        assert rack.latency.degradation == 4.0
        assert rack.degraded()
        rack.sim.run(until=40.0 * MS)
        assert rack.latency.degradation == 1.0
        assert not rack.degraded()

    def test_degradation_multiplies_samples_exactly(self):
        import random

        from repro.net.latency import MEDIUM_NETWORK, LatencyProcess

        base = LatencyProcess(MEDIUM_NETWORK, random.Random(5))
        scaled = LatencyProcess(MEDIUM_NETWORK, random.Random(5))
        scaled.set_degradation(4.0)
        for i in range(50):
            assert scaled.sample(i * 100.0) == pytest.approx(
                4.0 * base.sample(i * 100.0)
            )

    def test_factor_one_run_is_byte_identical_to_no_chaos(self):
        # Degrading by 1.0 consumes no RNG draws, so the run replays
        # exactly as if the link events were never scheduled.
        sched = FaultSchedule(events=(
            FaultEvent(5.0 * MS, "link_degrade", "all", (("factor", 1.0),)),
        ))
        plain = Rack(chaos_config(None))
        chaotic = Rack(chaos_config(sched))
        for rack in (plain, chaotic):
            rack.sim.run(until=10.0 * MS)
        assert (plain.latency.sample(10.0 * MS)
                == chaotic.latency.sample(10.0 * MS))

    def test_channel_stall_and_jitter_execute_and_restore(self):
        sched = FaultSchedule(events=(
            FaultEvent(5.0 * MS, "channel_stall", "server:1",
                       (("duration_us", 2.0 * MS),)),
            FaultEvent(10.0 * MS, "heartbeat_jitter", "",
                       (("factor", 4.0), ("duration_us", 20.0 * MS))),
        ))
        rack = Rack(chaos_config(sched))
        rack.sim.run(until=15.0 * MS)
        assert rack.failure_manager.heartbeat_interval_us == 8.0 * MS
        rack.sim.run(until=40.0 * MS)
        assert rack.failure_manager.heartbeat_interval_us == 2.0 * MS
        kinds = [kind for _, kind, _ in rack.chaos.executed]
        assert "channel_stall" in kinds and "heartbeat_jitter" in kinds

    def test_bad_target_surfaces_config_error(self):
        sched = crash_recover_schedule(target="server:99")
        rack = Rack(chaos_config(sched))
        with pytest.raises(ConfigError):
            rack.sim.run(until=30.0 * MS)


class TestInvariantChecker:
    def test_fabricated_lost_write_is_flagged(self):
        rack = Rack(chaos_config(None))
        checker = InvariantChecker(rack)
        # Claim an ack for an in-range page that was never written.
        checker.note_acked_write(rack.pairs[0], 5000)
        assert checker.check_durable_writes("fabricated") == 1
        assert checker.lost_acked_writes == 1

    def test_durable_write_passes_when_mapped(self):
        rack = Rack(chaos_config(None))
        pair = rack.pairs[0]
        pair.primary.ftl.place_write(7)
        checker = InvariantChecker(rack)
        checker.note_acked_write(pair, 7)
        assert checker.check_durable_writes("mapped") == 0

    def test_tampered_switch_table_is_flagged(self):
        rack = Rack(chaos_config(None))
        checker = InvariantChecker(rack)
        assert checker.check_switch_tables("pristine") == 0
        rack.switch.replica_table.remove(rack.pairs[0].primary.vssd_id)
        assert checker.check_switch_tables("tampered") > 0


class TestBatchEngineDeterminism:
    def test_chaos_experiment_replays_identically(self):
        schedule = crash_recover_schedule()
        runs = []
        for _ in range(2):
            result, report = run_chaos_experiment(
                chaos_config(schedule), ycsb(0.5),
                requests_per_pair=200, rate_iops_per_pair=4000.0,
            )
            runs.append((stable_summary(result), report))
        assert runs[0][0] == runs[1][0]
        assert runs[0][1].as_dict() == runs[1][1].as_dict()
        assert runs[0][1].describe() == runs[1][1].describe()

    def test_crash_recover_scenario_is_clean(self):
        result, report = run_chaos_experiment(
            chaos_config(crash_recover_schedule()), ycsb(0.5),
            requests_per_pair=200, rate_iops_per_pair=4000.0,
        )
        c = report.counters
        assert report.clean, report.describe()
        assert c["crashes"] == 1.0 and c["recoveries"] == 1.0
        assert c["detections"] == 1.0
        assert 0.0 < c["mttr_mean_us"] <= report.detection_delay_bound_us
        assert c["lost_acked_writes"] == 0.0
        assert c["window_reads"] > 0
        assert c["window_read_availability_pct"] >= 99.0
        # The outage is visible in the data plane: reads were redirected.
        assert report.metrics_summary.get("redirected_reads", 0.0) > 0
        # Chaos counters surface through ExperimentMetrics.summary().
        assert result.summary()["chaos_crashes"] == 1.0

    def test_requires_armed_schedule(self):
        with pytest.raises(ConfigError):
            run_chaos_experiment(chaos_config(None), ycsb(0.5))

    def test_serial_and_parallel_runner_agree(self):
        from repro.experiments.parallel import (
            ParallelRunner,
            RunCache,
            RunSpec,
        )

        spec = RunSpec.create(
            SystemType.RACKBLOX, ycsb(0.5), 150, 4000.0, 11,
            num_servers=3, num_pairs=2,
            fault_schedule=crash_recover_schedule(),
        )
        serial = spec.execute()
        pooled = ParallelRunner(jobs=2, cache=RunCache()).run_specs([spec])[0]
        assert stable_summary(serial) == stable_summary(pooled)
        # The chaos counters crossed the process boundary too.
        assert stable_summary(pooled)["chaos_crashes"] == 1.0


class TestChaosCli:
    def _write_schedule(self, tmp_path):
        path = tmp_path / "schedule.json"
        path.write_text(crash_recover_schedule().to_json(), encoding="utf-8")
        return str(path)

    def test_cli_reports_clean_and_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["chaos", "--schedule", self._write_schedule(tmp_path),
                   "--servers", "3", "--pairs", "2",
                   "--requests", "150", "--rate", "4000", "--seed", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verdict: CLEAN" in out
        assert "server_crash" in out and "server_recover" in out

    def test_cli_runs_replay_identically(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_schedule(tmp_path)
        args = ["chaos", "--schedule", path, "--servers", "3",
                "--pairs", "2", "--requests", "120", "--rate", "4000"]
        main(args)
        first = capsys.readouterr().out
        main(args)
        second = capsys.readouterr().out
        assert first == second

    def test_cli_json_output(self, tmp_path, capsys):
        import json

        from repro.cli import main

        rc = main(["chaos", "--schedule", self._write_schedule(tmp_path),
                   "--servers", "3", "--pairs", "2", "--requests", "100",
                   "--rate", "4000", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["counters"]["crashes"] == 1.0
        assert payload["violations"] == []

    def test_cli_rejects_missing_schedule(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["chaos", "--schedule", str(tmp_path / "nope.json")])
        assert rc == 2
