"""Property-based tests of the switch data plane's state machine.

Drives random sequences of gc_op and read packets through Algorithm 1 and
checks the invariants the design depends on:

* the two tables' GC bits never disagree after a packet completes;
* a read is redirected iff its vSSD is collecting and its replica is not;
* redirected reads always land on the replica's registered server.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.net.packet import GcKind, OpType, Packet, gc_op
from repro.switch import SwitchControlPlane, SwitchDataPlane

VSSD_A, VSSD_B = 1, 2
IP_A, IP_B = "10.0.0.16", "10.0.0.20"


class SwitchMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.plane = SwitchDataPlane()
        cp = SwitchControlPlane(self.plane)
        cp.register_vssd(VSSD_A, IP_A, VSSD_B, IP_B)
        cp.register_vssd(VSSD_B, IP_B, VSSD_A, IP_A)
        #: Our model of who is collecting, updated from switch replies.
        self.collecting = {VSSD_A: False, VSSD_B: False}

    def _send_gc(self, vssd_id: int, kind: GcKind) -> GcKind:
        src = IP_A if vssd_id == VSSD_A else IP_B
        action = self.plane.process_packet(gc_op(vssd_id, kind, src=src))
        return action.packet.gc_kind

    @rule(vssd=st.sampled_from([VSSD_A, VSSD_B]))
    def soft_request(self, vssd):
        if self.collecting[vssd]:
            return  # a collecting vSSD would not re-request
        reply = self._send_gc(vssd, GcKind.SOFT)
        other = VSSD_B if vssd == VSSD_A else VSSD_A
        if self.collecting[other]:
            assert reply is GcKind.DELAY, (
                "soft GC must be delayed while the replica collects"
            )
        else:
            assert reply is GcKind.ACCEPT
            self.collecting[vssd] = True

    @rule(vssd=st.sampled_from([VSSD_A, VSSD_B]))
    def regular_request(self, vssd):
        if self.collecting[vssd]:
            return
        reply = self._send_gc(vssd, GcKind.REGULAR)
        assert reply is GcKind.ACCEPT, "regular GC is never denied"
        self.collecting[vssd] = True

    @rule(vssd=st.sampled_from([VSSD_A, VSSD_B]))
    def finish(self, vssd):
        if not self.collecting[vssd]:
            return
        self._send_gc(vssd, GcKind.FINISH)
        self.collecting[vssd] = False

    @rule(vssd=st.sampled_from([VSSD_A, VSSD_B]))
    def read(self, vssd):
        other = VSSD_B if vssd == VSSD_A else VSSD_A
        action = self.plane.process_packet(Packet(op=OpType.READ, vssd_id=vssd))
        should_redirect = self.collecting[vssd] and not self.collecting[other]
        assert action.redirected == should_redirect
        if action.redirected:
            expected_ip = IP_B if other == VSSD_B else IP_A
            assert action.dst_ip == expected_ip
            assert action.packet.vssd_id == other

    @rule(vssd=st.sampled_from([VSSD_A, VSSD_B]))
    def write(self, vssd):
        action = self.plane.process_packet(Packet(op=OpType.WRITE, vssd_id=vssd))
        assert not getattr(action, "redirected", False)

    @invariant()
    def tables_agree(self):
        for vssd in (VSSD_A, VSSD_B):
            assert (
                self.plane.replica_table.gc_status(vssd)
                == self.plane.destination_table.gc_status(vssd)
            ), "replica/destination GC bits diverged"

    @invariant()
    def switch_matches_model(self):
        for vssd in (VSSD_A, VSSD_B):
            assert self.plane.replica_table.gc_status(vssd) == int(
                self.collecting[vssd]
            )


TestSwitchStateMachine = SwitchMachine.TestCase
TestSwitchStateMachine.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
