"""Unit tests for the emulator-validation helpers (cheap checks only;
the full battery runs in benchmarks/test_validation_emulator.py)."""

import pytest

from repro.experiments.validation import (
    ValidationRow,
    _single_op_latencies,
    validation_table,
)
from repro.flash.timing import OPTANE


class TestValidationRow:
    def test_error_percentage(self):
        row = ValidationRow("x", expected=100.0, measured=105.0)
        assert row.error_pct == pytest.approx(5.0)
        assert row.ok

    def test_deviation_flagged(self):
        row = ValidationRow("x", expected=100.0, measured=150.0)
        assert not row.ok

    def test_zero_expected(self):
        row = ValidationRow("x", expected=0.0, measured=1.0)
        assert row.error_pct == 0.0


class TestSingleOpChecks:
    def test_latencies_exact_for_optane(self):
        rows = _single_op_latencies(OPTANE)
        assert all(row.error_pct < 0.01 for row in rows)
        names = [row.check for row in rows]
        assert any("program" in n for n in names)
        assert any("read" in n for n in names)


class TestTableRendering:
    def test_table_contains_flags(self):
        rows = [
            ValidationRow("good", 10.0, 10.0),
            ValidationRow("bad", 10.0, 20.0),
        ]
        table = validation_table(rows)
        assert "ok" in table and "DEVIATION" in table
