"""Tests for LSM range scans (the YCSB-E primitive)."""

from tests.test_kvstore_lsm import make_lsm, run


class TestScan:
    def _loaded(self):
        sim, lsm = make_lsm(memtable_entries=4, level_fanout=2)
        for i in range(20):
            run(sim, lsm.put(f"key{i:03d}", f"v{i}"))
        return sim, lsm

    def test_scan_returns_sorted_range(self):
        sim, lsm = self._loaded()
        results = run(sim, lsm.scan("key005", 5))
        keys = [k for k, _ in results]
        assert keys == ["key005", "key006", "key007", "key008", "key009"]
        assert results[0][1] == "v5"

    def test_scan_spans_memtable_and_tables(self):
        sim, lsm = self._loaded()
        # Last keys are still in the memtable; early ones are on flash.
        results = run(sim, lsm.scan("key000", 20))
        assert len(results) == 20

    def test_scan_charges_page_reads(self):
        sim, lsm = self._loaded()
        run(sim, lsm.flush())  # everything on flash
        before = lsm.pages_read
        run(sim, lsm.scan("key000", 8))
        assert lsm.pages_read > before

    def test_scan_sees_newest_version(self):
        sim, lsm = self._loaded()
        run(sim, lsm.put("key003", "fresh"))
        results = dict(run(sim, lsm.scan("key003", 1)))
        assert results["key003"] == "fresh"

    def test_scan_skips_tombstones(self):
        sim, lsm = self._loaded()
        run(sim, lsm.delete("key006"))
        results = run(sim, lsm.scan("key005", 3))
        keys = [k for k, _ in results]
        assert "key006" not in keys
        assert keys == ["key005", "key007", "key008"]

    def test_scan_past_end(self):
        sim, lsm = self._loaded()
        results = run(sim, lsm.scan("key018", 10))
        assert [k for k, _ in results] == ["key018", "key019"]

    def test_empty_range(self):
        sim, lsm = self._loaded()
        assert run(sim, lsm.scan("zzz", 5)) == []

    def test_validation(self):
        sim, lsm = self._loaded()
        proc = sim.spawn(lsm.scan("a", 0))
        sim.run()
        assert proc.triggered and not proc.ok  # ConfigError inside
