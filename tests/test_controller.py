"""Tests for the VDC controller and the GC coordinators."""

import pytest

from repro.cluster.controller import VdcController
from repro.cluster.coordinators import SwitchGcCoordinator
from repro.errors import ConfigError
from repro.flash import FlashGeometry, Ssd
from repro.server.gc_monitor import GcMonitor
from repro.sim import Simulator
from repro.sim.core import MSEC
from repro.switch import SwitchControlPlane, SwitchDataPlane
from repro.vssd import VssdAllocator


class TestVdcController:
    def test_epoch_allocations_follow_demand(self):
        sim = Simulator()
        controller = VdcController(sim, epoch_us=10 * MSEC)
        controller.note_demand("tenant-a", 30)
        controller.note_demand("tenant-b", 10)
        sim.run(until=11 * MSEC)
        assert controller.epochs == 1
        assert controller.allocations["tenant-a"] == pytest.approx(0.75)
        assert controller.allocations["tenant-b"] == pytest.approx(0.25)

    def test_plain_vdc_always_accepts_gc(self):
        sim = Simulator()
        controller = VdcController(sim, gc_aware=False)
        verdict, redirect = controller.decide_gc(1, "soft")
        assert verdict == "accept" and redirect is None

    def test_gc_aware_returns_redirect_target(self):
        sim = Simulator()
        controller = VdcController(sim, gc_aware=True)
        controller.register_pair(1, 2, "10.0.0.20")
        verdict, redirect = controller.decide_gc(1, "soft")
        assert verdict == "accept"
        assert redirect == "10.0.0.20"
        assert controller.is_collecting(1)

    def test_gc_aware_delays_when_replica_collecting(self):
        sim = Simulator()
        controller = VdcController(sim, gc_aware=True)
        controller.register_pair(1, 2, "10.0.0.20")
        controller.register_pair(2, 1, "10.0.0.16")
        controller.decide_gc(2, "soft")  # replica starts collecting
        verdict, redirect = controller.decide_gc(1, "soft")
        assert verdict == "delay" and redirect is None
        assert controller.gc_delays == 1

    def test_regular_gc_never_delayed(self):
        sim = Simulator()
        controller = VdcController(sim, gc_aware=True)
        controller.register_pair(1, 2, "b")
        controller.register_pair(2, 1, "a")
        controller.decide_gc(2, "regular")
        verdict, _ = controller.decide_gc(1, "regular")
        assert verdict == "accept"

    def test_finish_clears_state(self):
        sim = Simulator()
        controller = VdcController(sim, gc_aware=True)
        controller.register_pair(1, 2, "b")
        controller.decide_gc(1, "soft")
        controller.finish_gc(1)
        assert not controller.is_collecting(1)

    def test_unregistered_vssd_rejected_when_aware(self):
        sim = Simulator()
        controller = VdcController(sim, gc_aware=True)
        with pytest.raises(ConfigError):
            controller.decide_gc(99, "soft")

    def test_round_trip_takes_time(self):
        # The controller runs a perpetual epoch loop, so drive the clock
        # with an explicit horizon rather than draining the heap.
        sim = Simulator()
        controller = VdcController(sim)
        done = sim.spawn(controller.round_trip())
        sim.run(until=10 * MSEC)
        assert done.triggered
        assert done.value is None

    def test_custom_latency_fn(self):
        sim = Simulator()
        controller = VdcController(sim, latency_fn=lambda: 500.0)
        done = sim.spawn(controller.round_trip())
        sim.run(until=900.0)
        assert not done.triggered  # 2x500us + processing > 900us
        sim.run(until=2 * MSEC)
        assert done.triggered

    def test_epoch_validation(self):
        with pytest.raises(ConfigError):
            VdcController(Simulator(), epoch_us=0)


def make_switch_world():
    sim = Simulator()
    plane = SwitchDataPlane()
    cp = SwitchControlPlane(plane)
    geo = FlashGeometry(channels=2, chips_per_channel=2, blocks_per_chip=32,
                        pages_per_block=8)
    vssds = []
    for i, ip in enumerate(("10.0.0.16", "10.0.0.20")):
        ssd = Ssd(sim, f"ssd-{i}", geometry=geo)
        vssd = VssdAllocator(ssd).create_hardware_isolated("v", channels=[0, 1])
        vssds.append((vssd, ip))
    (v1, ip1), (v2, ip2) = vssds
    cp.register_vssd(v1.vssd_id, ip1, v2.vssd_id, ip2)
    cp.register_vssd(v2.vssd_id, ip2, v1.vssd_id, ip1)
    return sim, plane, v1, v2, ip1, ip2


class TestSwitchGcCoordinator:
    def test_request_round_trip(self):
        sim, plane, v1, v2, ip1, _ = make_switch_world()
        coordinator = SwitchGcCoordinator(sim, plane, ip1)
        proc = sim.spawn(coordinator.request_gc(v1, "soft"))
        sim.run()
        assert proc.value == "accept"
        assert plane.replica_table.gc_status(v1.vssd_id) == 1
        assert sim.now > 0  # wire hops took time

    def test_finish_notification(self):
        sim, plane, v1, v2, ip1, _ = make_switch_world()
        coordinator = SwitchGcCoordinator(sim, plane, ip1)
        sim.spawn(coordinator.request_gc(v1, "regular"))
        sim.run()
        sim.spawn(coordinator.notify_finish(v1))
        sim.run()
        assert plane.replica_table.gc_status(v1.vssd_id) == 0

    def test_background_notification_sets_bit(self):
        sim, plane, v1, v2, ip1, _ = make_switch_world()
        coordinator = SwitchGcCoordinator(sim, plane, ip1)
        sim.spawn(coordinator.notify_background(v1))
        sim.run()
        assert plane.destination_table.gc_status(v1.vssd_id) == 1

    def test_dropped_packets_reported_as_lost(self):
        import random

        sim, plane, v1, v2, ip1, _ = make_switch_world()
        coordinator = SwitchGcCoordinator(
            sim, plane, ip1, drop_rng=random.Random(1), drop_probability=1.0
        )
        proc = sim.spawn(coordinator.request_gc(v1, "regular"))
        sim.run()
        assert proc.value == "lost"
        assert coordinator.packets_dropped == 1

    def test_monitor_forces_regular_gc_after_retries(self):
        """§3.5.1: regular GC executes after 3 unacknowledged retries."""
        import random

        sim, plane, v1, v2, ip1, _ = make_switch_world()
        # Make the vSSD genuinely below the hard threshold.
        working_set = max(1, v1.logical_pages // 4)
        lpn = 0
        while v1.free_block_ratio() >= v1.gc_policy.gc_threshold:
            v1.ftl.place_write(lpn % working_set)
            lpn += 1
        coordinator = SwitchGcCoordinator(
            sim, plane, ip1, drop_rng=random.Random(1), drop_probability=1.0
        )
        monitor = GcMonitor(sim, [v1], coordinator, check_interval_us=5 * MSEC)
        sim.spawn(monitor.check_all_once())
        sim.run(until=sim.now + 500 * MSEC)
        assert coordinator.packets_dropped >= 3
        assert monitor.forced_after_retries == 1
        assert v1.gc_runs == 1  # GC ran anyway
