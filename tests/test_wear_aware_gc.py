"""Tests for device-level wear-aware GC (local wear leveling)."""

import random

import pytest

from repro.flash import FlashChip, GreedyGcPolicy, PageMappedFtl, WearAwareGcPolicy


def make_ftl(chips=1, blocks=16, pages=8, name="ftl"):
    chip_objs = [FlashChip(i, blocks, pages) for i in range(chips)]
    return PageMappedFtl(name, chip_objs, pages, overprovision=0.25)


def churn(ftl, policy, writes, seed=0, hot_fraction=0.15):
    """Drive a skewed write workload with GC under the given policy."""
    rng = random.Random(seed)
    hot_keys = max(1, int(ftl.logical_pages * hot_fraction))
    for _ in range(writes):
        if ftl.free_block_ratio() < 0.25:
            policy.collect_until(ftl, target_ratio=0.35)
        # 90% of writes hit the hot set -> cold blocks accumulate cold data.
        if rng.random() < 0.9:
            lpn = rng.randrange(hot_keys)
        else:
            lpn = rng.randrange(ftl.logical_pages)
        ftl.place_write(lpn)


def erase_spread(ftl):
    counts = [b.erase_count for chip in ftl.chips for b in chip.blocks]
    return max(counts) - min(counts)


class TestWearAwarePolicy:
    def test_zero_weight_reduces_to_greedy(self):
        ftl = make_ftl()
        policy = WearAwareGcPolicy(wear_weight=0.0)
        for lpn in range(24):
            ftl.place_write(lpn)
        for lpn in range(8):
            ftl.place_write(lpn)
        greedy_victim = ftl.select_victim()
        aware_victim = ftl.select_victim(policy.victim_scorer(ftl))
        assert greedy_victim.block_id == aware_victim.block_id

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WearAwareGcPolicy(wear_weight=-1.0)

    def test_scorer_penalises_worn_blocks(self):
        ftl = make_ftl(blocks=4, pages=4)
        chip = ftl.chips[0]
        # Two equally-stale blocks, one heavily worn.
        b0, b1 = chip.blocks[0], chip.blocks[1]
        b1.erase_count = 50
        policy = WearAwareGcPolicy(wear_weight=1.0)
        scorer = policy.victim_scorer(ftl)
        # With equal invalid counts the younger block must score higher.
        b0_score = scorer(b0)
        b1_score = scorer(b1)
        assert b0_score > b1_score

    def test_wear_aware_reduces_erase_spread_under_skew(self):
        greedy_ftl = make_ftl(chips=2, blocks=16, pages=8, name="greedy")
        aware_ftl = make_ftl(chips=2, blocks=16, pages=8, name="aware")
        writes = 4000
        churn(greedy_ftl, GreedyGcPolicy(), writes, seed=7)
        churn(aware_ftl, WearAwareGcPolicy(wear_weight=2.0), writes, seed=7)
        assert erase_spread(aware_ftl) <= erase_spread(greedy_ftl)
        greedy_ftl.check_invariants()
        aware_ftl.check_invariants()

    def test_wear_aware_costs_bounded_write_amplification(self):
        greedy_ftl = make_ftl(chips=2, blocks=16, pages=8, name="greedy")
        aware_ftl = make_ftl(chips=2, blocks=16, pages=8, name="aware")
        writes = 3000
        churn(greedy_ftl, GreedyGcPolicy(), writes, seed=3)
        churn(aware_ftl, WearAwareGcPolicy(wear_weight=1.0), writes, seed=3)
        # Rotating cold data costs extra migrations, but must stay sane.
        assert (
            aware_ftl.write_amplification()
            <= greedy_ftl.write_amplification() * 1.8
        )

    def test_thresholds_inherited(self):
        policy = WearAwareGcPolicy(gc_threshold=0.2, soft_threshold=0.4)
        assert policy.gc_threshold == 0.2
        assert policy.soft_threshold == 0.4
