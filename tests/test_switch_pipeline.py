"""Tests for the match-action pipeline model."""

import pytest

from repro.errors import SwitchError
from repro.net.packet import GcKind
from repro.switch.dataplane import SwitchDataPlane
from repro.switch.pipeline import (
    RACKBLOX_PIPELINE,
    MatchActionPipeline,
    StatefulAccess,
    rackblox_passes,
)


class TestMatchActionPipeline:
    def test_forward_only_program_is_one_pass(self):
        pipe = MatchActionPipeline({"a": 0, "b": 3, "c": 7})
        program = [StatefulAccess("a", "read"), StatefulAccess("b", "write"),
                   StatefulAccess("c", "read")]
        assert pipe.passes_required(program) == 1

    def test_backward_access_recirculates(self):
        pipe = MatchActionPipeline({"a": 0, "b": 3})
        program = [StatefulAccess("b", "read"), StatefulAccess("a", "write")]
        assert pipe.passes_required(program) == 2

    def test_same_stage_twice_recirculates(self):
        pipe = MatchActionPipeline({"a": 2})
        program = [StatefulAccess("a", "read"), StatefulAccess("a", "write")]
        assert pipe.passes_required(program) == 2

    def test_multiple_recirculations(self):
        pipe = MatchActionPipeline({"a": 1})
        program = [StatefulAccess("a", "read")] * 3
        assert pipe.passes_required(program) == 3

    def test_empty_program_one_pass(self):
        pipe = MatchActionPipeline({"a": 0})
        assert pipe.passes_required([]) == 1

    def test_unknown_table_rejected(self):
        pipe = MatchActionPipeline({"a": 0})
        with pytest.raises(SwitchError):
            pipe.passes_required([StatefulAccess("ghost", "read")])

    def test_layout_validation(self):
        with pytest.raises(SwitchError):
            MatchActionPipeline({"a": 12}, num_stages=12)
        with pytest.raises(SwitchError):
            MatchActionPipeline({}, num_stages=0)
        with pytest.raises(SwitchError):
            StatefulAccess("a", "increment")


class TestRackBloxPrograms:
    def test_soft_gc_needs_exactly_one_recirculation(self):
        """The §3.5.1 claim, derived from the pipeline model rather than
        asserted: soft gc_op = 2 passes, everything else = 1."""
        assert rackblox_passes("gc_soft") == 2
        for operation in ("read", "write", "gc_regular", "gc_bg", "gc_finish"):
            assert rackblox_passes(operation) == 1, operation

    def test_unknown_operation(self):
        with pytest.raises(SwitchError):
            rackblox_passes("gc_mystery")

    def test_dataplane_prices_from_pipeline(self):
        plane = SwitchDataPlane()
        assert plane.gc_op_delay_us(GcKind.SOFT) == pytest.approx(
            2 * plane.PIPELINE_PASS_US
        )
        assert plane.gc_op_delay_us(GcKind.REGULAR) == pytest.approx(
            plane.PIPELINE_PASS_US
        )
        assert plane.gc_op_delay_us(GcKind.FINISH) == pytest.approx(
            plane.PIPELINE_PASS_US
        )

    def test_replica_table_precedes_destination(self):
        # The read path consults the replica table before forwarding.
        assert (
            RACKBLOX_PIPELINE.table_stages["replica"]
            < RACKBLOX_PIPELINE.table_stages["destination"]
        )
