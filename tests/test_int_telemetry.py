"""Tests for In-band Network Telemetry (`repro/net/int_telemetry.py`).

The LAT field is the paper's ``Net_time`` (§3.4): every switch adds its
per-hop latency into the packet as it passes, and the accumulated value
must survive the round trip into the storage server's scheduler.
"""

import pytest

from repro.errors import NetworkError
from repro.net.int_telemetry import add_hop_latency, net_time
from repro.net.packet import OpType, Packet, read_request


def make_packet() -> Packet:
    return Packet(op=OpType.READ, vssd_id=1, src="client", dst="server")


class TestLatAccumulation:
    def test_single_hop(self):
        pkt = make_packet()
        add_hop_latency(pkt, 12.5)
        assert net_time(pkt) == pytest.approx(12.5)

    def test_accumulates_across_multiple_hops(self):
        # A ToR -> aggregation -> core -> aggregation -> ToR path: LAT is
        # the *sum* of per-hop latencies, order-independent.
        pkt = make_packet()
        hops = [3.0, 11.0, 42.5, 11.0, 3.0]
        for hop in hops:
            add_hop_latency(pkt, hop)
        assert net_time(pkt) == pytest.approx(sum(hops))

    def test_zero_hop_allowed(self):
        pkt = make_packet()
        add_hop_latency(pkt, 0.0)
        assert net_time(pkt) == 0.0

    def test_returns_same_packet_for_chaining(self):
        pkt = make_packet()
        assert add_hop_latency(pkt, 1.0) is pkt

    def test_fresh_packet_has_zero_net_time(self):
        assert net_time(read_request(1, "c", "s", 0.0)) == 0.0


class TestNetTimeRoundTrip:
    def test_lat_survives_header_encode_decode(self):
        # The LAT field rides in the RackBlox header (Figure 6); the wire
        # format rounds to integer microseconds.
        pkt = make_packet()
        for hop in (10.2, 20.3):
            add_hop_latency(pkt, hop)
        decoded = Packet.decode_header(pkt.encode_header())
        assert net_time(decoded) == pytest.approx(round(10.2 + 20.3))

    def test_lat_carried_into_response(self):
        # make_response carries LAT forward, so the client-visible reply
        # still holds the request path's accumulated Net_time.
        pkt = make_packet()
        add_hop_latency(pkt, 33.0)
        response = pkt.make_response()
        assert net_time(response) == pytest.approx(33.0)
        # The return path keeps accumulating on top.
        add_hop_latency(response, 7.0)
        assert net_time(response) == pytest.approx(40.0)


class TestValidation:
    def test_negative_hop_latency_rejected(self):
        pkt = make_packet()
        with pytest.raises(NetworkError):
            add_hop_latency(pkt, -0.001)

    def test_rejected_hop_leaves_lat_untouched(self):
        pkt = make_packet()
        add_hop_latency(pkt, 5.0)
        with pytest.raises(NetworkError):
            add_hop_latency(pkt, -1.0)
        assert net_time(pkt) == pytest.approx(5.0)
