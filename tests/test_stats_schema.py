"""The unified stats schema: assembly, aggregation, and validation.

``repro.service.schema`` is the single source of truth for what a
``stats`` payload looks like; these tests pin the validator against
hand-built payloads (good and subtly broken) and against the real
producers (a live bridge's payload must validate unchanged).
"""

import pytest

from repro.cluster.config import RackConfig, SystemType
from repro.service import schema
from repro.service.bridge import SimTimeBridge


def bridge_section(**overrides):
    out = {field: 0.0 for field in schema.BRIDGE_FIELDS}
    out.update(overrides)
    return out


def single_rack_payload():
    return {
        "bridge": bridge_section(sim_now_us=123.0, completed=4.0),
        "metrics": {"read_count": 4.0, "read_p99_us": 90.0},
        "kvstore": {f: 0.0 for f in schema.KVSTORE_FIELDS},
        "admission": {f: 0.0 for f in schema.ADMISSION_FIELDS},
        "connections": 1.0,
    }


def sharded_payload(racks=2):
    payload = single_rack_payload()
    payload["router"] = {f: 0.0 for f in schema.ROUTER_FIELDS}
    payload["router"]["racks"] = float(racks)
    payload["shards"] = {
        str(i): {
            "bridge": bridge_section(sim_now_us=100.0 + i),
            "metrics": {},
            "kvstore": {f: 0.0 for f in schema.KVSTORE_FIELDS},
            "admission": {f: 0.0 for f in schema.ADMISSION_FIELDS},
        }
        for i in range(racks)
    }
    return payload


class TestValidate:
    def test_single_rack_payload_passes(self):
        schema.validate_stats(single_rack_payload())

    def test_sharded_payload_passes(self):
        schema.validate_stats(sharded_payload())

    def test_client_section_required_when_asked(self):
        payload = single_rack_payload()
        with pytest.raises(schema.StatsSchemaError, match="client"):
            schema.validate_stats(payload, client=True)
        payload["client"] = {f: 0.0 for f in schema.CLIENT_FIELDS}
        schema.validate_stats(payload, client=True)

    def test_missing_section_named_in_error(self):
        payload = single_rack_payload()
        del payload["admission"]
        with pytest.raises(schema.StatsSchemaError, match="admission"):
            schema.validate_stats(payload)

    def test_non_numeric_field_rejected(self):
        payload = single_rack_payload()
        payload["bridge"]["completed"] = "4"
        with pytest.raises(schema.StatsSchemaError, match="completed"):
            schema.validate_stats(payload)

    def test_bool_is_not_a_number(self):
        payload = single_rack_payload()
        payload["bridge"]["inflight"] = True
        with pytest.raises(schema.StatsSchemaError, match="inflight"):
            schema.validate_stats(payload)

    def test_router_without_shards_rejected(self):
        payload = single_rack_payload()
        payload["router"] = {f: 0.0 for f in schema.ROUTER_FIELDS}
        with pytest.raises(schema.StatsSchemaError, match="shards"):
            schema.validate_stats(payload)

    def test_shards_without_router_rejected(self):
        payload = sharded_payload()
        del payload["router"]
        with pytest.raises(schema.StatsSchemaError):
            schema.validate_stats(payload)

    def test_migration_section_is_optional_but_typed(self):
        # Sharded payloads may carry the fleet's migration counters;
        # when present the section is validated like any other.
        payload = sharded_payload()
        schema.validate_stats(payload)        # absent: fine
        payload["migration"] = {f: 0.0 for f in schema.MIGRATION_FIELDS}
        schema.validate_stats(payload)        # present and complete: fine
        del payload["migration"]["epoch"]
        with pytest.raises(schema.StatsSchemaError, match="epoch"):
            schema.validate_stats(payload)
        payload["migration"]["epoch"] = "1"
        with pytest.raises(schema.StatsSchemaError, match="epoch"):
            schema.validate_stats(payload)

    def test_non_decimal_shard_key_rejected(self):
        payload = sharded_payload()
        payload["shards"]["rack-0"] = payload["shards"].pop("0")
        with pytest.raises(schema.StatsSchemaError, match="decimal"):
            schema.validate_stats(payload)

    def test_broken_shard_section_located(self):
        payload = sharded_payload()
        del payload["shards"]["1"]["kvstore"]
        with pytest.raises(schema.StatsSchemaError, match=r"shards\['1'\]"):
            schema.validate_stats(payload)

    def test_non_mapping_rejected(self):
        with pytest.raises(schema.StatsSchemaError):
            schema.validate_stats([("bridge", {})])

    def test_helpers(self):
        assert not schema.is_sharded(single_rack_payload())
        payload = sharded_payload(racks=3)
        assert schema.is_sharded(payload)
        assert schema.shard_ids(payload) == [0, 1, 2]
        assert schema.shard_ids(single_rack_payload()) == []


def tenant_section(**overrides):
    out = {field: 0.0 for field in schema.TENANT_FIELDS}
    out.update(overrides)
    return out


def readcache_section(**overrides):
    out = {field: 0.0 for field in schema.READCACHE_FIELDS}
    out.update(overrides)
    return out


class TestTenancySections:
    def test_tenants_and_readcache_validate(self):
        payload = single_rack_payload()
        payload["tenants"] = {"gold": tenant_section(weight=3.0)}
        payload["readcache"] = readcache_section(capacity=1024.0)
        schema.validate_stats(payload)

    def test_readcache_missing_field_named(self):
        payload = single_rack_payload()
        payload["readcache"] = readcache_section()
        del payload["readcache"]["hit_rate"]
        with pytest.raises(schema.StatsSchemaError, match="hit_rate"):
            schema.validate_stats(payload)

    def test_tenants_must_be_a_non_empty_mapping(self):
        payload = single_rack_payload()
        payload["tenants"] = {}
        with pytest.raises(schema.StatsSchemaError, match="non-empty"):
            schema.validate_stats(payload)
        payload["tenants"] = ["gold"]
        with pytest.raises(schema.StatsSchemaError, match="mapping"):
            schema.validate_stats(payload)

    def test_broken_tenant_body_located(self):
        payload = single_rack_payload()
        payload["tenants"] = {"gold": tenant_section()}
        payload["tenants"]["gold"]["slo_burn"] = "0.5"
        with pytest.raises(schema.StatsSchemaError, match="slo_burn"):
            schema.validate_stats(payload)

    def test_assembled_with_tenancy_validates(self):
        bridge = SimTimeBridge(
            RackConfig(system=SystemType("rackblox"), num_servers=2,
                       num_pairs=2, seed=11),
            precondition=False,
        )
        payload = schema.assemble_server_stats(
            bridge.stats_payload(), {f: 0.0 for f in schema.ADMISSION_FIELDS},
            1,
            tenants={"default": tenant_section(weight=1.0)},
            readcache=readcache_section(capacity=4096.0, segments=8.0),
        )
        schema.validate_stats(payload)
        assert payload["tenants"]["default"]["weight"] == 1.0
        assert payload["readcache"]["capacity"] == 4096.0


class TestAggregation:
    def test_counters_sum_and_clock_maxes(self):
        sections = [
            {"bridge": bridge_section(sim_now_us=200.0, completed=3.0),
             "kvstore": {"keys": 2.0}, "admission": {"admitted": 5.0}},
            {"bridge": bridge_section(sim_now_us=90.0, completed=4.0),
             "kvstore": {"keys": 1.0}, "admission": {"admitted": 7.0}},
        ]
        agg = schema.aggregate_sections(sections)
        assert agg["bridge"]["sim_now_us"] == 200.0
        assert agg["bridge"]["completed"] == 7.0
        assert agg["kvstore"]["keys"] == 3.0
        assert agg["admission"]["admitted"] == 12.0

    def test_merge_metric_summaries(self):
        merged = schema.merge_metric_summaries([
            {"read_count": 3.0, "read_avg_us": 100.0, "read_p99_us": 400.0,
             "read_kiops": 1.0},
            {"read_count": 1.0, "read_avg_us": 500.0, "read_p99_us": 900.0,
             "read_kiops": 2.0, "write_count": None},
        ])
        assert merged["read_count"] == 4.0
        assert merged["read_p99_us"] == 900.0  # worst shard bounds the tail
        assert merged["read_avg_us"] == pytest.approx(200.0)  # count-weighted
        assert merged["read_kiops"] == 3.0
        assert "write_count" not in merged  # nulls are skipped, not zeroed

    def test_tenancy_sections_merge(self):
        sections = [
            {"bridge": bridge_section(),
             "readcache": readcache_section(hits=6.0, misses=2.0,
                                            segments=8.0, epoch=1.0),
             "tenants": {"gold": tenant_section(weight=3.0, admitted=5.0,
                                                slo_burn=0.2)}},
            {"bridge": bridge_section(),
             "readcache": readcache_section(hits=2.0, misses=2.0,
                                            segments=8.0, epoch=3.0),
             "tenants": {"gold": tenant_section(weight=3.0, admitted=7.0,
                                                slo_burn=0.6),
                         "bronze": tenant_section(admitted=1.0)}},
        ]
        agg = schema.aggregate_sections(sections)
        cache = agg["readcache"]
        assert cache["hits"] == 8.0 and cache["misses"] == 4.0
        assert cache["hit_rate"] == pytest.approx(8.0 / 12.0)  # recomputed
        assert cache["segments"] == 8.0 and cache["epoch"] == 3.0  # maxed
        gold = agg["tenants"]["gold"]
        assert gold["admitted"] == 12.0  # counters sum
        assert gold["weight"] == 3.0 and gold["slo_burn"] == 0.6  # maxed
        assert agg["tenants"]["bronze"]["admitted"] == 1.0  # union of names

    def test_tenancy_sections_absent_stay_absent(self):
        agg = schema.aggregate_sections([
            {"bridge": bridge_section()}, {"bridge": bridge_section()},
        ])
        assert "tenants" not in agg and "readcache" not in agg

    def test_assemble_server_stats_validates(self):
        bridge = SimTimeBridge(
            RackConfig(system=SystemType("rackblox"), num_servers=2,
                       num_pairs=2, seed=11),
            precondition=False,
        )
        payload = schema.assemble_server_stats(
            bridge.stats_payload(), {f: 0.0 for f in schema.ADMISSION_FIELDS},
            3,
        )
        schema.validate_stats(payload)
        assert payload["connections"] == 3.0
