"""Process-mode fleet smoke: a real backend interpreter joins (and
leaves) a live proxy fleet over the wire.

One scenario, end to end: two ``repro.cli serve`` processes behind a
:class:`ShardProxy`, keys seeded through the front door, then a third
backend process is launched and admitted via the in-band ``admin``
frame -- exactly what ``python -m repro.cli fleet add-rack`` sends.
Every acked write must survive the migration, the epoch must bump, and
a follow-up drain must hand the rack's keys back to the survivors.

This is the slowest drill in the suite (three interpreters), so it
covers only what the in-process tests in ``test_migration.py`` cannot:
the proxy's wire-streamed migration, its dual-write relay, and the
admin frames end to end.
"""

import asyncio

import pytest

from repro.service import schema
from repro.service.client import ServiceClient
from repro.service.router import (
    ShardProxy,
    launch_backends,
    shutdown_backends,
)

pytestmark = [pytest.mark.shard, pytest.mark.fleet, pytest.mark.slow]

BACKEND_ARGS = (
    "--racks", "1", "--system", "rackblox",
    "--servers", "2", "--pairs", "2", "--chunk-us", "2000",
)
SEED = 11


class TestProcessModeFleet:
    def test_add_then_drain_a_real_backend_process(self):
        async def scenario():
            procs, endpoints = await launch_backends(
                2, BACKEND_ARGS, seed=SEED
            )
            proxy = ShardProxy(endpoints, port=0, pairs_per_rack=2)
            await proxy.start()
            extra_procs = []
            try:
                async with ServiceClient("127.0.0.1", proxy.port) as c:
                    acked = {}
                    for i in range(80):
                        key = f"k{i:05d}"
                        await c.put(key, f"v{i}")
                        acked[key] = f"v{i}"

                    # The operator's flow: start the new rack's process
                    # first, then admit it by endpoint.  Rack 2's seed
                    # follows the same seed+index derivation the
                    # launcher uses for racks 0 and 1.
                    new_procs, new_endpoints = await launch_backends(
                        1, BACKEND_ARGS, seed=SEED + 2
                    )
                    extra_procs.extend(new_procs)
                    host, port = new_endpoints[0]
                    added = await c.fleet_add_rack(
                        host=host, port=port, batch_size=16,
                    )

                    after_add = {k: await c.get(k) for k in acked}
                    hello = await c.hello()
                    status = await c.fleet_status()
                    stats = await c.stats()

                    drained = await c.fleet_drain_rack(1)
                    after_drain = {k: await c.get(k) for k in acked}
                    end_status = await c.fleet_status()
                    end_stats = await c.stats()
                return (acked, added, after_add, hello, status, stats,
                        drained, after_drain, end_status, end_stats)
            finally:
                await proxy.stop()
                await shutdown_backends(procs + extra_procs)

        (acked, added, after_add, hello, status, stats,
         drained, after_drain, end_status, end_stats) = asyncio.run(
            scenario())

        # --- the add ---------------------------------------------------
        assert added["kind"] == "add" and added["rack"] == 2
        assert added["epoch"] == 1 and added["racks"] == [0, 1, 2]
        assert 0 < added["keys_moved"] <= 1.8 * len(acked) / 3
        for key, value in acked.items():
            assert after_add[key]["found"], key
            assert after_add[key]["value"] == value, key
        assert hello["racks"] == 3 and hello["epoch"] == 1
        assert status["epoch"] == 1 and status["racks"] == [0, 1, 2]
        assert status["migrating"] is False and status["drained"] == []
        schema.validate_stats(stats, client=True)
        assert schema.shard_ids(stats) == [0, 1, 2]
        assert stats["migration"]["racks_added"] == 1.0

        # --- the drain -------------------------------------------------
        assert drained["kind"] == "drain" and drained["rack"] == 1
        assert drained["epoch"] == 2 and drained["racks"] == [0, 2]
        for key, value in acked.items():
            assert after_drain[key]["found"], key
            assert after_drain[key]["value"] == value, key
        assert end_status["epoch"] == 2 and end_status["racks"] == [0, 2]
        assert end_status["drained"] == [1]
        assert schema.shard_ids(end_stats) == [0, 2]
        assert end_stats["migration"]["racks_drained"] == 1.0
