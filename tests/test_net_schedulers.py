"""Tests for switch egress schedulers: FIFO, token bucket, FQ, priority."""

import pytest

from repro.errors import ConfigError
from repro.net import (
    EgressPort,
    FairQueueScheduler,
    FifoScheduler,
    PriorityScheduler,
    TokenBucketScheduler,
)
from repro.net.packet import OpType, Packet
from repro.sim import Simulator


def pkt(size_kb=1.0, vssd=1):
    return Packet(op=OpType.READ, vssd_id=vssd, size_kb=size_kb)


class TestFifoScheduler:
    def test_order_preserved(self):
        sched = FifoScheduler()
        a, b = pkt(), pkt()
        sched.enqueue(a, "f1")
        sched.enqueue(b, "f2")
        assert sched.next(0.0)[0] is a
        assert sched.next(0.0)[0] is b

    def test_empty_returns_none(self):
        assert FifoScheduler().next(0.0) is None


class TestTokenBucketScheduler:
    def test_within_burst_is_immediate(self):
        sched = TokenBucketScheduler(flow_rate_kb_per_sec=1000.0, burst_kb=10.0)
        sched.enqueue(pkt(size_kb=4.0), "f1")
        packet, ready = sched.next(0.0)
        assert ready == 0.0

    def test_exceeding_rate_delays(self):
        sched = TokenBucketScheduler(flow_rate_kb_per_sec=1000.0, burst_kb=4.0)
        sched.enqueue(pkt(size_kb=4.0), "f1")
        sched.enqueue(pkt(size_kb=4.0), "f1")
        _, ready1 = sched.next(0.0)
        _, ready2 = sched.next(0.0)
        assert ready1 == 0.0
        # Second packet needs 4KB of tokens at 1000 KB/s = 4 ms = 4000 us.
        assert ready2 == pytest.approx(4000.0)

    def test_flows_isolated(self):
        sched = TokenBucketScheduler(flow_rate_kb_per_sec=1000.0, burst_kb=4.0)
        sched.enqueue(pkt(size_kb=4.0), "hog")
        sched.enqueue(pkt(size_kb=4.0), "hog")
        sched.enqueue(pkt(size_kb=4.0), "victim")
        sched.next(0.0)  # hog's first
        packet, ready = sched.next(0.0)
        # The victim's packet goes before the hog's delayed second packet.
        assert ready == 0.0

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            TokenBucketScheduler(flow_rate_kb_per_sec=0)


class TestFairQueueScheduler:
    def test_round_robin_across_flows(self):
        sched = FairQueueScheduler()
        a1, a2, b1 = pkt(vssd=1), pkt(vssd=1), pkt(vssd=2)
        sched.enqueue(a1, "a")
        sched.enqueue(a2, "a")
        sched.enqueue(b1, "b")
        order = [sched.next(0.0)[0] for _ in range(3)]
        assert order == [a1, b1, a2]

    def test_single_flow_is_fifo(self):
        sched = FairQueueScheduler()
        a, b = pkt(), pkt()
        sched.enqueue(a, "f")
        sched.enqueue(b, "f")
        assert [sched.next(0.0)[0], sched.next(0.0)[0]] == [a, b]

    def test_empty(self):
        assert FairQueueScheduler().next(0.0) is None


class TestPriorityScheduler:
    def test_high_priority_preempts_queue_order(self):
        sched = PriorityScheduler()
        low, high = pkt(), pkt()
        sched.enqueue(low, "f", priority=5)
        sched.enqueue(high, "f", priority=0)
        assert sched.next(0.0)[0] is high

    def test_same_priority_fifo(self):
        sched = PriorityScheduler()
        a, b = pkt(), pkt()
        sched.enqueue(a, "f", priority=3)
        sched.enqueue(b, "f", priority=3)
        assert sched.next(0.0)[0] is a

    def test_priority_range_checked(self):
        sched = PriorityScheduler(levels=4)
        with pytest.raises(ConfigError):
            sched.enqueue(pkt(), "f", priority=4)

    def test_levels_validated(self):
        with pytest.raises(ConfigError):
            PriorityScheduler(levels=0)


class TestEgressPort:
    def test_transmission_takes_serialisation_time(self):
        sim = Simulator()
        port = EgressPort(sim, FifoScheduler(), rate_kb_per_us=1.0)
        done = port.enqueue(pkt(size_kb=5.0))
        sim.run()
        assert done.triggered
        assert sim.now == pytest.approx(5.0)

    def test_queueing_delay_accumulates(self):
        sim = Simulator()
        port = EgressPort(sim, FifoScheduler(), rate_kb_per_us=1.0)
        times = {}

        def waiter(tag, event):
            yield event
            times[tag] = sim.now

        e1 = port.enqueue(pkt(size_kb=5.0))
        e2 = port.enqueue(pkt(size_kb=5.0))
        sim.spawn(waiter("first", e1))
        sim.spawn(waiter("second", e2))
        sim.run()
        assert times["first"] == pytest.approx(5.0)
        assert times["second"] == pytest.approx(10.0)

    def test_port_idles_then_resumes(self):
        sim = Simulator()
        port = EgressPort(sim, FifoScheduler(), rate_kb_per_us=1.0)
        port.enqueue(pkt(size_kb=1.0))
        sim.run()
        assert sim.now == pytest.approx(1.0)
        # Late arrival after idle period.
        sim.call_after(100.0, lambda: port.enqueue(pkt(size_kb=2.0)))
        sim.run()
        assert sim.now == pytest.approx(103.0)
        assert port.packets_sent == 2

    def test_token_bucket_port_enforces_rate(self):
        sim = Simulator()
        sched = TokenBucketScheduler(flow_rate_kb_per_sec=1000.0, burst_kb=4.0)
        port = EgressPort(sim, sched, rate_kb_per_us=100.0)
        for _ in range(3):
            port.enqueue(pkt(size_kb=4.0), flow_id="f")
        sim.run()
        # Two extra packets each wait 4ms for tokens.
        assert sim.now >= 8000.0

    def test_on_transmit_hook(self):
        sim = Simulator()
        seen = []
        port = EgressPort(
            sim, FifoScheduler(), rate_kb_per_us=1.0,
            on_transmit=lambda p, t: seen.append((p.packet_id, t)),
        )
        p = pkt(size_kb=2.0)
        port.enqueue(p)
        sim.run()
        assert seen == [(p.packet_id, 2.0)]

    def test_invalid_rate(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            EgressPort(sim, FifoScheduler(), rate_kb_per_us=0.0)
