"""Tests for the replicated rack-backed KV store."""

import pytest

from repro.cluster import Rack, RackConfig, SystemType
from repro.errors import ConfigError
from repro.experiments.runner import run_until
from repro.kvstore import RackKvStore


def make_store(system=SystemType.RACKBLOX):
    config = RackConfig(system=system, num_servers=3, num_pairs=3, seed=31)
    rack = Rack(config)
    return rack, RackKvStore(rack)


def run(rack, gen):
    proc = rack.sim.spawn(gen)
    run_until(rack.sim, proc)
    assert proc.ok
    return proc.value


class TestRackKvStore:
    def test_put_get_roundtrip(self):
        rack, store = make_store()
        latency = run(rack, store.put("user:1", "alice"))
        assert latency > 0
        value, read_latency = run(rack, store.get("user:1"))
        assert value == "alice"
        assert read_latency > 0

    def test_missing_key(self):
        rack, store = make_store()
        value, _ = run(rack, store.get("nope"))
        assert value is None
        assert store.misses == 1

    def test_overwrite(self):
        rack, store = make_store()
        run(rack, store.put("k", "v1"))
        run(rack, store.put("k", "v2"))
        value, _ = run(rack, store.get("k"))
        assert value == "v2"
        assert len(store) == 1

    def test_delete(self):
        rack, store = make_store()
        run(rack, store.put("k", "v"))
        run(rack, store.delete("k"))
        value, _ = run(rack, store.get("k"))
        assert value is None
        assert not store.contains("k")

    def test_keys_spread_across_pairs(self):
        rack, store = make_store()
        pairs_used = {store._route(f"key-{i}")[0] for i in range(200)}
        assert pairs_used == {0, 1, 2}

    def test_routing_is_stable(self):
        rack, store = make_store()
        assert store._route("stable-key") == store._route("stable-key")

    def test_writes_reach_both_replicas(self):
        rack, store = make_store()
        run(rack, store.put("k", "v"))
        assert rack.switch.writes_forwarded == 2

    def test_oversized_value_rejected_eagerly(self):
        rack, store = make_store()
        with pytest.raises(ConfigError):
            store.put("big", "x" * 5000)  # validation is pre-process

    def test_metrics_recorded(self):
        rack, store = make_store()
        run(rack, store.put("a", "1"))
        run(rack, store.get("a"))
        assert store.metrics.write_total.count == 1
        assert store.metrics.read_total.count == 1

    def test_bulk_load_and_read_back(self):
        rack, store = make_store()
        items = {f"key-{i}": f"value-{i}" for i in range(60)}

        def load():
            for key, value in items.items():
                yield rack.sim.spawn(store.put(key, value))

        run(rack, load())
        for key, value in list(items.items())[:20]:
            got, _ = run(rack, store.get(key))
            assert got == value

    def test_empty_rack_rejected(self):
        config = RackConfig(system=SystemType.RACKBLOX, num_servers=3,
                            num_pairs=3, seed=31)
        rack = Rack(config)
        rack.pairs = []
        with pytest.raises(ConfigError):
            RackKvStore(rack)
