"""The consistent-hash ring: determinism, balance, and the rebalance
property the sharded front-end leans on.

The load-bearing claims, each pinned here:

* placement is **seeded** -- two rings built with the same seed agree on
  every key, across processes (BLAKE2, never Python's ``hash()``);
* virtual nodes keep ownership roughly balanced;
* adding a rack moves only ~``1/(N+1)`` of the keys, and every moved
  key lands on the *new* rack (incumbents never shuffle between
  themselves);
* removing a rack never orphans a key, and keys not owned by the
  removed rack stay put.
"""

import pytest

from repro.errors import ConfigError
from repro.service.shard import (
    DEFAULT_RING_SEED,
    DEFAULT_VNODES,
    RING_SPACE,
    HashRing,
)

KEYS = [f"pair:{i}" for i in range(1000)] + [f"key:k{i:08d}" for i in range(1000)]


def ownership(ring):
    return {key: ring.node_for(key) for key in KEYS}


class TestDeterminism:
    def test_same_seed_same_placement(self):
        a = HashRing(range(4))
        b = HashRing(range(4))
        assert ownership(a) == ownership(b)

    def test_placement_is_independent_of_insertion_order(self):
        a = HashRing([0, 1, 2, 3])
        b = HashRing([3, 1, 0, 2])
        assert ownership(a) == ownership(b)

    def test_different_seed_different_placement(self):
        a = HashRing(range(4), seed=DEFAULT_RING_SEED)
        b = HashRing(range(4), seed=DEFAULT_RING_SEED + 1)
        moved = sum(1 for k in KEYS if a.node_for(k) != b.node_for(k))
        assert moved > len(KEYS) // 2

    def test_not_python_hash(self):
        # A golden value: if placement ever routes through Python's
        # randomized hash(), this breaks on the next interpreter run.
        ring = HashRing(range(4))
        assert ring.node_for("pair:0") == 1


class TestBalance:
    def test_every_node_owns_a_fair_share(self):
        ring = HashRing(range(4))
        counts = {n: 0 for n in range(4)}
        for key in KEYS:
            counts[ring.node_for(key)] += 1
        share = len(KEYS) / 4
        for node, count in counts.items():
            assert count > 0.5 * share, (node, counts)
            assert count < 1.7 * share, (node, counts)

    def test_more_vnodes_never_worse_than_one(self):
        few = HashRing(range(4), vnodes=1)
        many = HashRing(range(4), vnodes=DEFAULT_VNODES)

        def spread(ring):
            counts = {n: 0 for n in ring.nodes}
            for key in KEYS:
                counts[ring.node_for(key)] += 1
            return max(counts.values()) - min(counts.values())

        assert spread(many) <= spread(few)


class TestRebalance:
    """The rebalance property, pinned twice: once by brute-force key
    ownership diffing, once through :meth:`HashRing.ranges_moving` --
    the helper the live-migration planner trusts.  Both views must
    agree exactly, or the fleet would stream the wrong keys."""

    @pytest.mark.parametrize("racks", [2, 3, 4, 7])
    def test_adding_a_rack_moves_about_one_share(self, racks):
        ring = HashRing(range(racks))
        before = ownership(ring)
        ring.add_node(racks)
        after = ownership(ring)
        moved = [k for k in KEYS if before[k] != after[k]]
        # Ideal is 1/(racks+1); allow generous slack for hash variance
        # at 64 vnodes, but stay far from the naive-mod-N reshuffle
        # (which moves ~racks/(racks+1) of everything).
        assert len(moved) <= 1.8 * len(KEYS) / (racks + 1), len(moved)
        assert moved, "a new rack must take some keys"
        # Every moved key moved TO the new rack: incumbents never trade
        # keys between themselves.
        assert all(after[k] == racks for k in moved)

    def test_removal_never_orphans_and_never_shuffles(self):
        ring = HashRing(range(4))
        before = ownership(ring)
        ring.remove_node(2)
        after = ownership(ring)
        assert set(after.values()) <= {0, 1, 3}
        for key in KEYS:
            if before[key] != 2:
                assert after[key] == before[key], key

    def test_add_then_remove_roundtrips(self):
        ring = HashRing(range(3))
        before = ownership(ring)
        ring.add_node(3)
        ring.remove_node(3)
        assert ownership(ring) == before

    @pytest.mark.parametrize("racks", [2, 3, 4, 7])
    def test_ranges_moving_agrees_with_brute_force_on_add(self, racks):
        old = HashRing(range(racks))
        new = old.with_node(racks)
        ranges = HashRing.ranges_moving(old, new)
        # A key moved iff its ring point falls inside a returned range,
        # and the (src, dst) pair matches the ownership diff.
        in_range = {}
        for label in KEYS:
            point = old.point_for(label)
            hits = [rng for rng in ranges if rng.contains(point)]
            assert len(hits) <= 1, (label, hits)
            in_range[label] = hits[0] if hits else None
        for label in KEYS:
            rng = in_range[label]
            if old.node_for(label) != new.node_for(label):
                assert rng is not None, label
                assert rng.src == old.node_for(label)
                assert rng.dst == new.node_for(label) == racks
            else:
                assert rng is None, label

    def test_ranges_moving_agrees_with_brute_force_on_remove(self):
        old = HashRing(range(4))
        new = old.without_node(2)
        ranges = HashRing.ranges_moving(old, new)
        assert all(rng.src == 2 for rng in ranges)
        for label in KEYS:
            point = old.point_for(label)
            hits = [rng for rng in ranges if rng.contains(point)]
            if old.node_for(label) == 2:
                assert len(hits) == 1 and hits[0].dst == new.node_for(label)
            else:
                assert not hits, label

    @pytest.mark.parametrize("racks", [2, 3, 4, 7])
    def test_moved_span_is_about_one_share(self, racks):
        old = HashRing(range(racks))
        ranges = HashRing.ranges_moving(old, old.with_node(racks))
        fraction = sum(rng.span for rng in ranges) / RING_SPACE
        assert 0 < fraction <= 1.8 / (racks + 1), fraction

    def test_ranges_are_disjoint_sorted_and_coalesced(self):
        old = HashRing(range(3))
        ranges = HashRing.ranges_moving(old, old.with_node(3))
        for left, right in zip(ranges, ranges[1:]):
            assert left.end <= right.start
            if left.end == right.start:
                # Adjacent pieces with identical (src, dst) must have
                # been merged into one.
                assert (left.src, left.dst) != (right.src, right.dst)

    def test_mismatched_rings_rejected(self):
        with pytest.raises(ConfigError):
            HashRing.ranges_moving(HashRing(range(2), seed=1),
                                   HashRing(range(3), seed=2))
        with pytest.raises(ConfigError):
            HashRing.ranges_moving(HashRing(range(2), vnodes=8),
                                   HashRing(range(3), vnodes=16))
        with pytest.raises(ConfigError):
            HashRing.ranges_moving(HashRing(), HashRing(range(2)))

    def test_identical_rings_move_nothing(self):
        ring = HashRing(range(3))
        assert HashRing.ranges_moving(ring, ring.copy()) == []


class TestPreference:
    def test_owner_first_then_distinct_fallback(self):
        ring = HashRing(range(4))
        for key in KEYS[:200]:
            pref = ring.preference(key, count=2)
            assert pref[0] == ring.node_for(key)
            assert len(pref) == 2
            assert pref[0] != pref[1]

    def test_count_clamped_to_ring_size(self):
        ring = HashRing(range(2))
        assert sorted(ring.preference("pair:5", count=8)) == [0, 1]

    def test_single_node_ring(self):
        ring = HashRing([0])
        assert ring.preference("pair:0", count=2) == [0]


class TestMembershipErrors:
    def test_empty_ring_rejects_lookup(self):
        with pytest.raises(ConfigError):
            HashRing().node_for("pair:0")
        with pytest.raises(ConfigError):
            HashRing().preference("pair:0")

    def test_duplicate_add_rejected(self):
        ring = HashRing([0])
        with pytest.raises(ConfigError):
            ring.add_node(0)

    def test_absent_remove_rejected(self):
        with pytest.raises(ConfigError):
            HashRing([0]).remove_node(1)

    def test_bad_vnodes_rejected(self):
        with pytest.raises(ConfigError):
            HashRing(vnodes=0)

    def test_len_and_nodes(self):
        ring = HashRing([2, 0, 1])
        assert len(ring) == 3
        assert ring.nodes == [0, 1, 2]
