"""The consistent-hash ring: determinism, balance, and the rebalance
property the sharded front-end leans on.

The load-bearing claims, each pinned here:

* placement is **seeded** -- two rings built with the same seed agree on
  every key, across processes (BLAKE2, never Python's ``hash()``);
* virtual nodes keep ownership roughly balanced;
* adding a rack moves only ~``1/(N+1)`` of the keys, and every moved
  key lands on the *new* rack (incumbents never shuffle between
  themselves);
* removing a rack never orphans a key, and keys not owned by the
  removed rack stay put.
"""

import pytest

from repro.errors import ConfigError
from repro.service.shard import DEFAULT_RING_SEED, DEFAULT_VNODES, HashRing

KEYS = [f"pair:{i}" for i in range(1000)] + [f"key:k{i:08d}" for i in range(1000)]


def ownership(ring):
    return {key: ring.node_for(key) for key in KEYS}


class TestDeterminism:
    def test_same_seed_same_placement(self):
        a = HashRing(range(4))
        b = HashRing(range(4))
        assert ownership(a) == ownership(b)

    def test_placement_is_independent_of_insertion_order(self):
        a = HashRing([0, 1, 2, 3])
        b = HashRing([3, 1, 0, 2])
        assert ownership(a) == ownership(b)

    def test_different_seed_different_placement(self):
        a = HashRing(range(4), seed=DEFAULT_RING_SEED)
        b = HashRing(range(4), seed=DEFAULT_RING_SEED + 1)
        moved = sum(1 for k in KEYS if a.node_for(k) != b.node_for(k))
        assert moved > len(KEYS) // 2

    def test_not_python_hash(self):
        # A golden value: if placement ever routes through Python's
        # randomized hash(), this breaks on the next interpreter run.
        ring = HashRing(range(4))
        assert ring.node_for("pair:0") == 1


class TestBalance:
    def test_every_node_owns_a_fair_share(self):
        ring = HashRing(range(4))
        counts = {n: 0 for n in range(4)}
        for key in KEYS:
            counts[ring.node_for(key)] += 1
        share = len(KEYS) / 4
        for node, count in counts.items():
            assert count > 0.5 * share, (node, counts)
            assert count < 1.7 * share, (node, counts)

    def test_more_vnodes_never_worse_than_one(self):
        few = HashRing(range(4), vnodes=1)
        many = HashRing(range(4), vnodes=DEFAULT_VNODES)

        def spread(ring):
            counts = {n: 0 for n in ring.nodes}
            for key in KEYS:
                counts[ring.node_for(key)] += 1
            return max(counts.values()) - min(counts.values())

        assert spread(many) <= spread(few)


class TestRebalance:
    @pytest.mark.parametrize("racks", [2, 3, 4, 7])
    def test_adding_a_rack_moves_about_one_share(self, racks):
        ring = HashRing(range(racks))
        before = ownership(ring)
        ring.add_node(racks)
        after = ownership(ring)
        moved = [k for k in KEYS if before[k] != after[k]]
        # Ideal is 1/(racks+1); allow generous slack for hash variance
        # at 64 vnodes, but stay far from the naive-mod-N reshuffle
        # (which moves ~racks/(racks+1) of everything).
        assert len(moved) <= 1.8 * len(KEYS) / (racks + 1), len(moved)
        assert moved, "a new rack must take some keys"
        # Every moved key moved TO the new rack: incumbents never trade
        # keys between themselves.
        assert all(after[k] == racks for k in moved)

    def test_removal_never_orphans_and_never_shuffles(self):
        ring = HashRing(range(4))
        before = ownership(ring)
        ring.remove_node(2)
        after = ownership(ring)
        assert set(after.values()) <= {0, 1, 3}
        for key in KEYS:
            if before[key] != 2:
                assert after[key] == before[key], key

    def test_add_then_remove_roundtrips(self):
        ring = HashRing(range(3))
        before = ownership(ring)
        ring.add_node(3)
        ring.remove_node(3)
        assert ownership(ring) == before


class TestPreference:
    def test_owner_first_then_distinct_fallback(self):
        ring = HashRing(range(4))
        for key in KEYS[:200]:
            pref = ring.preference(key, count=2)
            assert pref[0] == ring.node_for(key)
            assert len(pref) == 2
            assert pref[0] != pref[1]

    def test_count_clamped_to_ring_size(self):
        ring = HashRing(range(2))
        assert sorted(ring.preference("pair:5", count=8)) == [0, 1]

    def test_single_node_ring(self):
        ring = HashRing([0])
        assert ring.preference("pair:0", count=2) == [0]


class TestMembershipErrors:
    def test_empty_ring_rejects_lookup(self):
        with pytest.raises(ConfigError):
            HashRing().node_for("pair:0")
        with pytest.raises(ConfigError):
            HashRing().preference("pair:0")

    def test_duplicate_add_rejected(self):
        ring = HashRing([0])
        with pytest.raises(ConfigError):
            ring.add_node(0)

    def test_absent_remove_rejected(self):
        with pytest.raises(ConfigError):
            HashRing([0]).remove_node(1)

    def test_bad_vnodes_rejected(self):
        with pytest.raises(ConfigError):
            HashRing(vnodes=0)

    def test_len_and_nodes(self):
        ring = HashRing([2, 0, 1])
        assert len(ring) == 3
        assert ring.nodes == [0, 1, 2]
