"""Tests for request/latency trace recording and replay."""

import io
import random

import pytest

from repro.errors import ConfigError
from repro.net.latency import FAST_NETWORK, LatencyProcess
from repro.workloads.traces import (
    LatencySample,
    LatencyTrace,
    RequestTrace,
    TraceLatencyProcess,
    TraceOp,
    TraceWorkloadGenerator,
    record_latency_process,
)


def small_trace():
    return RequestTrace([
        TraceOp(0.0, "read", 5),
        TraceOp(100.0, "write", 9),
        TraceOp(250.0, "read", 5),
    ])


class TestRequestTrace:
    def test_ops_sorted_by_time(self):
        trace = RequestTrace([TraceOp(50.0, "read", 1), TraceOp(10.0, "write", 2)])
        assert [op.time_us for op in trace.ops] == [10.0, 50.0]

    def test_stats(self):
        trace = small_trace()
        assert len(trace) == 3
        assert trace.duration_us == 250.0
        assert trace.write_ratio() == pytest.approx(1 / 3)

    def test_save_load_roundtrip(self):
        trace = small_trace()
        buffer = io.StringIO()
        trace.save(buffer)
        buffer.seek(0)
        loaded = RequestTrace.load(buffer)
        assert loaded.ops == trace.ops

    def test_load_skips_comments_and_blank_lines(self):
        text = "# header\n\n0.0 read 1\n# mid comment\n5.0 write 2\n"
        trace = RequestTrace.load(io.StringIO(text))
        assert len(trace) == 2

    def test_load_rejects_malformed(self):
        with pytest.raises(ConfigError):
            RequestTrace.load(io.StringIO("1.0 read\n"))

    def test_replay_computes_gaps(self):
        gaps = [r.gap_us for r in small_trace().replay_requests()]
        assert gaps == [0.0, 100.0, 150.0]

    def test_invalid_op(self):
        with pytest.raises(ConfigError):
            TraceOp(0.0, "erase", 1)
        with pytest.raises(ConfigError):
            TraceOp(-1.0, "read", 1)

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.txt")
        small_trace().save(path)
        loaded = RequestTrace.load(path)
        assert len(loaded) == 3


class TestTraceWorkloadGenerator:
    def test_replays_exact_count(self):
        generator = TraceWorkloadGenerator(small_trace())
        requests = list(generator.requests(2))
        assert [(r.kind, r.lpn) for r in requests] == [("read", 5), ("write", 9)]

    def test_wraps_for_long_runs(self):
        generator = TraceWorkloadGenerator(small_trace())
        requests = list(generator.requests(7))
        assert len(requests) == 7
        assert requests[3].kind == "read"  # wrapped to the start

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigError):
            TraceWorkloadGenerator(RequestTrace([]))


class TestLatencyTrace:
    def _trace(self):
        return LatencyTrace([
            LatencySample(0.0, 100.0),
            LatencySample(1000.0, 200.0),
            LatencySample(2000.0, 150.0),
        ])

    def test_lookup_nearest_before(self):
        trace = self._trace()
        assert trace.at(0.0) == 100.0
        assert trace.at(999.0) == 100.0
        assert trace.at(1000.0) == 200.0
        assert trace.at(1500.0) == 200.0

    def test_wraps_in_time(self):
        trace = self._trace()
        assert trace.at(2000.0 + 1000.0) == 200.0

    def test_scaling_preserves_pattern(self):
        trace = self._trace()
        scaled = trace.scaled(4.0)
        assert scaled.at(0.0) == 400.0
        assert scaled.mean() == pytest.approx(trace.mean() * 4.0)

    def test_scaling_validation(self):
        with pytest.raises(ConfigError):
            self._trace().scaled(0.0)

    def test_save_load_roundtrip(self):
        buffer = io.StringIO()
        self._trace().save(buffer)
        buffer.seek(0)
        loaded = LatencyTrace.load(buffer)
        assert loaded.times == self._trace().times
        assert loaded.latencies == self._trace().latencies

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            LatencyTrace([])


class TestTraceLatencyProcess:
    def test_sampler_interface(self):
        process = TraceLatencyProcess(LatencyTrace([
            LatencySample(0.0, 50.0),
            LatencySample(50.0, 60.0),
            LatencySample(80.0, 55.0),
            LatencySample(100.0, 5000.0),
        ]))
        assert process.sample(0.0) == 50.0
        assert process.sample(100.0) == 5000.0
        assert not process.congested(0.0)
        assert process.congested(100.0)

    def test_record_synthetic_then_replay(self):
        # The full §3.7 loop: synthesize -> record -> scale -> replay.
        synthetic = LatencyProcess(FAST_NETWORK, random.Random(5))
        trace = record_latency_process(synthetic, duration_us=10_000.0,
                                       step_us=100.0)
        assert len(trace) == 101
        slow_version = trace.scaled(20.0)
        replay = TraceLatencyProcess(slow_version)
        assert replay.sample(500.0) == pytest.approx(trace.at(500.0) * 20.0)

    def test_record_validation(self):
        synthetic = LatencyProcess(FAST_NETWORK, random.Random(5))
        with pytest.raises(ConfigError):
            record_latency_process(synthetic, duration_us=0, step_us=1)
