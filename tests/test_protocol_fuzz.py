"""Property-based fuzzing of the wire-protocol :class:`FrameDecoder`.

Seeded ``random`` only (replayable, no extra dependencies).  The decoder
contract under test:

* **no drop, no duplicate**: however a valid byte stream is re-chunked,
  the decoded message sequence is exactly the encoded one, in order;
* **truncation is detected**: cutting the stream mid-frame decodes the
  complete prefix, and ``close()`` raises :class:`TruncatedFrame` iff the
  cut landed inside a frame;
* **garbage never escapes the error taxonomy**: arbitrary bytes may only
  ever raise :class:`FrameError` subclasses, never anything else, and a
  decoder on a poisoned stream stays in a raising (not corrupting) state.
"""

import random

import pytest

from repro.service.protocol import (
    FrameDecoder,
    FrameError,
    FrameTooLarge,
    TruncatedFrame,
    encode_frame,
)

NUM_TRIALS = 40


def random_messages(rng: "random.Random", count: int):
    """A batch of representative request/response payloads."""
    out = []
    for i in range(count):
        shape = rng.randrange(4)
        if shape == 0:
            out.append({"type": "read", "pair": rng.randrange(8),
                        "lpn": rng.randrange(4096), "id": i})
        elif shape == 1:
            out.append({"ok": True, "id": i, "latency_us": rng.random() * 1e4})
        elif shape == 2:
            out.append({"type": "put", "key": f"k{rng.randrange(999)}",
                        "value": "v" * rng.randrange(0, 200), "id": i})
        else:
            out.append({"ok": False, "error": "BUSY", "id": i,
                        "message": "x" * rng.randrange(0, 50)})
    return out


def rechunk(rng: "random.Random", stream: bytes):
    """Split a byte stream at random boundaries (including empty chunks)."""
    chunks = []
    pos = 0
    while pos < len(stream):
        step = rng.randrange(0, 17)
        chunks.append(stream[pos:pos + step])
        pos += step
    return chunks


class TestRechunkingNeverDropsOrDuplicates:
    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_any_chunking_decodes_exactly_once(self, seed):
        rng = random.Random(f"fuzz-chunk:{seed}")
        messages = random_messages(rng, rng.randrange(1, 30))
        stream = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        decoded = []
        for chunk in rechunk(rng, stream):
            decoded.extend(decoder.feed(chunk))
        assert decoded == messages
        decoder.close()  # stream ended on a frame boundary: clean EOF

    def test_byte_at_a_time(self):
        messages = random_messages(random.Random("fuzz-single"), 5)
        stream = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        decoded = []
        for i in range(len(stream)):
            decoded.extend(decoder.feed(stream[i:i + 1]))
        assert decoded == messages

    def test_all_at_once(self):
        messages = random_messages(random.Random("fuzz-bulk"), 25)
        stream = b"".join(encode_frame(m) for m in messages)
        assert FrameDecoder().feed(stream) == messages


class TestTruncation:
    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_cut_stream_decodes_prefix_and_flags_partial(self, seed):
        rng = random.Random(f"fuzz-trunc:{seed}")
        messages = random_messages(rng, rng.randrange(1, 12))
        frames = [encode_frame(m) for m in messages]
        stream = b"".join(frames)
        cut = rng.randrange(0, len(stream) + 1)
        decoder = FrameDecoder()
        decoded = []
        for chunk in rechunk(rng, stream[:cut]):
            decoded.extend(decoder.feed(chunk))
        # The decoded prefix is exactly the frames that fit before the cut.
        boundary = 0
        whole = 0
        for frame in frames:
            if boundary + len(frame) > cut:
                break
            boundary += len(frame)
            whole += 1
        assert decoded == messages[:whole]
        if cut == boundary:
            decoder.close()  # cut on a boundary: clean EOF
        else:
            with pytest.raises(TruncatedFrame):
                decoder.close()


class TestGarbage:
    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_random_bytes_raise_only_frame_errors(self, seed):
        rng = random.Random(f"fuzz-garbage:{seed}")
        decoder = FrameDecoder(max_frame_bytes=1 << 16)
        blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 400)))
        # Either the garbage parses as a plausible-but-incomplete length
        # prefix (decoder keeps waiting, no error) or it raises a
        # documented FrameError; anything else is a contract violation.
        for chunk in rechunk(rng, blob):
            try:
                decoder.feed(chunk)
            except FrameError:
                break
            except Exception as exc:  # pragma: no cover - the failure mode
                pytest.fail(f"non-FrameError escaped the decoder: {exc!r}")

    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_garbage_prefix_never_corrupts_silently(self, seed):
        """A garbage-prefixed stream must not decode phantom messages
        that were never encoded (silent corruption), except in the
        astronomically-unlikely case the garbage is itself a frame."""
        rng = random.Random(f"fuzz-prefix:{seed}")
        messages = random_messages(rng, 3)
        garbage = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 40)))
        stream = garbage + b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder(max_frame_bytes=1 << 16)
        decoded = []
        try:
            for chunk in rechunk(rng, stream):
                decoded.extend(decoder.feed(chunk))
        except FrameError:
            return  # detected the corruption: the desired outcome
        # No error: the garbage must have been consumed as framing, which
        # can only swallow real messages, never invent new valid ones.
        for message in decoded:
            assert message in messages

    def test_oversized_length_prefix_rejected_immediately(self):
        decoder = FrameDecoder(max_frame_bytes=1024)
        with pytest.raises(FrameTooLarge):
            decoder.feed((2048).to_bytes(4, "big"))

    def test_oversized_rejected_before_body_arrives(self):
        # The decoder must raise on the prefix alone -- it never waits
        # for (or allocates) the advertised body.
        decoder = FrameDecoder(max_frame_bytes=1024)
        with pytest.raises(FrameTooLarge):
            decoder.feed((1 << 30).to_bytes(4, "big"))

    def test_non_json_body_raises_frame_error(self):
        body = b"\xff\xfenot json"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(FrameError):
            FrameDecoder().feed(frame)

    def test_non_object_json_body_raises_frame_error(self):
        body = b"[1,2,3]"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(FrameError):
            FrameDecoder().feed(frame)
