"""Property-based fuzzing of the wire protocol: :class:`FrameDecoder`,
the zero-parse :class:`FrameSplitter` the proxy relays with, and the
version gate.

Seeded ``random`` only (replayable, no extra dependencies).  The decoder
contract under test:

* **no drop, no duplicate**: however a valid byte stream is re-chunked,
  the decoded message sequence is exactly the encoded one, in order;
* **truncation is detected**: cutting the stream mid-frame decodes the
  complete prefix, and ``close()`` raises :class:`TruncatedFrame` iff the
  cut landed inside a frame;
* **garbage never escapes the error taxonomy**: arbitrary bytes may only
  ever raise :class:`FrameError` subclasses, never anything else, and a
  decoder on a poisoned stream stays in a raising (not corrupting) state;
* **splitting agrees with decoding**: the splitter cuts any re-chunked
  stream at exactly the boundaries the decoder parses at, byte-for-byte;
* **versioning**: ``v`` absent or equal to :data:`PROTOCOL_VERSION`
  passes; anything else is rejected with the offending value.
"""

import random

import pytest

from repro.service.protocol import (
    BAD_REQUEST,
    BIN_CODEC,
    BIN_MAGIC,
    BUSY,
    INTERNAL,
    PROTOCOL_VERSION,
    SHUTTING_DOWN,
    SUPPORTED_VERSIONS,
    TIMEOUT,
    UNSUPPORTED_VERSION,
    FrameDecoder,
    FrameError,
    FrameSplitter,
    FrameTooLarge,
    TruncatedFrame,
    UnencodableFrame,
    bin_frame_route,
    check_version,
    encode_frame,
    encode_frame_as,
    frame_is_binary,
    frame_request_id,
    rewrite_bin_pair,
)

NUM_TRIALS = 40

_ERROR_CODES = (BUSY, BAD_REQUEST, SHUTTING_DOWN, TIMEOUT, INTERNAL,
                UNSUPPORTED_VERSION)


def random_messages(rng: "random.Random", count: int):
    """A batch of representative request/response payloads."""
    out = []
    for i in range(count):
        shape = rng.randrange(5)
        if shape == 0:
            out.append({"type": "read", "pair": rng.randrange(8),
                        "lpn": rng.randrange(4096), "id": i})
        elif shape == 1:
            out.append({"ok": True, "id": i, "latency_us": rng.random() * 1e4})
        elif shape == 2:
            out.append({"type": "put", "key": f"k{rng.randrange(999)}",
                        "value": "v" * rng.randrange(0, 200), "id": i})
        elif shape == 3:
            out.append({"ok": False, "error": "BUSY", "id": i,
                        "message": "x" * rng.randrange(0, 50)})
        else:
            # Versioned traffic: mostly v1 hellos, sometimes a version
            # the gate will reject -- framing must not care either way.
            out.append({"type": "hello", "id": i,
                        "v": rng.choice([PROTOCOL_VERSION, PROTOCOL_VERSION,
                                         0, 99])})
    return out


def random_bin_messages(rng: "random.Random", count: int):
    """Messages drawn from the binary codec's canonical vocabulary.

    Every shape here must satisfy ``BIN_CODEC.encode``'s strictness
    (exact key sets, u32 ids, real bools) -- the generator *is* the
    executable spec of what the fast path covers.
    """
    out = []
    for i in range(count):
        shape = rng.randrange(6)
        extra = ({"client": f"c{rng.randrange(99)}"}
                 if rng.random() < 0.5 else {})
        if shape == 0:
            m = {"type": "read", "pair": rng.randrange(1 << 32),
                 "lpn": rng.randrange(1 << 32), "id": i, **extra}
            if rng.random() < 0.3:
                m["replica"] = True
        elif shape == 1:
            m = {"type": "write", "pair": rng.randrange(256),
                 "lpn": rng.randrange(1 << 20), "id": i, **extra}
        elif shape == 2:
            m = {"type": "get", "key": "k" * rng.randrange(0, 40) + str(i),
                 "id": i, **extra}
        elif shape == 3:
            m = {"type": "put", "key": f"k{i}",
                 "value": "v" * rng.randrange(0, 200), "id": i, **extra}
        elif shape == 4:
            m = {"ok": True, "id": i}
            if rng.random() < 0.8:
                m["latency_us"] = rng.random() * 1e5
            if rng.random() < 0.5:
                m["storage_us"] = (None if rng.random() < 0.3
                                   else rng.random() * 1e4)
            if rng.random() < 0.3:
                m["replicas"] = rng.randrange(4)
            if rng.random() < 0.3:
                m["value"] = (None if rng.random() < 0.3
                              else "v" * rng.randrange(0, 64))
                m["found"] = m["value"] is not None
            if rng.random() < 0.3:
                m["rack"] = rng.randrange(16)
            if rng.random() < 0.2:
                m["cross_rack"] = True
        else:
            m = {"ok": False, "error": rng.choice(_ERROR_CODES), "id": i}
            if rng.random() < 0.7:
                # An empty message is normalized to "absent" on decode,
                # so the canonical vocabulary only has non-empty ones.
                m["message"] = "x" * rng.randrange(1, 80)
        out.append(m)
    return out


def rechunk(rng: "random.Random", stream: bytes):
    """Split a byte stream at random boundaries (including empty chunks)."""
    chunks = []
    pos = 0
    while pos < len(stream):
        step = rng.randrange(0, 17)
        chunks.append(stream[pos:pos + step])
        pos += step
    return chunks


class TestRechunkingNeverDropsOrDuplicates:
    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_any_chunking_decodes_exactly_once(self, seed):
        rng = random.Random(f"fuzz-chunk:{seed}")
        messages = random_messages(rng, rng.randrange(1, 30))
        stream = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        decoded = []
        for chunk in rechunk(rng, stream):
            decoded.extend(decoder.feed(chunk))
        assert decoded == messages
        decoder.close()  # stream ended on a frame boundary: clean EOF

    def test_byte_at_a_time(self):
        messages = random_messages(random.Random("fuzz-single"), 5)
        stream = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        decoded = []
        for i in range(len(stream)):
            decoded.extend(decoder.feed(stream[i:i + 1]))
        assert decoded == messages

    def test_all_at_once(self):
        messages = random_messages(random.Random("fuzz-bulk"), 25)
        stream = b"".join(encode_frame(m) for m in messages)
        assert FrameDecoder().feed(stream) == messages


class TestTruncation:
    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_cut_stream_decodes_prefix_and_flags_partial(self, seed):
        rng = random.Random(f"fuzz-trunc:{seed}")
        messages = random_messages(rng, rng.randrange(1, 12))
        frames = [encode_frame(m) for m in messages]
        stream = b"".join(frames)
        cut = rng.randrange(0, len(stream) + 1)
        decoder = FrameDecoder()
        decoded = []
        for chunk in rechunk(rng, stream[:cut]):
            decoded.extend(decoder.feed(chunk))
        # The decoded prefix is exactly the frames that fit before the cut.
        boundary = 0
        whole = 0
        for frame in frames:
            if boundary + len(frame) > cut:
                break
            boundary += len(frame)
            whole += 1
        assert decoded == messages[:whole]
        if cut == boundary:
            decoder.close()  # cut on a boundary: clean EOF
        else:
            with pytest.raises(TruncatedFrame):
                decoder.close()


class TestGarbage:
    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_random_bytes_raise_only_frame_errors(self, seed):
        rng = random.Random(f"fuzz-garbage:{seed}")
        decoder = FrameDecoder(max_frame_bytes=1 << 16)
        blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 400)))
        # Either the garbage parses as a plausible-but-incomplete length
        # prefix (decoder keeps waiting, no error) or it raises a
        # documented FrameError; anything else is a contract violation.
        for chunk in rechunk(rng, blob):
            try:
                decoder.feed(chunk)
            except FrameError:
                break
            except Exception as exc:  # pragma: no cover - the failure mode
                pytest.fail(f"non-FrameError escaped the decoder: {exc!r}")

    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_garbage_prefix_never_corrupts_silently(self, seed):
        """A garbage-prefixed stream must not decode phantom messages
        that were never encoded (silent corruption), except in the
        astronomically-unlikely case the garbage is itself a frame."""
        rng = random.Random(f"fuzz-prefix:{seed}")
        messages = random_messages(rng, 3)
        garbage = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 40)))
        stream = garbage + b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder(max_frame_bytes=1 << 16)
        decoded = []
        try:
            for chunk in rechunk(rng, stream):
                decoded.extend(decoder.feed(chunk))
        except FrameError:
            return  # detected the corruption: the desired outcome
        # No error: the garbage must have been consumed as framing, which
        # can only swallow real messages, never invent new valid ones.
        for message in decoded:
            assert message in messages

    def test_oversized_length_prefix_rejected_immediately(self):
        decoder = FrameDecoder(max_frame_bytes=1024)
        with pytest.raises(FrameTooLarge):
            decoder.feed((2048).to_bytes(4, "big"))

    def test_oversized_rejected_before_body_arrives(self):
        # The decoder must raise on the prefix alone -- it never waits
        # for (or allocates) the advertised body.
        decoder = FrameDecoder(max_frame_bytes=1024)
        with pytest.raises(FrameTooLarge):
            decoder.feed((1 << 30).to_bytes(4, "big"))

    def test_non_json_body_raises_frame_error(self):
        body = b"\xff\xfenot json"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(FrameError):
            FrameDecoder().feed(frame)

    def test_non_object_json_body_raises_frame_error(self):
        body = b"[1,2,3]"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(FrameError):
            FrameDecoder().feed(frame)


class TestFrameSplitter:
    """The proxy's relay path: cut at frame boundaries, decode nothing."""

    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_splitting_agrees_with_decoding(self, seed):
        rng = random.Random(f"fuzz-split:{seed}")
        messages = random_messages(rng, rng.randrange(1, 30))
        frames = [encode_frame(m) for m in messages]
        splitter = FrameSplitter()
        split = []
        for chunk in rechunk(rng, b"".join(frames)):
            split.extend(splitter.feed(chunk))
        # Byte-for-byte the original frames (4-byte prefix included):
        # relaying them must be indistinguishable from the backend's own
        # writes, and re-decoding them round-trips the messages.
        assert split == frames
        decoder = FrameDecoder()
        assert [m for f in split for m in decoder.feed(f)] == messages
        splitter.close()

    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_truncation_detected_like_the_decoder(self, seed):
        rng = random.Random(f"fuzz-split-trunc:{seed}")
        frames = [encode_frame(m)
                  for m in random_messages(rng, rng.randrange(1, 12))]
        stream = b"".join(frames)
        cut = rng.randrange(0, len(stream) + 1)
        splitter = FrameSplitter()
        split = []
        for chunk in rechunk(rng, stream[:cut]):
            split.extend(splitter.feed(chunk))
        assert b"".join(split) == stream[:sum(len(f) for f in split)]
        if cut == sum(len(f) for f in split):
            splitter.close()  # cut on a boundary: clean EOF
        else:
            with pytest.raises(TruncatedFrame):
                splitter.close()

    def test_splitter_never_parses_the_body(self):
        # The splitter must relay syntactically-invalid JSON untouched:
        # the proxy's contract is framing, not validation.
        body = b"\xff\xfe this is not json at all"
        frame = len(body).to_bytes(4, "big") + body
        assert FrameSplitter().feed(frame) == [frame]

    def test_oversized_frame_rejected(self):
        splitter = FrameSplitter(max_frame_bytes=1024)
        with pytest.raises(FrameTooLarge):
            splitter.feed((2048).to_bytes(4, "big"))


class TestCheckVersion:
    def test_absent_and_supported_pass(self):
        assert check_version({"type": "ping"}) is None
        for version in SUPPORTED_VERSIONS:
            assert check_version({"type": "ping", "v": version}) is None
        assert check_version({"type": "ping", "v": PROTOCOL_VERSION}) is None
        # An explicit null is v1 traffic too, same as an absent field.
        assert check_version({"type": "ping", "v": None}) is None

    @pytest.mark.parametrize("bad", [0, 3, 99, -1, "1", "2", "one", 1.5])
    def test_everything_else_is_returned_for_the_error(self, bad):
        assert check_version({"type": "ping", "v": bad}) == bad

    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_fuzzed_versions_never_raise(self, seed):
        rng = random.Random(f"fuzz-version:{seed}")
        for message in random_messages(rng, 20):
            verdict = check_version(message)
            assert verdict is None or verdict != PROTOCOL_VERSION


class TestBinaryCodecEquivalence:
    """Satellite #3: the two codecs are interchangeable descriptions of
    the same message space.  For every message the binary codec can
    carry, encoding in either codec and decoding yields the identical
    dict, the binary form round-trips byte-exactly, and relaying
    through the splitter changes nothing."""

    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_binary_round_trip_is_byte_exact(self, seed):
        rng = random.Random(f"fuzz-bin-rt:{seed}")
        for message in random_bin_messages(rng, 20):
            frame = BIN_CODEC.encode(message)
            assert frame_is_binary(frame) and frame[0] == BIN_MAGIC
            decoded = FrameDecoder().feed(frame)
            assert decoded == [message]
            # The canonical property: re-encoding the decode result
            # reproduces the original frame bit for bit.
            assert BIN_CODEC.encode(decoded[0]) == frame

    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_both_codecs_decode_to_the_same_dict(self, seed):
        rng = random.Random(f"fuzz-bin-equiv:{seed}")
        for message in random_bin_messages(rng, 20):
            via_bin = FrameDecoder().feed(BIN_CODEC.encode(message))
            via_json = FrameDecoder().feed(encode_frame(message))
            assert via_bin == via_json == [message]

    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_request_id_peek_agrees_across_codecs(self, seed):
        rng = random.Random(f"fuzz-bin-id:{seed}")
        for message in random_bin_messages(rng, 20):
            assert (frame_request_id(BIN_CODEC.encode(message))
                    == frame_request_id(encode_frame(message))
                    == message["id"])

    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_mixed_stream_survives_rechunking_with_tags(self, seed):
        # JSON and binary frames interleaved on one connection, torn at
        # arbitrary byte boundaries: feed_tagged must recover every
        # message, in order, each tagged with the codec it arrived in.
        rng = random.Random(f"fuzz-bin-mixed:{seed}")
        expected = []
        frames = []
        for message in random_bin_messages(rng, 12):
            binary = rng.random() < 0.5
            frames.append(encode_frame_as(message, binary))
            expected.append((message, binary))
        for message in random_messages(rng, 6):
            frames.append(encode_frame(message))
            expected.append((message, False))
        order = list(range(len(frames)))
        rng.shuffle(order)
        stream = b"".join(frames[i] for i in order)
        decoder = FrameDecoder()
        got = []
        for chunk in rechunk(rng, stream):
            got.extend(decoder.feed_tagged(chunk))
        assert got == [expected[i] for i in order]

    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_splitter_relays_binary_frames_byte_exact(self, seed):
        # The proxy's zero-parse path: a mixed stream split into frames
        # must reproduce the original frames verbatim, and re-decoding
        # the relayed frames agrees with decoding the original stream.
        rng = random.Random(f"fuzz-bin-split:{seed}")
        messages = random_bin_messages(rng, 15)
        frames = [encode_frame_as(m, rng.random() < 0.7)
                  for m in messages]
        splitter = FrameSplitter()
        split = []
        for chunk in rechunk(rng, b"".join(frames)):
            split.extend(bytes(f) for f in splitter.feed(chunk))
        splitter.close()
        assert split == frames
        decoder = FrameDecoder()
        assert [m for f in split for m in decoder.feed(f)] == messages

    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_garbage_after_magic_never_escapes_frame_error(self, seed):
        rng = random.Random(f"fuzz-bin-garbage:{seed}")
        blob = bytes([BIN_MAGIC]) + bytes(
            rng.randrange(256) for _ in range(rng.randrange(1, 200))
        )
        decoder = FrameDecoder()
        try:
            for chunk in rechunk(rng, blob):
                decoder.feed(chunk)
        except FrameError:
            pass  # rejection is fine; anything else is a bug
        # A partial header/body still waiting for bytes is fine too.

    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_truncated_binary_frames_detected_on_close(self, seed):
        rng = random.Random(f"fuzz-bin-trunc:{seed}")
        messages = random_bin_messages(rng, rng.randrange(1, 8))
        stream = b"".join(BIN_CODEC.encode(m) for m in messages)
        cut = rng.randrange(0, len(stream) + 1)
        decoder = FrameDecoder()
        got = []
        try:
            for chunk in rechunk(rng, stream[:cut]):
                got.extend(decoder.feed(chunk))
        except FrameError:
            return  # a torn header can decode as garbage and reject
        assert got == messages[:len(got)]
        consumed = sum(len(BIN_CODEC.encode(m)) for m in got)
        if cut == consumed:
            decoder.close()  # cut on a frame boundary: clean EOF
        else:
            with pytest.raises(TruncatedFrame):
                decoder.close()


class TestUnencodableFallback:
    """Messages outside the binary vocabulary fall back to JSON --
    silently via encode_frame_as, loudly via BIN_CODEC.encode."""

    FALLBACK_SHAPES = [
        {"type": "hello", "v": PROTOCOL_VERSION, "id": 1},
        {"type": "ping", "id": 2},
        {"type": "stats", "id": 3},
        {"type": "scan", "start": "", "count": 5, "id": 4},
        {"type": "read", "pair": 1, "lpn": 2},            # no id
        {"type": "read", "pair": -1, "lpn": 2, "id": 5},  # negative u32
        {"type": "read", "pair": 1 << 32, "lpn": 2, "id": 6},
        {"type": "read", "pair": True, "lpn": 2, "id": 7},  # bool != int
        {"type": "get", "key": "k", "id": 8, "extra": 1},  # unknown key
        {"ok": True, "id": 9, "pong": True},
        {"ok": True, "id": 10, "latency_us": float("inf")},  # non-finite
        {"ok": False, "error": "NO_SUCH_CODE", "id": 11},
        {"ok": False, "id": 12},  # error code missing entirely
        {"ok": "yes", "id": 13},
    ]

    @pytest.mark.parametrize("message", FALLBACK_SHAPES,
                             ids=lambda m: str(sorted(m))[:40])
    def test_fallback_is_json_and_lossless(self, message):
        with pytest.raises(UnencodableFrame):
            BIN_CODEC.encode(message)
        assert BIN_CODEC.try_encode(message) is None
        frame = encode_frame_as(message, True)
        assert not frame_is_binary(frame)
        assert FrameDecoder().feed(frame) == [message]

    def test_unencodable_is_not_a_frame_error(self):
        # Callers catch FrameError for wire corruption; an encode miss
        # must not be mistaken for that.
        assert not issubclass(UnencodableFrame, FrameError)


class TestBinaryRouting:
    """bin_frame_route / rewrite_bin_pair: the proxy's fixed-offset
    peek must agree with a full decode."""

    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_route_agrees_with_full_decode(self, seed):
        rng = random.Random(f"fuzz-bin-route:{seed}")
        for message in random_bin_messages(rng, 20):
            frame = BIN_CODEC.encode(message)
            route = bin_frame_route(frame)
            kind = message.get("type")
            if kind in ("read", "write"):
                assert route == ("pair", message["pair"])
            elif kind in ("get", "put"):
                assert route == ("key", message["key"])
            else:
                assert route is None  # responses are not routable

    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_rewrite_pair_patches_exactly_one_field(self, seed):
        rng = random.Random(f"fuzz-bin-rewrite:{seed}")
        for message in random_bin_messages(rng, 20):
            if message.get("type") not in ("read", "write"):
                continue
            frame = BIN_CODEC.encode(message)
            local = rng.randrange(1 << 32)
            patched = rewrite_bin_pair(frame, local)
            assert len(patched) == len(frame)
            expected = dict(message, pair=local)
            assert FrameDecoder().feed(bytes(patched)) == [expected]
