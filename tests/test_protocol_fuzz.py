"""Property-based fuzzing of the wire protocol: :class:`FrameDecoder`,
the zero-parse :class:`FrameSplitter` the proxy relays with, and the
version gate.

Seeded ``random`` only (replayable, no extra dependencies).  The decoder
contract under test:

* **no drop, no duplicate**: however a valid byte stream is re-chunked,
  the decoded message sequence is exactly the encoded one, in order;
* **truncation is detected**: cutting the stream mid-frame decodes the
  complete prefix, and ``close()`` raises :class:`TruncatedFrame` iff the
  cut landed inside a frame;
* **garbage never escapes the error taxonomy**: arbitrary bytes may only
  ever raise :class:`FrameError` subclasses, never anything else, and a
  decoder on a poisoned stream stays in a raising (not corrupting) state;
* **splitting agrees with decoding**: the splitter cuts any re-chunked
  stream at exactly the boundaries the decoder parses at, byte-for-byte;
* **versioning**: ``v`` absent or equal to :data:`PROTOCOL_VERSION`
  passes; anything else is rejected with the offending value.
"""

import random

import pytest

from repro.service.protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameError,
    FrameSplitter,
    FrameTooLarge,
    TruncatedFrame,
    check_version,
    encode_frame,
)

NUM_TRIALS = 40


def random_messages(rng: "random.Random", count: int):
    """A batch of representative request/response payloads."""
    out = []
    for i in range(count):
        shape = rng.randrange(5)
        if shape == 0:
            out.append({"type": "read", "pair": rng.randrange(8),
                        "lpn": rng.randrange(4096), "id": i})
        elif shape == 1:
            out.append({"ok": True, "id": i, "latency_us": rng.random() * 1e4})
        elif shape == 2:
            out.append({"type": "put", "key": f"k{rng.randrange(999)}",
                        "value": "v" * rng.randrange(0, 200), "id": i})
        elif shape == 3:
            out.append({"ok": False, "error": "BUSY", "id": i,
                        "message": "x" * rng.randrange(0, 50)})
        else:
            # Versioned traffic: mostly v1 hellos, sometimes a version
            # the gate will reject -- framing must not care either way.
            out.append({"type": "hello", "id": i,
                        "v": rng.choice([PROTOCOL_VERSION, PROTOCOL_VERSION,
                                         0, 99])})
    return out


def rechunk(rng: "random.Random", stream: bytes):
    """Split a byte stream at random boundaries (including empty chunks)."""
    chunks = []
    pos = 0
    while pos < len(stream):
        step = rng.randrange(0, 17)
        chunks.append(stream[pos:pos + step])
        pos += step
    return chunks


class TestRechunkingNeverDropsOrDuplicates:
    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_any_chunking_decodes_exactly_once(self, seed):
        rng = random.Random(f"fuzz-chunk:{seed}")
        messages = random_messages(rng, rng.randrange(1, 30))
        stream = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        decoded = []
        for chunk in rechunk(rng, stream):
            decoded.extend(decoder.feed(chunk))
        assert decoded == messages
        decoder.close()  # stream ended on a frame boundary: clean EOF

    def test_byte_at_a_time(self):
        messages = random_messages(random.Random("fuzz-single"), 5)
        stream = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        decoded = []
        for i in range(len(stream)):
            decoded.extend(decoder.feed(stream[i:i + 1]))
        assert decoded == messages

    def test_all_at_once(self):
        messages = random_messages(random.Random("fuzz-bulk"), 25)
        stream = b"".join(encode_frame(m) for m in messages)
        assert FrameDecoder().feed(stream) == messages


class TestTruncation:
    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_cut_stream_decodes_prefix_and_flags_partial(self, seed):
        rng = random.Random(f"fuzz-trunc:{seed}")
        messages = random_messages(rng, rng.randrange(1, 12))
        frames = [encode_frame(m) for m in messages]
        stream = b"".join(frames)
        cut = rng.randrange(0, len(stream) + 1)
        decoder = FrameDecoder()
        decoded = []
        for chunk in rechunk(rng, stream[:cut]):
            decoded.extend(decoder.feed(chunk))
        # The decoded prefix is exactly the frames that fit before the cut.
        boundary = 0
        whole = 0
        for frame in frames:
            if boundary + len(frame) > cut:
                break
            boundary += len(frame)
            whole += 1
        assert decoded == messages[:whole]
        if cut == boundary:
            decoder.close()  # cut on a boundary: clean EOF
        else:
            with pytest.raises(TruncatedFrame):
                decoder.close()


class TestGarbage:
    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_random_bytes_raise_only_frame_errors(self, seed):
        rng = random.Random(f"fuzz-garbage:{seed}")
        decoder = FrameDecoder(max_frame_bytes=1 << 16)
        blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 400)))
        # Either the garbage parses as a plausible-but-incomplete length
        # prefix (decoder keeps waiting, no error) or it raises a
        # documented FrameError; anything else is a contract violation.
        for chunk in rechunk(rng, blob):
            try:
                decoder.feed(chunk)
            except FrameError:
                break
            except Exception as exc:  # pragma: no cover - the failure mode
                pytest.fail(f"non-FrameError escaped the decoder: {exc!r}")

    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_garbage_prefix_never_corrupts_silently(self, seed):
        """A garbage-prefixed stream must not decode phantom messages
        that were never encoded (silent corruption), except in the
        astronomically-unlikely case the garbage is itself a frame."""
        rng = random.Random(f"fuzz-prefix:{seed}")
        messages = random_messages(rng, 3)
        garbage = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 40)))
        stream = garbage + b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder(max_frame_bytes=1 << 16)
        decoded = []
        try:
            for chunk in rechunk(rng, stream):
                decoded.extend(decoder.feed(chunk))
        except FrameError:
            return  # detected the corruption: the desired outcome
        # No error: the garbage must have been consumed as framing, which
        # can only swallow real messages, never invent new valid ones.
        for message in decoded:
            assert message in messages

    def test_oversized_length_prefix_rejected_immediately(self):
        decoder = FrameDecoder(max_frame_bytes=1024)
        with pytest.raises(FrameTooLarge):
            decoder.feed((2048).to_bytes(4, "big"))

    def test_oversized_rejected_before_body_arrives(self):
        # The decoder must raise on the prefix alone -- it never waits
        # for (or allocates) the advertised body.
        decoder = FrameDecoder(max_frame_bytes=1024)
        with pytest.raises(FrameTooLarge):
            decoder.feed((1 << 30).to_bytes(4, "big"))

    def test_non_json_body_raises_frame_error(self):
        body = b"\xff\xfenot json"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(FrameError):
            FrameDecoder().feed(frame)

    def test_non_object_json_body_raises_frame_error(self):
        body = b"[1,2,3]"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(FrameError):
            FrameDecoder().feed(frame)


class TestFrameSplitter:
    """The proxy's relay path: cut at frame boundaries, decode nothing."""

    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_splitting_agrees_with_decoding(self, seed):
        rng = random.Random(f"fuzz-split:{seed}")
        messages = random_messages(rng, rng.randrange(1, 30))
        frames = [encode_frame(m) for m in messages]
        splitter = FrameSplitter()
        split = []
        for chunk in rechunk(rng, b"".join(frames)):
            split.extend(splitter.feed(chunk))
        # Byte-for-byte the original frames (4-byte prefix included):
        # relaying them must be indistinguishable from the backend's own
        # writes, and re-decoding them round-trips the messages.
        assert split == frames
        decoder = FrameDecoder()
        assert [m for f in split for m in decoder.feed(f)] == messages
        splitter.close()

    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_truncation_detected_like_the_decoder(self, seed):
        rng = random.Random(f"fuzz-split-trunc:{seed}")
        frames = [encode_frame(m)
                  for m in random_messages(rng, rng.randrange(1, 12))]
        stream = b"".join(frames)
        cut = rng.randrange(0, len(stream) + 1)
        splitter = FrameSplitter()
        split = []
        for chunk in rechunk(rng, stream[:cut]):
            split.extend(splitter.feed(chunk))
        assert b"".join(split) == stream[:sum(len(f) for f in split)]
        if cut == sum(len(f) for f in split):
            splitter.close()  # cut on a boundary: clean EOF
        else:
            with pytest.raises(TruncatedFrame):
                splitter.close()

    def test_splitter_never_parses_the_body(self):
        # The splitter must relay syntactically-invalid JSON untouched:
        # the proxy's contract is framing, not validation.
        body = b"\xff\xfe this is not json at all"
        frame = len(body).to_bytes(4, "big") + body
        assert FrameSplitter().feed(frame) == [frame]

    def test_oversized_frame_rejected(self):
        splitter = FrameSplitter(max_frame_bytes=1024)
        with pytest.raises(FrameTooLarge):
            splitter.feed((2048).to_bytes(4, "big"))


class TestCheckVersion:
    def test_absent_and_current_pass(self):
        assert check_version({"type": "ping"}) is None
        assert check_version({"type": "ping", "v": PROTOCOL_VERSION}) is None
        # An explicit null is v1 traffic too, same as an absent field.
        assert check_version({"type": "ping", "v": None}) is None

    @pytest.mark.parametrize("bad", [0, 2, 99, -1, "1", "one", 1.5])
    def test_everything_else_is_returned_for_the_error(self, bad):
        assert check_version({"type": "ping", "v": bad}) == bad

    @pytest.mark.parametrize("seed", range(NUM_TRIALS))
    def test_fuzzed_versions_never_raise(self, seed):
        rng = random.Random(f"fuzz-version:{seed}")
        for message in random_messages(rng, 20):
            verdict = check_version(message)
            assert verdict is None or verdict != PROTOCOL_VERSION
