"""Tests for predictor, idle predictor, write cache, GC monitor, server."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.flash import FlashGeometry, Ssd
from repro.net.packet import read_request, write_request
from repro.server import (
    FifoIoScheduler,
    IdlePredictor,
    ReturnLatencyPredictor,
    StorageServer,
    WriteCache,
)
from repro.server.gc_monitor import GcMonitor, LocalGcCoordinator
from repro.sim import Simulator
from repro.sim.core import MSEC
from repro.vssd import VssdAllocator


class TestReturnLatencyPredictor:
    def test_empty_predicts_zero(self):
        pred = ReturnLatencyPredictor()
        assert pred.predict(1, "read") == 0.0

    def test_mean_of_window(self):
        pred = ReturnLatencyPredictor(window=4)
        for v in (10.0, 20.0, 30.0, 40.0):
            pred.observe(1, "read", v)
        assert pred.predict(1, "read") == pytest.approx(25.0)

    def test_window_slides(self):
        pred = ReturnLatencyPredictor(window=2)
        for v in (10.0, 20.0, 100.0):
            pred.observe(1, "read", v)
        assert pred.predict(1, "read") == pytest.approx(60.0)

    def test_reads_and_writes_separate(self):
        # §3.4: separate windows, since response sizes differ.
        pred = ReturnLatencyPredictor()
        pred.observe(1, "read", 10.0)
        pred.observe(1, "write", 1000.0)
        assert pred.predict(1, "read") == 10.0
        assert pred.predict(1, "write") == 1000.0

    def test_vssds_separate(self):
        pred = ReturnLatencyPredictor()
        pred.observe(1, "read", 10.0)
        pred.observe(2, "read", 99.0)
        assert pred.predict(1, "read") == 10.0
        assert pred.predict(2, "read") == 99.0

    def test_default_window_is_100(self):
        # The paper's choice.
        assert ReturnLatencyPredictor().window == 100

    def test_invalid_kind(self):
        with pytest.raises(ConfigError):
            ReturnLatencyPredictor().predict(1, "fsync")

    def test_invalid_window(self):
        with pytest.raises(ConfigError):
            ReturnLatencyPredictor(window=0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                    max_size=300))
    def test_prediction_bounded_by_window_extremes(self, values):
        """Property: the sliding-window mean never leaves [min, max] of the
        last `window` observations."""
        pred = ReturnLatencyPredictor(window=100)
        for v in values:
            pred.observe(7, "read", v)
        tail = values[-100:]
        prediction = pred.predict(7, "read")
        assert min(tail) - 1e-9 <= prediction <= max(tail) + 1e-9

    def test_window_fill(self):
        pred = ReturnLatencyPredictor(window=10)
        assert pred.window_fill(1, "read") == 0
        for _ in range(15):
            pred.observe(1, "read", 5.0)
        assert pred.window_fill(1, "read") == 10


class TestIdlePredictor:
    def test_smoothing_formula(self):
        pred = IdlePredictor(alpha=0.5)
        pred.record_request(0.0)
        pred.record_request(100.0)  # real interval 100
        assert pred.predicted_idle_us == pytest.approx(50.0)  # 0.5*100 + 0.5*0
        pred.record_request(300.0)  # real interval 200
        assert pred.predicted_idle_us == pytest.approx(125.0)  # 0.5*200 + 0.5*50

    def test_threshold_gate(self):
        pred = IdlePredictor(alpha=1.0, threshold_us=30 * MSEC)
        pred.record_request(0.0)
        assert not pred.should_background_gc()
        pred.record_request(40 * MSEC)
        assert pred.should_background_gc()

    def test_busy_stream_never_triggers(self):
        pred = IdlePredictor()
        for i in range(100):
            pred.record_request(i * 100.0)  # 100 us apart
        assert not pred.should_background_gc()

    def test_defaults_match_paper(self):
        pred = IdlePredictor()
        assert pred.alpha == 0.5
        assert pred.threshold_us == 30 * MSEC

    def test_validation(self):
        with pytest.raises(ConfigError):
            IdlePredictor(alpha=1.5)
        with pytest.raises(ConfigError):
            IdlePredictor(threshold_us=0)


def make_server(sim=None, cache_pages=64, scheduler=None, **kwargs):
    sim = sim if sim is not None else Simulator()
    geo = FlashGeometry(channels=2, chips_per_channel=2, blocks_per_chip=32,
                        pages_per_block=8)
    ssd = Ssd(sim, "ssd", geometry=geo)
    vssd = VssdAllocator(ssd).create_hardware_isolated("v", channels=[0, 1])
    server = StorageServer(
        sim, "server-0", "10.0.0.1",
        scheduler=scheduler if scheduler is not None else FifoIoScheduler(),
        write_cache=WriteCache(sim, capacity_pages=cache_pages),
        **kwargs,
    )
    server.host_vssd(vssd)
    return sim, server, vssd


class TestWriteCache:
    def test_write_completes_at_dram_speed(self):
        responses = []
        sim, server, vssd = make_server(
            respond_fn=lambda pkt, srv: responses.append((pkt, sim.now))
        )
        pkt = write_request(vssd.vssd_id, "client", server.ip, 0.0)
        pkt.payload["lpn"] = 3
        server.receive_packet(pkt)
        sim.run(until=50.0)
        # Completed at cache-admission time, long before flash program time.
        assert responses and responses[0][1] < 50.0

    def test_flusher_eventually_writes_to_flash(self):
        sim, server, vssd = make_server()
        pkt = write_request(vssd.vssd_id, "client", server.ip, 0.0)
        pkt.payload["lpn"] = 3
        server.receive_packet(pkt)
        sim.run(until=100 * MSEC)
        assert vssd.writes_served >= 1
        assert server.write_cache.dirty_pages == 0

    def test_coalescing_hot_page(self):
        sim = Simulator()
        sim2, server, vssd = make_server(sim)
        for _ in range(5):
            pkt = write_request(vssd.vssd_id, "client", server.ip, 0.0)
            pkt.payload["lpn"] = 7
            server.receive_packet(pkt)
        sim.run(until=10.0)
        assert server.write_cache.coalesced >= 3

    def test_full_cache_blocks_admission(self):
        sim, server, vssd = make_server(cache_pages=4)
        responses = []
        server.respond_fn = lambda pkt, srv: responses.append(sim.now)
        for lpn in range(12):
            pkt = write_request(vssd.vssd_id, "client", server.ip, 0.0)
            pkt.payload["lpn"] = lpn
            server.receive_packet(pkt)
        sim.run(until=500 * MSEC)
        assert len(responses) == 12
        assert server.write_cache.full_stalls > 0
        # The stalled writes completed later than the cached ones.
        assert max(responses) > min(responses)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            WriteCache(sim, capacity_pages=0)
        with pytest.raises(ConfigError):
            WriteCache(sim, flush_watermark=1.5)


class TestStorageServerReads:
    def test_read_roundtrip(self):
        responses = []
        sim, server, vssd = make_server(
            respond_fn=lambda pkt, srv: responses.append((pkt, sim.now))
        )
        pkt = read_request(vssd.vssd_id, "client", server.ip, 0.0)
        pkt.payload["lpn"] = 0
        server.receive_packet(pkt)
        sim.run(until=10 * MSEC)
        assert len(responses) == 1
        resp, t = responses[0]
        assert resp.is_response and resp.dst == "client"
        assert server.reads_completed == 1

    def test_predictor_fed_from_int_field(self):
        sim, server, vssd = make_server()
        pkt = read_request(vssd.vssd_id, "client", server.ip, 0.0)
        pkt.lat = 321.0
        pkt.payload["lpn"] = 0
        server.receive_packet(pkt)
        sim.run(until=10 * MSEC)
        assert server.predictor.predict(vssd.vssd_id, "read") == pytest.approx(321.0)

    def test_inflight_limit_respected(self):
        sim, server, vssd = make_server()
        server.max_inflight = 2
        for lpn in range(6):
            pkt = read_request(vssd.vssd_id, "client", server.ip, 0.0)
            pkt.payload["lpn"] = lpn
            server.receive_packet(pkt)
        sim.run(until=1.0)
        # Only 2 dispatched; 4 still queued.
        assert server.queue_depth() == 4

    def test_unknown_vssd_rejected(self):
        sim, server, vssd = make_server()
        pkt = read_request(9999, "client", server.ip, 0.0)
        with pytest.raises(ConfigError):
            server.receive_packet(pkt)

    def test_duplicate_hosting_rejected(self):
        sim, server, vssd = make_server()
        with pytest.raises(ConfigError):
            server.host_vssd(vssd)


class TestGcMonitor:
    def _dirty_vssd(self, sim, vssd):
        """Rewrite a small working set so the free ratio drops below the
        soft threshold *and* blocks accumulate stale pages for GC."""

        def filler():
            working_set = max(1, vssd.logical_pages // 4)
            lpn = 0
            while vssd.free_block_ratio() >= 0.30:
                yield sim.spawn(vssd.write(lpn % working_set))
                lpn += 1

        sim.spawn(filler())
        sim.run()

    def test_local_coordinator_accepts_immediately(self):
        sim, server, vssd = make_server()
        self._dirty_vssd(sim, vssd)
        monitor = GcMonitor(
            sim, [vssd], LocalGcCoordinator(), server.idle_predictors,
            check_interval_us=5 * MSEC,
        )
        monitor.start()
        ratio_before = vssd.free_block_ratio()
        sim.run(until=sim.now + 500 * MSEC)
        assert vssd.gc_runs >= 1
        # GC reclaimed space (erases are 5 ms on the P-SSD, so full
        # recovery to the restore target can span several monitor periods).
        assert vssd.free_block_ratio() > ratio_before

    def test_soft_request_counted(self):
        sim, server, vssd = make_server()
        self._dirty_vssd(sim, vssd)
        monitor = GcMonitor(sim, [vssd], LocalGcCoordinator(),
                            check_interval_us=5 * MSEC)
        monitor.start()
        sim.run(until=sim.now + 50 * MSEC)
        assert monitor.requests_sent["soft"] + monitor.requests_sent["regular"] >= 1

    def test_background_gc_on_idle(self):
        sim, server, vssd = make_server()
        # Create stale pages but stay above the soft threshold.
        def light_rewrites():
            for lpn in range(vssd.logical_pages // 4):
                yield sim.spawn(vssd.write(lpn))
            for lpn in range(vssd.logical_pages // 8):
                yield sim.spawn(vssd.write(lpn))

        sim.spawn(light_rewrites())
        sim.run()
        assert vssd.gc_needed() is None
        # Simulate a long-idle predictor.
        pred = IdlePredictor()
        pred.record_request(0.0)
        pred.record_request(100 * MSEC)  # predicts 50ms idle > 30ms threshold
        monitor = GcMonitor(
            sim, [vssd], LocalGcCoordinator(), {vssd.vssd_id: pred},
            check_interval_us=5 * MSEC,
        )
        monitor.start()
        sim.run(until=sim.now + 50 * MSEC)
        assert monitor.requests_sent["bg"] >= 1
        assert vssd.gc_runs >= 1

    def test_no_gc_when_clean(self):
        sim, server, vssd = make_server()
        monitor = GcMonitor(sim, [vssd], LocalGcCoordinator(),
                            check_interval_us=5 * MSEC)
        monitor.start()
        sim.run(until=50 * MSEC)
        assert vssd.gc_runs == 0

    def test_interval_validated(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            GcMonitor(sim, [], LocalGcCoordinator(), check_interval_us=0)
