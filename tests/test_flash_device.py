"""Tests for channels, chips, SSD assembly, and wear statistics."""

import pytest

from repro.errors import ConfigError, FlashError, OutOfSpaceError
from repro.flash import Channel, FlashChip, FlashGeometry, PSSD, Ssd, WearTracker
from repro.flash.wear import wear_imbalance, wear_variance
from repro.sim import Simulator


class TestChip:
    def test_allocate_and_release_roundtrip(self):
        chip = FlashChip(0, 4, 4)
        block = chip.allocate_block()
        assert chip.free_block_count == 3
        chip.release_block(block)
        assert chip.free_block_count == 4

    def test_allocate_exhausts(self):
        chip = FlashChip(0, 2, 4)
        chip.allocate_block()
        chip.allocate_block()
        with pytest.raises(OutOfSpaceError):
            chip.allocate_block()

    def test_release_unerased_block_fails(self):
        chip = FlashChip(0, 2, 4)
        block = chip.allocate_block()
        block.program_next()
        with pytest.raises(FlashError):
            chip.release_block(block)

    def test_double_release_fails(self):
        chip = FlashChip(0, 2, 4)
        block = chip.allocate_block()
        chip.release_block(block)
        with pytest.raises(FlashError):
            chip.release_block(block)

    def test_take_specific_block(self):
        chip = FlashChip(0, 4, 4)
        block = chip.take_specific_block(2)
        assert block.block_id == 2
        assert chip.free_block_count == 3
        with pytest.raises(FlashError):
            chip.take_specific_block(2)

    def test_best_victim_prefers_most_invalid(self):
        chip = FlashChip(0, 3, 4)
        b0 = chip.allocate_block()
        b1 = chip.allocate_block()
        for _ in range(4):
            b0.program_next()
            b1.program_next()
        b0.invalidate(0)
        b1.invalidate(0)
        b1.invalidate(1)
        assert chip.best_victim() is b1

    def test_no_victim_when_clean(self):
        chip = FlashChip(0, 3, 4)
        assert chip.best_victim() is None


class TestChannel:
    def test_operations_take_time(self):
        sim = Simulator()
        channel = Channel(sim, 0, PSSD)
        done = sim.spawn(channel.read_page(4.0))
        sim.run()
        assert done.triggered
        assert sim.now == pytest.approx(PSSD.read_latency(4.0))

    def test_channel_serialises_commands(self):
        sim = Simulator()
        channel = Channel(sim, 0, PSSD)
        finish_times = []

        def op():
            yield sim.spawn(channel.read_page(4.0))
            finish_times.append(sim.now)

        sim.spawn(op())
        sim.spawn(op())
        sim.run()
        one_read = PSSD.read_latency(4.0)
        assert finish_times == pytest.approx([one_read, 2 * one_read])

    def test_erase_blocks_queued_reads(self):
        # The head-of-line blocking at the heart of the paper: a read
        # arriving during an erase waits the full erase time.
        sim = Simulator()
        channel = Channel(sim, 0, PSSD)
        read_done = []

        def eraser():
            yield sim.spawn(channel.erase_block())

        def reader():
            yield sim.spawn(channel.read_page(4.0))
            read_done.append(sim.now)

        sim.spawn(eraser())
        sim.spawn(reader())
        sim.run()
        assert read_done[0] == pytest.approx(PSSD.erase_us + PSSD.read_latency(4.0))

    def test_op_counters_and_utilisation(self):
        sim = Simulator()
        channel = Channel(sim, 0, PSSD)
        sim.spawn(channel.program_page(4.0))
        sim.run()
        assert channel.op_counts["program"] == 1
        assert channel.utilization(sim.now) == pytest.approx(1.0)

    def test_queue_depth_visible(self):
        sim = Simulator()
        channel = Channel(sim, 0, PSSD)
        sim.spawn(channel.read_page(4.0))
        sim.spawn(channel.read_page(4.0))
        sim.spawn(channel.read_page(4.0))
        sim.run(until=1.0)  # all three have tried to acquire by now
        assert channel.queue_depth == 2
        assert channel.busy


class TestSsd:
    def test_assembly_matches_geometry(self):
        sim = Simulator()
        geo = FlashGeometry(channels=4, chips_per_channel=2)
        ssd = Ssd(sim, "ssd-0", geometry=geo)
        assert len(ssd.channels) == 4
        assert len(ssd.chips) == 8

    def test_channel_of_chip(self):
        sim = Simulator()
        geo = FlashGeometry(channels=2, chips_per_channel=2)
        ssd = Ssd(sim, "s", geometry=geo)
        assert ssd.channel_of_chip(ssd.chips[0]).channel_id == 0
        assert ssd.channel_of_chip(ssd.chips[3]).channel_id == 1

    def test_chips_of_channel(self):
        sim = Simulator()
        geo = FlashGeometry(channels=2, chips_per_channel=3)
        ssd = Ssd(sim, "s", geometry=geo)
        chips = ssd.chips_of_channel(1)
        assert [c.chip_id for c in chips] == [3, 4, 5]
        with pytest.raises(ConfigError):
            ssd.chips_of_channel(5)

    def test_fresh_ssd_has_zero_wear(self):
        sim = Simulator()
        ssd = Ssd(sim, "s")
        assert ssd.average_erase_count == 0.0


class TestWearStats:
    def test_tracker_requires_chips(self):
        with pytest.raises(ValueError):
            WearTracker([])

    def test_average_tracks_erases(self):
        chip = FlashChip(0, 2, 2)
        tracker = WearTracker([chip])
        block = chip.blocks[0]
        for _ in range(2):
            block.invalidate(block.program_next())
        block.erase()
        assert tracker.average_erase_count() == 0.5
        assert tracker.max_erase_count() == 1
        assert tracker.min_erase_count() == 0

    def test_imbalance_of_uniform_fleet(self):
        assert wear_imbalance([5.0, 5.0, 5.0]) == 1.0

    def test_imbalance_of_fresh_fleet(self):
        assert wear_imbalance([0.0, 0.0]) == 1.0

    def test_imbalance_detects_hot_device(self):
        lam = wear_imbalance([10.0, 1.0, 1.0])
        assert lam == pytest.approx(10.0 / 4.0)

    def test_variance(self):
        assert wear_variance([1.0, 1.0]) == 0.0
        assert wear_variance([0.0, 2.0]) == 1.0

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            wear_imbalance([])
        with pytest.raises(ValueError):
            wear_variance([])
