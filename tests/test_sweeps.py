"""Tests for the generic parameter-sweep harness."""

import pytest

from repro.errors import ConfigError
from repro.experiments.sweeps import Sweep, best_point


class TestSweep:
    def test_cartesian_points(self):
        sweep = Sweep("s", axes={"a": [1, 2], "b": ["x", "y", "z"]})
        assert sweep.num_points == 6
        points = list(sweep.points())
        assert {"a": 1, "b": "x"} in points
        assert {"a": 2, "b": "z"} in points

    def test_run_collects_rows(self):
        sweep = Sweep("s", axes={"n": [1, 2, 3]})
        result = sweep.run(lambda n: {"square": float(n * n)})
        assert result.series("square") == [1.0, 4.0, 9.0]
        assert result.columns == ["n", "square"]

    def test_axis_values_rendered_as_labels(self):
        sweep = Sweep("s", axes={"ratio": [0.25]})
        result = sweep.run(lambda ratio: {"v": ratio})
        assert result.rows[0]["ratio"] == "0.25"

    def test_progress_callback(self):
        seen = []
        sweep = Sweep("s", axes={"n": [1, 2]})
        sweep.run(lambda n: {"v": n},
                  progress_fn=lambda i, total, point: seen.append((i, total)))
        assert seen == [(0, 2), (1, 2)]

    def test_table_renders(self):
        sweep = Sweep("cache-study", axes={"cache": [16, 64]})
        result = sweep.run(lambda cache: {"p999": cache * 10.0})
        table = result.to_table()
        assert "cache-study" in table and "640.0" in table

    def test_metric_axis_collision_rejected(self):
        sweep = Sweep("s", axes={"n": [1]})
        with pytest.raises(ConfigError):
            sweep.run(lambda n: {"n": 1.0})

    def test_non_mapping_result_rejected(self):
        sweep = Sweep("s", axes={"n": [1]})
        with pytest.raises(ConfigError):
            sweep.run(lambda n: 42)

    def test_validation(self):
        with pytest.raises(ConfigError):
            Sweep("s", axes={})
        with pytest.raises(ConfigError):
            Sweep("s", axes={"a": []})


def _square_metrics(n):
    """Module-level so parallel sweep workers can pickle it."""
    return {"square": float(n * n)}


class TestSweepDedupAndParallel:
    def test_single_axis_single_point(self):
        sweep = Sweep("s", axes={"n": [7]})
        result = sweep.run(_square_metrics)
        assert result.rows == [{"n": "7", "square": 49.0}]

    def test_duplicate_points_run_once(self):
        calls = []

        def run_fn(n):
            calls.append(n)
            return {"v": float(n)}

        sweep = Sweep("s", axes={"n": [1, 2, 1, 1]})
        result = sweep.run(run_fn)
        assert calls == [1, 2]  # deduped execution...
        assert result.series("v") == [1.0, 2.0, 1.0, 1.0]  # ...full rows

    def test_progress_reports_unique_points(self):
        seen = []
        sweep = Sweep("s", axes={"n": [3, 3, 4]})
        sweep.run(lambda n: {"v": n},
                  progress_fn=lambda i, total, point: seen.append((i, total)))
        assert seen == [(0, 2), (1, 2)]

    def test_parallel_matches_serial(self):
        sweep = Sweep("s", axes={"n": [1, 2, 3, 4]})
        serial = sweep.run(_square_metrics, jobs=1)
        fanned = sweep.run(_square_metrics, jobs=2)
        assert serial.rows == fanned.rows

    def test_parallel_with_unpicklable_fn_degrades(self):
        sweep = Sweep("s", axes={"n": [1, 2]})
        result = sweep.run(lambda n: {"v": float(n)}, jobs=4)
        assert result.series("v") == [1.0, 2.0]

    def test_explicit_runner(self):
        from repro.experiments.parallel import ParallelRunner

        sweep = Sweep("s", axes={"n": [2, 3]})
        result = sweep.run(_square_metrics, runner=ParallelRunner(jobs=2))
        assert result.series("square") == [4.0, 9.0]


class TestBestPoint:
    def test_minimize(self):
        sweep = Sweep("s", axes={"n": [1, 2, 3]})
        result = sweep.run(lambda n: {"cost": float((n - 2) ** 2)})
        row, value = best_point(result, "cost")
        assert row["n"] == "2" and value == 0.0

    def test_maximize(self):
        sweep = Sweep("s", axes={"n": [1, 2, 3]})
        result = sweep.run(lambda n: {"gain": float(n)})
        row, value = best_point(result, "gain", minimize=False)
        assert row["n"] == "3" and value == 3.0

    def test_no_numeric_values(self):
        sweep = Sweep("s", axes={"n": [1]})
        result = sweep.run(lambda n: {"v": None})
        with pytest.raises(ConfigError):
            best_point(result, "v")


class TestSweepWithWearSim:
    def test_end_to_end_with_real_run_fn(self):
        from repro.wear import WearSimulation

        sweep = Sweep(
            "wear-policy", axes={"local": [False, True]},
            title="local balancer on/off",
        )

        def run_fn(local):
            sim = WearSimulation(num_servers=2, ssds_per_server=4,
                                 enable_local=local, enable_global=False,
                                 replacement_rate_per_year=0.0, seed=4)
            result = sim.run(days=365, sample_every=90)
            return {"mean_lambda": result.mean_final_server_imbalance()}

        result = sweep.run(run_fn)
        by_label = {row["local"]: row["mean_lambda"] for row in result.rows}
        assert by_label["True"] <= by_label["False"]
