"""Tests for the page-mapped FTL, greedy GC, and block borrowing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AddressError, FlashError, OutOfSpaceError
from repro.flash import FlashChip, GreedyGcPolicy, PageMappedFtl, PSSD


def make_ftl(chips=2, blocks=16, pages=8, overprovision=0.25, name="ftl"):
    chip_objs = [FlashChip(i, blocks, pages) for i in range(chips)]
    return PageMappedFtl(name, chip_objs, pages, overprovision=overprovision)


class TestMapping:
    def test_unwritten_page_unmapped(self):
        ftl = make_ftl()
        assert ftl.lookup(0) is None

    def test_write_then_read_roundtrip(self):
        ftl = make_ftl()
        addr = ftl.place_write(5)
        assert ftl.lookup(5) == addr

    def test_overwrite_invalidates_old_location(self):
        ftl = make_ftl()
        first = ftl.place_write(3)
        second = ftl.place_write(3)
        assert first != second
        from repro.flash import PageState

        assert first.chip.blocks[first.block_id].page_state(first.page) is PageState.INVALID

    def test_writes_stripe_across_chips(self):
        ftl = make_ftl(chips=4)
        chips_used = {ftl.place_write(i).chip.chip_id for i in range(8)}
        assert len(chips_used) == 4

    def test_lpn_bounds_enforced(self):
        ftl = make_ftl()
        with pytest.raises(AddressError):
            ftl.lookup(ftl.logical_pages)
        with pytest.raises(AddressError):
            ftl.place_write(-1)

    def test_logical_capacity_reflects_overprovision(self):
        ftl = make_ftl(chips=1, blocks=10, pages=10, overprovision=0.2)
        assert ftl.logical_pages == 80
        assert ftl.total_physical_pages == 100

    def test_trim_unmaps(self):
        ftl = make_ftl()
        ftl.place_write(7)
        ftl.trim(7)
        assert ftl.lookup(7) is None

    def test_trim_unwritten_is_noop(self):
        ftl = make_ftl()
        ftl.trim(0)  # must not raise

    def test_needs_at_least_one_chip(self):
        with pytest.raises(FlashError):
            PageMappedFtl("x", [], 8)

    def test_invalid_overprovision(self):
        with pytest.raises(FlashError):
            make_ftl(overprovision=0.0)
        with pytest.raises(FlashError):
            make_ftl(overprovision=1.0)


class TestFreeSpace:
    def test_fresh_device_fully_free(self):
        ftl = make_ftl()
        assert ftl.free_block_ratio() == 1.0

    def test_ratio_decreases_with_writes(self):
        ftl = make_ftl(chips=1, blocks=8, pages=8)
        before = ftl.free_block_ratio()
        for lpn in range(16):  # two blocks' worth
            ftl.place_write(lpn)
        assert ftl.free_block_ratio() < before

    def test_fill_device_to_capacity(self):
        ftl = make_ftl(chips=1, blocks=8, pages=8, overprovision=0.25)
        for lpn in range(ftl.logical_pages):
            ftl.place_write(lpn)
        assert ftl.mapped_page_count() == ftl.logical_pages
        assert ftl.utilization() == 1.0

    def test_out_of_space_without_gc(self):
        # Writing far beyond capacity with no GC must eventually fail.
        ftl = make_ftl(chips=1, blocks=4, pages=4, overprovision=0.25)
        with pytest.raises(OutOfSpaceError):
            for _ in range(100):
                ftl.place_write(0)  # same lpn: creates invalid pages, no GC


class TestGreedyGc:
    def test_no_victim_on_clean_device(self):
        ftl = make_ftl()
        assert ftl.select_victim() is None

    def test_victim_has_most_invalids(self):
        ftl = make_ftl(chips=1, blocks=8, pages=4)
        # Fill 3 blocks; then invalidate different amounts via overwrites.
        for lpn in range(12):
            ftl.place_write(lpn)
        for lpn in (0, 1, 2):  # first block gets 3 invalids
            ftl.place_write(lpn)
        victim = ftl.select_victim()
        assert victim is not None
        block = victim.chip.blocks[victim.block_id]
        assert block.invalid_count == 3

    def test_collect_once_frees_a_block(self):
        ftl = make_ftl(chips=1, blocks=8, pages=4)
        for lpn in range(12):
            ftl.place_write(lpn)
        for lpn in range(4):
            ftl.place_write(lpn)
        policy = GreedyGcPolicy()
        free_before = ftl.free_blocks_total()
        result = policy.collect_once(ftl)
        assert result is not None
        assert ftl.free_blocks_total() >= free_before
        ftl.check_invariants()

    def test_gc_preserves_logical_data(self):
        ftl = make_ftl(chips=1, blocks=8, pages=4)
        live = {}
        for lpn in range(12):
            live[lpn] = ftl.place_write(lpn)
        for lpn in range(4):
            live[lpn] = ftl.place_write(lpn)
        policy = GreedyGcPolicy()
        policy.collect_once(ftl)
        # Every lpn still mapped, and migrated pages moved consistently.
        for lpn in live:
            assert ftl.lookup(lpn) is not None
        ftl.check_invariants()

    def test_collect_until_restores_ratio(self):
        ftl = make_ftl(chips=2, blocks=16, pages=8, overprovision=0.3)
        policy = GreedyGcPolicy()
        rng_lpns = list(range(ftl.logical_pages)) * 2
        for lpn in rng_lpns:
            if ftl.free_block_ratio() < 0.2:
                policy.collect_until(ftl, target_ratio=0.3)
            ftl.place_write(lpn)
        assert ftl.free_block_ratio() >= 0.15
        ftl.check_invariants()

    def test_gc_writes_counted(self):
        ftl = make_ftl(chips=1, blocks=8, pages=4)
        for lpn in range(12):
            ftl.place_write(lpn)
        for lpn in (0,):
            ftl.place_write(lpn)
        policy = GreedyGcPolicy()
        result = policy.collect_once(ftl)
        assert result is not None
        assert ftl.gc_writes == result.pages_moved
        assert ftl.gc_erases == 1
        assert ftl.write_amplification() > 1.0

    def test_thresholds_validate(self):
        with pytest.raises(ValueError):
            GreedyGcPolicy(gc_threshold=0.5, soft_threshold=0.3)

    def test_threshold_predicates(self):
        ftl = make_ftl(chips=1, blocks=10, pages=4, overprovision=0.3)
        policy = GreedyGcPolicy(gc_threshold=0.25, soft_threshold=0.35)
        assert not policy.wants_soft_gc(ftl)
        # Consume blocks until below soft threshold (free ratio < 0.35).
        lpn = 0
        while ftl.free_block_ratio() >= 0.35:
            ftl.place_write(lpn % ftl.logical_pages)
            lpn += 1
        assert policy.wants_soft_gc(ftl)

    def test_work_duration_scales_with_moves(self):
        from repro.flash.gc import GcResult
        from repro.flash.ftl import PhysicalAddr

        chip = FlashChip(0, 4, 4)
        policy = GreedyGcPolicy()
        empty = GcResult(victim=PhysicalAddr(chip, 0, 0))
        assert policy.work_duration_us(empty, PSSD) == PSSD.erase_us
        moved = GcResult(
            victim=PhysicalAddr(chip, 0, 0),
            migrations=[(0, PhysicalAddr(chip, 0, 0), PhysicalAddr(chip, 1, 0))],
        )
        assert policy.work_duration_us(moved, PSSD) > PSSD.erase_us


class TestBlockBorrowing:
    def test_lend_transfers_free_blocks(self):
        lender = make_ftl(chips=1, blocks=16, pages=4, name="lender")
        borrower = make_ftl(chips=1, blocks=16, pages=4, name="borrower")
        granted = lender.lend_free_blocks(4, borrower)
        assert granted == 4
        assert borrower.borrowed_block_count == 4
        assert lender.free_blocks_total() == 12

    def test_lender_keeps_one_block_per_chip(self):
        lender = make_ftl(chips=1, blocks=4, pages=4, name="lender")
        borrower = make_ftl(chips=1, blocks=4, pages=4, name="borrower")
        granted = lender.lend_free_blocks(10, borrower)
        assert granted == 3
        assert lender.free_blocks_total() == 1

    def test_borrowed_blocks_absorb_overflow_writes(self):
        borrower = make_ftl(chips=1, blocks=4, pages=4, overprovision=0.25,
                            name="borrower")
        lender = make_ftl(chips=1, blocks=8, pages=4, name="lender")
        lender.lend_free_blocks(2, borrower)
        # Exhaust the borrower's own space with rewrites, then keep going:
        # the borrowed blocks must absorb the spill instead of raising.
        for i in range(20):
            borrower.place_write(i % borrower.logical_pages)
        assert borrower.borrowed_block_count > 0

    def test_borrowed_block_returned_after_gc(self):
        borrower = make_ftl(chips=1, blocks=4, pages=2, overprovision=0.25,
                            name="borrower")
        lender = make_ftl(chips=1, blocks=8, pages=2, name="lender")
        lender.lend_free_blocks(2, borrower)
        lender_free_before = lender.free_blocks_total()
        # Spill writes into a borrowed block, then invalidate them all and
        # GC: the erased block must return to the lender.
        for i in range(8):
            borrower.place_write(i % 4)
        policy = GreedyGcPolicy()
        for _ in range(8):
            if policy.collect_once(borrower) is None:
                break
        assert lender.free_blocks_total() >= lender_free_before


class TestFtlProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        writes=st.lists(st.integers(min_value=0, max_value=47), min_size=1,
                        max_size=300),
    )
    def test_mapping_stays_consistent_under_random_writes_and_gc(self, writes):
        """Invariant: after any write/GC interleaving, every written lpn is
        mapped exactly once and map/rmap agree."""
        ftl = make_ftl(chips=2, blocks=8, pages=4, overprovision=0.25)
        policy = GreedyGcPolicy()
        written = set()
        for lpn in writes:
            if ftl.free_block_ratio() < 0.3:
                policy.collect_until(ftl, target_ratio=0.4)
            ftl.place_write(lpn)
            written.add(lpn)
        ftl.check_invariants()
        for lpn in written:
            assert ftl.lookup(lpn) is not None
        assert ftl.mapped_page_count() == len(written)

    @settings(max_examples=20, deadline=None)
    @given(
        writes=st.lists(st.integers(min_value=0, max_value=23), min_size=50,
                        max_size=400),
    )
    def test_physical_valid_pages_equal_mapped_pages(self, writes):
        """Invariant: sum of valid pages across blocks == mapped lpn count."""
        ftl = make_ftl(chips=1, blocks=8, pages=4, overprovision=0.25)
        policy = GreedyGcPolicy()
        for lpn in writes:
            if ftl.free_block_ratio() < 0.3:
                policy.collect_until(ftl, target_ratio=0.4)
            ftl.place_write(lpn)
        valid_total = sum(
            b.valid_count for chip in ftl.chips for b in chip.blocks
        )
        assert valid_total == ftl.mapped_page_count()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_gc_never_loses_free_blocks(self, seed):
        """GC must be monotone: collecting cannot reduce free space."""
        import random

        rng = random.Random(seed)
        ftl = make_ftl(chips=1, blocks=8, pages=4, overprovision=0.25)
        policy = GreedyGcPolicy()
        for _ in range(100):
            if ftl.free_block_ratio() < 0.3:
                before = ftl.free_blocks_total()
                policy.collect_until(ftl, target_ratio=0.4)
                assert ftl.free_blocks_total() >= before
            ftl.place_write(rng.randrange(ftl.logical_pages))
