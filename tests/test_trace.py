"""Unit tests for the request-tracing subsystem (`repro/trace/`)."""

import json
import pickle

import pytest

from repro.errors import ConfigError
from repro.trace import (
    CATEGORIES,
    NullTracer,
    RequestTrace,
    Span,
    TraceCollection,
    Tracer,
    attribute_tail,
    category_of,
    chrome_trace_events,
    finished_traces,
    make_tracer,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


class TestCategoryMapping:
    def test_network_hops_are_net(self):
        for name in ("net.client_to_tor", "net.tor_to_server",
                     "net.server_to_tor", "net.tor_to_client",
                     "net.redirect_relay"):
            assert category_of(name) == "net"

    def test_queueing_stages(self):
        for name in ("net.tor_egress", "net.client_egress", "server.queue"):
            assert category_of(name) == "queue"

    def test_media_stages(self):
        assert category_of("server.write_cache") == "media"
        assert category_of("storage.media") == "media"
        assert category_of("storage.media", {"gc": False}) == "media"

    def test_gc_overlap_reclassifies_media(self):
        # Figure 2's stall: flash service under GC is its own category.
        assert category_of("storage.media", {"gc": True}) == "gc"

    def test_markers_have_no_category(self):
        assert category_of("switch.pipeline") is None
        assert category_of("no.such.stage") is None

    def test_report_order_is_fixed(self):
        assert CATEGORIES == ("gc", "media", "queue", "net")


class TestSpan:
    def test_duration(self):
        assert Span("server.queue", 10.0, 35.5).duration_us == 25.5

    def test_category_property_uses_attrs(self):
        assert Span("storage.media", 0.0, 1.0, {"gc": True}).category == "gc"
        assert Span("storage.media", 0.0, 1.0).category == "media"

    def test_pickle_roundtrip(self):
        span = Span("net.tor_to_server", 1.0, 2.0, {"vssd": 3})
        clone = pickle.loads(pickle.dumps(span))
        assert (clone.name, clone.start_us, clone.end_us, clone.attrs) == (
            "net.tor_to_server", 1.0, 2.0, {"vssd": 3})


def make_trace(trace_id: int = 1, kind: str = "read") -> RequestTrace:
    """A hand-built trace: 10us net, 30us queue, 60us media = 100us total."""
    trace = RequestTrace(trace_id, kind, "client-0", 0.0)
    trace.add_span("net.client_to_tor", 0.0, 5.0)
    trace.instant("switch.pipeline", 5.0, redirected=False)
    trace.add_span("net.tor_to_server", 5.0, 10.0)
    trace.add_span("server.queue", 10.0, 40.0, queue_depth=4)
    trace.add_span("storage.media", 40.0, 100.0, gc=False)
    trace.finish(100.0)
    return trace


class TestRequestTrace:
    def test_totals_and_stages(self):
        trace = make_trace()
        assert trace.total_us == 100.0
        assert trace.stage_totals()["server.queue"] == 30.0
        assert trace.category_totals() == {
            "net": 10.0, "queue": 30.0, "media": 60.0}

    def test_unfinished_trace_has_zero_total(self):
        trace = RequestTrace(1, "read", "c", 50.0)
        assert not trace.finished and trace.total_us == 0.0
        # finished_traces keeps only the completed one.
        kept = finished_traces([trace, make_trace(trace_id=9)])
        assert [t.trace_id for t in kept] == [9]

    def test_full_coverage(self):
        trace = make_trace()
        assert trace.attributed_us() == 100.0
        assert trace.coverage() == 1.0

    def test_coverage_capped_at_one(self):
        trace = RequestTrace(1, "read", "c", 0.0)
        # Overlapping spans can attribute more time than elapsed.
        trace.add_span("server.queue", 0.0, 10.0)
        trace.add_span("storage.media", 0.0, 10.0)
        trace.finish(10.0)
        assert trace.coverage() == 1.0

    def test_dominant_category(self):
        assert make_trace().dominant_category() == "media"

    def test_dominant_tie_prefers_report_order(self):
        trace = RequestTrace(1, "read", "c", 0.0)
        trace.add_span("storage.media", 0.0, 10.0, gc=True)
        trace.add_span("server.queue", 10.0, 20.0)
        trace.finish(20.0)
        # gc and queue tie at 10us each; gc comes first in CATEGORIES.
        assert trace.dominant_category() == "gc"

    def test_markers_not_attributed(self):
        trace = RequestTrace(1, "read", "c", 0.0)
        trace.instant("switch.pipeline", 1.0)
        trace.finish(2.0)
        assert trace.category_totals() == {}
        assert trace.dominant_category() is None

    def test_gc_blocked(self):
        assert not make_trace().gc_blocked()
        trace = RequestTrace(1, "read", "c", 0.0)
        trace.add_span("storage.media", 0.0, 5.0, gc=True)
        trace.finish(5.0)
        assert trace.gc_blocked()

    def test_pickle_roundtrip(self):
        clone = pickle.loads(pickle.dumps(make_trace()))
        assert clone.trace_id == 1
        assert clone.total_us == 100.0
        assert clone.category_totals() == {
            "net": 10.0, "queue": 30.0, "media": 60.0}


class TestTracer:
    def test_rate_validation(self):
        with pytest.raises(ConfigError):
            Tracer(sample_rate=0.0)
        with pytest.raises(ConfigError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ConfigError):
            Tracer(max_traces=0)

    def test_rate_one_samples_everything(self):
        tracer = Tracer(sample_rate=1.0)
        traces = [tracer.start_request(i, "read", "c", 0.0) for i in range(50)]
        assert all(t is not None for t in traces)
        assert tracer.sampled == tracer.started == 50

    def test_sampling_is_deterministic_per_seed(self):
        def sampled_ids(seed):
            tracer = Tracer(sample_rate=0.3, seed=seed)
            return [i for i in range(200)
                    if tracer.start_request(i, "read", "c", 0.0) is not None]

        assert sampled_ids(7) == sampled_ids(7)
        assert sampled_ids(7) != sampled_ids(8)

    def test_sampling_rate_roughly_honoured(self):
        tracer = Tracer(sample_rate=0.25, seed=1)
        for i in range(2000):
            tracer.start_request(i, "read", "c", 0.0)
        assert tracer.sampled / tracer.started == pytest.approx(0.25, abs=0.05)

    def test_max_traces_bounds_memory(self):
        tracer = Tracer(sample_rate=1.0, max_traces=10)
        for i in range(25):
            tracer.start_request(i, "read", "c", 0.0)
        assert len(tracer.traces) == 10
        assert tracer.dropped == 15

    def test_collection_keeps_only_finished(self):
        tracer = Tracer(sample_rate=1.0)
        done = tracer.start_request(1, "read", "c", 0.0)
        tracer.start_request(2, "read", "c", 0.0)  # never finished
        tracer.finish(done, 42.0)
        collection = tracer.collection()
        assert len(collection) == 1
        assert collection.traces[0].total_us == 42.0

    def test_make_tracer_dispatch(self):
        assert isinstance(make_tracer(0.0), NullTracer)
        assert isinstance(make_tracer(0.5), Tracer)
        with pytest.raises(ConfigError):
            make_tracer(-0.1)
        with pytest.raises(ConfigError):
            make_tracer(1.1)


class TestNullTracer:
    def test_never_samples(self):
        tracer = NullTracer()
        assert tracer.start_request(1, "read", "c", 0.0) is None
        tracer.finish(None, 1.0)  # must not raise
        assert tracer.collection() is None
        assert tracer.enabled is False and tracer.sample_rate == 0.0


class TestChromeExport:
    def test_events_one_metadata_plus_one_slice_per_span(self):
        trace = make_trace()
        events = chrome_trace_events([trace])
        assert len(events) == 1 + len(trace.spans)
        meta, slices = events[0], events[1:]
        assert meta["ph"] == "M" and meta["name"] == "thread_name"
        assert all(e["ph"] == "X" for e in slices)
        assert all(e["tid"] == trace.trace_id for e in events)

    def test_slice_timestamps_are_sim_us(self):
        events = chrome_trace_events([make_trace()])
        queue = next(e for e in events if e["name"] == "server.queue")
        assert queue["ts"] == 10.0 and queue["dur"] == 30.0
        assert queue["cat"] == "queue"
        assert queue["args"]["queue_depth"] == 4

    def test_clients_get_distinct_pids(self):
        a = make_trace(trace_id=1)
        b = make_trace(trace_id=2)
        b.client = "client-1"
        events = chrome_trace_events([a, b])
        assert len({e["pid"] for e in events}) == 2

    def test_non_json_attrs_are_stringified(self):
        trace = RequestTrace(1, "read", "c", 0.0)
        trace.add_span("server.queue", 0.0, 1.0, weird=object())
        trace.finish(1.0)
        document = to_chrome_trace([trace])
        validate_chrome_trace(document)
        json.dumps(document)  # must be serialisable

    def test_exported_document_validates(self):
        document = to_chrome_trace([make_trace()])
        assert document["otherData"]["time_unit"] == "us"
        validate_chrome_trace(document)

    def test_validation_rejects_bad_documents(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"name": "x"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "B", "pid": 1, "tid": 1}]})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "X", "pid": 1, "tid": 1,
                 "ts": -1.0, "dur": 0.0}]})

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace([make_trace()], str(path))
        document = json.loads(path.read_text())
        assert count == len(document["traceEvents"]) == 6
        validate_chrome_trace(document)


def tail_trace(trace_id, total_us, gc_us=0.0, kind="read"):
    """A synthetic trace: fixed 10us net + gc_us GC + remainder queueing."""
    trace = RequestTrace(trace_id, kind, "c", 0.0)
    trace.add_span("net.client_to_tor", 0.0, 10.0)
    cursor = 10.0
    if gc_us:
        trace.add_span("storage.media", cursor, cursor + gc_us, gc=True)
        cursor += gc_us
    trace.add_span("server.queue", cursor, total_us)
    trace.finish(total_us)
    return trace


class TestAttribution:
    def test_tail_dominated_by_gc(self):
        fast = [tail_trace(i, 100.0) for i in range(99)]
        slow = tail_trace(99, 5000.0, gc_us=4000.0)
        report = attribute_tail(fast + [slow], percentile=99.0)
        assert report.total_requests == 100
        assert report.tail_requests >= 1
        assert report.dominant() == "gc"
        assert report.gc_blocked == 1
        assert report.by_category["gc"] == 1
        assert report.coverage == pytest.approx(1.0)

    def test_threshold_uses_exact_percentile(self):
        traces = [tail_trace(i, float(100 + i)) for i in range(100)]
        report = attribute_tail(traces, percentile=50.0)
        # Everything at or above the median is in the tail.
        assert report.tail_requests == 50
        assert report.threshold_us == pytest.approx(149.5)

    def test_kind_filter(self):
        reads = [tail_trace(i, 100.0) for i in range(10)]
        writes = [tail_trace(100 + i, 900.0, kind="write") for i in range(10)]
        report = attribute_tail(reads + writes, percentile=0.0, kind="write")
        assert report.total_requests == 10
        assert report.threshold_us == 900.0

    def test_empty_input(self):
        report = attribute_tail([], percentile=99.0)
        assert report.total_requests == report.tail_requests == 0
        assert report.dominant() == "none"
        assert report.coverage == 0.0
        assert "0/0" in report.describe()

    def test_percentile_validation(self):
        with pytest.raises(ConfigError):
            attribute_tail([tail_trace(1, 10.0)], percentile=101.0)

    def test_describe_mentions_every_active_category(self):
        report = attribute_tail(
            [tail_trace(i, 1000.0, gc_us=600.0) for i in range(5)],
            percentile=0.0)
        text = report.describe()
        assert "gc" in text and "queue" in text and "net" in text
        assert "GC-blocked" in text


class TestTraceCollection:
    def collection(self):
        traces = [make_trace(1), make_trace(2, kind="write")]
        return TraceCollection(traces, sample_rate=0.5, started=4, sampled=2)

    def test_of_kind(self):
        c = self.collection()
        assert len(c) == 2
        assert [t.trace_id for t in c.of_kind("write")] == [2]

    def test_summary(self):
        summary = self.collection().summary()
        assert summary["traced_requests"] == 2.0
        assert summary["trace_sample_rate"] == 0.5
        assert summary["traced_gc_blocked_reads"] == 0.0

    def test_summary_omits_gc_counter_without_reads(self):
        c = TraceCollection([make_trace(1, kind="write")], sample_rate=1.0)
        assert "traced_gc_blocked_reads" not in c.summary()

    def test_to_chrome_and_attribution(self):
        c = self.collection()
        validate_chrome_trace(c.to_chrome())
        assert c.attribution(percentile=0.0, kind="read").total_requests == 1

    def test_pickle_roundtrip(self):
        clone = pickle.loads(pickle.dumps(self.collection()))
        assert len(clone) == 2
        assert clone.sample_rate == 0.5 and clone.started == 4
        validate_chrome_trace(clone.to_chrome())
