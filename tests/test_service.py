"""Serving-layer tests: admission, sim-time bridge, and the TCP service.

Everything runs against a real (small) rack and, for the end-to-end
cases, a real listener on an ephemeral port -- these are the paths the
localhost benchmark exercises, minus the scale.
"""

import asyncio

import pytest

from repro.cluster.config import RackConfig, SystemType
from repro.errors import ConfigError
from repro.service.admission import AdmissionController, WallClockTokenBucket
from repro.service.bridge import SimTimeBridge
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import RackService


def small_config(**overrides) -> RackConfig:
    defaults = dict(
        system=SystemType("rackblox"), num_servers=2, num_pairs=2, seed=11
    )
    defaults.update(overrides)
    return RackConfig(**defaults)


# --------------------------------------------------------------- admission


class TestTokenBucket:
    def test_burst_then_exhaustion(self):
        bucket = WallClockTokenBucket(rate_per_sec=10.0, capacity=3, now=0.0)
        assert [bucket.try_take(now=0.0) for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refill_restores_tokens(self):
        bucket = WallClockTokenBucket(rate_per_sec=10.0, capacity=3, now=0.0)
        for _ in range(3):
            bucket.try_take(now=0.0)
        assert not bucket.try_take(now=0.0)
        # 0.2 s at 10 tokens/s refills two tokens.
        assert bucket.try_take(now=0.2)
        assert bucket.try_take(now=0.2)
        assert not bucket.try_take(now=0.2)

    def test_capacity_caps_refill(self):
        bucket = WallClockTokenBucket(rate_per_sec=1000.0, capacity=2, now=0.0)
        assert bucket.try_take(now=100.0)
        assert bucket.try_take(now=100.0)
        assert not bucket.try_take(now=100.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            WallClockTokenBucket(rate_per_sec=0.0, capacity=2)
        with pytest.raises(ConfigError):
            WallClockTokenBucket(rate_per_sec=1.0, capacity=0.5)


class TestAdmissionController:
    def test_queue_depth_cap_sheds(self):
        ctrl = AdmissionController(max_queue_depth=4)
        assert ctrl.try_admit("a", inflight=3)
        assert not ctrl.try_admit("a", inflight=4)
        assert not ctrl.try_admit("b", inflight=9)
        assert ctrl.stats()["shed_queue_full"] == 2.0
        assert ctrl.stats()["admitted"] == 1.0

    def test_per_client_rate_limit_is_isolated(self):
        ctrl = AdmissionController(
            max_queue_depth=100, client_rate_per_sec=5.0, client_burst=2.0
        )
        # Greedy client drains its bucket; the other client is untouched.
        assert ctrl.try_admit("greedy", 0, now=0.0)
        assert ctrl.try_admit("greedy", 0, now=0.0)
        assert not ctrl.try_admit("greedy", 0, now=0.0)
        assert ctrl.try_admit("polite", 0, now=0.0)
        assert ctrl.stats()["shed_rate_limited"] == 1.0

    def test_full_queue_does_not_burn_tokens(self):
        ctrl = AdmissionController(
            max_queue_depth=1, client_rate_per_sec=5.0, client_burst=1.0
        )
        assert not ctrl.try_admit("a", inflight=1, now=0.0)
        # The shed above was the depth gate; the token survives.
        assert ctrl.try_admit("a", inflight=0, now=0.0)

    def test_zero_rate_disables_metering(self):
        ctrl = AdmissionController(max_queue_depth=10, client_rate_per_sec=0.0)
        assert all(ctrl.try_admit("a", 0) for _ in range(100))


# ------------------------------------------------------------------ bridge


class TestSimTimeBridge:
    def test_read_and_write_complete_with_latency(self):
        async def scenario():
            bridge = SimTimeBridge(small_config())
            await bridge.start()
            try:
                read = await bridge.submit_read(0, 5)
                write = await bridge.submit_write(1, 9)
            finally:
                await bridge.stop()
            return read, write

        read, write = asyncio.run(scenario())
        assert read["latency_us"] > 0
        assert write["latency_us"] > 0
        assert write["replicas"] == 2

    def test_kv_round_trip_through_bridge(self):
        async def scenario():
            bridge = SimTimeBridge(small_config())
            await bridge.start()
            try:
                await bridge.submit_put("alpha", "1")
                hit = await bridge.submit_get("alpha")
                miss = await bridge.submit_get("beta")
            finally:
                await bridge.stop()
            return hit, miss

        hit, miss = asyncio.run(scenario())
        assert hit["found"] and hit["value"] == "1"
        assert not miss["found"]

    def test_pair_index_validated(self):
        async def scenario():
            bridge = SimTimeBridge(small_config())
            await bridge.start()
            try:
                with pytest.raises(ConfigError):
                    bridge.submit_read(99, 0)
            finally:
                await bridge.stop()

        asyncio.run(scenario())

    def test_idle_bridge_freezes_sim_clock(self):
        async def scenario():
            bridge = SimTimeBridge(small_config())
            await bridge.start()
            try:
                await bridge.submit_read(0, 1)
                frozen = bridge.rack.sim.now
                # Ample wall time with nothing in flight: the pump parks.
                await asyncio.sleep(0.05)
                assert bridge.rack.sim.now == frozen
            finally:
                await bridge.stop()

        asyncio.run(scenario())

    def test_timeout_expires_undeliverable_request(self):
        async def scenario():
            bridge = SimTimeBridge(
                small_config(), request_timeout_us=50_000.0
            )
            await bridge.start()
            try:
                # Crash the primary's server, then read from it: the rack
                # drops the packet at the dead NIC, so only the bridge's
                # sim-time deadline can fail the future.
                pair = bridge.rack.pairs[0]
                bridge.rack.server_by_ip[pair.primary_server_ip].alive = False
                with pytest.raises(asyncio.TimeoutError):
                    await bridge.submit_read(0, 1)
                assert bridge.timed_out == 1
            finally:
                await bridge.stop(drain=False)

        asyncio.run(scenario())

    def test_stats_payload_shape(self):
        async def scenario():
            bridge = SimTimeBridge(small_config())
            await bridge.start()
            try:
                await bridge.submit_read(0, 1)
                return bridge.stats_payload()
            finally:
                await bridge.stop()

        payload = asyncio.run(scenario())
        assert payload["bridge"]["completed"] == 1.0
        assert "read_avg_us" in payload["metrics"]
        assert payload["kvstore"]["keys"] == 0.0


# ----------------------------------------------------------------- service


async def _start_service(**kwargs) -> RackService:
    service = RackService(small_config(), port=0, **kwargs)
    await service.start()
    return service


class TestRackServiceEndToEnd:
    def test_full_request_mix_over_tcp(self):
        async def scenario():
            service = await _start_service()
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    pong = await c.ping()
                    read = await c.read(0, 3)
                    write = await c.write(1, 4)
                    await c.put("k", "v")
                    got = await c.get("k")
                    scanned = await c.scan("", 10)
                    stats = await c.stats()
            finally:
                await service.stop()
            return pong, read, write, got, scanned, stats

        pong, read, write, got, scanned, stats = asyncio.run(scenario())
        assert pong["pong"] is True
        assert read["latency_us"] > 0
        assert write["replicas"] == 2
        assert got["value"] == "v"
        assert scanned["count"] == 1
        assert stats["bridge"]["completed"] >= 4.0
        assert stats["admission"]["admitted"] >= 4.0

    def test_pipelined_requests_on_one_connection(self):
        async def scenario():
            service = await _start_service()
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    results = await asyncio.gather(
                        *(c.read(i % 2, i) for i in range(16))
                    )
            finally:
                await service.stop()
            return results

        results = asyncio.run(scenario())
        assert len(results) == 16
        assert all(r["latency_us"] > 0 for r in results)

    def test_bad_requests_answered_not_dropped(self):
        async def scenario():
            service = await _start_service()
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    codes = []
                    for payload in (
                        {"type": "frobnicate"},
                        {"type": "read", "pair": 99, "lpn": 0},
                        {"type": "read"},  # missing operands
                        {"type": "get"},   # missing key
                    ):
                        try:
                            await c.request(payload)
                        except ServiceError as exc:
                            codes.append(exc.code)
                    # The connection survives all of it.
                    pong = await c.ping()
            finally:
                await service.stop()
            return codes, pong

        codes, pong = asyncio.run(scenario())
        assert codes == ["BAD_REQUEST"] * 4
        assert pong["pong"] is True

    def test_queue_overflow_sheds_busy(self):
        async def scenario():
            service = await _start_service(
                admission=AdmissionController(max_queue_depth=4)
            )
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    outcomes = await asyncio.gather(
                        *(c.read(0, i) for i in range(64)),
                        return_exceptions=True,
                    )
            finally:
                await service.stop()
            return outcomes, service.admission.stats()

        outcomes, stats = asyncio.run(scenario())
        ok = [r for r in outcomes if isinstance(r, dict)]
        busy = [
            r for r in outcomes
            if isinstance(r, ServiceError) and r.is_busy
        ]
        unexpected = [
            r for r in outcomes
            if not isinstance(r, dict)
            and not (isinstance(r, ServiceError) and r.is_busy)
        ]
        assert not unexpected
        assert busy, "overflow must shed with BUSY"
        assert ok, "requests within the cap must still complete"
        assert stats["shed_queue_full"] == len(busy)

    def test_graceful_stop_drains_inflight(self):
        async def scenario():
            service = await _start_service()
            client = await ServiceClient("127.0.0.1", service.port).connect()
            try:
                futures = [
                    asyncio.ensure_future(client.read(0, i)) for i in range(8)
                ]
                # Requests not yet read off the socket when a drain starts
                # are owed nothing; wait until all eight are live in the
                # bridge so the drain guarantee is what's under test.
                while service.bridge.submitted < 8:
                    await asyncio.sleep(0.001)
                await service.stop()
                results = await asyncio.gather(
                    *futures, return_exceptions=True
                )
            finally:
                await client.close()
            return results

        results = asyncio.run(scenario())
        completed = [r for r in results if isinstance(r, dict)]
        assert len(completed) == 8, f"drain lost requests: {results}"

    def test_draining_server_answers_shutting_down(self):
        async def scenario():
            service = await _start_service()
            async with ServiceClient("127.0.0.1", service.port) as c:
                await c.ping()
                service._draining = True
                try:
                    await c.read(0, 1)
                except ServiceError as exc:
                    return exc.code
                finally:
                    service._draining = False
                    await service.stop()
            return None

        assert asyncio.run(scenario()) == "SHUTTING_DOWN"

    def test_malformed_frame_gets_bad_request_and_close(self):
        async def scenario():
            service = await _start_service()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                writer.write(b"\x00\x00\x00\x05nope!")
                data = await asyncio.wait_for(reader.read(4096), timeout=5.0)
                eof = await asyncio.wait_for(reader.read(4096), timeout=5.0)
                writer.close()
            finally:
                await service.stop()
            return data, eof

        data, eof = asyncio.run(scenario())
        assert b"BAD_REQUEST" in data
        assert eof == b""  # the server hung up after the framing error


# ------------------------------------------------------- multi-tenant QoS


@pytest.mark.qos
class TestMultiTenantServingEndToEnd:
    """The tenant-aware serving path over a real TCP connection: the
    ``hello`` tenant field, the QoS gate, and the DRAM read cache."""

    @staticmethod
    async def _start_tenant_service():
        from repro.service.qos import QosScheduler, TenantSpec
        from repro.service.readcache import ReadCache

        qos = QosScheduler([
            TenantSpec("gold", weight=2, cache_share=2),
            TenantSpec("metered", rate_per_sec=5, burst=1),
        ])
        cache = ReadCache(256, shares=qos.cache_shares())
        return await _start_service(qos=qos, read_cache=cache)

    def test_hello_binds_tenant_and_cache_serves_hot_reads(self):
        from repro.service.client import ClientConfig
        from repro.service.server import CACHE_HIT_LATENCY_US

        async def scenario():
            service = await self._start_tenant_service()
            try:
                c = ServiceClient("127.0.0.1", service.port, "t",
                                  config=ClientConfig(tenant="gold"))
                await c.connect()
                try:
                    hello = c.server_info
                    await c.put("hot", "v1")
                    first = await c.get("hot")     # miss + fill
                    second = await c.get("hot")    # DRAM hit
                    await c.put("hot", "v2")       # invalidates
                    third = await c.get("hot")     # fresh, from the rack
                    stats = await c.stats()
                finally:
                    await c.close()
            finally:
                await service.stop()
            return hello, first, second, third, stats

        hello, first, second, third, stats = asyncio.run(scenario())
        assert hello["tenant"] == "gold"
        assert "qos" in hello["capabilities"]
        assert first["latency_us"] != CACHE_HIT_LATENCY_US
        assert second["latency_us"] == CACHE_HIT_LATENCY_US
        assert second["value"] == "v1"
        assert third["value"] == "v2"              # never the cached v1
        assert stats["readcache"]["hits"] >= 1.0
        assert stats["tenants"]["gold"]["admitted"] >= 4.0
        from repro.service import schema
        schema.validate_stats(stats, client=True)

    def test_undeclared_tenant_rejected_at_hello(self):
        from repro.service.client import ClientConfig

        async def scenario():
            service = await self._start_tenant_service()
            try:
                c = ServiceClient("127.0.0.1", service.port, "t",
                                  config=ClientConfig(tenant="nobody"))
                with pytest.raises(ServiceError) as err:
                    await c.connect()
                await c.close()
                return err.value
            finally:
                await service.stop()

        exc = asyncio.run(scenario())
        assert exc.code == "BAD_REQUEST"
        assert "unknown tenant" in str(exc)

    def test_metered_tenant_is_shed_busy(self):
        from repro.service.client import ClientConfig

        async def scenario():
            service = await self._start_tenant_service()
            try:
                c = ServiceClient("127.0.0.1", service.port, "t",
                                  config=ClientConfig(tenant="metered"))
                await c.connect()
                busy = 0
                try:
                    for i in range(10):
                        try:
                            await c.get(f"k{i}")
                        except ServiceError as exc:
                            assert exc.is_busy
                            assert "QoS budget" in str(exc)
                            busy += 1
                finally:
                    await c.close()
                return busy
            finally:
                await service.stop()

        busy = asyncio.run(scenario())
        # burst 1 at 5/s: nearly everything past the first is shed.
        assert busy >= 5


class TestClientConfig:
    def test_legacy_kwargs_map_and_warn_once(self, monkeypatch):
        import warnings

        from repro.service import client as client_mod

        monkeypatch.setattr(client_mod, "_legacy_kwargs_warned", False)
        with pytest.warns(DeprecationWarning, match="ClientConfig"):
            c = ServiceClient("127.0.0.1", 1, max_retries=2, hedge_reads=True)
        assert c.config.max_retries == 2
        assert c.config.hedge_reads is True
        assert c.max_retries == 2            # mirror attribute intact
        with warnings.catch_warnings():
            warnings.simplefilter("error")   # the second use is silent
            ServiceClient("127.0.0.1", 1, max_retries=1)

    def test_config_and_legacy_kwargs_conflict(self):
        from repro.service.client import ClientConfig

        with pytest.raises(TypeError, match="both"):
            ServiceClient("127.0.0.1", 1, config=ClientConfig(),
                          max_retries=1)

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="frobnicate"):
            ServiceClient("127.0.0.1", 1, frobnicate=True)

    def test_config_validation(self):
        from repro.service.client import ClientConfig

        with pytest.raises(ValueError, match="wire_protocol"):
            ClientConfig(wire_protocol="carrier-pigeon")
        with pytest.raises(ValueError, match="tenant"):
            ClientConfig(tenant="")
        with pytest.raises(ValueError, match="max_retries"):
            ClientConfig(max_retries=-1)
