"""Tests for the command-line interface."""

import pytest

from repro.cli import UsageError, _resolve_workload, main


class TestResolveWorkload:
    def test_table2_name(self):
        assert _resolve_workload("tpcc").name == "tpcc"

    def test_ycsb_spec(self):
        spec = _resolve_workload("ycsb-30")
        assert spec.write_ratio == pytest.approx(0.3)

    def test_unknown_rejected(self):
        with pytest.raises(UsageError):
            _resolve_workload("mongo-bench")

    def test_bad_ycsb_rejected(self):
        with pytest.raises(UsageError):
            _resolve_workload("ycsb-lots")


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "rackblox" in out and "tpcc" in out and "fig9" in out

    def test_run_small(self, capsys):
        code = main([
            "run", "--system", "rackblox", "--workload", "ycsb-40",
            "--requests", "150", "--servers", "3", "--pairs", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "read_p999_us" in out
        assert "switch.reads_forwarded" in out

    def test_trace_small(self, tmp_path, capsys):
        import json

        from repro.trace import validate_chrome_trace

        out_path = tmp_path / "trace.json"
        code = main([
            "trace", "--system", "rackblox", "--workload", "ycsb-50",
            "--requests", "150", "--servers", "2", "--pairs", "2",
            "--sample-rate", "1.0", "--trace-out", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tail attribution" in out
        assert "traced_requests" in out
        assert "trace events" in out
        document = json.loads(out_path.read_text())
        validate_chrome_trace(document)
        assert document["traceEvents"]

    def test_trace_rejects_bad_sample_rate(self, capsys):
        assert main(["trace", "--sample-rate", "0.0"]) == 2
        assert main(["trace", "--sample-rate", "1.5"]) == 2
        err = capsys.readouterr().err
        assert "--sample-rate" in err

    def test_wear_small(self, capsys):
        code = main(["wear", "--servers", "2", "--ssds", "4", "--days", "120"])
        assert code == 0
        assert "lambda" in capsys.readouterr().out

    def test_figures_quick(self, capsys):
        code = main(["figures", "fig22", "--quick"])
        assert code == 0
        assert "Figure 22" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestServiceArgValidation:
    """serve/loadgen reject bad arguments with exit code 2 and a usage
    message naming the offending flag, before touching any sockets."""

    @pytest.mark.parametrize("argv, flag", [
        (["serve", "--chunk-us", "0"], "--chunk-us"),
        (["serve", "--queue-depth", "0"], "--queue-depth"),
        (["serve", "--pace", "-1"], "--pace"),
        (["serve", "--servers", "1"], "--servers"),
        (["serve", "--client-rate", "-5"], "--client-rate"),
        (["serve", "--racks", "0"], "--racks"),
        (["serve", "--racks", "2", "--shard-mode", "process",
          "--fault-schedule", "schedule.json"], "--fault-schedule"),
        (["loadgen", "--pipeline", "0"], "--pipeline"),
        (["loadgen", "--clients", "0"], "--clients"),
        (["loadgen", "--write-ratio", "1.5"], "--write-ratio"),
        (["loadgen", "--mode", "open"], "--duration"),
        (["loadgen", "--rate", "0"], "--rate"),
        (["loadgen", "--keyspace", "0"], "--keyspace"),
        (["fleet", "drain-rack"], "--rack"),
        (["fleet", "status", "--timeout", "0"], "--timeout"),
        (["fleet", "add-rack", "--batch-size", "0"], "--batch-size"),
        (["fleet", "add-rack", "--pause-ms", "-1"], "--pause-ms"),
        (["fleet", "add-rack", "--attempts", "0"], "--attempts"),
    ])
    def test_bad_args_exit_2(self, capsys, argv, flag):
        assert main(argv) == 2
        assert flag in capsys.readouterr().err


class TestFleetCommand:
    """``repro.cli fleet`` round-trips against a live sharded service:
    status -> add-rack -> status, entirely through the public CLI."""

    @pytest.mark.shard
    @pytest.mark.fleet
    def test_status_and_add_rack_round_trip(self, capsys):
        import asyncio
        import json

        from repro.cluster.config import RackConfig, SystemType
        from repro.service.router import ShardedRackService, ShardRouter

        async def scenario():
            config = RackConfig(system=SystemType("rackblox"),
                                num_servers=2, num_pairs=2, seed=11)
            router = ShardRouter.from_config(config, 2, precondition=False,
                                             chunk_us=2000.0)
            service = ShardedRackService(router, port=0)
            await service.start()
            loop = asyncio.get_event_loop()

            def cli(*argv):
                # main() calls asyncio.run, so it needs its own thread
                # (and gets its own event loop there) while the service
                # keeps serving on this one.
                return loop.run_in_executor(
                    None, main,
                    ["fleet", *argv, "--port", str(service.port)])

            outputs = []
            try:
                for argv in (("status", "--json"), ("add-rack",),
                             ("status", "--json")):
                    assert await cli(*argv) == 0
                    outputs.append(capsys.readouterr().out)
            finally:
                await service.stop()
            return outputs

        before_out, add_out, after_out = asyncio.run(scenario())
        before = json.loads(before_out)
        after = json.loads(after_out)
        assert before["epoch"] == 0 and before["racks"] == [0, 1]
        assert after["epoch"] == 1 and after["racks"] == [0, 1, 2]
        assert "add rack 2: epoch 1" in add_out

    def test_unreachable_server_exits_one(self, capsys):
        # A port nothing listens on: the CLI reports and exits 1
        # instead of tracebacking.
        assert main(["fleet", "status", "--port", "1"]) == 1
        assert "cannot reach" in capsys.readouterr().err


class TestCompareCommand:
    def test_clean_comparison_exits_zero(self, tmp_path, capsys):
        from repro.experiments.figures import FigureResult
        from repro.experiments.results_io import save_figures

        run = {"fig22": FigureResult(
            figure="Figure 22", title="t", columns=["policy", "v"],
            rows=[{"policy": "No Swap", "v": 2.0}],
        )}
        save_figures(run, str(tmp_path / "base"))
        save_figures(run, str(tmp_path / "cand"))
        code = main(["compare", str(tmp_path / "base"), str(tmp_path / "cand")])
        assert code == 0
        assert "no drift" in capsys.readouterr().out

    def test_drift_exits_nonzero(self, tmp_path, capsys):
        from repro.experiments.figures import FigureResult
        from repro.experiments.results_io import save_figures

        base = {"fig22": FigureResult(
            figure="Figure 22", title="t", columns=["policy", "v"],
            rows=[{"policy": "No Swap", "v": 2.0}],
        )}
        cand = {"fig22": FigureResult(
            figure="Figure 22", title="t", columns=["policy", "v"],
            rows=[{"policy": "No Swap", "v": 9.0}],
        )}
        save_figures(base, str(tmp_path / "base"))
        save_figures(cand, str(tmp_path / "cand"))
        code = main(["compare", str(tmp_path / "base"), str(tmp_path / "cand")])
        assert code == 1
        assert "DRIFT" in capsys.readouterr().out


class TestFigureChart:
    def test_to_chart_renders(self):
        from repro.experiments.figures import FigureResult

        result = FigureResult(
            figure="Figure X", title="demo", columns=["label", "a", "b"],
            rows=[{"label": "20%", "a": 10.0, "b": 20.0},
                  {"label": "50%", "a": 15.0, "b": None}],
        )
        chart = result.to_chart(width=10)
        assert "Figure X" in chart
        assert "20%:" in chart and "50%:" in chart
        assert "(no data)" in chart
        assert "#" in chart
