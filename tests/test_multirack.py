"""Tests for the multi-rack extension (future work of §3.7)."""

import pytest

from repro.cluster.multirack import (
    INTER_SWITCH_DELAY_US,
    CrossRackEntry,
    MultiRackFabric,
)
from repro.errors import ConfigError, SwitchError
from repro.net.packet import GcKind, OpType, Packet, gc_op
from repro.sim import Simulator

V_PRIMARY, V_REPLICA, V_REMOTE = 101, 102, 103
IP_PRIMARY, IP_REPLICA, IP_REMOTE = "10.0.0.16", "10.0.0.20", "10.1.0.16"


def make_fabric(sync_delay=INTER_SWITCH_DELAY_US):
    sim = Simulator()
    fabric = MultiRackFabric(sim, num_racks=2, sync_delay_us=sync_delay)
    fabric.register_vssd(
        V_PRIMARY, home_rack=0, server_ip=IP_PRIMARY,
        in_rack_replica_id=V_REPLICA, in_rack_replica_ip=IP_REPLICA,
        cross_rack=CrossRackEntry(V_REMOTE, rack_id=1, server_ip=IP_REMOTE),
    )
    fabric.register_vssd(
        V_REPLICA, home_rack=0, server_ip=IP_REPLICA,
        in_rack_replica_id=V_PRIMARY, in_rack_replica_ip=IP_PRIMARY,
    )
    return sim, fabric


class TestRegistration:
    def test_vssd_visible_in_every_switch(self):
        _, fabric = make_fabric()
        for switch in fabric.switches:
            assert V_PRIMARY in switch.replica_table
            assert switch.destination_table.server_ip(V_PRIMARY) == IP_PRIMARY

    def test_duplicate_registration_rejected(self):
        _, fabric = make_fabric()
        with pytest.raises(SwitchError):
            fabric.register_vssd(V_PRIMARY, 0, IP_PRIMARY, V_REPLICA, IP_REPLICA)

    def test_cross_rack_replica_must_be_remote(self):
        sim = Simulator()
        fabric = MultiRackFabric(sim, num_racks=2)
        with pytest.raises(ConfigError):
            fabric.register_vssd(
                1, home_rack=0, server_ip="a", in_rack_replica_id=2,
                in_rack_replica_ip="b",
                cross_rack=CrossRackEntry(3, rack_id=0, server_ip="c"),
            )

    def test_fabric_needs_two_racks(self):
        with pytest.raises(ConfigError):
            MultiRackFabric(Simulator(), num_racks=1)


class TestGcStateSync:
    def test_peer_switch_converges_after_delay(self):
        sim, fabric = make_fabric(sync_delay=40.0)
        fabric.process_gc_op(0, gc_op(V_PRIMARY, GcKind.REGULAR, src=IP_PRIMARY))
        # Immediately after: the peer is stale.
        assert fabric.gc_status_views(V_PRIMARY) == [1, 0]
        assert not fabric.consistent(V_PRIMARY)
        sim.run(until=50.0)
        assert fabric.gc_status_views(V_PRIMARY) == [1, 1]
        assert fabric.consistent(V_PRIMARY)
        assert fabric.syncs_sent == 1

    def test_finish_propagates_too(self):
        sim, fabric = make_fabric(sync_delay=40.0)
        fabric.process_gc_op(0, gc_op(V_PRIMARY, GcKind.REGULAR, src=IP_PRIMARY))
        sim.run(until=50.0)
        fabric.process_gc_op(0, gc_op(V_PRIMARY, GcKind.FINISH, src=IP_PRIMARY))
        sim.run(until=100.0)
        assert fabric.gc_status_views(V_PRIMARY) == [0, 0]

    def test_remote_rack_can_route_and_redirect(self):
        # A read arriving at the *peer* rack's switch uses its synced view.
        sim, fabric = make_fabric(sync_delay=10.0)
        fabric.process_gc_op(0, gc_op(V_PRIMARY, GcKind.REGULAR, src=IP_PRIMARY))
        sim.run(until=20.0)
        action = fabric.process_read(1, Packet(op=OpType.READ, vssd_id=V_PRIMARY))
        assert action.redirected
        assert action.dst_ip == IP_REPLICA


class TestCrossRackRedirect:
    def test_both_replicas_busy_goes_out_of_rack(self):
        sim, fabric = make_fabric()
        fabric.process_gc_op(0, gc_op(V_PRIMARY, GcKind.REGULAR, src=IP_PRIMARY))
        fabric.process_gc_op(0, gc_op(V_REPLICA, GcKind.REGULAR, src=IP_REPLICA))
        action = fabric.process_read(0, Packet(op=OpType.READ, vssd_id=V_PRIMARY))
        assert action.redirected
        assert action.dst_ip == IP_REMOTE
        assert action.packet.vssd_id == V_REMOTE
        assert fabric.cross_rack_redirects == 1

    def test_in_rack_redirect_preferred(self):
        sim, fabric = make_fabric()
        fabric.process_gc_op(0, gc_op(V_PRIMARY, GcKind.REGULAR, src=IP_PRIMARY))
        action = fabric.process_read(0, Packet(op=OpType.READ, vssd_id=V_PRIMARY))
        assert action.redirected
        assert action.dst_ip == IP_REPLICA  # not the remote rack
        assert fabric.cross_rack_redirects == 0

    def test_no_cross_rack_entry_falls_back_to_forward(self):
        sim, fabric = make_fabric()
        # V_REPLICA has no cross-rack replica registered.
        fabric.process_gc_op(0, gc_op(V_REPLICA, GcKind.REGULAR, src=IP_REPLICA))
        fabric.process_gc_op(0, gc_op(V_PRIMARY, GcKind.REGULAR, src=IP_PRIMARY))
        action = fabric.process_read(0, Packet(op=OpType.READ, vssd_id=V_REPLICA))
        assert not action.redirected
        assert action.dst_ip == IP_REPLICA

    def test_idle_vssd_forwards_normally(self):
        sim, fabric = make_fabric()
        action = fabric.process_read(0, Packet(op=OpType.READ, vssd_id=V_PRIMARY))
        assert not action.redirected
        assert action.dst_ip == IP_PRIMARY


class TestStalenessWindow:
    def test_stale_peer_misroutes_until_sync(self):
        """The documented consistency/staleness trade-off: during the sync
        delay, a peer switch still believes the vSSD is idle."""
        sim, fabric = make_fabric(sync_delay=100.0)
        fabric.process_gc_op(0, gc_op(V_PRIMARY, GcKind.REGULAR, src=IP_PRIMARY))
        # Peer rack, inside the staleness window: no redirect.
        action = fabric.process_read(1, Packet(op=OpType.READ, vssd_id=V_PRIMARY))
        assert not action.redirected
        sim.run(until=150.0)
        action = fabric.process_read(1, Packet(op=OpType.READ, vssd_id=V_PRIMARY))
        assert action.redirected
