"""Tests for software-isolated racks and the network-contention knobs."""

import pytest

from repro.cluster import Rack, RackConfig, SystemType
from repro.errors import ConfigError
from repro.experiments import run_rack_experiment
from repro.flash.geometry import FlashGeometry
from repro.vssd.vssd import IsolationType
from repro.workloads import ycsb


def sw_config(**kwargs):
    defaults = dict(
        system=SystemType.RACKBLOX, num_servers=3, num_pairs=4,
        sw_isolated=True, seed=99,
    )
    defaults.update(kwargs)
    return RackConfig(**defaults)


class TestSwIsolatedRack:
    def test_pairs_must_be_even(self):
        with pytest.raises(ConfigError):
            RackConfig(sw_isolated=True, num_pairs=3)

    def test_needs_splittable_chips(self):
        config = sw_config(
            vssd_geometry=FlashGeometry(channels=2, chips_per_channel=1,
                                        blocks_per_chip=16, pages_per_block=8)
        )
        with pytest.raises(ConfigError):
            Rack(config)

    def test_vssds_are_software_isolated(self):
        rack = Rack(sw_config())
        for vssd in rack.vssd_by_id.values():
            assert vssd.isolation is IsolationType.SOFTWARE
            assert vssd.rate_limiter is not None

    def test_collocated_tenants_share_channels(self):
        rack = Rack(sw_config())
        # Pairs 0 and 1 are a collocated couple: their primaries sit on
        # the same SSD, splitting its chips.
        a = rack.pairs[0].primary
        b = rack.pairs[1].primary
        assert a.ssd is b.ssd
        a_chips = {c.chip_id for c in a.ftl.chips}
        b_chips = {c.chip_id for c in b.ftl.chips}
        assert not (a_chips & b_chips)
        assert len(a_chips) + len(b_chips) == len(a.ssd.chips)

    def test_channel_groups_formed(self):
        rack = Rack(sw_config())
        a = rack.pairs[0].primary
        b = rack.pairs[1].primary
        assert a.channel_group is not None
        assert a.channel_group is b.channel_group

    def test_replicas_grouped_on_other_server(self):
        rack = Rack(sw_config())
        ra = rack.pairs[0].replica
        rb = rack.pairs[1].replica
        assert ra.channel_group is rb.channel_group
        assert ra.channel_group is not rack.pairs[0].primary.channel_group

    def test_sw_isolated_workload_completes(self):
        config = sw_config()
        result = run_rack_experiment(config, ycsb(0.5), requests_per_pair=300)
        s = result.metrics.summary()
        assert s["read_count"] + s["write_count"] == 4 * 300


class TestNetworkKnobs:
    def test_constrained_egress_increases_latency(self):
        base = RackConfig(system=SystemType.RACKBLOX, num_servers=3,
                          num_pairs=3, seed=5)
        slow = RackConfig(system=SystemType.RACKBLOX, num_servers=3,
                          num_pairs=3, seed=5, egress_rate_kb_per_us=0.02)
        fast_result = run_rack_experiment(base, ycsb(0.2), requests_per_pair=400)
        slow_result = run_rack_experiment(slow, ycsb(0.2), requests_per_pair=400)
        assert (
            slow_result.metrics.read_total.mean()
            > fast_result.metrics.read_total.mean()
        )

    def test_background_traffic_flag_starts_injector(self):
        config = RackConfig(system=SystemType.RACKBLOX, num_servers=3,
                            num_pairs=3, seed=5, background_traffic=True,
                            network_scheduler="priority")
        rack = Rack(config)
        rack.sim.run(until=200_000.0)
        assert rack.background_packets > 0

    def test_tb_flow_rate_knob_applies(self):
        config = RackConfig(system=SystemType.VDC, num_servers=3, num_pairs=3,
                            seed=5, tb_flow_rate_kb_per_sec=123.0)
        rack = Rack(config)
        port = next(iter(rack._egress.values()))
        assert port.scheduler.flow_rate == 123.0
