"""Tests for the client-side LRU cache over the KV store."""

import pytest

from repro.errors import ConfigError
from repro.kvstore.cache import CachedKvStore, LruCache
from tests.test_kvstore_store import make_store, run


class TestLruCache:
    def test_hit_and_miss(self):
        cache = LruCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", "1")
        assert cache.get("a") == "1"
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_is_lru(self):
        cache = LruCache(capacity=2)
        cache.put("a", "1")
        cache.put("b", "2")
        cache.get("a")           # 'a' is now most recent
        cache.put("c", "3")      # evicts 'b'
        assert cache.get("b") is None
        assert cache.get("a") == "1"
        assert cache.evictions == 1

    def test_overwrite_does_not_grow(self):
        cache = LruCache(capacity=2)
        cache.put("a", "1")
        cache.put("a", "2")
        assert len(cache) == 1
        assert cache.get("a") == "2"

    def test_invalidate(self):
        cache = LruCache(capacity=2)
        cache.put("a", "1")
        cache.invalidate("a")
        assert cache.get("a") is None
        cache.invalidate("ghost")  # no-op

    def test_hit_ratio(self):
        cache = LruCache(capacity=4)
        assert cache.hit_ratio() == 0.0
        cache.put("a", "1")
        cache.get("a")
        cache.get("b")
        assert cache.hit_ratio() == 0.5

    def test_validation(self):
        with pytest.raises(ConfigError):
            LruCache(capacity=0)


class TestCachedKvStore:
    def test_second_get_served_from_cache(self):
        rack, store = make_store()
        cached = CachedKvStore(store, capacity=16)
        run(rack, cached.put("k", "v"))
        # put() warms the cache, so the first get is already local.
        value, latency, from_cache = run(rack, cached.get("k"))
        assert value == "v" and from_cache and latency == 0.0
        assert store.gets == 0  # never touched the rack for reads

    def test_miss_goes_to_rack_then_caches(self):
        rack, store = make_store()
        cached = CachedKvStore(store, capacity=16)
        run(rack, store.put("k", "v"))  # bypass the cache on write
        value, latency, from_cache = run(rack, cached.get("k"))
        assert value == "v" and not from_cache and latency > 0
        _, _, second = run(rack, cached.get("k"))
        assert second is True

    def test_delete_invalidates(self):
        rack, store = make_store()
        cached = CachedKvStore(store, capacity=16)
        run(rack, cached.put("k", "v"))
        run(rack, cached.delete("k"))
        value, _, from_cache = run(rack, cached.get("k"))
        assert value is None and not from_cache

    def test_write_through_refreshes(self):
        rack, store = make_store()
        cached = CachedKvStore(store, capacity=16)
        run(rack, cached.put("k", "v1"))
        run(rack, cached.put("k", "v2"))
        value, _, from_cache = run(rack, cached.get("k"))
        assert value == "v2" and from_cache

    def test_missing_keys_not_cached(self):
        rack, store = make_store()
        cached = CachedKvStore(store, capacity=16)
        value, _, from_cache = run(rack, cached.get("ghost"))
        assert value is None and not from_cache
        # A second miss still goes to the rack (no negative caching).
        _, _, again = run(rack, cached.get("ghost"))
        assert again is False
