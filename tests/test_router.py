"""The in-process shard router: placement, fallback, and aggregation.

These tests drive :class:`ShardRouter` directly (no TCP) so every
routing decision is observable: which shard's bridge a request landed
on, what the response's ``rack`` tag says, and how the per-shard and
aggregate counters move.
"""

import asyncio

import pytest

from repro.chaos import FaultEvent, FaultSchedule
from repro.cluster.config import RackConfig, SystemType
from repro.errors import ConfigError
from repro.service import schema
from repro.service.router import ShardRouter, build_shard_configs
from repro.service.shard import HashRing

pytestmark = pytest.mark.shard

MS = 1000.0


def base_config(**overrides) -> RackConfig:
    defaults = dict(
        system=SystemType("rackblox"), num_servers=2, num_pairs=2, seed=11,
    )
    defaults.update(overrides)
    return RackConfig(**defaults)


def make_router(racks=3, **kwargs) -> ShardRouter:
    kwargs.setdefault("gc_sync_s", 0.0)  # view moves only when tests say so
    kwargs.setdefault("precondition", False)
    kwargs.setdefault("chunk_us", 2000.0)
    return ShardRouter.from_config(base_config(), racks, **kwargs)


def run(coro):
    return asyncio.run(coro)


class TestBuildShardConfigs:
    def test_single_rack_is_the_base_config_untouched(self):
        config = base_config()
        assert build_shard_configs(config, 1) == [config]
        assert build_shard_configs(config, 1)[0] is config

    def test_each_rack_gets_a_distinct_seed(self):
        configs = build_shard_configs(base_config(seed=100), 3)
        assert [c.seed for c in configs] == [100, 101, 102]
        assert all(c.num_pairs == 2 for c in configs)

    def test_fault_schedule_sliced_per_rack(self):
        schedule = FaultSchedule(events=(
            FaultEvent(1.0 * MS, "server_crash", "server:0", rack=1),
            FaultEvent(2.0 * MS, "server_crash", "server:1"),  # broadcast
        ))
        configs = build_shard_configs(base_config(fault_schedule=schedule), 3)
        assert [len(c.fault_schedule.events) for c in configs] == [1, 2, 1]
        assert configs[1].fault_schedule.events[0].target == "server:0"

    def test_zero_racks_rejected(self):
        with pytest.raises(ConfigError):
            build_shard_configs(base_config(), 0)


class TestPlacement:
    def test_routing_matches_the_public_ring(self):
        # The router's placement is exactly HashRing over "pair:g" /
        # "key:k" labels -- an external client can predict it.
        async def scenario():
            router = make_router(racks=3)
            ring = HashRing(range(3))
            await router.start()
            try:
                landed = {}
                for g in range(router.total_pairs):
                    result = await router.submit_write(g, lpn=1)
                    landed[g] = result["rack"]
                return landed, {g: ring.node_for(f"pair:{g}")
                                for g in range(router.total_pairs)}
            finally:
                await router.stop()

        landed, predicted = run(scenario())
        assert landed == predicted

    def test_kv_routing_matches_the_ring_too(self):
        async def scenario():
            router = make_router(racks=3)
            ring = HashRing(range(3))
            await router.start()
            try:
                out = {}
                for i in range(12):
                    key = f"k{i:08d}"
                    result = await router.submit_put(key, "v")
                    out[key] = (result["rack"], ring.node_for(f"key:{key}"))
                return out
            finally:
                await router.stop()

        for key, (landed, predicted) in run(scenario()).items():
            assert landed == predicted, key

    def test_out_of_range_pair_rejected(self):
        async def scenario():
            router = make_router(racks=2)  # 4 global pairs
            await router.start()
            try:
                with pytest.raises(ConfigError, match="out of range"):
                    router.submit_read(4, 0)
                with pytest.raises(ConfigError):
                    router.submit_write(-1, 0)
            finally:
                await router.stop()

        run(scenario())

    def test_every_shard_simulates_independently(self):
        async def scenario():
            router = make_router(racks=3)
            await router.start()
            try:
                for g in range(router.total_pairs):
                    await router.submit_write(g, lpn=g)
                return [s.bridge.stats().submitted for s in router.shards]
            finally:
                await router.stop()

        submitted = run(scenario())
        assert sum(submitted) == 6
        assert all(count > 0 for count in submitted)


class TestScatterGatherScan:
    def test_scan_merges_sorted_across_all_shards(self):
        async def scenario():
            router = make_router(racks=3)
            await router.start()
            try:
                keys = [f"k{i:04d}" for i in range(24)]
                for key in keys:
                    await router.submit_put(key, f"v-{key}")
                # Keys hash-spread over the shards; a single-shard scan
                # could never see them all.
                per_shard = [len(s.bridge.kv) for s in router.shards]
                result = await router.submit_scan("", count=10)
                return keys, per_shard, result
            finally:
                await router.stop()

        keys, per_shard, result = run(scenario())
        assert all(count > 0 for count in per_shard)
        scanned = [key for key, _ in result["items"]]
        assert scanned == sorted(keys)[:10]
        assert result["racks"] == 3
        assert result["count"] == 10
        assert result["latency_us"] > 0

    def test_scan_respects_start_key(self):
        async def scenario():
            router = make_router(racks=2)
            await router.start()
            try:
                for i in range(12):
                    await router.submit_put(f"k{i:04d}", "v")
                return await router.submit_scan("k0006", count=100)
            finally:
                await router.stop()

        result = run(scenario())
        assert [k for k, _ in result["items"]] == [
            f"k{i:04d}" for i in range(6, 12)
        ]


class TestPerShardAdmission:
    def test_overload_on_one_shard_sheds_only_that_shard(self):
        async def scenario():
            router = make_router(racks=2, queue_depth=1)
            await router.start()
            try:
                ring = HashRing(range(2))
                by_owner = {0: [], 1: []}
                for g in range(router.total_pairs):
                    by_owner[ring.node_for(f"pair:{g}")].append(g)
                busy_pair = by_owner[0][0]
                other_pair = by_owner[1][0]
                request = {"type": "write", "pair": busy_pair, "lpn": 0}
                assert router.try_admit("c", request)
                hold = router.submit_write(busy_pair, 0)  # fills depth=1
                # Same shard: over its own cap.  Other shard: untouched.
                shed = router.try_admit("c", request)
                admitted_elsewhere = router.try_admit(
                    "c", {"type": "write", "pair": other_pair, "lpn": 0}
                )
                await hold
                return shed, admitted_elsewhere
            finally:
                await router.stop()

        shed, admitted_elsewhere = run(scenario())
        assert shed is False
        assert admitted_elsewhere is True

    def test_unroutable_is_admitted_for_dispatch_to_reject(self):
        async def scenario():
            router = make_router(racks=2)
            await router.start()
            try:
                assert router.try_admit("c", {"type": "frobnicate"})
                assert router.try_admit("c", {"type": "read"})  # no pair
                return router.unroutable
            finally:
                await router.stop()

        assert run(scenario()) == 2


class TestGcFallback:
    @staticmethod
    def _mark_both_collecting(shard, local_pair, status=1):
        pair = shard.bridge.rack.pairs[local_pair]
        switch = shard.bridge.rack.switch
        switch.replica_table.set_gc_status(pair.primary.vssd_id, status)
        switch.destination_table.set_gc_status(pair.replica.vssd_id, status)

    def test_fallback_waits_for_the_view_to_sync(self):
        async def scenario():
            router = make_router(racks=3)
            await router.start()
            try:
                g = 0
                owner = router._owner_of_pair(g)
                local = g % owner.num_pairs
                self._mark_both_collecting(owner, local)

                # The truth changed, but the router's *view* is stale:
                # reads still go to the owner (the staleness window the
                # batch fabric's 40us sync delay models).
                stale = await router.submit_read(g, lpn=1)

                router.sync_gc_views()
                redirected = await router.submit_read(g, lpn=1)

                # GC finished; one more sync and traffic comes home.
                self._mark_both_collecting(owner, local, status=0)
                router.sync_gc_views()
                recovered = await router.submit_read(g, lpn=1)
                return owner.index, stale, redirected, recovered, router
            finally:
                await router.stop()

        owner_index, stale, redirected, recovered, router = run(scenario())
        assert stale["rack"] == owner_index
        assert "cross_rack" not in stale
        assert redirected["rack"] != owner_index
        assert redirected["cross_rack"] is True
        assert recovered["rack"] == owner_index
        assert router.cross_rack_redirects == 1
        fallback = router._by_index[redirected["rack"]]
        assert fallback.redirected_in == 1
        # The fallback is deterministic: the next distinct ring node.
        assert redirected["rack"] == HashRing(range(3)).preference(
            "pair:0", count=2)[1]

    def test_writes_never_redirect(self):
        async def scenario():
            router = make_router(racks=3)
            await router.start()
            try:
                owner = router._owner_of_pair(0)
                self._mark_both_collecting(owner, 0)
                router.sync_gc_views()
                return owner.index, await router.submit_write(0, lpn=1)
            finally:
                await router.stop()

        owner_index, result = run(scenario())
        assert result["rack"] == owner_index

    def test_single_rack_never_redirects(self):
        async def scenario():
            router = make_router(racks=1)
            await router.start()
            try:
                shard = router.shards[0]
                self._mark_both_collecting(shard, 0)
                router.sync_gc_views()
                return await router.submit_read(0, lpn=1)
            finally:
                await router.stop()

        result = run(scenario())
        assert result["rack"] == 0
        assert "cross_rack" not in result


class TestAggregateStats:
    def test_stats_payload_validates_and_aggregates(self):
        async def scenario():
            router = make_router(racks=3)
            await router.start()
            try:
                for g in range(router.total_pairs):
                    await router.submit_write(g, lpn=1)
                await router.submit_get("k1")
                router.sync_gc_views()
                return router.stats_payload(), router.stats()
            finally:
                await router.stop()

        payload, bridge_stats = run(scenario())
        payload[schema.FIELD_CONNECTIONS] = 0.0
        schema.validate_stats(payload)
        assert schema.is_sharded(payload)
        assert schema.shard_ids(payload) == [0, 1, 2]
        assert payload["router"]["racks"] == 3.0
        assert payload["router"]["routed"] == 7.0
        assert payload["router"]["gc_view_commits"] == 1.0
        # Aggregate bridge counters equal the sum of the shard slices.
        per_shard = payload["shards"].values()
        assert payload["bridge"]["completed"] == sum(
            s["bridge"]["completed"] for s in per_shard) == 7.0
        assert bridge_stats.completed == 7
        assert bridge_stats.inflight == 0
        # The aggregate latency collector saw every request.
        assert payload["metrics"]["write_count"] == 6.0
        assert payload["metrics"]["read_count"] == 1.0

    def test_duplicate_shard_indices_rejected(self):
        async def scenario():
            router = make_router(racks=2)
            with pytest.raises(ConfigError, match="unique"):
                ShardRouter([router.shards[0], router.shards[0]])

        run(scenario())
