"""End-to-end tracing tests: spans through a live rack simulation.

These pin the subsystem's acceptance criteria: a traced YCSB-A run
exports a valid Chrome trace, the attribution report classifies >= 95%
of p99 read latency, GC-heavy runs attribute reads to GC, sampling
never perturbs the simulation, and traces survive the process-pool
fan-out.
"""

import json
import pickle

import pytest

from repro.cluster.config import RackConfig, SystemType
from repro.cluster.rack import Rack
from repro.experiments.parallel import ParallelRunner, RunSpec
from repro.experiments.runner import run_rack_experiment
from repro.trace import NullTracer, Tracer, validate_chrome_trace
from repro.workloads.spec import ycsb


def traced_run(sample_rate=1.0, seed=42, requests=300, **overrides):
    config = RackConfig(
        system=SystemType.RACKBLOX, num_servers=2, num_pairs=2,
        seed=seed, trace_sample_rate=sample_rate, **overrides,
    )
    return run_rack_experiment(config, ycsb(0.5), requests_per_pair=requests,
                               rate_iops_per_pair=2000.0)


@pytest.fixture(scope="module")
def ycsb_a_result():
    """One fully-traced YCSB-A (50% update) run, shared across tests."""
    return traced_run(sample_rate=1.0)


class TestTracedRun:
    def test_rack_builds_real_tracer(self):
        config = RackConfig(system=SystemType.RACKBLOX, num_servers=2,
                            num_pairs=2, trace_sample_rate=0.5)
        assert isinstance(Rack(config).tracer, Tracer)
        config_off = RackConfig(system=SystemType.RACKBLOX, num_servers=2,
                                num_pairs=2)
        assert isinstance(Rack(config_off).tracer, NullTracer)

    def test_sample_rate_validated(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            RackConfig(system=SystemType.RACKBLOX, trace_sample_rate=1.5)

    def test_result_carries_traces(self, ycsb_a_result):
        traces = ycsb_a_result.traces
        assert traces is not None
        reads = traces.of_kind("read")
        writes = traces.of_kind("write")
        assert len(reads) > 100 and len(writes) > 100
        assert all(t.finished for t in traces.traces)

    def test_summary_merges_trace_counters(self, ycsb_a_result):
        summary = ycsb_a_result.summary()
        assert summary["traced_requests"] == float(len(ycsb_a_result.traces))
        assert summary["trace_sample_rate"] == 1.0
        assert "traced_gc_blocked_reads" in summary

    def test_every_read_fully_covered(self, ycsb_a_result):
        # Spans tile the whole request path: every stage of every read is
        # accounted for, so coverage is exactly 1.0, not approximately.
        reads = ycsb_a_result.traces.of_kind("read")
        assert min(t.coverage() for t in reads) >= 0.999

    def test_read_spans_include_all_path_stages(self, ycsb_a_result):
        names = set()
        for trace in ycsb_a_result.traces.of_kind("read"):
            names.update(s.name for s in trace.spans)
        assert {"net.client_to_tor", "switch.pipeline", "net.tor_to_server",
                "server.queue", "storage.media", "net.server_to_tor",
                "net.tor_to_client"} <= names

    def test_chrome_export_is_valid(self, ycsb_a_result, tmp_path):
        from repro.trace import write_chrome_trace
        path = tmp_path / "ycsb_a.json"
        events = write_chrome_trace(ycsb_a_result.traces.traces, str(path))
        document = json.loads(path.read_text())
        validate_chrome_trace(document)
        assert events == len(document["traceEvents"])
        assert events > len(ycsb_a_result.traces)  # >1 event per request

    def test_p99_attribution_classifies_tail(self, ycsb_a_result):
        # Acceptance: >= 95% of p99 read latency lands in a named stage.
        report = ycsb_a_result.traces.attribution(percentile=99.0, kind="read")
        assert report.tail_requests >= 1
        assert report.coverage >= 0.95
        assert sum(report.by_category.values()) == report.tail_requests
        assert report.dominant() in ("gc", "media", "queue", "net")


class TestGcAttribution:
    @pytest.fixture(scope="class")
    def gc_heavy_result(self):
        # A nearly-full VDC rack (no GC coordination) under a write-heavy
        # load: reads routinely land on a vSSD mid-GC.
        config = RackConfig(
            system=SystemType.VDC, num_servers=2, num_pairs=2, seed=7,
            trace_sample_rate=1.0, precondition_fill=0.85,
            gc_threshold=0.30, soft_threshold=0.40,
        )
        return run_rack_experiment(config, ycsb(0.8), requests_per_pair=400,
                                   rate_iops_per_pair=4000.0)

    def test_gc_actually_ran(self, gc_heavy_result):
        assert gc_heavy_result.gc_runs > 0
        assert gc_heavy_result.metrics.gc_blocked_reads > 0

    def test_traces_attribute_gc_blocked_reads(self, gc_heavy_result):
        traces = gc_heavy_result.traces
        blocked = [t for t in traces.of_kind("read") if t.gc_blocked()]
        assert blocked, "expected traced reads overlapping GC"
        # The trace-derived count matches the server-side counter.
        assert len(blocked) == gc_heavy_result.metrics.gc_blocked_reads
        assert traces.summary()["traced_gc_blocked_reads"] == len(blocked)

    def test_gc_shows_up_in_tail_attribution(self, gc_heavy_result):
        report = gc_heavy_result.traces.attribution(percentile=90.0,
                                                    kind="read")
        assert report.tail_time_by_category.get("gc", 0.0) > 0.0
        assert report.gc_blocked > 0
        assert "GC-blocked" in report.describe()


class TestTracingIsObservationOnly:
    def test_tracing_does_not_perturb_simulation(self):
        # Identical seeds, tracing off vs full tracing: the simulated
        # latencies must be bit-identical (sampling uses its own RNG).
        off = traced_run(sample_rate=0.0, requests=200)
        on = traced_run(sample_rate=1.0, requests=200)
        assert off.traces is None and on.traces is not None
        assert off.metrics.read_total.values == on.metrics.read_total.values
        assert off.metrics.write_total.values == on.metrics.write_total.values
        assert off.redirects == on.redirects

    def test_partial_sampling_subsamples_same_run(self):
        full = traced_run(sample_rate=1.0, requests=200)
        partial = traced_run(sample_rate=0.3, requests=200)
        assert 0 < len(partial.traces) < len(full.traces)
        # Sampling is head-based: whatever was sampled is complete.
        assert all(t.finished for t in partial.traces.traces)
        assert partial.metrics.read_total.values == full.metrics.read_total.values


class TestParallelFanOut:
    def test_traces_survive_process_pool(self):
        specs = [
            RunSpec.create(SystemType.RACKBLOX, ycsb(0.5), 150, 2000.0, seed,
                           num_servers=2, num_pairs=2, trace_sample_rate=1.0)
            for seed in (1, 2)
        ]
        results = ParallelRunner(jobs=2).run_specs(specs)
        assert len(results) == 2
        for result in results:
            assert result.traces is not None and len(result.traces) > 0
            validate_chrome_trace(result.traces.to_chrome())
            assert result.summary()["trace_sample_rate"] == 1.0

    def test_rack_result_with_traces_pickles(self):
        result = traced_run(sample_rate=1.0, requests=150)
        clone = pickle.loads(pickle.dumps(result))
        assert len(clone.traces) == len(result.traces)
        assert clone.summary() == result.summary()
