"""Tests for the §3.3 switch-sizing arithmetic."""

import pytest

from repro.errors import ConfigError
from repro.switch.sizing import (
    RackScale,
    max_rack_scale_for_budget,
    size_tables,
)


class TestPaperNumbers:
    def test_vssd_population_at_paper_scale(self):
        # 64 servers x 16 SSDs x 128 vSSDs.  (The paper quotes "up to 64K
        # vSSDs" for this product; the raw arithmetic gives 128K -- either
        # way the table budget below holds.)
        assert RackScale().max_vssds == 64 * 16 * 128

    def test_footnote_capacity_division(self):
        # 4 TB SSD / 32 GB minimum vSSD = 128 vSSDs (footnote 1).
        scale = RackScale()
        assert scale.vssds_per_ssd_from_capacity == 128

    def test_table_size_near_paper_figure(self):
        # The paper: "the maximum size of each table is 1.3MB" for its
        # counted vSSD population.  At 64K vSSDs each 9-byte-entry table
        # is ~0.6 MB; at the raw 128K it is ~1.2 MB -- both within the
        # paper's 1.3 MB bound.
        budget = size_tables(RackScale())
        assert budget.replica_table_bytes <= 1.3 * 1024 * 1024
        assert budget.destination_table_bytes <= 1.3 * 1024 * 1024

    def test_gc_registers_within_128kb_per_table_population(self):
        # The paper spends 128 KB of stateful memory on GC registers.
        budget = size_tables(RackScale(servers=32))  # 64K vSSDs
        assert budget.gc_register_bytes <= 128 * 1024

    def test_fits_tofino_budget(self):
        assert size_tables(RackScale()).fits()


class TestScaling:
    def test_footprint_scales_linearly(self):
        small = size_tables(RackScale(servers=8))
        large = size_tables(RackScale(servers=16))
        assert large.total_bytes == 2 * small.total_bytes

    def test_max_scale_search(self):
        max_servers = max_rack_scale_for_budget(
            sram_budget_bytes=4 * 1024 * 1024
        )
        assert max_servers >= 1
        assert size_tables(RackScale(servers=max_servers)).total_bytes <= (
            4 * 1024 * 1024
        )
        too_big = size_tables(RackScale(servers=max_servers + 1))
        assert too_big.total_bytes > 4 * 1024 * 1024

    def test_default_budget_takes_large_racks(self):
        assert max_rack_scale_for_budget() >= 64

    def test_validation(self):
        with pytest.raises(ConfigError):
            RackScale(servers=0)
