"""Process-mode sharding: the frame-relay proxy over real backend
processes.

These are the slowest tests in the suite (each spawns one ``repro.cli
serve`` interpreter per rack), so they cover only what the in-process
router tests cannot: the relay path itself, stats gathered over the
wire from live backends, and the crash drill -- one backend process
dies and only its shard's requests fail (retryably), while the
surviving rack keeps serving on the same client connection.
"""

import asyncio

import pytest

from repro.errors import ConfigError
from repro.service import protocol, schema
from repro.service.client import ServiceClient, ServiceError
from repro.service.router import (
    ShardProxy,
    launch_backends,
    shutdown_backends,
)
from repro.service.shard import HashRing

pytestmark = [pytest.mark.shard, pytest.mark.slow]

BACKEND_ARGS = (
    "--racks", "1", "--system", "rackblox",
    "--servers", "2", "--pairs", "2", "--chunk-us", "2000",
)


async def start_proxy(racks=2, seed=11):
    procs, endpoints = await launch_backends(
        racks, BACKEND_ARGS, seed=seed
    )
    proxy = ShardProxy(endpoints, port=0, pairs_per_rack=2)
    await proxy.start()
    return procs, proxy


def pairs_by_backend(racks=2, pairs_per_rack=2):
    ring = HashRing(range(racks))
    owned = {node: [] for node in range(racks)}
    for g in range(racks * pairs_per_rack):
        owned[ring.node_for(f"pair:{g}")].append(g)
    return owned


class TestRelay:
    def test_end_to_end_relay_and_stats(self):
        async def scenario():
            procs, proxy = await start_proxy()
            try:
                async with ServiceClient("127.0.0.1", proxy.port) as c:
                    hello = await c.hello()
                    for g in range(4):
                        await c.write(g, 1)
                    await c.put("k1", "v1")
                    got = await c.get("k1")
                    stats = await c.stats()
                return hello, got, stats
            finally:
                await proxy.stop()
                await shutdown_backends(procs)

        hello, got, stats = asyncio.run(scenario())
        assert hello["v"] == protocol.PROTOCOL_VERSION
        assert hello["racks"] == 2
        assert "proxy" in hello["capabilities"]
        assert got["value"] == "v1"
        schema.validate_stats(stats, client=True)
        assert schema.shard_ids(stats) == [0, 1]
        # Both backends really simulated their slice of the writes.
        submitted = [s["bridge"]["submitted"]
                     for s in stats["shards"].values()]
        assert all(n > 0 for n in submitted)
        assert stats["router"]["routed"] >= 6.0

    def test_version_check_happens_at_the_proxy(self):
        async def scenario():
            procs, proxy = await start_proxy()
            try:
                async with ServiceClient("127.0.0.1", proxy.port) as c:
                    try:
                        await c.request({"type": "ping", "v": 99})
                    except ServiceError as exc:
                        return exc
            finally:
                await proxy.stop()
                await shutdown_backends(procs)

        exc = asyncio.run(scenario())
        assert exc.code == protocol.UNSUPPORTED_VERSION


@pytest.mark.chaos
class TestBackendDeath:
    def test_dead_backend_fails_retryably_and_alone(self):
        # The process-mode crash drill: SIGKILL one rack's interpreter
        # and the proxy must (a) answer that shard's requests with the
        # retryable TIMEOUT the client's retry loop understands, and
        # (b) keep relaying the surviving rack's traffic on the very
        # same client connection.
        owned = pairs_by_backend()
        dead_pair, live_pair = owned[1][0], owned[0][0]

        async def scenario():
            procs, proxy = await start_proxy()
            try:
                async with ServiceClient("127.0.0.1", proxy.port) as c:
                    await c.write(dead_pair, 1)  # link up, backend alive
                    await c.write(live_pair, 1)
                    procs[1].kill()
                    await procs[1].wait()
                    outcomes = []
                    for _ in range(2):  # dead link, then failed redial
                        try:
                            outcomes.append(await c.write(dead_pair, 2))
                        except ServiceError as exc:
                            outcomes.append(exc)
                    survivor = await c.write(live_pair, 2)
                    return outcomes, survivor
            finally:
                await proxy.stop()
                await shutdown_backends(procs)

        outcomes, survivor = asyncio.run(scenario())
        assert outcomes, "no requests reached the dead shard"
        for outcome in outcomes:
            assert isinstance(outcome, ServiceError), outcome
            assert outcome.code == protocol.TIMEOUT  # retryable by contract
            assert "backend rack 1" in outcome.message
        assert survivor["ok"] and survivor["latency_us"] > 0


class TestProxyConstruction:
    def test_rejects_empty_backends_and_bad_pairs(self):
        with pytest.raises(ConfigError):
            ShardProxy([], pairs_per_rack=2)
        with pytest.raises(ConfigError):
            ShardProxy([("127.0.0.1", 1)], pairs_per_rack=0)
