"""Multi-tenant QoS: tenant specs, the weighted-fair scheduler, and the
DRAM read-through cache.

All pure-logic tests -- no sockets, no simulator.  The live drills
(tenant hello over TCP, the cache across a migration, per-tenant
loadgen lanes) live in ``test_service.py``/``test_migration.py`` and
``benchmarks/test_qos_isolation.py``.
"""

import json

import pytest

from repro.service.qos import (
    DEFAULT_TENANT,
    QosScheduler,
    TenantSpec,
    TenantSpecError,
    load_tenant_specs,
)
from repro.service.readcache import NO_FILL, ReadCache
from repro.service import schema

pytestmark = pytest.mark.qos


class TestTenantSpec:
    def test_defaults(self):
        spec = TenantSpec("gold")
        assert spec.weight == 1.0 and spec.rate_per_sec == 0.0
        assert spec.cache_share == 1.0

    @pytest.mark.parametrize("kwargs", [
        dict(name=""),
        dict(name="has space"),
        dict(name="x", weight=0),
        dict(name="x", weight=-1),
        dict(name="x", slo_ms=0),
        dict(name="x", burst=0),
        dict(name="x", rate_per_sec=-1),
        dict(name="x", cache_share=-0.5),
        dict(name="x", weight=True),
    ])
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(TenantSpecError):
            TenantSpec(**kwargs)

    def test_zero_share_and_zero_rate_are_legal(self):
        # 0 disables metering / caching, it is not an error.
        TenantSpec("x", rate_per_sec=0, cache_share=0)


class TestLoadTenantSpecs:
    def test_inline_list(self):
        spec = load_tenant_specs('[{"name": "gold", "weight": 3}]')
        assert spec.tenants["gold"].weight == 3
        assert spec.cache_capacity > 0  # default sizing applies

    def test_inline_object_with_cache_sizing(self):
        spec = load_tenant_specs(json.dumps({
            "tenants": [{"name": "a"}, {"name": "b", "rate_per_sec": 100}],
            "cache_capacity": 512,
            "cache_segments": 4,
        }))
        assert sorted(spec.tenants) == ["a", "b"]
        assert spec.cache_capacity == 512 and spec.cache_segments == 4

    def test_file_path(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text('[{"name": "gold"}]')
        assert "gold" in load_tenant_specs(str(path)).tenants

    @pytest.mark.parametrize("source,match", [
        ("/no/such/file.json", "neither inline JSON"),
        ("[{]", "not valid JSON"),
        ('[{"name": "a", "nope": 1}]', "unknown tenant spec"),
        ('[{"weight": 2}]', "need a 'name'"),
        ('[{"name": "a"}, {"name": "a"}]', "duplicate"),
        ('{"tenants": [], "cache_capacity": -1}', "cache_capacity"),
        ('{"tenants": [], "cache_segments": 0}', "cache_segments"),
        ('{"tenants": {}}', "must be a list"),
        ('{"extra": 1}', "unknown top-level"),
        ("42", "neither inline JSON"),
        ("[42]", "must be objects"),
    ])
    def test_rejects_malformed(self, source, match):
        with pytest.raises(TenantSpecError, match=match):
            load_tenant_specs(source)


class TestQosScheduler:
    def test_default_tenant_always_exists(self):
        qos = QosScheduler(None)
        assert qos.knows(DEFAULT_TENANT)
        assert qos.tenant_names == [DEFAULT_TENANT]
        assert qos.try_admit(DEFAULT_TENANT)

    def test_unknown_tenant_falls_back_to_default(self):
        qos = QosScheduler(None)
        assert qos.try_admit("stranger")
        assert qos.stats_section()[DEFAULT_TENANT]["admitted"] == 1.0

    def test_shares_follow_weights(self):
        qos = QosScheduler([TenantSpec("gold", weight=3),
                            TenantSpec("bronze", weight=1)],
                           max_queue_depth=100)
        # gold:bronze:default = 3:1:1 over 100 slots.
        assert qos.guaranteed_share("gold") == pytest.approx(60.0)
        assert qos.guaranteed_share("bronze") == pytest.approx(20.0)

    def test_rate_gate_sheds_regardless_of_idle_capacity(self):
        import time

        qos = QosScheduler([TenantSpec("metered", rate_per_sec=10, burst=2)])
        now = time.monotonic()  # the bucket's clock base is monotonic
        assert qos.try_admit("metered", now)
        assert qos.try_admit("metered", now)
        assert not qos.try_admit("metered", now)  # bucket empty, queue idle
        stats = qos.stats_section()["metered"]
        assert stats["shed_rate_limited"] == 1.0
        # The bucket refills with wall time.
        assert qos.try_admit("metered", now + 1.0)

    def test_over_share_admitted_while_uncontended(self):
        qos = QosScheduler([TenantSpec("solo")], max_queue_depth=64)
        # Way over its fair share, but the scheduler is idle: admit.
        for _ in range(30):
            assert qos.try_admit("solo")
            qos.on_submit("solo")

    def test_contention_clamps_to_fair_share(self):
        qos = QosScheduler([TenantSpec("hog"), TenantSpec("meek")],
                           max_queue_depth=12)
        # Fill the scheduler past the contention threshold with the hog.
        admitted = 0
        while qos.try_admit("hog"):
            qos.on_submit("hog")
            admitted += 1
        assert admitted >= 4  # its share, at least
        assert qos.stats_section()["hog"]["shed_over_share"] == 1.0
        # The meek tenant is under its guarantee: still admitted.
        assert qos.try_admit("meek")

    def test_slo_burn_scores_latency_and_failures(self):
        qos = QosScheduler([TenantSpec("t", slo_ms=10)])
        for _ in range(3):
            qos.on_submit("t")
        qos.on_complete("t", 5.0)            # within SLO
        qos.on_complete("t", 50.0)           # miss: too slow
        qos.on_complete("t", None, ok=False)  # miss: never answered
        stats = qos.stats_section()["t"]
        assert stats["completed"] == 3.0
        assert stats["slo_violations"] == 2.0
        assert stats["slo_burn"] == pytest.approx((2 / 3) / 0.01)
        assert stats["inflight"] == 0.0

    def test_stats_section_validates_against_schema(self):
        qos = QosScheduler([TenantSpec("gold", weight=2)])
        section = qos.stats_section()
        assert sorted(section) == [DEFAULT_TENANT, "gold"]
        for body in section.values():
            assert sorted(body) == sorted(schema.TENANT_FIELDS)

    def test_bad_queue_depth_rejected(self):
        with pytest.raises(TenantSpecError, match="max_queue_depth"):
            QosScheduler(None, max_queue_depth=0)


class TestReadCache:
    def test_read_through_fill_then_hit(self):
        cache = ReadCache(64)
        hit, value, token = cache.lookup("k", "t")
        assert not hit and token != NO_FILL
        assert cache.fill("k", "v", "t", token)
        hit, value, _ = cache.lookup("k", "t")
        assert hit and value == "v"
        assert cache.hit_rate() == pytest.approx(0.5)
        assert cache.tenant_hits("t") == 1

    def test_lru_evicts_within_the_filling_tenants_budget(self):
        # capacity 8, one segment: each tenant's budget is its share.
        cache = ReadCache(8, shares={"a": 1.0, "b": 1.0}, segments=1)
        for i in range(10):
            _, _, token = cache.lookup(f"a{i}", "a")
            cache.fill(f"a{i}", i, "a", token)
        # a's budget is 4: the oldest fills are gone, b is untouched.
        assert cache.entries == 4
        assert cache.evictions == 6
        assert cache.lookup("a9", "a")[0]
        assert not cache.lookup("a0", "a")[0]

    def test_zero_share_tenant_reads_through_without_filling(self):
        cache = ReadCache(64, shares={"freeloader": 0.0, "payer": 1.0})
        _, _, token = cache.lookup("k", "freeloader")
        assert token == NO_FILL
        assert not cache.fill("k", "v", "freeloader", token)
        assert cache.entries == 0
        # Any tenant's entry serves any tenant's lookup.
        _, _, token = cache.lookup("k", "payer")
        cache.fill("k", "v", "payer", token)
        assert cache.lookup("k", "freeloader")[0]

    def test_invalidation_beats_a_racing_fill(self):
        cache = ReadCache(64)
        _, _, token = cache.lookup("k", "t")     # read starts...
        cache.invalidate("k")                    # ...write completes first
        assert not cache.fill("k", "stale", "t", token)
        assert cache.fill_races == 1
        assert not cache.lookup("k", "t")[0]     # never serves "stale"

    def test_invalidate_purges_a_cached_entry(self):
        cache = ReadCache(64)
        _, _, token = cache.lookup("k", "t")
        cache.fill("k", "v1", "t", token)
        cache.invalidate("k")
        hit, _, token = cache.lookup("k", "t")
        assert not hit and token != NO_FILL      # miss, refillable
        assert cache.invalidations == 1

    def test_fence_drops_old_epoch_entries_and_inflight_fills(self):
        cache = ReadCache(64)
        _, _, inflight = cache.lookup("old", "t")
        _, _, token = cache.lookup("k", "t")
        cache.fill("k", "v", "t", token)
        cache.fence(epoch=1)
        assert not cache.fill("old", "v", "t", inflight)  # fill fenced
        assert not cache.lookup("k", "t")[0]              # entry fenced
        assert cache.stats_section()["epoch"] == 1.0

    def test_zero_capacity_cache_is_inert(self):
        cache = ReadCache(0)
        hit, _, token = cache.lookup("k", "t")
        assert not hit and token == NO_FILL
        cache.invalidate("k")                    # no-op, no crash
        assert cache.stats_section()["entries"] == 0.0

    def test_stats_section_matches_schema(self):
        cache = ReadCache(64)
        assert sorted(cache.stats_section()) == sorted(schema.READCACHE_FIELDS)

    @pytest.mark.parametrize("kwargs", [
        dict(capacity=-1), dict(capacity=8, segments=0),
    ])
    def test_bad_sizing_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ReadCache(**kwargs)
