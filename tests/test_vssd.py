"""Tests for vSSD virtualization: allocation, I/O, GC, isolation."""

import pytest

from repro.errors import ConfigError, VSSDError
from repro.flash import FlashGeometry, PSSD, Ssd
from repro.sim import Simulator
from repro.vssd import ChannelGroup, IsolationType, TokenBucket, VssdAllocator


def make_ssd(sim=None, channels=4, chips_per_channel=2, blocks=32, pages=8):
    sim = sim if sim is not None else Simulator()
    geo = FlashGeometry(
        channels=channels,
        chips_per_channel=chips_per_channel,
        blocks_per_chip=blocks,
        pages_per_block=pages,
    )
    return sim, Ssd(sim, "ssd-0", geometry=geo)


class TestAllocator:
    def test_hardware_isolated_owns_channels(self):
        _, ssd = make_ssd()
        alloc = VssdAllocator(ssd)
        vssd = alloc.create_hardware_isolated("v1", channels=[0, 1])
        assert vssd.isolation is IsolationType.HARDWARE
        assert len(vssd.ftl.chips) == 4  # 2 channels * 2 chips
        assert alloc.free_channel_count() == 2

    def test_channel_double_allocation_rejected(self):
        _, ssd = make_ssd()
        alloc = VssdAllocator(ssd)
        alloc.create_hardware_isolated("v1", channels=[0])
        with pytest.raises(VSSDError):
            alloc.create_hardware_isolated("v2", channels=[0])

    def test_software_isolated_owns_chips(self):
        _, ssd = make_ssd()
        alloc = VssdAllocator(ssd)
        vssd = alloc.create_software_isolated("v1", chips=[0, 2])
        assert vssd.isolation is IsolationType.SOFTWARE
        assert [c.chip_id for c in vssd.ftl.chips] == [0, 2]

    def test_chip_on_owned_channel_rejected(self):
        _, ssd = make_ssd()
        alloc = VssdAllocator(ssd)
        alloc.create_hardware_isolated("hw", channels=[0])
        with pytest.raises(VSSDError):
            alloc.create_software_isolated("sw", chips=[0])  # chip 0 on channel 0

    def test_chip_double_allocation_rejected(self):
        _, ssd = make_ssd()
        alloc = VssdAllocator(ssd)
        alloc.create_software_isolated("a", chips=[1])
        with pytest.raises(VSSDError):
            alloc.create_software_isolated("b", chips=[1])

    def test_delete_returns_resources(self):
        _, ssd = make_ssd()
        alloc = VssdAllocator(ssd)
        vssd = alloc.create_hardware_isolated("v", channels=[0, 1])
        alloc.delete(vssd)
        assert alloc.free_channel_count() == 4
        # Resources reusable.
        alloc.create_hardware_isolated("v2", channels=[0, 1])

    def test_delete_unknown_vssd_rejected(self):
        _, ssd = make_ssd()
        alloc = VssdAllocator(ssd)
        other_sim, other_ssd = make_ssd()
        other_vssd = VssdAllocator(other_ssd).create_hardware_isolated("x", [0])
        with pytest.raises(VSSDError):
            alloc.delete(other_vssd)

    def test_vssd_ids_are_unique(self):
        _, ssd = make_ssd()
        alloc = VssdAllocator(ssd)
        a = alloc.create_hardware_isolated("a", channels=[0])
        b = alloc.create_hardware_isolated("b", channels=[1])
        assert a.vssd_id != b.vssd_id

    def test_empty_allocation_rejected(self):
        _, ssd = make_ssd()
        alloc = VssdAllocator(ssd)
        with pytest.raises(VSSDError):
            alloc.create_hardware_isolated("v", channels=[])
        with pytest.raises(VSSDError):
            alloc.create_software_isolated("v", chips=[])


class TestVssdIo:
    def test_read_takes_device_time(self):
        sim, ssd = make_ssd()
        vssd = VssdAllocator(ssd).create_hardware_isolated("v", channels=[0])

        def io():
            yield sim.spawn(vssd.write(0))
            yield sim.spawn(vssd.read(0))

        sim.spawn(io())
        sim.run()
        expected = PSSD.program_latency(4.0) + PSSD.read_latency(4.0)
        assert sim.now == pytest.approx(expected)
        assert vssd.reads_served == 1 and vssd.writes_served == 1

    def test_read_unwritten_page_still_costs_a_read(self):
        sim, ssd = make_ssd()
        vssd = VssdAllocator(ssd).create_hardware_isolated("v", channels=[0])
        sim.spawn(vssd.read(5))
        sim.run()
        assert sim.now == pytest.approx(PSSD.read_latency(4.0))

    def test_hardware_isolation_no_cross_interference(self):
        # Two HW-isolated vSSDs on different channels run concurrently.
        sim, ssd = make_ssd()
        alloc = VssdAllocator(ssd)
        v1 = alloc.create_hardware_isolated("v1", channels=[0])
        v2 = alloc.create_hardware_isolated("v2", channels=[1])
        done = []

        def io(vssd, tag):
            yield sim.spawn(vssd.write(0))
            done.append((tag, sim.now))

        sim.spawn(io(v1, "v1"))
        sim.spawn(io(v2, "v2"))
        sim.run()
        t1 = dict(done)["v1"]
        t2 = dict(done)["v2"]
        assert t1 == pytest.approx(t2)  # fully parallel

    def test_software_isolated_share_channel_serialises(self):
        # Two SW-isolated vSSDs on chips of the same channel contend.
        sim, ssd = make_ssd(channels=1, chips_per_channel=2)
        alloc = VssdAllocator(ssd)
        v1 = alloc.create_software_isolated("v1", chips=[0])
        v2 = alloc.create_software_isolated("v2", chips=[1])
        done = []

        def io(vssd, tag):
            yield sim.spawn(vssd.write(0))
            done.append((tag, sim.now))

        sim.spawn(io(v1, "a"))
        sim.spawn(io(v2, "b"))
        sim.run()
        times = sorted(t for _, t in done)
        assert times[1] == pytest.approx(2 * PSSD.program_latency(4.0))

    def test_pages_written_accrues_on_ssd(self):
        sim, ssd = make_ssd()
        vssd = VssdAllocator(ssd).create_hardware_isolated("v", channels=[0])

        def io():
            for lpn in range(5):
                yield sim.spawn(vssd.write(lpn))

        sim.spawn(io())
        sim.run()
        assert ssd.pages_written == 5


class TestVssdGc:
    def _fill(self, sim, vssd, rewrites=3):
        """Synchronously fill the vSSD with rewrites to create stale pages."""
        def filler():
            for _ in range(rewrites):
                for lpn in range(vssd.logical_pages):
                    if vssd.free_block_ratio() < 0.15:
                        yield sim.spawn(vssd.gc_until(0.3))
                    yield sim.spawn(vssd.write(lpn))

        sim.spawn(filler())
        sim.run()

    def test_gc_restores_free_space(self):
        sim, ssd = make_ssd(channels=1, blocks=16, pages=8)
        vssd = VssdAllocator(ssd).create_hardware_isolated("v", channels=[0])
        self._fill(sim, vssd)
        assert vssd.free_block_ratio() > 0.1
        assert vssd.gc_runs > 0
        vssd.ftl.check_invariants()

    def test_gc_delays_concurrent_read(self):
        # A read issued while GC is running waits for the in-flight GC
        # command (GC is sliced per command, so the stall is bounded by
        # one operation, not the whole victim).
        sim, ssd = make_ssd(channels=1, chips_per_channel=1, blocks=16, pages=8)
        vssd = VssdAllocator(ssd).create_hardware_isolated("v", channels=[0])
        # Fill synchronously to create invalid pages.
        self._fill(sim, vssd, rewrites=2)
        read_latency = []

        def gc_then_read():
            gc_proc = sim.spawn(vssd.gc_until(0.9, max_victims=4))
            t0 = sim.now
            yield sim.spawn(vssd.read(0))
            read_latency.append(sim.now - t0)
            yield gc_proc

        sim.spawn(gc_then_read())
        sim.run()
        bare_read = PSSD.read_latency(4.0)
        assert read_latency[0] > bare_read * 1.5
        # But far less than a whole victim's worth of migrations + erase.
        assert read_latency[0] < 4 * PSSD.erase_us

    def test_gc_active_flag_toggles(self):
        sim, ssd = make_ssd(channels=1, blocks=16, pages=8)
        vssd = VssdAllocator(ssd).create_hardware_isolated("v", channels=[0])
        self._fill(sim, vssd, rewrites=2)
        observed = []

        def observer():
            gc = sim.spawn(vssd.gc_until(0.95, max_victims=2))
            observed.append(vssd.gc_active)
            yield gc
            observed.append(vssd.gc_active)

        sim.spawn(observer())
        sim.run()
        assert observed == [True, False] or observed == [False, False]

    def test_gc_needed_kinds(self):
        sim, ssd = make_ssd(channels=1, blocks=20, pages=4)
        vssd = VssdAllocator(ssd).create_hardware_isolated("v", channels=[0])
        assert vssd.gc_needed() is None

        def filler():
            lpn = 0
            while vssd.free_block_ratio() >= 0.30:
                yield sim.spawn(vssd.write(lpn % vssd.logical_pages))
                lpn += 1

        sim.spawn(filler())
        sim.run()
        assert vssd.gc_needed() in ("soft", "regular")


class TestTokenBucket:
    def test_burst_within_capacity_is_free(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate_per_sec=1000.0, capacity=10.0)
        assert bucket.delay_for(5) == 0.0
        assert bucket.delay_for(5) == 0.0

    def test_exhausted_bucket_delays(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate_per_sec=1000.0, capacity=10.0)
        bucket.delay_for(10)
        wait = bucket.delay_for(1)
        # 1 token at 1000/s = 1 ms = 1000 us.
        assert wait == pytest.approx(1000.0)

    def test_refill_over_time(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate_per_sec=1000.0, capacity=10.0)
        bucket.delay_for(10)
        sim.call_after(5000.0, lambda: None)  # 5 ms -> 5 tokens
        sim.run()
        assert bucket.tokens == pytest.approx(5.0)

    def test_throttle_process_blocks(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate_per_sec=1_000_000.0, capacity=1.0)
        times = []

        def worker():
            for _ in range(3):
                yield from bucket.throttle(1)
                times.append(sim.now)

        sim.spawn(worker())
        sim.run()
        # First op free; each next op waits 1 us at 1M tokens/s.
        assert times == pytest.approx([0.0, 1.0, 2.0])

    def test_queued_waiters_serialise(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate_per_sec=1000.0, capacity=1.0)
        waits = [bucket.delay_for(1) for _ in range(3)]
        assert waits[0] == 0.0
        assert waits[1] == pytest.approx(1000.0)
        assert waits[2] == pytest.approx(2000.0)

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            TokenBucket(sim, rate_per_sec=0, capacity=1)
        with pytest.raises(ConfigError):
            TokenBucket(sim, rate_per_sec=1, capacity=0)
        bucket = TokenBucket(sim, rate_per_sec=1, capacity=1)
        with pytest.raises(ConfigError):
            bucket.delay_for(0)


class TestChannelGroup:
    def _group(self, sim=None):
        sim, ssd = make_ssd(sim, channels=1, chips_per_channel=4, blocks=16, pages=4)
        alloc = VssdAllocator(ssd)
        # Two SW-isolated vSSDs, each owning 2 chips on the same channel.
        a = alloc.create_software_isolated("a", chips=[0, 1])
        b = alloc.create_software_isolated("b", chips=[2, 3])
        group = ChannelGroup("grp", [a, b], borrow_blocks=4)
        return sim, a, b, group

    def test_members_get_backref(self):
        _, a, b, group = self._group()
        assert a.channel_group is group and b.channel_group is group

    def test_rejects_hardware_isolated_members(self):
        sim, ssd = make_ssd()
        alloc = VssdAllocator(ssd)
        hw = alloc.create_hardware_isolated("hw", channels=[0])
        with pytest.raises(VSSDError):
            ChannelGroup("g", [hw])

    def test_rejects_mismatched_channels(self):
        sim, ssd = make_ssd(channels=2, chips_per_channel=2)
        alloc = VssdAllocator(ssd)
        a = alloc.create_software_isolated("a", chips=[0])   # channel 0
        b = alloc.create_software_isolated("b", chips=[2])   # channel 1
        with pytest.raises(VSSDError):
            ChannelGroup("g", [a, b])

    def test_group_free_ratio_aggregates(self):
        sim, a, b, group = self._group()
        assert group.free_block_ratio() == 1.0

        def burn():
            for lpn in range(a.logical_pages):
                yield sim.spawn(a.write(lpn))

        sim.spawn(burn())
        sim.run()
        # Only member a consumed blocks; the aggregate sits between the two.
        assert b.free_block_ratio() == 1.0
        assert a.free_block_ratio() < 1.0
        assert a.free_block_ratio() < group.free_block_ratio() < 1.0

    def test_rebalance_lends_to_needy_member(self):
        sim, a, b, group = self._group()

        def drain_a():
            # Rewrite the same pages so member a runs out of free blocks
            # while b stays full of them.
            for i in range(a.logical_pages * 3):
                if a.ftl.free_blocks_total() <= 1:
                    moved = group.rebalance_free_blocks()
                    assert moved > 0
                yield sim.spawn(a.write(i % a.logical_pages))

        sim.spawn(drain_a())
        sim.run()
        assert group.blocks_borrowed > 0
        assert a.ftl.borrowed_block_count >= 0

    def test_group_gc_runs_all_members_together(self):
        sim, a, b, group = self._group()

        def fill_both():
            # One full pass plus a partial rewrite: creates stale pages
            # while staying within physical capacity (no GC needed yet).
            for vssd in (a, b):
                for lpn in range(vssd.logical_pages):
                    yield sim.spawn(vssd.write(lpn))
                for lpn in range(vssd.logical_pages // 4):
                    yield sim.spawn(vssd.write(lpn))
            yield sim.spawn(group.group_gc(0.9))

        sim.spawn(fill_both())
        sim.run()
        assert group.group_gcs == 1
        assert a.gc_runs == 1 and b.gc_runs == 1

    def test_needs_group_gc_uses_aggregate(self):
        sim, a, b, group = self._group()
        assert group.needs_group_gc() is None
