"""Tests for the experiment runner, figure plumbing, and report."""

import io

import pytest

from repro.cluster import RackConfig, SystemType
from repro.errors import SimulationError
from repro.experiments import ALL_FIGURES, run_rack_experiment
from repro.experiments.figures import (
    FigureResult,
    clear_cache,
    fig22_local_wear,
    predictor_accuracy,
)
from repro.experiments.report import run_figures
from repro.experiments.runner import run_until
from repro.sim import Event, Simulator
from repro.workloads import ycsb


class TestRunUntil:
    def test_returns_when_event_fires(self):
        sim = Simulator()
        event = Event(sim)
        sim.call_after(1000.0, lambda: event.succeed())
        run_until(sim, event, chunk_us=100.0)
        assert event.triggered

    def test_raises_when_never_converging(self):
        sim = Simulator()

        def forever():
            from repro.sim import Timeout

            while True:
                yield Timeout(sim, 50.0)

        sim.spawn(forever())
        with pytest.raises(SimulationError):
            run_until(sim, Event(sim), chunk_us=1000.0, max_sim_us=10_000.0)


class TestRackResult:
    def test_summary_includes_rack_stats(self):
        config = RackConfig(system=SystemType.RACKBLOX, num_servers=3,
                            num_pairs=3, seed=5)
        result = run_rack_experiment(config, ycsb(0.5), requests_per_pair=200)
        summary = result.summary()
        assert "redirects" in summary and "gc_runs" in summary
        assert summary["read_count"] > 0

    def test_sim_duration_recorded(self):
        config = RackConfig(system=SystemType.VDC, num_servers=3, num_pairs=3,
                            seed=5)
        result = run_rack_experiment(config, ycsb(0.5), requests_per_pair=200)
        assert result.sim_duration_us > 0


class TestFigureResult:
    def _sample(self):
        return FigureResult(
            figure="Figure X", title="demo",
            columns=["a", "b"],
            rows=[{"a": "x", "b": 1.25}, {"a": "longer", "b": None}],
            notes="a note",
        )

    def test_table_rendering(self):
        table = self._sample().to_table()
        assert "Figure X: demo" in table
        assert "1.2" in table  # float formatting
        assert "-" in table    # None placeholder
        assert "note: a note" in table

    def test_series_extraction(self):
        result = self._sample()
        assert result.series("b") == [1.25, None]

    def test_all_figures_registry_complete(self):
        expected = {f"fig{n}" for n in range(9, 24)} | {"predictor"}
        assert set(ALL_FIGURES) == expected


class TestFigureFunctions:
    def test_fig22_structure(self):
        result = fig22_local_wear(num_servers=2, ssds_per_server=4, days=120)
        policies = [row["policy"] for row in result.rows]
        assert policies == ["No Swap", "RackBlox (local)"]

    def test_predictor_accuracy_structure(self):
        result = predictor_accuracy(networks=("fast",), samples=1000)
        assert len(result.rows) == 1
        assert result.rows[0]["samples"] > 0

    def test_cache_cleared(self):
        clear_cache()
        from repro.experiments.figures import _run_cache

        assert _run_cache == {}

    def test_run_figures_unknown_name(self):
        with pytest.raises(KeyError):
            run_figures(["fig99"], stream=io.StringIO())

    def test_run_figures_renders_to_stream(self):
        stream = io.StringIO()
        results = run_figures(["fig22"], quick=True, stream=stream)
        assert "Figure 22" in stream.getvalue()
        assert "fig22" in results
