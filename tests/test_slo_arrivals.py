"""Tests for SLO monitoring and bursty arrival processes."""

import random

import pytest

from repro.errors import ConfigError
from repro.metrics.slo import SloMonitor, SloTarget
from repro.workloads.arrival import DiurnalArrivals, MmppArrivals


class TestSloTarget:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SloTarget("erase", 100.0)
        with pytest.raises(ConfigError):
            SloTarget("read", 0.0)
        with pytest.raises(ConfigError):
            SloTarget("read", 100.0, quantile=0.0)


class TestSloMonitor:
    def _monitor(self):
        return SloMonitor([
            SloTarget("read", 1000.0, quantile=99.0),
            SloTarget("write", 3000.0, quantile=95.0),
        ])

    def test_full_compliance(self):
        monitor = self._monitor()
        for _ in range(100):
            monitor.record("read", 500.0)
        target = monitor.targets[0]
        assert monitor.compliance(target) == 1.0
        assert monitor.satisfied(target)
        assert monitor.violations(target) == 0

    def test_quantile_semantics(self):
        monitor = self._monitor()
        # 2% of reads over target: P99 target is missed.
        for i in range(100):
            monitor.record("read", 5000.0 if i < 2 else 100.0)
        target = monitor.targets[0]
        assert not monitor.satisfied(target)
        assert monitor.violations(target) == 2
        # But a P95-style target at the same latency would pass.
        relaxed = SloTarget("read", 1000.0, quantile=95.0)
        monitor.targets.append(relaxed)
        assert monitor.satisfied(relaxed)

    def test_burst_tracking(self):
        monitor = self._monitor()
        for latency in (100.0, 5000.0, 5000.0, 5000.0, 100.0, 5000.0):
            monitor.record("read", latency)
        assert monitor.worst_burst["read"] == 3

    def test_report_rows(self):
        monitor = self._monitor()
        monitor.record("read", 1.0)
        rows = monitor.report()
        assert len(rows) == 2
        assert all("compliance_pct" in row for row in rows)

    def test_empty_class_is_compliant(self):
        monitor = self._monitor()
        assert monitor.compliance(monitor.targets[1]) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            SloMonitor([])
        monitor = self._monitor()
        with pytest.raises(ConfigError):
            monitor.record("erase", 1.0)


class TestMmpp:
    def test_rates_validated(self):
        with pytest.raises(ConfigError):
            MmppArrivals(calm_iops=0, burst_iops=10)
        with pytest.raises(ConfigError):
            MmppArrivals(calm_iops=100, burst_iops=50)

    def test_mean_rate_between_states(self):
        process = MmppArrivals(
            calm_iops=500.0, burst_iops=10_000.0,
            mean_calm_us=200_000.0, mean_burst_us=100_000.0,
            rng=random.Random(1),
        )
        gaps = [process.next_gap_us() for _ in range(20_000)]
        observed_iops = len(gaps) / (sum(gaps) / 1e6)
        assert 500.0 < observed_iops < 10_000.0

    def test_burstier_than_poisson(self):
        # Coefficient of variation of gaps > 1 indicates burstiness.
        process = MmppArrivals(
            calm_iops=200.0, burst_iops=20_000.0,
            mean_calm_us=500_000.0, mean_burst_us=50_000.0,
            rng=random.Random(2),
        )
        gaps = [process.next_gap_us() for _ in range(20_000)]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        cov = (var ** 0.5) / mean
        assert cov > 1.2

    def test_state_flips(self):
        process = MmppArrivals(
            calm_iops=100.0, burst_iops=10_000.0,
            mean_calm_us=10_000.0, mean_burst_us=10_000.0,
            rng=random.Random(3),
        )
        states = set()
        for _ in range(2000):
            process.next_gap_us()
            states.add(process.in_burst)
        assert states == {True, False}


class TestDiurnal:
    def test_rate_swings_around_mean(self):
        process = DiurnalArrivals(mean_iops=1000.0, swing=0.5,
                                  period_us=1_000_000.0)
        quarter = 250_000.0
        assert process.rate_at(quarter) == pytest.approx(1500.0)
        assert process.rate_at(3 * quarter) == pytest.approx(500.0)

    def test_gaps_follow_phase(self):
        process = DiurnalArrivals(mean_iops=1000.0, swing=0.8,
                                  period_us=1_000_000.0,
                                  rng=random.Random(4))
        gaps = [process.next_gap_us() for _ in range(5000)]
        assert all(g > 0 for g in gaps)

    def test_validation(self):
        with pytest.raises(ConfigError):
            DiurnalArrivals(mean_iops=0)
        with pytest.raises(ConfigError):
            DiurnalArrivals(mean_iops=10, swing=1.5)
        with pytest.raises(ConfigError):
            DiurnalArrivals(mean_iops=10, period_us=0)
