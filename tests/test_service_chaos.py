"""Chaos over the live service: crash mid-load, client retry + hedging.

The acceptance scenario for the serving layer: a schedule kills a server
while a client streams requests, and a :class:`ServiceClient` configured
with timeout+retry+hedged-reads completes the whole run with zero
application-level errors -- the failure surfaces only as nonzero
``retries``/``hedged_wins`` counters.
"""

import asyncio

import pytest

from repro.chaos import FaultEvent, FaultSchedule
from repro.cluster.config import RackConfig, SystemType
from repro.service.admission import AdmissionController
from repro.service.client import ServiceClient
from repro.service.server import RackService

MS = 1000.0

pytestmark = pytest.mark.chaos


def chaos_config(schedule=None, **overrides) -> RackConfig:
    defaults = dict(
        system=SystemType("rackblox"), num_servers=2, num_pairs=2, seed=11,
        fault_schedule=schedule,
    )
    defaults.update(overrides)
    return RackConfig(**defaults)


def crash_mid_load_schedule() -> FaultSchedule:
    # A wide blind window (detection bound 12 ms sim) so plenty of
    # requests hit the dead-but-undetected primary and must hedge/retry.
    return FaultSchedule(
        events=(
            FaultEvent(10.0 * MS, "server_crash", "server:0"),
            FaultEvent(100.0 * MS, "server_recover", "server:0"),
        ),
        heartbeat_interval_us=3.0 * MS,
        miss_threshold=3,
    )


async def _start_service(config, **kwargs) -> RackService:
    service = RackService(config, port=0, **kwargs)
    await service.start()
    return service


class TestCrashMidLoad:
    @pytest.mark.slow
    def test_retry_and_hedging_mask_a_server_crash(self):
        async def scenario():
            service = await _start_service(
                chaos_config(crash_mid_load_schedule()),
                request_timeout_us=30.0 * MS,
            )
            errors = []
            try:
                client = ServiceClient(
                    "127.0.0.1", service.port,
                    max_retries=8, retry_backoff_s=0.001,
                    request_timeout_s=30.0,
                    hedge_reads=True, hedge_delay_s=0.0,
                )
                # Concurrent load matters: sim time only advances while
                # requests are in flight, so a sequential client would hold
                # exactly one op in the crash->detection blind window (its
                # hang carries sim time past detection).  A window of
                # concurrent ops keeps the blind window populated: several
                # in-flight writes must time out and retry, and reads to the
                # dead primary are rescued by their hedge to the replica.
                window = asyncio.Semaphore(8)

                async def one_op(i):
                    pair, lpn = i % 2, i % 64
                    async with window:
                        try:
                            if i % 2:
                                await client.write(pair, lpn)
                            else:
                                await client.read(pair, lpn)
                        except Exception as exc:  # the failure being tested
                            errors.append((i, repr(exc)))

                async with client:
                    await asyncio.gather(*(one_op(i) for i in range(200)))
                    stats = await client.stats()
            finally:
                await service.stop()
            return errors, stats

        errors, stats = asyncio.run(scenario())
        assert errors == [], f"ops failed through retry+hedging: {errors[:5]}"
        client_counters = stats["client"]
        assert client_counters["retries"] > 0
        assert client_counters["hedged_wins"] > 0
        # The schedule really ran on the served rack: the outage is in
        # the chaos counters the /stats endpoint now exposes.
        assert stats["chaos"]["crashes"] == 1.0
        assert stats["chaos"]["detections"] == 1.0

    def test_stats_without_schedule_has_no_chaos_section(self):
        async def scenario():
            service = await _start_service(chaos_config())
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    await c.read(0, 1)
                    return await c.stats()
            finally:
                await service.stop()

        stats = asyncio.run(scenario())
        assert "chaos" not in stats
        assert stats["client"]["retries"] == 0.0


class TestRetryPolicy:
    def test_busy_is_retried_until_admitted(self):
        async def scenario():
            service = await _start_service(
                chaos_config(),
                admission=AdmissionController(max_queue_depth=4),
            )
            try:
                client = ServiceClient(
                    "127.0.0.1", service.port,
                    max_retries=12, retry_backoff_s=0.005,
                )
                async with client:
                    results = await asyncio.gather(
                        *(client.read(i % 2, i) for i in range(24)),
                        return_exceptions=True,
                    )
            finally:
                await service.stop()
            return results, client.counters

        results, counters = asyncio.run(scenario())
        failures = [r for r in results if not isinstance(r, dict)]
        assert failures == [], failures[:3]
        assert counters["retries"] > 0

    def test_default_client_still_fails_fast(self):
        # max_retries=0 must preserve the historical contract: an
        # unconnected client raises instead of dialling on its own.
        async def scenario():
            client = ServiceClient("127.0.0.1", 1)
            try:
                await client.ping()
            except ConnectionError as exc:
                return exc
            return None

        exc = asyncio.run(scenario())
        assert isinstance(exc, ConnectionError)

    def test_hedges_fire_on_healthy_rack_without_errors(self):
        async def scenario():
            service = await _start_service(chaos_config())
            try:
                client = ServiceClient(
                    "127.0.0.1", service.port,
                    max_retries=2, hedge_reads=True, hedge_delay_s=0.0,
                )
                async with client:
                    results = await asyncio.gather(
                        *(client.read(i % 2, i) for i in range(12))
                    )
                    stats = await client.stats()
            finally:
                await service.stop()
            return results, stats

        results, stats = asyncio.run(scenario())
        assert all(r["latency_us"] > 0 for r in results)
        assert stats["client"]["hedged"] > 0

    def test_replica_reads_are_served_directly(self):
        # The wire-level escape hatch hedging uses: replica=True reads
        # address the pair's replica vSSD instead of the primary.
        async def scenario():
            service = await _start_service(chaos_config())
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    return await c.request(
                        {"type": "read", "pair": 0, "lpn": 3, "replica": True}
                    )
            finally:
                await service.stop()

        response = asyncio.run(scenario())
        assert response["ok"] and response["latency_us"] > 0
