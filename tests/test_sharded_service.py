"""End-to-end sharded serving: N racks behind one listener, over TCP.

Covers the wire contract (hello/versioning, rack-tagged responses,
schema-valid sharded stats), keyspace-wide load reaching every shard,
and the rack-qualified chaos drill: one rack dies mid-load and only that
shard's traffic retries -- the other shards' error rate stays zero and
every shard's recovery invariants stay CLEAN.
"""

import asyncio

import pytest

from repro.chaos import FaultEvent, FaultSchedule
from repro.cluster.config import RackConfig, SystemType
from repro.service import protocol, schema
from repro.service.client import ServiceClient, ServiceError
from repro.service.loadgen import run_loadgen
from repro.service.router import ShardedRackService, ShardRouter

pytestmark = pytest.mark.shard

MS = 1000.0


def base_config(schedule=None, **overrides) -> RackConfig:
    defaults = dict(
        system=SystemType("rackblox"), num_servers=2, num_pairs=2, seed=11,
        fault_schedule=schedule,
    )
    defaults.update(overrides)
    return RackConfig(**defaults)


async def start_sharded(racks, schedule=None, *, config_overrides=None,
                        **router_kwargs) -> ShardedRackService:
    router_kwargs.setdefault("precondition", False)
    router_kwargs.setdefault("chunk_us", 2000.0)
    router = ShardRouter.from_config(
        base_config(schedule, **(config_overrides or {})), racks,
        **router_kwargs,
    )
    service = ShardedRackService(router, port=0)
    await service.start()
    return service


class TestWireContract:
    def test_hello_negotiates_version_and_advertises_sharding(self):
        async def scenario():
            service = await start_sharded(racks=3)
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    return await c.hello(), c.server_info
            finally:
                await service.stop()

        hello, cached = asyncio.run(scenario())
        assert hello["v"] == protocol.PROTOCOL_VERSION
        assert hello["racks"] == 3
        assert "sharded" in hello["capabilities"]
        assert cached is hello  # the client remembers the handshake

    def test_future_version_rejected_with_typed_error(self):
        async def scenario():
            service = await start_sharded(racks=2)
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    try:
                        await c.request({"type": "ping", "v": 99})
                    except ServiceError as exc:
                        return exc
            finally:
                await service.stop()

        exc = asyncio.run(scenario())
        assert exc.code == protocol.UNSUPPORTED_VERSION
        assert f"v{protocol.PROTOCOL_VERSION}" in exc.message
        assert "99" in exc.message

    def test_responses_carry_their_rack(self):
        async def scenario():
            service = await start_sharded(racks=3)
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    writes = [await c.write(g, 1) for g in range(6)]
                    scan_seed = await c.put("k1", "v1")
                    scan = await c.scan("", count=5)
                    return writes, scan_seed, scan
            finally:
                await service.stop()

        writes, scan_seed, scan = asyncio.run(scenario())
        racks_seen = {w["rack"] for w in writes}
        assert racks_seen == {0, 1, 2}  # 6 global pairs cover all racks
        assert scan_seed["rack"] in (0, 1, 2)
        assert scan["racks"] == 3  # scatter-gather touched every shard

    def test_stats_follow_the_sharded_schema(self):
        async def scenario():
            service = await start_sharded(racks=3)
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    for g in range(6):
                        await c.write(g, 1)
                    return await c.stats()
            finally:
                await service.stop()

        stats = asyncio.run(scenario())
        schema.validate_stats(stats, client=True)
        assert schema.is_sharded(stats)
        assert schema.shard_ids(stats) == [0, 1, 2]
        assert stats["router"]["racks"] == 3.0
        assert stats["bridge"]["completed"] == 6.0
        per_shard = [s["bridge"]["submitted"]
                     for s in stats["shards"].values()]
        assert sum(per_shard) == 6.0 and all(n > 0 for n in per_shard)

    def test_single_rack_service_is_not_sharded(self):
        # --racks 1 must stay byte-identical to the unsharded service:
        # same schema, no router/shards sections.
        async def scenario():
            service = await start_sharded(racks=1)
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    hello = await c.hello()
                    await c.write(0, 1)
                    return hello, await c.stats()
            finally:
                await service.stop()

        hello, stats = asyncio.run(scenario())
        assert hello["racks"] == 1
        schema.validate_stats(stats, client=True)

    def test_bad_requests_reject_like_a_single_rack(self):
        async def scenario():
            service = await start_sharded(racks=2)
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    codes = []
                    for bad in (
                        {"type": "frobnicate"},
                        {"type": "read", "lpn": 1},          # no pair
                        {"type": "read", "pair": 99, "lpn": 1},  # off the end
                        {"type": "get"},                     # no key
                    ):
                        try:
                            await c.request(bad)
                        except ServiceError as exc:
                            codes.append(exc.code)
                    return codes
            finally:
                await service.stop()

        assert asyncio.run(scenario()) == [protocol.BAD_REQUEST] * 4


class TestKeyspaceCoverage:
    @pytest.mark.slow
    def test_loadgen_keyspace_reaches_every_shard(self):
        # Satellite #4: a keyspace-wide kv load against a 4-shard
        # service must exercise all four shards (the ring spreads
        # "key:k........" labels), visible in the per-shard kvstore
        # counters of the sharded stats payload.
        async def scenario():
            service = await start_sharded(racks=4)
            try:
                return await run_loadgen(
                    "127.0.0.1", service.port, clients=4,
                    requests_per_client=40, kind="kv", keyspace=512,
                    write_ratio=0.5, seed=7,
                )
            finally:
                await service.stop()

        report = asyncio.run(scenario())
        assert report.errors == 0 and report.ok == 160
        stats = report.server_stats
        schema.validate_stats(stats)
        assert schema.shard_ids(stats) == [0, 1, 2, 3]
        for shard_id, section in stats["shards"].items():
            kv = section["kvstore"]
            assert kv["gets"] + kv["puts"] > 0, f"shard {shard_id} idle"
        # The aggregate equals the sum of the slices.
        assert stats["kvstore"]["puts"] == sum(
            s["kvstore"]["puts"] for s in stats["shards"].values()
        )


def rack1_crash_schedule() -> FaultSchedule:
    """Kill rack 1's server:0 mid-load; other racks get no events."""
    return FaultSchedule(
        events=(
            FaultEvent(10.0 * MS, "server_crash", "server:0", rack=1),
            FaultEvent(100.0 * MS, "server_recover", "server:0", rack=1),
        ),
        heartbeat_interval_us=3.0 * MS,
        miss_threshold=3,
    )


@pytest.mark.chaos
class TestRackQualifiedChaos:
    @pytest.mark.slow
    def test_one_rack_dies_and_only_that_shard_retries(self):
        # The acceptance drill: a rack-qualified crash window, load
        # spread over every shard, clients armed with retry+hedging.
        # The blast radius must be shard 1 alone.
        async def scenario():
            service = await start_sharded(
                racks=3, schedule=rack1_crash_schedule(),
                request_timeout_us=30.0 * MS,
            )
            errors = []
            try:
                client = ServiceClient(
                    "127.0.0.1", service.port,
                    max_retries=8, retry_backoff_s=0.001,
                    request_timeout_s=30.0,
                    hedge_reads=True, hedge_delay_s=0.0,
                )
                window = asyncio.Semaphore(8)

                async def one_op(i):
                    pair, lpn = i % 6, i % 64
                    async with window:
                        try:
                            if i % 2:
                                await client.write(pair, lpn)
                            else:
                                await client.read(pair, lpn)
                        except Exception as exc:
                            errors.append((i, repr(exc)))

                async with client:
                    await asyncio.gather(*(one_op(i) for i in range(240)))
                    stats = await client.stats()
            finally:
                await service.stop()
            return errors, stats

        errors, stats = asyncio.run(scenario())
        assert errors == [], f"ops failed through retry+hedging: {errors[:5]}"
        schema.validate_stats(stats, client=True)
        # The outage really happened -- on rack 1 and nowhere else.
        shards = stats["shards"]
        assert shards["1"]["chaos"]["crashes"] == 1.0
        assert shards["1"]["chaos"]["detections"] == 1.0
        assert stats["client"]["retries"] > 0
        # Blast radius: the healthy shards saw zero failures of any
        # kind -- no crash, no timeout, no shedding.
        for healthy in ("0", "2"):
            assert shards[healthy]["chaos"]["crashes"] == 0.0
            assert shards[healthy]["bridge"]["timed_out"] == 0.0
            assert shards[healthy]["admission"]["shed_queue_full"] == 0.0
        # Recovery invariants stay CLEAN on every shard, including the
        # one that crashed.
        for shard_id, section in shards.items():
            assert section["chaos"]["invariant_violations"] == 0.0, shard_id
            assert section["chaos"]["lost_acked_writes"] == 0.0, shard_id

    def test_rack_qualified_events_do_not_leak(self):
        # A schedule aimed at rack 1 must arm (empty) injectors on the
        # other racks: chaos sections present, zero events executed.
        async def scenario():
            service = await start_sharded(
                racks=3, schedule=rack1_crash_schedule(),
            )
            try:
                async with ServiceClient("127.0.0.1", service.port) as c:
                    await c.write(0, 1)
                    return await c.stats()
            finally:
                await service.stop()

        stats = asyncio.run(scenario())
        for shard_id in ("0", "2"):
            chaos = stats["shards"][shard_id].get("chaos")
            assert chaos is None or chaos["crashes"] == 0.0, shard_id
