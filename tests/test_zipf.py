"""The seeded zipfian key sampler behind ``loadgen --key-dist zipf``.

The sampler's whole job is to make hot-key skew *reproducible*: same
seed, same draw sequence, and an empirical rank histogram that tracks
the exact ``1/(rank+1)^s`` probabilities it advertises.  The uniform
path must stay ``None`` -- the generator's own ``randrange`` remains
the source, so pre-existing seeded workloads replay byte-identically.
"""

import collections
import math
import random

import pytest

from repro.errors import ConfigError
from repro.service.loadgen import ZipfSampler, make_key_sampler, _make_op

pytestmark = [pytest.mark.routing]

DRAWS = 20_000


class TestShape:
    def test_probabilities_are_normalised_and_monotone(self):
        sampler = ZipfSampler(100, 1.1, random.Random(1))
        probs = [sampler.probability(rank) for rank in range(100)]
        assert math.isclose(sum(probs), 1.0, rel_tol=1e-12)
        assert all(a > b for a, b in zip(probs, probs[1:]))
        # Rank 0 carries the exact harmonic head weight.
        total = sum(1.0 / (r + 1) ** 1.1 for r in range(100))
        assert math.isclose(probs[0], 1.0 / total, rel_tol=1e-12)

    def test_empirical_frequency_tracks_the_advertised_shape(self):
        sampler = ZipfSampler(50, 1.2, random.Random(42))
        counts = collections.Counter(sampler.sample() for _ in range(DRAWS))
        assert set(counts) <= set(range(50))
        # The head ranks have enough mass for a tight check; the tail
        # only has to be a tail.
        for rank in range(5):
            expected = sampler.probability(rank) * DRAWS
            assert abs(counts[rank] - expected) < 5 * math.sqrt(expected), \
                rank
        assert counts[0] > counts[10] > counts[40]
        head = sum(counts[r] for r in range(5)) / DRAWS
        assert head > 0.5  # s=1.2 concentrates the top-5 past half

    def test_steeper_exponent_concentrates_harder(self):
        flat = ZipfSampler(100, 0.5, random.Random(7))
        steep = ZipfSampler(100, 2.0, random.Random(7))
        assert steep.probability(0) > flat.probability(0)
        assert steep.probability(99) < flat.probability(99)

    def test_same_seed_same_draws(self):
        a = ZipfSampler(64, 1.1, random.Random(99))
        b = ZipfSampler(64, 1.1, random.Random(99))
        assert [a.sample() for _ in range(200)] == \
            [b.sample() for _ in range(200)]

    def test_population_of_one_always_draws_rank_zero(self):
        sampler = ZipfSampler(1, 1.1, random.Random(3))
        assert {sampler.sample() for _ in range(50)} == {0}
        assert sampler.probability(0) == 1.0


class TestFactory:
    def test_uniform_returns_none_so_legacy_streams_replay(self):
        assert make_key_sampler("uniform", 1.1, 100, random.Random(1)) is None

    def test_zipf_returns_a_sampler(self):
        sampler = make_key_sampler("zipf", 1.5, 32, random.Random(1))
        assert isinstance(sampler, ZipfSampler)
        assert sampler.n == 32 and sampler.s == 1.5

    def test_unknown_dist_is_a_config_error(self):
        with pytest.raises(ConfigError, match="key_dist"):
            make_key_sampler("pareto", 1.1, 100, random.Random(1))

    def test_bad_population_and_exponent_are_config_errors(self):
        with pytest.raises(ConfigError, match="population"):
            ZipfSampler(0, 1.1, random.Random(1))
        with pytest.raises(ConfigError, match="exponent"):
            ZipfSampler(10, 0.0, random.Random(1))


class TestOpGeneration:
    def test_uniform_op_stream_is_unchanged_by_the_sampler_plumbing(self):
        # sampler=None must reproduce the exact pre-zipf draw sequence:
        # same rng, same calls, same ops.
        ops_a = [_make_op(random.Random(5), 0.3, "kv", 8, 100)
                 for _ in range(1)]
        rng = random.Random(5)
        ops_b = [_make_op(rng, 0.3, "kv", 8, 100, sampler=None)]
        assert ops_a == ops_b

    def test_zipf_kv_ops_hammer_the_head_keys(self):
        rng = random.Random(11)
        sampler = ZipfSampler(1000, 1.3, rng)
        keys = collections.Counter(
            _make_op(rng, 0.0, "kv", 8, 1000, sampler=sampler)["key"]
            for _ in range(2000)
        )
        assert keys.most_common(1)[0][0] == "k00000000"

    def test_zipf_raw_ops_hammer_pair_zero(self):
        rng = random.Random(12)
        sampler = ZipfSampler(8, 1.3, rng)
        pairs = collections.Counter(
            _make_op(rng, 0.0, "raw", 8, 64, sampler=sampler)["pair"]
            for _ in range(2000)
        )
        assert pairs.most_common(1)[0][0] == 0
        assert set(pairs) <= set(range(8))
