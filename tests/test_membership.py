"""The fleet-membership control plane, in isolation.

:class:`FleetController` is pure routing policy -- no sockets, no
simulator -- so every invariant the live drills depend on is pinned
here first, cheaply:

* one membership change at a time; ``commit`` is the single atomic
  ring+epoch flip; ``abort`` leaves the old ring ruling;
* writes always hit the old owner first (abort-safety), reads go
  new-owner-first with an old-owner fallback -- unless the plan is
  tainted by an earlier aborted attempt, in which case reads pin old;
* the forwarded-key set keeps the stream from clobbering dual-written
  keys, and the stream-put barrier orders a concurrent forward *after*
  the stream's copy;
* :class:`MigrationStream` moves exactly the plan's keys (paginated,
  throttled), reports what it moved, and surfaces endpoint failures
  with the partial tally attached.
"""

import asyncio

import pytest

from repro.errors import ReproError
from repro.service.membership import (
    FleetController,
    MembershipBusy,
    MembershipError,
)
from repro.service.migration import MigrationStream, MigrationStreamError
from repro.service.schema import MIGRATION_FIELDS
from repro.service.shard import HashRing

pytestmark = pytest.mark.fleet

KEYS = [f"k{i:05d}" for i in range(400)]


def controller(racks=2):
    return FleetController(HashRing(range(racks)))


def moving_keys(plan):
    return [k for k in KEYS if plan.moving_range_for_key(k) is not None]


class TestLifecycle:
    def test_one_change_at_a_time(self):
        fleet = controller()
        fleet.begin_add(2)
        with pytest.raises(MembershipBusy):
            fleet.begin_add(3)
        with pytest.raises(MembershipBusy):
            fleet.begin_drain(0)

    def test_add_rejects_member_drain_rejects_stranger(self):
        fleet = controller()
        with pytest.raises(MembershipError):
            fleet.begin_add(1)
        with pytest.raises(MembershipError):
            fleet.begin_drain(7)

    def test_cannot_drain_the_last_rack(self):
        fleet = controller(racks=1)
        with pytest.raises(MembershipError):
            fleet.begin_drain(0)

    def test_commit_flips_ring_and_epoch_atomically(self):
        fleet = controller()
        plan = fleet.begin_add(2)
        assert fleet.ring.nodes == [0, 1]      # old ring rules until commit
        assert fleet.epoch == 0
        epoch = fleet.commit()
        assert epoch == fleet.epoch == 1
        assert fleet.ring is plan.new_ring
        assert fleet.ring.nodes == [0, 1, 2]
        assert not fleet.migrating
        assert fleet.counters["racks_added"] == 1

    def test_abort_keeps_the_old_ring(self):
        fleet = controller()
        fleet.begin_add(2)
        fleet.abort()
        assert fleet.ring.nodes == [0, 1]
        assert fleet.epoch == 0
        assert not fleet.migrating
        assert fleet.counters["aborts"] == 1
        # The fleet is exactly as before: the same add can start over.
        fleet.begin_add(2)

    def test_commit_without_plan_rejected(self):
        with pytest.raises(MembershipError):
            controller().commit()
        with pytest.raises(MembershipError):
            controller().retry()

    def test_retry_taints_and_renumbers(self):
        fleet = controller()
        plan = fleet.begin_add(2)
        fleet.note_forwarded("k1")
        same = fleet.retry()
        assert same is plan
        assert plan.attempt == 2 and plan.tainted
        assert not fleet.is_forwarded("k1")     # forwards reset per attempt
        assert fleet.counters["aborts"] == 1


class TestRouting:
    def test_static_fleet_routes_to_the_ring_owner(self):
        fleet = controller()
        for key in KEYS:
            owner = fleet.ring.node_for(f"key:{key}")
            assert fleet.read_route(key) == (owner, None)
            assert fleet.write_route(key) == (owner, None)
            assert fleet.read_owner(key) == owner

    def test_writes_old_first_reads_new_first_in_the_window(self):
        fleet = controller()
        plan = fleet.begin_add(2)
        moved = moving_keys(plan)
        assert moved, "the diff must move some test keys"
        for key in moved:
            rng = plan.moving_range_for_key(key)
            assert rng.dst == 2
            assert fleet.write_route(key) == (rng.src, 2)
            assert fleet.read_route(key) == (2, rng.src)
            # The old owner stays authoritative until the cutover.
            assert fleet.read_owner(key) == rng.src
        for key in set(KEYS) - set(moved):
            owner = fleet.ring.node_for(f"key:{key}")
            assert fleet.write_route(key) == (owner, None)
            assert fleet.read_route(key) == (owner, None)

    def test_tainted_plan_pins_reads_to_the_old_owner(self):
        fleet = controller()
        plan = fleet.begin_add(2)
        fleet.retry()
        key = moving_keys(plan)[0]
        rng = plan.moving_range_for_key(key)
        assert fleet.read_route(key) == (rng.src, None)
        # ...except keys re-forwarded since: provably fresh at the dst.
        fleet.note_forwarded(key)
        assert fleet.read_route(key) == (2, rng.src)

    def test_routes_take_raw_keys_not_ring_labels(self):
        # Regression guard for the label convention: the controller owns
        # the "key:" prefixing, callers pass kv keys verbatim.
        fleet = controller()
        plan = fleet.begin_add(2)
        key = moving_keys(plan)[0]
        assert plan.moving_range_for_key(f"key:{key}") is None or \
            plan.moving_range_for_key(f"key:{key}") is not \
            plan.moving_range_for_key(key)
        assert fleet.read_owner(key) == plan.moving_range_for_key(key).src

    def test_cutover_retargets_every_moved_key(self):
        fleet = controller()
        plan = fleet.begin_add(2)
        moved = moving_keys(plan)
        fleet.commit()
        for key in moved:
            assert fleet.read_route(key) == (2, None)
            assert fleet.write_route(key) == (2, None)
            assert fleet.read_owner(key) == 2


class TestTaintLifecycle:
    def test_aborted_drain_taints_the_node_persistently(self):
        fleet = controller(racks=3)
        fleet.begin_drain(2)
        fleet.abort()
        plan = fleet.begin_drain(2)
        assert plan.tainted, "survivor shards may hold stale shadows"

    def test_committed_drain_clears_the_taint(self):
        fleet = controller(racks=3)
        fleet.begin_drain(2)
        fleet.abort()
        fleet.begin_drain(2)
        fleet.commit()
        fleet.begin_add(2)
        fleet.commit()
        assert not fleet.begin_drain(2).tainted

    def test_aborted_add_does_not_taint_across_calls(self):
        # A failed add tears the joining shard down, so a later attempt
        # streams into a *fresh* destination.
        fleet = controller()
        fleet.begin_add(2)
        fleet.abort()
        assert not fleet.begin_add(2).tainted


class TestStreamPutBarrier:
    def test_forward_waits_out_an_inflight_stream_put(self):
        async def scenario():
            fleet = controller()
            token = fleet.stream_put_begin("k1")
            waiter = asyncio.ensure_future(fleet.await_stream_put("k1"))
            await asyncio.sleep(0)
            assert not waiter.done(), "forward must block while streaming"
            fleet.stream_put_end("k1", token)
            await asyncio.wait_for(waiter, 1.0)
            # No in-flight put -> no wait at all.
            await asyncio.wait_for(fleet.await_stream_put("k2"), 1.0)

        asyncio.run(scenario())


class TestReporting:
    def test_status_shape(self):
        fleet = controller()
        status = fleet.status()
        assert status["epoch"] == 0 and status["racks"] == [0, 1]
        assert status["migrating"] is False and status["phase"] == "idle"
        fleet.begin_add(2)
        status = fleet.status()
        assert status["migrating"] is True and status["phase"] == "streaming"
        change = status["change"]
        assert change["kind"] == "add" and change["rack"] == 2
        assert 0 < change["moved_fraction"] < 1

    def test_stats_section_matches_the_schema_fields(self):
        section = controller().stats_section()
        assert sorted(section) == sorted(MIGRATION_FIELDS)
        assert all(isinstance(v, float) for v in section.values())


class FakeShards:
    """Dict-backed shard fleet exposing the stream's endpoint surface."""

    def __init__(self, fleet, racks=2):
        self.data = {n: {} for n in range(racks)}
        self.fleet = fleet
        self.put_log = []
        self.fail_puts = 0

    def seed(self, keys):
        for key in keys:
            src = self.fleet.ring.node_for(f"key:{key}")
            self.data[src][key] = f"v-{key}"

    async def scan(self, src, start, count):
        items = sorted((k, v) for k, v in self.data[src].items()
                       if k >= start)
        return items[:count]

    async def put(self, dst, key, value):
        if self.fail_puts > 0:
            self.fail_puts -= 1
            raise ConnectionError("injected put failure")
        self.put_log.append((dst, key))
        self.data.setdefault(dst, {})[key] = value

    async def delete(self, src, key):
        self.data[src].pop(key, None)


class TestMigrationStream:
    def run_stream(self, fleet, plan, shards, **kwargs):
        stream = MigrationStream(fleet, plan, scan=shards.scan,
                                 put=shards.put, delete=shards.delete,
                                 **kwargs)
        return stream, asyncio.run(stream.run())

    def test_moves_exactly_the_moving_keys(self):
        fleet = controller()
        shards = FakeShards(fleet)
        shards.seed(KEYS)
        plan = fleet.begin_add(2)
        shards.data[2] = {}
        stream, report = self.run_stream(fleet, plan, shards, batch_size=7,
                                         pause_s=0.0)
        moved = moving_keys(plan)
        assert report.keys_moved == len(moved)
        assert sorted(shards.data[2]) == sorted(moved)
        assert all(dst == 2 for dst, _ in shards.put_log)
        assert shards.data[2][moved[0]] == f"v-{moved[0]}"
        assert report.batches >= len(moved) // 7
        assert fleet.counters["keys_moved"] == len(moved)
        # Cleanup erases the sources' shadow copies, nothing else.
        deleted = asyncio.run(stream.cleanup(report))
        assert deleted == len(moved)
        for key in moved:
            src = plan.moving_range_for_key(key).src
            assert key not in shards.data[src]
        survivors = set(KEYS) - set(moved)
        assert survivors <= set(shards.data[0]) | set(shards.data[1])

    def test_empty_source_is_a_clean_noop(self):
        fleet = controller()
        shards = FakeShards(fleet)          # nothing seeded
        plan = fleet.begin_add(2)
        shards.data[2] = {}
        _, report = self.run_stream(fleet, plan, shards)
        assert report.keys_moved == 0 and report.moved == []
        assert report.sources_drained == len({r.src for r in plan.ranges})

    def test_forwarded_keys_are_never_clobbered(self):
        fleet = controller()
        shards = FakeShards(fleet)
        shards.seed(KEYS)
        plan = fleet.begin_add(2)
        shards.data[2] = {}
        fresh = moving_keys(plan)[0]
        fleet.note_forwarded(fresh)
        shards.data[2][fresh] = "forwarded-fresh-value"
        _, report = self.run_stream(fleet, plan, shards)
        assert shards.data[2][fresh] == "forwarded-fresh-value"
        assert report.skipped_forwarded >= 1
        assert fresh not in [k for _, k in report.moved]

    def test_endpoint_failure_surfaces_with_partial_tally(self):
        fleet = controller()
        shards = FakeShards(fleet)
        shards.seed(KEYS)
        plan = fleet.begin_add(2)
        shards.data[2] = {}
        moved_total = len(moving_keys(plan))
        shards.fail_puts = 1
        stream = MigrationStream(fleet, plan, scan=shards.scan,
                                 put=shards.put, batch_size=4, pause_s=0.0)
        with pytest.raises(MigrationStreamError) as info:
            asyncio.run(stream.run())
        assert info.value.report.keys_moved < moved_total
        assert "ConnectionError" in str(info.value)

    def test_bad_batch_size_rejected(self):
        fleet = controller()
        plan = fleet.begin_add(2)
        with pytest.raises(ReproError):
            MigrationStream(fleet, plan, scan=None, put=None, batch_size=0)
