"""Tests for the MMPP-driven workload generator adapter."""

import random

import pytest

from repro.errors import ConfigError
from repro.workloads import MmppArrivals, ycsb
from repro.workloads.arrival import BurstyWorkloadGenerator


def make_generator(seed=1):
    arrivals = MmppArrivals(
        calm_iops=500.0, burst_iops=5_000.0,
        mean_calm_us=100_000.0, mean_burst_us=20_000.0,
        rng=random.Random(seed),
    )
    return BurstyWorkloadGenerator(
        ycsb(0.4), key_space=256, arrivals=arrivals, rng=random.Random(seed)
    )


class TestBurstyGenerator:
    def test_produces_requested_count(self):
        generator = make_generator()
        assert len(list(generator.requests(300))) == 300

    def test_mix_matches_spec(self):
        generator = make_generator()
        requests = list(generator.requests(3000))
        writes = sum(1 for r in requests if r.kind == "write")
        assert writes / len(requests) == pytest.approx(0.4, abs=0.04)

    def test_keys_in_range(self):
        generator = make_generator()
        assert all(0 <= r.lpn < 256 for r in generator.requests(500))

    def test_gaps_are_bursty(self):
        generator = make_generator()
        gaps = [r.gap_us for r in generator.requests(5000)]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        assert (var ** 0.5) / mean > 1.1  # burstier than Poisson

    def test_negative_count_rejected(self):
        generator = make_generator()
        with pytest.raises(ConfigError):
            list(generator.requests(-1))
