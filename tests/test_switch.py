"""Tests for the ToR switch: tables, Algorithm 1 data plane, control plane."""

import pytest

from repro.errors import SwitchError
from repro.net.packet import GcKind, OpType, Packet, create_vssd, del_vssd, gc_op
from repro.switch import (
    DestinationTable,
    ForwardAction,
    ReplicaTable,
    ReplyAction,
    SwitchControlPlane,
    SwitchDataPlane,
)


def make_plane():
    """A data plane with two vSSDs that are replicas of each other."""
    plane = SwitchDataPlane()
    cp = SwitchControlPlane(plane)
    cp.register_vssd(1, "10.0.0.16", 2, "10.0.0.20")
    cp.register_vssd(2, "10.0.0.20", 1, "10.0.0.16")
    return plane, cp


class TestTables:
    def test_replica_table_roundtrip(self):
        table = ReplicaTable()
        table.insert(7, replica_vssd_id=8)
        assert table.gc_status(7) == 0
        assert table.replica_of(7) == 8
        table.set_gc_status(7, 1)
        assert table.gc_status(7) == 1

    def test_destination_table_roundtrip(self):
        table = DestinationTable()
        table.insert(7, "10.0.0.5")
        assert table.server_ip(7) == "10.0.0.5"
        assert table.gc_status(7) == 0

    def test_missing_entry_raises(self):
        table = ReplicaTable()
        with pytest.raises(SwitchError):
            table.gc_status(1)
        with pytest.raises(SwitchError):
            table.set_gc_status(1, 1)
        with pytest.raises(SwitchError):
            table.remove(1)

    def test_gc_status_is_one_bit(self):
        table = ReplicaTable()
        table.insert(1, 2)
        with pytest.raises(SwitchError):
            table.set_gc_status(1, 2)

    def test_capacity_enforced(self):
        table = ReplicaTable(capacity=2)
        table.insert(1, 2)
        table.insert(2, 1)
        with pytest.raises(SwitchError):
            table.insert(3, 4)

    def test_sram_footprint_within_paper_budget(self):
        # 64K vSSDs must fit in ~1.3 MB per table (§3.3).
        from repro.switch.tables import MAX_VSSDS_PER_RACK

        table = DestinationTable()
        per_entry = 4 + table.entry_bytes
        assert MAX_VSSDS_PER_RACK * per_entry <= 1.3 * 1024 * 1024

    def test_len_and_contains(self):
        table = ReplicaTable()
        table.insert(5, 6)
        assert len(table) == 1 and 5 in table and 6 not in table


class TestReadPath:
    def test_read_forwarded_when_idle(self):
        plane, _ = make_plane()
        pkt = Packet(op=OpType.READ, vssd_id=1)
        action = plane.process_packet(pkt)
        assert isinstance(action, ForwardAction)
        assert action.dst_ip == "10.0.0.16"
        assert not action.redirected
        assert plane.reads_forwarded == 1

    def test_read_redirected_during_gc(self):
        plane, _ = make_plane()
        plane.process_packet(gc_op(1, GcKind.REGULAR, src="10.0.0.16"))
        pkt = Packet(op=OpType.READ, vssd_id=1)
        action = plane.process_packet(pkt)
        assert action.redirected
        assert action.dst_ip == "10.0.0.20"  # replica's server
        assert action.packet.vssd_id == 2    # rewritten to replica vSSD
        assert plane.reads_redirected == 1

    def test_read_not_redirected_when_both_collecting(self):
        plane, _ = make_plane()
        plane.process_packet(gc_op(1, GcKind.REGULAR, src="10.0.0.16"))
        plane.process_packet(gc_op(2, GcKind.REGULAR, src="10.0.0.20"))
        action = plane.process_packet(Packet(op=OpType.READ, vssd_id=1))
        assert not action.redirected
        assert action.dst_ip == "10.0.0.16"

    def test_read_unregistered_vssd_rejected(self):
        plane, _ = make_plane()
        with pytest.raises(SwitchError):
            plane.process_packet(Packet(op=OpType.READ, vssd_id=99))


class TestWritePath:
    def test_writes_never_redirected(self):
        plane, _ = make_plane()
        plane.process_packet(gc_op(1, GcKind.REGULAR, src="10.0.0.16"))
        action = plane.process_packet(Packet(op=OpType.WRITE, vssd_id=1))
        assert isinstance(action, ForwardAction)
        assert action.dst_ip == "10.0.0.16"
        assert not action.redirected
        assert plane.writes_forwarded == 1


class TestGcAdmission:
    def test_regular_gc_always_accepted(self):
        plane, _ = make_plane()
        # Even with the replica collecting, regular GC is accepted.
        plane.process_packet(gc_op(2, GcKind.REGULAR, src="10.0.0.20"))
        action = plane.process_packet(gc_op(1, GcKind.REGULAR, src="10.0.0.16"))
        assert isinstance(action, ReplyAction)
        assert action.packet.gc_kind is GcKind.ACCEPT
        assert action.dst_ip == "10.0.0.16"  # reply to the sender
        assert plane.replica_table.gc_status(1) == 1
        assert plane.destination_table.gc_status(1) == 1

    def test_soft_gc_accepted_when_replica_idle(self):
        plane, _ = make_plane()
        action = plane.process_packet(gc_op(1, GcKind.SOFT, src="10.0.0.16"))
        assert action.packet.gc_kind is GcKind.ACCEPT
        assert plane.replica_table.gc_status(1) == 1
        assert plane.destination_table.gc_status(1) == 1
        assert plane.recirculations == 1

    def test_soft_gc_delayed_when_replica_collecting(self):
        plane, _ = make_plane()
        plane.process_packet(gc_op(2, GcKind.REGULAR, src="10.0.0.20"))
        action = plane.process_packet(gc_op(1, GcKind.SOFT, src="10.0.0.16"))
        assert action.packet.gc_kind is GcKind.DELAY
        # The vSSD's GC bit is rolled back: it is *not* collecting.
        assert plane.replica_table.gc_status(1) == 0
        assert plane.destination_table.gc_status(1) == 0
        assert plane.gc_delayed == 1

    def test_tables_stay_consistent_after_soft_path(self):
        # The recirculation exists to keep the two GC bits consistent;
        # verify they agree after every admission outcome.
        plane, _ = make_plane()
        for kind in (GcKind.SOFT, GcKind.REGULAR, GcKind.FINISH, GcKind.SOFT):
            plane.process_packet(gc_op(1, kind, src="10.0.0.16"))
            assert plane.replica_table.gc_status(1) == plane.destination_table.gc_status(1)

    def test_bg_gc_recorded_without_approval(self):
        plane, _ = make_plane()
        action = plane.process_packet(gc_op(1, GcKind.BG, src="10.0.0.16"))
        assert action.packet.gc_kind is GcKind.ACCEPT
        assert plane.destination_table.gc_status(1) == 1

    def test_finish_clears_both_tables(self):
        plane, _ = make_plane()
        plane.process_packet(gc_op(1, GcKind.REGULAR, src="10.0.0.16"))
        plane.process_packet(gc_op(1, GcKind.FINISH, src="10.0.0.16"))
        assert plane.replica_table.gc_status(1) == 0
        assert plane.destination_table.gc_status(1) == 0
        assert plane.gc_finished == 1

    def test_gc_op_missing_gc_field_rejected(self):
        plane, _ = make_plane()
        with pytest.raises(SwitchError):
            plane.process_packet(Packet(op=OpType.GC_OP, vssd_id=1))

    def test_server_cannot_send_accept_or_delay(self):
        plane, _ = make_plane()
        with pytest.raises(SwitchError):
            plane.process_packet(gc_op(1, GcKind.ACCEPT, src="10.0.0.16"))

    def test_soft_costs_one_recirculation(self):
        plane, _ = make_plane()
        assert plane.gc_op_delay_us(GcKind.SOFT) == pytest.approx(
            2 * plane.PIPELINE_PASS_US
        )
        assert plane.gc_op_delay_us(GcKind.REGULAR) == pytest.approx(
            plane.PIPELINE_PASS_US
        )

    def test_full_gc_cycle_enables_then_disables_redirection(self):
        plane, _ = make_plane()
        # Accept GC on vSSD 1 -> reads redirect to 2.
        plane.process_packet(gc_op(1, GcKind.SOFT, src="10.0.0.16"))
        action = plane.process_packet(Packet(op=OpType.READ, vssd_id=1))
        assert action.redirected
        # Finish -> reads go back to vSSD 1.
        plane.process_packet(gc_op(1, GcKind.FINISH, src="10.0.0.16"))
        action = plane.process_packet(Packet(op=OpType.READ, vssd_id=1))
        assert not action.redirected


class TestControlPlane:
    def test_create_via_packet(self):
        plane = SwitchDataPlane()
        cp = SwitchControlPlane(plane)
        cp.handle_packet(create_vssd(5, "10.0.0.1", 6, "10.0.0.2"))
        assert 5 in plane.replica_table
        assert plane.destination_table.server_ip(5) == "10.0.0.1"
        assert plane.destination_table.server_ip(6) == "10.0.0.2"

    def test_delete_via_packet(self):
        plane = SwitchDataPlane()
        cp = SwitchControlPlane(plane)
        cp.handle_packet(create_vssd(5, "10.0.0.1", 6, "10.0.0.2"))
        cp.handle_packet(del_vssd(5, "10.0.0.1"))
        assert 5 not in plane.replica_table

    def test_double_registration_rejected(self):
        _, cp = make_plane()
        with pytest.raises(SwitchError):
            cp.register_vssd(1, "10.0.0.16", 2, "10.0.0.20")

    def test_delete_unknown_rejected(self):
        _, cp = make_plane()
        with pytest.raises(SwitchError):
            cp.deregister_vssd(42)

    def test_create_payload_validated(self):
        plane = SwitchDataPlane()
        cp = SwitchControlPlane(plane)
        bad = Packet(op=OpType.CREATE_VSSD, vssd_id=1, payload={"server_ip": "x"})
        with pytest.raises(SwitchError):
            cp.handle_packet(bad)

    def test_dataplane_refuses_control_packets(self):
        plane, _ = make_plane()
        with pytest.raises(SwitchError):
            plane.process_packet(create_vssd(9, "a", 10, "b"))

    def test_repopulate_after_switch_recovery(self):
        _, cp = make_plane()
        fresh = SwitchDataPlane()
        cp.repopulate(fresh)
        # GC states reinitialised to 0, forwarding intact.
        assert fresh.replica_table.gc_status(1) == 0
        assert fresh.destination_table.server_ip(1) == "10.0.0.16"
        action = fresh.process_packet(Packet(op=OpType.READ, vssd_id=1))
        assert action.dst_ip == "10.0.0.16"

    def test_registered_listing(self):
        _, cp = make_plane()
        assert cp.registered_vssds() == [1, 2]
