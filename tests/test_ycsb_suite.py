"""Tests for the named YCSB core workloads."""

import random

import pytest

from repro.errors import ConfigError
from repro.workloads.ycsb_suite import (
    YCSB_A,
    YCSB_B,
    YCSB_C,
    YCSB_D,
    YCSB_F,
    YCSB_SUITE,
    YcsbGenerator,
    YcsbWorkload,
)


def gen(workload, seed=1, key_space=1000, rate=1000.0):
    return YcsbGenerator(workload, key_space=key_space, rate_iops=rate,
                         rng=random.Random(seed))


class TestWorkloadDefinitions:
    def test_suite_members(self):
        assert set(YCSB_SUITE) == {"ycsb-a", "ycsb-b", "ycsb-c", "ycsb-d",
                                   "ycsb-f"}

    def test_canonical_mixes(self):
        assert YCSB_A.read_ratio == 0.5
        assert YCSB_B.read_ratio == 0.95
        assert YCSB_C.read_ratio == 1.0
        assert YCSB_D.insert_ratio == 0.05
        assert YCSB_D.distribution == "latest"
        assert YCSB_F.read_modify_write

    def test_ratio_validation(self):
        with pytest.raises(ConfigError):
            YcsbWorkload("bad", read_ratio=0.5, update_ratio=0.2)
        with pytest.raises(ConfigError):
            YcsbWorkload("bad", read_ratio=1.0, update_ratio=0.0,
                         distribution="gaussian")


class TestGenerator:
    def test_exact_count(self):
        requests = list(gen(YCSB_A).requests(500))
        assert len(requests) == 500

    def test_mix_matches_a(self):
        requests = list(gen(YCSB_A).requests(4000))
        writes = sum(1 for r in requests if r.kind == "write")
        assert writes / len(requests) == pytest.approx(0.5, abs=0.03)

    def test_c_is_read_only(self):
        assert all(r.kind == "read" for r in gen(YCSB_C).requests(500))

    def test_b_is_read_mostly(self):
        requests = list(gen(YCSB_B).requests(4000))
        writes = sum(1 for r in requests if r.kind == "write")
        assert writes / len(requests) == pytest.approx(0.05, abs=0.02)

    def test_f_rmw_pairs_back_to_back(self):
        requests = list(gen(YCSB_F).requests(2000))
        # Every write immediately follows a read of the same key, gap 0.
        for i, request in enumerate(requests):
            if request.kind == "write":
                assert requests[i - 1].kind == "read"
                assert requests[i - 1].lpn == request.lpn
                assert request.gap_us == 0.0

    def test_d_reads_concentrate_on_latest(self):
        generator = gen(YCSB_D, key_space=10_000)
        requests = list(generator.requests(6000))
        reads = [r.lpn for r in requests if r.kind == "read"]
        cursor = generator._insert_cursor
        # Most reads land within the most recent 10% of inserted keys.
        recent = sum(1 for lpn in reads if (cursor - 1 - lpn) % 10_000 < cursor // 10)
        assert recent / len(reads) > 0.5

    def test_d_inserts_advance_cursor(self):
        generator = gen(YCSB_D)
        before = generator._insert_cursor
        list(generator.requests(3000))
        assert generator._insert_cursor > before

    def test_keys_in_range(self):
        for workload in YCSB_SUITE.values():
            requests = gen(workload, key_space=64).requests(300)
            assert all(0 <= r.lpn < 64 for r in requests)

    def test_rmw_count_boundary(self):
        # Requesting an odd count must not overrun even if it lands
        # mid-pair.
        requests = list(gen(YCSB_F).requests(7))
        assert len(requests) == 7

    def test_validation(self):
        with pytest.raises(ConfigError):
            YcsbGenerator(YCSB_A, key_space=0, rate_iops=10)
        with pytest.raises(ConfigError):
            YcsbGenerator(YCSB_A, key_space=10, rate_iops=0)
        with pytest.raises(ConfigError):
            list(gen(YCSB_A).requests(-1))
