"""Tests for background media scrubbing."""

import random

import pytest

from repro.errors import ConfigError
from repro.flash import EccConfig, EccEngine, FlashGeometry, Ssd
from repro.flash.scrubber import Scrubber
from repro.sim import Simulator
from repro.sim.core import MSEC, SEC
from repro.vssd import VssdAllocator


def make_world(wear=0, rber=1e-7, wear_scale=3000.0, written_pages=64):
    sim = Simulator()
    geo = FlashGeometry(channels=2, chips_per_channel=2, blocks_per_chip=16,
                        pages_per_block=8)
    ssd = Ssd(sim, "s", geometry=geo)
    vssd = VssdAllocator(ssd).create_hardware_isolated("v", channels=[0, 1])
    for lpn in range(written_pages):
        vssd.ftl.place_write(lpn)
    if wear:
        for chip in ssd.chips:
            for block in chip.blocks:
                block.erase_count = wear
    ecc = EccEngine(EccConfig(rber_fresh=rber, wear_scale=wear_scale),
                    rng=random.Random(5))
    return sim, ssd, ecc


class TestScrubber:
    def test_round_scans_written_pages(self):
        sim, ssd, ecc = make_world()
        scrubber = Scrubber(ssd, ecc, pages_per_round=8)
        done = sim.spawn(scrubber.scrub_round())
        sim.run(until=1 * SEC)
        assert done.triggered
        assert scrubber.report.pages_scrubbed == 8

    def test_patrol_reads_take_channel_time(self):
        sim, ssd, ecc = make_world()
        scrubber = Scrubber(ssd, ecc, pages_per_round=4)
        sim.spawn(scrubber.scrub_round())
        sim.run(until=1 * SEC)
        # Four patrol reads at ~120 us each were issued on channels.
        reads = sum(c.op_counts["read"] for c in ssd.channels)
        assert reads == 4

    def test_healthy_media_is_never_flagged(self):
        sim, ssd, ecc = make_world(wear=0)
        scrubber = Scrubber(ssd, ecc, pages_per_round=64)
        sim.spawn(scrubber.scrub_round())
        sim.run(until=1 * SEC)
        assert scrubber.report.flagged_blocks == []
        assert scrubber.report.uncorrectable_pages == 0

    def test_worn_media_gets_flagged(self):
        sim, ssd, ecc = make_world(wear=6000, rber=1e-5, wear_scale=800.0)
        scrubber = Scrubber(ssd, ecc, pages_per_round=64,
                            flag_threshold_bits=10)
        sim.spawn(scrubber.scrub_round())
        sim.run(until=5 * SEC)
        assert (
            scrubber.report.flagged_blocks
            or scrubber.report.uncorrectable_pages > 0
            or scrubber.report.bits_corrected > 0
        )

    def test_periodic_loop_progresses(self):
        sim, ssd, ecc = make_world()
        scrubber = Scrubber(ssd, ecc, pages_per_round=4,
                            round_interval_us=10 * MSEC)
        scrubber.start()
        sim.run(until=100 * MSEC)
        assert scrubber.report.pages_scrubbed >= 8  # several rounds ran

    def test_flagged_block_not_rescrubbed(self):
        sim, ssd, ecc = make_world(wear=8000, rber=1e-4, wear_scale=500.0)
        scrubber = Scrubber(ssd, ecc, pages_per_round=64,
                            flag_threshold_bits=5)
        sim.spawn(scrubber.scrub_round())
        sim.run(until=5 * SEC)
        flagged = set(scrubber.report.flagged_blocks)
        assert len(flagged) == len(scrubber.report.flagged_blocks)  # no dupes

    def test_validation(self):
        sim, ssd, ecc = make_world()
        with pytest.raises(ConfigError):
            Scrubber(ssd, ecc, pages_per_round=0)
        with pytest.raises(ConfigError):
            Scrubber(ssd, ecc, round_interval_us=0)
        with pytest.raises(ConfigError):
            Scrubber(ssd, ecc, flag_threshold_bits=0)
