"""Tests for the log-bucketed latency histogram."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.metrics.histogram import LogHistogram
from repro.metrics.percentiles import percentile


class TestLogHistogram:
    def test_mean_and_max_are_exact(self):
        hist = LogHistogram()
        for v in (10.0, 20.0, 30.0):
            hist.record(v)
        assert hist.mean() == 20.0
        assert hist.max() == 30.0

    def test_percentile_within_error_bound(self):
        hist = LogHistogram(buckets_per_decade=64)
        rng = random.Random(1)
        values = [rng.lognormvariate(5.0, 1.0) for _ in range(5000)]
        for v in values:
            hist.record(v)
        bound = hist.relative_error_bound()
        for q in (50.0, 90.0, 99.0, 99.9):
            exact = percentile(values, q)
            approx = hist.percentile(q)
            assert approx == pytest.approx(exact, rel=bound * 2 + 0.01)

    def test_underflow_and_overflow(self):
        hist = LogHistogram(min_value_us=10.0, max_value_us=1000.0)
        hist.record(1.0)      # underflow
        hist.record(5000.0)   # overflow
        assert hist.total == 2
        assert hist.percentile(1.0) == 10.0
        assert hist.max() == 5000.0

    def test_empty_rejects_stats(self):
        hist = LogHistogram()
        with pytest.raises(ConfigError):
            hist.mean()
        with pytest.raises(ConfigError):
            hist.percentile(50.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            LogHistogram(min_value_us=0.0)
        with pytest.raises(ConfigError):
            LogHistogram(min_value_us=10.0, max_value_us=5.0)
        with pytest.raises(ConfigError):
            LogHistogram(buckets_per_decade=0)
        hist = LogHistogram()
        with pytest.raises(ConfigError):
            hist.record(-1.0)
        with pytest.raises(ConfigError):
            hist.percentile(200.0)

    def test_merge(self):
        a, b = LogHistogram(), LogHistogram()
        a.record(100.0)
        b.record(1000.0)
        a.merge(b)
        assert a.total == 2
        assert a.max() == 1000.0

    def test_merge_shape_mismatch_rejected(self):
        a = LogHistogram(buckets_per_decade=16)
        b = LogHistogram(buckets_per_decade=32)
        with pytest.raises(ConfigError):
            a.merge(b)

    def test_nonzero_buckets(self):
        hist = LogHistogram()
        hist.record(50.0)
        hist.record(51.0)
        buckets = list(hist.nonzero_buckets())
        assert sum(count for _, count in buckets) == 2

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1,
                    max_size=500))
    def test_quantiles_monotone(self, values):
        hist = LogHistogram()
        for v in values:
            hist.record(v)
        qs = [hist.percentile(q) for q in (10, 50, 90, 99)]
        assert all(a <= b + 1e-9 for a, b in zip(qs, qs[1:]))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1,
                    max_size=300))
    def test_total_preserved(self, values):
        hist = LogHistogram()
        for v in values:
            hist.record(v)
        bucket_sum = sum(count for _, count in hist.nonzero_buckets())
        assert bucket_sum + hist._underflow + hist._overflow == hist.total
