"""Tests for firmware ECC and bad-block management."""

import random

import pytest

from repro.errors import ConfigError, FlashError
from repro.flash import FlashChip
from repro.flash.firmware import (
    CODEWORD_BYTES,
    BadBlockManager,
    EccConfig,
    EccEngine,
)


class TestEccConfig:
    def test_rber_grows_with_wear(self):
        config = EccConfig()
        assert config.rber_at_wear(0) == config.rber_fresh
        assert config.rber_at_wear(10_000) > config.rber_at_wear(1_000)

    def test_rber_capped(self):
        config = EccConfig()
        assert config.rber_at_wear(10**9) == 0.5

    def test_expected_errors_scale_with_codeword(self):
        config = EccConfig(rber_fresh=1e-4)
        assert config.expected_bit_errors(0) == pytest.approx(
            1e-4 * CODEWORD_BYTES * 8
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            EccConfig(correctable_bits=0)
        with pytest.raises(ConfigError):
            EccConfig(rber_fresh=0.0)
        with pytest.raises(ConfigError):
            EccConfig(wear_scale=0)


class TestEccEngine:
    def test_fresh_blocks_read_clean(self):
        engine = EccEngine(rng=random.Random(1))
        outcomes = [engine.read_page(erase_count=0) for _ in range(200)]
        assert all(not outcome.uncorrectable for outcome, _ in outcomes)
        assert all(extra == 0.0 for _, extra in outcomes)

    def test_worn_blocks_need_correction(self):
        engine = EccEngine(EccConfig(rber_fresh=1e-6, wear_scale=1000.0),
                           rng=random.Random(2))
        # At wear 10000, rber = 1e-6 * e^10 ~ 2.2e-2... capped workload:
        total_corrected = 0
        for _ in range(50):
            outcome, _ = engine.read_page(erase_count=8000)
            if not outcome.uncorrectable:
                total_corrected += outcome.corrected_bits
        assert total_corrected + engine.uncorrectable_total > 0

    def test_extreme_wear_goes_uncorrectable(self):
        engine = EccEngine(EccConfig(rber_fresh=1e-4, wear_scale=500.0,
                                     max_retries=1),
                           rng=random.Random(3))
        outcomes = [engine.read_page(erase_count=6000)[0] for _ in range(30)]
        assert any(o.uncorrectable for o in outcomes)

    def test_retries_cost_latency(self):
        config = EccConfig(rber_fresh=3e-3, wear_scale=1e9, retry_latency_us=80.0,
                           correctable_bits=20, max_retries=3)
        engine = EccEngine(config, rng=random.Random(4))
        extras = [engine.read_page(erase_count=0)[1] for _ in range(300)]
        assert any(extra >= 80.0 for extra in extras)

    def test_counters(self):
        engine = EccEngine(rng=random.Random(5))
        engine.read_page(0)
        assert engine.reads == 1


class TestBadBlockManager:
    def test_factory_bad_blocks_removed_from_pool(self):
        chip = FlashChip(0, 100, 8)
        manager = BadBlockManager(chip, factory_bad_ratio=0.1,
                                  rng=random.Random(6))
        assert manager.factory_bad > 0
        assert chip.free_block_count == 100 - manager.factory_bad
        assert len(manager.usable_blocks()) == 100 - manager.factory_bad

    def test_no_factory_bad_when_ratio_zero(self):
        chip = FlashChip(0, 50, 8)
        manager = BadBlockManager(chip, factory_bad_ratio=0.0)
        assert manager.bad_count == 0

    def test_grown_bad_retirement(self):
        chip = FlashChip(0, 10, 4)
        manager = BadBlockManager(chip, factory_bad_ratio=0.0)
        block = chip.allocate_block()
        # Simulate: data written, then migrated away and erased.
        for _ in range(4):
            block.invalidate(block.program_next())
        block.erase()
        manager.retire(block)
        assert manager.grown_bad == 1
        assert manager.is_bad(block.block_id)
        assert block not in manager.usable_blocks()

    def test_retire_with_live_data_rejected(self):
        chip = FlashChip(0, 10, 4)
        manager = BadBlockManager(chip, factory_bad_ratio=0.0)
        block = chip.allocate_block()
        block.program_next()
        with pytest.raises(FlashError):
            manager.retire(block)

    def test_double_retire_rejected(self):
        chip = FlashChip(0, 10, 4)
        manager = BadBlockManager(chip, factory_bad_ratio=0.0)
        block = chip.allocate_block()
        manager.retire(block)
        with pytest.raises(FlashError):
            manager.retire(block)

    def test_health_metric_declines_with_wear(self):
        chip = FlashChip(0, 4, 2)
        manager = BadBlockManager(chip, factory_bad_ratio=0.0)
        assert manager.remaining_life_fraction() == 1.0
        for block in chip.blocks:
            for _ in range(2):
                block.invalidate(block.program_next())
            block.erase()
        assert manager.remaining_life_fraction(endurance=10) < 1.0

    def test_invalid_ratio_rejected(self):
        chip = FlashChip(0, 4, 2)
        with pytest.raises(ConfigError):
            BadBlockManager(chip, factory_bad_ratio=0.9)
