"""Tests for the parallel experiment engine (RunSpec / RunCache / runner)."""

import pickle

import pytest

from repro.cluster.config import SystemType
from repro.errors import ConfigError
from repro.experiments.figures import clear_cache, fig9_p999_latency
from repro.experiments.parallel import (
    ParallelRunner,
    RunCache,
    RunSpec,
    default_jobs,
    get_runner,
    set_jobs,
    shared_cache,
    using_jobs,
)
from repro.workloads.spec import ycsb


def _spec(ratio: float = 0.5, seed: int = 42, **overrides) -> RunSpec:
    return RunSpec.create(
        SystemType.VDC, ycsb(ratio), 50, 1500.0, seed,
        num_servers=2, num_pairs=2, **overrides,
    )


class TestRunSpec:
    def test_create_normalises_overrides(self):
        a = RunSpec.create(SystemType.VDC, ycsb(0.5), 100, 1500.0, 1,
                           num_servers=2, num_pairs=2)
        b = RunSpec.create(SystemType.VDC, ycsb(0.5), 100, 1500.0, 1,
                           num_pairs=2, num_servers=2)
        assert a == b and hash(a) == hash(b)

    def test_distinct_specs_differ(self):
        assert _spec(0.2) != _spec(0.8)
        assert _spec(seed=1) != _spec(seed=2)

    def test_workload_identity_is_full_spec(self):
        # Two workloads differing only in zipf skew must not collide.
        hot = RunSpec.create(SystemType.VDC, ycsb(0.5, theta=0.99), 50,
                             1500.0, 1)
        flat = RunSpec.create(SystemType.VDC, ycsb(0.5, theta=0.2), 50,
                              1500.0, 1)
        assert hot != flat

    def test_is_picklable(self):
        spec = _spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_build_config_applies_overrides(self):
        config = _spec().build_config()
        assert config.num_servers == 2 and config.seed == 42

    def test_execute_runs_rack(self):
        result = _spec().execute()
        assert result.metrics.read_total.count > 0
        assert result.wall_clock_s > 0
        assert result.events > 0
        assert result.events_per_sec() > 0


class TestRunCache:
    def test_lru_eviction_bounds_entries(self):
        cache = RunCache(max_entries=3)
        for i in range(10):
            cache.put(i, str(i))
        assert len(cache) == 3
        assert cache.evictions == 7
        assert 9 in cache and 0 not in cache

    def test_get_refreshes_recency(self):
        cache = RunCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        cache.put("c", 3)  # evicts "b", the least recently used
        assert "a" in cache and "b" not in cache

    def test_hit_miss_accounting(self):
        cache = RunCache()
        assert cache.get("missing") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.hits == 1 and cache.misses == 1

    def test_compares_to_plain_dict(self):
        cache = RunCache()
        assert cache == {}
        cache.put("k", "v")
        assert cache == {"k": "v"}

    def test_invalid_bound_rejected(self):
        with pytest.raises(ConfigError):
            RunCache(max_entries=0)

    def test_shared_cache_is_bounded(self):
        assert shared_cache.max_entries >= 1


class TestParallelRunner:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigError):
            ParallelRunner(jobs=0)

    def test_duplicate_specs_execute_once(self):
        runner = ParallelRunner(jobs=1, cache=RunCache())
        spec = _spec()
        results = runner.run_specs([spec, spec, spec])
        assert len(results) == 3
        # All three rows come from the same cached object.
        assert results[0] is results[1] is results[2]

    def test_results_align_with_request_order(self):
        runner = ParallelRunner(jobs=1, cache=RunCache())
        specs = [_spec(0.0), _spec(1.0), _spec(0.0)]
        results = runner.run_specs(specs)
        assert results[0] is results[2]
        assert results[0] is not results[1]
        # 0% writes -> no write completions; 100% -> no reads.
        assert results[0].metrics.write_total.count == 0
        assert results[1].metrics.read_total.count == 0

    def test_cache_hit_skips_execution(self):
        cache = RunCache()
        runner = ParallelRunner(jobs=1, cache=cache)
        spec = _spec()
        first = runner.run_spec(spec)
        again = runner.run_spec(spec)
        assert first is again

    def test_process_pool_results_match_serial(self):
        spec_a, spec_b = _spec(0.2), _spec(0.8)
        serial = ParallelRunner(jobs=1, cache=RunCache()).run_specs(
            [spec_a, spec_b]
        )
        fanned = ParallelRunner(jobs=2, cache=RunCache()).run_specs(
            [spec_a, spec_b]
        )
        for left, right in zip(serial, fanned):
            assert left.metrics.summary() == right.metrics.summary()
            assert left.sim_duration_us == right.sim_duration_us

    def test_map_applies_function(self):
        runner = ParallelRunner(jobs=2)
        assert runner.map(abs, [-1, 2, -3]) == [1, 2, 3]

    def test_map_unpicklable_falls_back_to_serial(self):
        runner = ParallelRunner(jobs=2)
        doubled = runner.map(lambda x: x * 2, [1, 2, 3])
        assert doubled == [2, 4, 6]

    def test_map_empty(self):
        assert ParallelRunner(jobs=4).map(abs, []) == []

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestRunnerConfiguration:
    def test_set_jobs_preserves_shared_cache(self):
        original = get_runner()
        try:
            runner = set_jobs(3)
            assert runner.jobs == 3
            assert runner.cache is shared_cache
            assert get_runner() is runner
        finally:
            set_jobs(original.jobs)

    def test_using_jobs_restores_previous_runner(self):
        before = get_runner()
        with using_jobs(2) as runner:
            assert get_runner() is runner and runner.jobs == 2
        assert get_runner() is before

    def test_zero_resolves_to_all_cores(self):
        with using_jobs(0) as runner:
            assert runner.jobs == default_jobs()


class TestFigureDeterminism:
    def test_figure_rows_bit_identical_serial_vs_parallel(self):
        kwargs = dict(write_ratios=(0.0, 0.6), requests=120, seed=42)
        clear_cache()
        with using_jobs(1):
            serial = fig9_p999_latency(**kwargs)
        clear_cache()
        with using_jobs(4):
            fanned = fig9_p999_latency(**kwargs)
        clear_cache()
        assert serial.columns == fanned.columns
        assert serial.rows == fanned.rows  # bit-identical float values
