"""Recovery-invariant tests for the existing §3.7 failure paths.

These pin the properties the chaos engine's :class:`InvariantChecker`
audits at runtime: GC-bit fail-over steers *every* read, re-replication
restores the replication factor (and keeps the control-plane log in
step), and a switch reboot rebuilds tables identical to the registration
log -- including the redirect bits of servers that are still down.

Also includes the regression test for heartbeat tracking of servers
added to the rack after the :class:`FailureManager` was constructed.
"""

from types import SimpleNamespace

import pytest

from repro.chaos.invariants import InvariantChecker, resolve_read_destination
from repro.cluster import FailureManager, Rack, RackConfig, SystemType
from repro.experiments.runner import run_until
from repro.net.packet import OpType, Packet
from repro.sim.core import MSEC

pytestmark = pytest.mark.chaos


def failed_world(num_servers=4):
    """A rack where pair 0's primary server has crashed and been detected."""
    config = RackConfig(system=SystemType.RACKBLOX, num_servers=num_servers,
                        num_pairs=num_servers, seed=13)
    rack = Rack(config)
    manager = FailureManager(rack, heartbeat_interval_us=2 * MSEC)
    manager.start()
    pair = rack.pairs[0]
    for lpn in range(40):
        pair.primary.ftl.place_write(lpn)
        pair.replica.ftl.place_write(lpn)
    manager.fail_server(pair.primary_server_ip)
    rack.sim.run(until=rack.sim.now + 30 * MSEC)
    assert pair.primary_server_ip in rack.failed_ips
    return rack, manager, pair


def run(rack, gen):
    proc = rack.sim.spawn(gen)
    run_until(rack.sim, proc)
    assert proc.ok, getattr(proc, "_exception", None)
    return proc.value


class TestLateAddedServerHeartbeat:
    """Regression: servers added after FailureManager construction used
    to KeyError the heartbeat loop the first time they missed a beat."""

    def _world(self):
        config = RackConfig(system=SystemType.RACKBLOX, num_servers=2,
                            num_pairs=2, seed=13)
        rack = Rack(config)
        manager = FailureManager(rack, heartbeat_interval_us=2 * MSEC,
                                 miss_threshold=2)
        manager.start()
        rack.sim.run(until=rack.sim.now + 5 * MSEC)  # loop is ticking
        return rack, manager

    def _add_server(self, rack, ip="10.0.0.99"):
        newcomer = SimpleNamespace(ip=ip, alive=True, vssds=[])
        rack.servers.append(newcomer)
        rack.server_by_ip[ip] = newcomer
        return newcomer

    def test_dead_newcomer_is_detected_not_crashing_the_loop(self):
        rack, manager = self._world()
        newcomer = self._add_server(rack)
        newcomer.alive = False  # dies before its first tracked heartbeat
        # Pre-fix this raised KeyError inside the heartbeat process the
        # moment it health-checked the untracked IP.
        rack.sim.run(until=rack.sim.now + 10 * MSEC)
        assert newcomer.ip in rack.failed_ips
        assert manager.detected_at[newcomer.ip] > 0

    def test_live_newcomer_is_tracked_from_first_tick(self):
        rack, manager = self._world()
        newcomer = self._add_server(rack)
        rack.sim.run(until=rack.sim.now + 10 * MSEC)
        assert newcomer.ip not in rack.failed_ips
        newcomer.alive = False
        rack.sim.run(until=rack.sim.now + 10 * MSEC)
        assert newcomer.ip in rack.failed_ips


class TestGcBitFailover:
    def test_every_read_redirects_during_outage(self):
        rack, _manager, pair = failed_world()
        dead_ip = pair.primary_server_ip
        for _ in range(100):
            action = rack.switch.process_packet(
                Packet(op=OpType.READ, vssd_id=pair.primary.vssd_id)
            )
            assert action.redirected
            assert action.dst_ip == pair.replica_server_ip
            assert action.dst_ip != dead_ip

    def test_pure_walk_matches_data_plane(self):
        rack, _manager, pair = failed_world()
        dest, redirected = resolve_read_destination(
            rack.switch, pair.primary.vssd_id
        )
        assert redirected and dest == pair.replica_server_ip


class TestRereplicationInvariants:
    def test_replication_factor_restored_with_live_data(self):
        rack, manager, pair = failed_world()
        copied = run(rack, manager.rereplicate_pair(pair))
        assert copied == 40
        assert pair.primary.ftl.mapped_page_count() == 40
        checker = InvariantChecker(rack)
        for lpn in range(40):
            checker.note_acked_write(pair, lpn)
        assert checker.check_durable_writes("post-rebuild") == 0
        assert checker.check_replication_factor("post-rebuild") == 0

    def test_registration_log_follows_the_rebuild(self):
        rack, manager, pair = failed_world()
        dead_id = pair.primary.vssd_id
        run(rack, manager.rereplicate_pair(pair))
        new_id = pair.primary.vssd_id
        log = rack.control_plane.registration_log()
        assert dead_id not in log
        assert log[new_id][0] == pair.primary_server_ip
        # The survivor's log entry names the rebuilt member as its replica.
        assert log[pair.replica.vssd_id][1] == new_id
        assert InvariantChecker(rack).check_switch_tables("post-rebuild") == 0

    def test_switch_reboot_after_rebuild_reproduces_tables(self):
        rack, manager, pair = failed_world()
        run(rack, manager.rereplicate_pair(pair))
        manager.fail_and_recover_switch()
        assert InvariantChecker(rack).check_switch_tables("post-reboot") == 0
        action = rack.switch.process_packet(
            Packet(op=OpType.READ, vssd_id=pair.primary.vssd_id)
        )
        assert action.dst_ip == pair.primary_server_ip


class TestSwitchRebootInvariants:
    def test_tables_match_registration_log_when_healthy(self):
        config = RackConfig(system=SystemType.RACKBLOX, num_servers=4,
                            num_pairs=4, seed=13)
        rack = Rack(config)
        manager = FailureManager(rack)
        before = rack.switch
        manager.fail_and_recover_switch()
        assert rack.switch is not before
        assert InvariantChecker(rack).check_switch_tables("post-reboot") == 0

    def test_reboot_rearms_redirects_for_still_dead_servers(self):
        rack, manager, pair = failed_world()
        manager.fail_and_recover_switch()
        # Repopulation resets GC state; the redirect for the still-dead
        # primary must be re-armed or reads would black-hole.
        dest, redirected = resolve_read_destination(
            rack.switch, pair.primary.vssd_id
        )
        assert redirected and dest == pair.replica_server_ip
        assert InvariantChecker(rack).check_reads_routable("post-reboot") == 0

    def test_recovery_after_reboot_clears_the_rearmed_bits(self):
        rack, manager, pair = failed_world()
        manager.fail_and_recover_switch()
        manager.recover_server(pair.primary_server_ip)
        dest, redirected = resolve_read_destination(
            rack.switch, pair.primary.vssd_id
        )
        assert not redirected and dest == pair.primary_server_ip
