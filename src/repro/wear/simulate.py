"""Long-horizon wear simulation (Figures 22 and 23).

Builds the paper's §4.6 configuration -- 32 servers x 16 SSDs x 4 vSSDs,
each vSSD running one Table 2 workload assigned round-robin ("following
the load balancing of modern storage infrastructures") -- and evolves
wear day by day, with or without the two-level balancers.  "No Swap" is
the modern-infrastructure baseline that never moves data between SSDs.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.flash.wear import wear_imbalance, wear_variance
from repro.wear.global_ import GlobalWearBalancer
from repro.wear.local import LocalWearBalancer
from repro.wear.model import SsdWearState, VssdWorkload, WearRack, WearServer
from repro.workloads.spec import TABLE2_WORKLOADS

#: Erase rate (per day) corresponding to a write-only workload; other
#: workloads scale by their Table 2 write ratio.  ~1.1/day full-device
#: writes matches an enterprise drive rated for ~2 DWPD.
FULL_WRITE_ERASE_RATE = 1.1


def table2_erase_rates(jitter: float = 0.2, seed: int = 0) -> List[VssdWorkload]:
    """One workload template per Table 2 entry, erase rate ∝ write ratio."""
    rng = random.Random(seed)
    templates = []
    for name, spec in sorted(TABLE2_WORKLOADS.items()):
        rate = max(0.01, spec.write_ratio * FULL_WRITE_ERASE_RATE)
        templates.append((name, rate, rng))
    del rng
    return [VssdWorkload(name=n, erase_rate_per_day=r) for n, r, _ in templates]


@dataclass
class WearSimulationResult:
    """Trajectories collected from one wear simulation run."""

    days: List[float] = field(default_factory=list)
    #: Per-server λ trajectory: server name -> series of imbalances.
    server_imbalance: Dict[str, List[float]] = field(default_factory=dict)
    #: Rack-level variance of server wear (Figure 23's metric).
    rack_variance: List[float] = field(default_factory=list)
    #: Rack-level λ across servers.
    rack_imbalance: List[float] = field(default_factory=list)
    local_swaps: int = 0
    global_swaps: int = 0
    #: Final per-SSD wear, per server (Figure 22's bars).
    final_wear: Dict[str, List[float]] = field(default_factory=dict)

    def max_server_imbalance(self) -> float:
        return max(max(series) for series in self.server_imbalance.values())

    def final_server_imbalance(self) -> float:
        """Worst per-server λ at the end of the run (Figure 22's metric)."""
        return max(series[-1] for series in self.server_imbalance.values())

    def mean_final_server_imbalance(self) -> float:
        series_ends = [s[-1] for s in self.server_imbalance.values()]
        return sum(series_ends) / len(series_ends)

    def final_rack_variance(self) -> float:
        return self.rack_variance[-1] if self.rack_variance else 0.0

    def final_rack_imbalance(self) -> float:
        return self.rack_imbalance[-1] if self.rack_imbalance else 1.0


class WearSimulation:
    """The §4.6 experiment: a rack of SSDs aging under diverse workloads."""

    def __init__(
        self,
        num_servers: int = 32,
        ssds_per_server: int = 16,
        vssds_per_ssd: int = 4,
        enable_local: bool = True,
        enable_global: bool = True,
        gamma: float = 0.1,
        local_period_days: float = 12.0,
        global_period_days: float = 56.0,
        rate_sigma: float = 0.6,
        replacement_rate_per_year: float = 0.08,
        seed: int = 1,
    ) -> None:
        if num_servers < 1 or ssds_per_server < 1 or vssds_per_ssd < 1:
            raise ConfigError("fleet dimensions must be positive")
        if replacement_rate_per_year < 0:
            raise ConfigError("replacement rate must be >= 0")
        self.replacement_rate_per_year = replacement_rate_per_year
        self._rng = random.Random(seed ^ 0xD15C)
        rng = random.Random(seed)
        templates = table2_erase_rates(seed=seed)
        servers = []
        # Round-robin vSSD assignment across the whole rack's SSDs,
        # mirroring load-balanced (not wear-balanced) placement.
        all_ssds: List[SsdWearState] = []
        for s in range(num_servers):
            ssds = [
                SsdWearState(ssd_id=f"srv{s}-ssd{d}") for d in range(ssds_per_server)
            ]
            servers.append(WearServer(name=f"server-{s}", ssds=ssds))
            all_ssds.extend(ssds)
        total_vssds = len(all_ssds) * vssds_per_ssd
        for i in range(total_vssds):
            template = templates[i % len(templates)]
            # Lognormal jitter around the template rate: two TPC-C tenants
            # do not write identically, and tenant intensity in a cloud is
            # heavy-tailed.
            rate = template.erase_rate_per_day * rng.lognormvariate(0.0, rate_sigma)
            workload = VssdWorkload(
                name=f"{template.name}-{i}", erase_rate_per_day=max(0.005, rate)
            )
            all_ssds[i % len(all_ssds)].workloads.append(workload)
        self.rack = WearRack(servers=servers)
        self.local_balancers: List[LocalWearBalancer] = (
            [
                LocalWearBalancer(server, gamma=gamma, period_days=local_period_days)
                for server in servers
            ]
            if enable_local
            else []
        )
        self.global_balancer: Optional[GlobalWearBalancer] = (
            GlobalWearBalancer(self.rack, gamma=gamma, period_days=global_period_days)
            if enable_global
            else None
        )

    def run(self, days: int = 365, sample_every: int = 7) -> WearSimulationResult:
        """Advance day by day, ticking balancers, sampling trajectories."""
        if days < 1:
            raise ConfigError(f"days must be >= 1, got {days}")
        result = WearSimulationResult()
        for server in self.rack.servers:
            result.server_imbalance[server.name] = []
        daily_replace_prob = self.replacement_rate_per_year / 365.0
        for day in range(1, days + 1):
            self.rack.advance(1.0)
            # Operators replace failed/unhealthy SSDs with new (zero-wear)
            # devices -- a standing source of wear imbalance (§3.6).
            if daily_replace_prob > 0:
                for ssd in self.rack.all_ssds():
                    if self._rng.random() < daily_replace_prob:
                        ssd.wear = 0.0
            for balancer in self.local_balancers:
                balancer.tick(1.0)
            if self.global_balancer is not None:
                self.global_balancer.tick(1.0)
            if day % sample_every == 0 or day == days:
                result.days.append(float(day))
                for server in self.rack.servers:
                    result.server_imbalance[server.name].append(
                        wear_imbalance([s.wear for s in server.ssds])
                    )
                server_wears = [server.wear for server in self.rack.servers]
                result.rack_variance.append(wear_variance(server_wears))
                result.rack_imbalance.append(wear_imbalance(server_wears))
        result.local_swaps = sum(b.swaps_performed for b in self.local_balancers)
        result.global_swaps = (
            self.global_balancer.swaps_performed if self.global_balancer else 0
        )
        for server in self.rack.servers:
            result.final_wear[server.name] = [ssd.wear for ssd in server.ssds]
        return result
