"""The day-granularity wear model: vSSD workloads on SSDs on servers.

Wear φ is the average erase count of an SSD's blocks (§3.6).  Each vSSD
workload contributes a fixed erase *rate* (average erase counts per day)
to whichever SSD currently hosts it; balancers move workloads between
SSDs, which is how a "swap" exchanges future wear without renaming
hardware.
"""

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigError


@dataclass
class VssdWorkload:
    """One vSSD's long-run write pressure, as an erase rate."""

    name: str
    #: Average erase counts contributed per day to the hosting SSD.
    erase_rate_per_day: float

    def __post_init__(self) -> None:
        if self.erase_rate_per_day < 0:
            raise ConfigError(f"erase rate must be >= 0, got {self.erase_rate_per_day}")


@dataclass
class SsdWearState:
    """One SSD's wear and its currently assigned vSSD workloads."""

    ssd_id: str
    wear: float = 0.0  # φ: average erase count to date
    workloads: List[VssdWorkload] = field(default_factory=list)
    swaps: int = 0

    @property
    def wear_rate(self) -> float:
        """Current erase rate (per day) from the hosted workloads."""
        return sum(w.erase_rate_per_day for w in self.workloads)

    def advance(self, days: float = 1.0) -> None:
        self.wear += self.wear_rate * days

    def exchange_workloads(self, other: "SsdWearState", swap_cost: float) -> None:
        """Swap hosted workloads with another SSD.

        ``swap_cost`` is the wear added to *both* devices by migrating the
        data (reading one SSD's content and rewriting it on the other --
        the paper budgets ~0.5% of lifetime for a worst case of periodic
        swapping, roughly one erase cycle per swap).
        """
        if swap_cost < 0:
            raise ConfigError(f"swap cost must be >= 0, got {swap_cost}")
        self.workloads, other.workloads = other.workloads, self.workloads
        self.wear += swap_cost
        other.wear += swap_cost
        self.swaps += 1
        other.swaps += 1


@dataclass
class WearServer:
    """A storage server: a shelf of SSDs."""

    name: str
    ssds: List[SsdWearState]

    def __post_init__(self) -> None:
        if not self.ssds:
            raise ConfigError(f"server {self.name!r} needs at least one SSD")

    @property
    def wear(self) -> float:
        """Server wear: average erase count of its SSDs (§3.6)."""
        return sum(s.wear for s in self.ssds) / len(self.ssds)

    @property
    def wear_rate(self) -> float:
        return sum(s.wear_rate for s in self.ssds) / len(self.ssds)

    def advance(self, days: float = 1.0) -> None:
        for ssd in self.ssds:
            ssd.advance(days)


@dataclass
class WearRack:
    """A rack of storage servers for the wear simulation."""

    servers: List[WearServer]

    def __post_init__(self) -> None:
        if not self.servers:
            raise ConfigError("rack needs at least one server")

    def all_ssds(self) -> List[SsdWearState]:
        return [ssd for server in self.servers for ssd in server.ssds]

    def advance(self, days: float = 1.0) -> None:
        for server in self.servers:
            server.advance(days)
