"""The local (intra-server) wear balancer (§3.6).

Keeps λ = φ_max / φ_avg across a server's SSDs below 1+γ (γ = 0.1).
Rather than continuously shuffling data, it follows FlashBlox's relaxed
scheme: when the bound is violated, swap the workload of the SSD with the
**maximum wear** with that of the SSD with the **minimum wear rate** --
the hottest history meets the coldest future.  The paper's worst case
needs one swap per 12 days for a 16-SSD server on a 5-year horizon.
"""

from typing import Optional, Tuple

from repro.errors import ConfigError
from repro.flash.wear import wear_imbalance
from repro.wear.model import SsdWearState, WearServer

#: Wear added to each party of a swap (~one erase cycle for a full-device
#: migration; the paper budgets 0.5% of a 30K-cycle lifetime across all
#: swaps of a 5-year deployment).
DEFAULT_SWAP_COST = 1.0


class LocalWearBalancer:
    """Periodic intra-server swap of workload between two SSDs."""

    def __init__(
        self,
        server: WearServer,
        gamma: float = 0.1,
        period_days: float = 12.0,
        swap_cost: float = DEFAULT_SWAP_COST,
        max_swaps_per_check: int = 4,
    ) -> None:
        if gamma <= 0:
            raise ConfigError(f"gamma must be positive, got {gamma}")
        if period_days <= 0:
            raise ConfigError(f"period must be positive, got {period_days}")
        if max_swaps_per_check < 1:
            raise ConfigError("max_swaps_per_check must be >= 1")
        self.server = server
        self.gamma = gamma
        self.period_days = period_days
        self.swap_cost = swap_cost
        #: How many hot/cold pairs one periodic check may rotate.  The
        #: paper swaps the single worst pair; with Table 2's ~40x spread in
        #: erase rates a few extra pairs per (12-day) check are needed for
        #: the near-optimal balance of Figure 22, while keeping migration
        #: volume bounded and infrequent.
        self.max_swaps_per_check = max_swaps_per_check
        self._since_check = 0.0
        self.swaps_performed = 0

    def imbalance(self) -> float:
        """Current λ = φ_max / φ_avg across the server's SSDs."""
        return wear_imbalance([ssd.wear for ssd in self.server.ssds])

    def needs_swap(self) -> bool:
        return self.imbalance() > 1.0 + self.gamma

    def pick_swap(
        self, exclude=frozenset()
    ) -> Optional[Tuple[SsdWearState, SsdWearState]]:
        """(max-wear SSD, min-wear-rate SSD), or ``None`` if degenerate.

        ``exclude`` holds ids of SSDs already swapped in this check, so
        repeated picks rotate disjoint pairs.
        """
        candidates = [s for s in self.server.ssds if id(s) not in exclude]
        if len(candidates) < 2:
            return None
        hottest = max(candidates, key=lambda s: s.wear)
        coldest = min(
            (s for s in candidates if s is not hottest), key=lambda s: s.wear_rate
        )
        if hottest.wear_rate <= coldest.wear_rate:
            # The most-worn SSD already has the colder stream; a swap
            # would make things worse.
            return None
        return hottest, coldest

    def tick(self, days: float = 1.0) -> bool:
        """Advance the balancer clock; swap when the period elapses and
        the bound is violated.  Returns True when any swap happened."""
        self._since_check += days
        if self._since_check < self.period_days:
            return False
        self._since_check = 0.0
        swapped = False
        used = set()
        for _ in range(self.max_swaps_per_check):
            if not self.needs_swap():
                break
            pick = self.pick_swap(exclude=used)
            if pick is None:
                break
            hottest, coldest = pick
            hottest.exchange_workloads(coldest, self.swap_cost)
            used.add(id(hottest))
            used.add(id(coldest))
            self.swaps_performed += 1
            swapped = True
        return swapped
