"""The global (inter-server) wear balancer (§3.6).

Reduces the wear variance *between servers* in a rack.  Server wear is
the average erase count of its SSDs; when the rack's server-level
imbalance exceeds 1+γ, the balancer swaps the hottest SSD in the
most-worn server with the coldest-rate SSD in the least-worn server.
Because inter-server swaps pay real networking cost, the cadence is
relaxed to 8 weeks by default.
"""

from typing import Optional, Tuple

from repro.errors import ConfigError
from repro.flash.wear import wear_imbalance, wear_variance
from repro.wear.local import DEFAULT_SWAP_COST
from repro.wear.model import SsdWearState, WearRack


class GlobalWearBalancer:
    """Periodic inter-server swap of workload between two SSDs."""

    def __init__(
        self,
        rack: WearRack,
        gamma: float = 0.1,
        period_days: float = 56.0,  # 8 weeks
        swap_cost: float = DEFAULT_SWAP_COST,
    ) -> None:
        if gamma <= 0:
            raise ConfigError(f"gamma must be positive, got {gamma}")
        if period_days <= 0:
            raise ConfigError(f"period must be positive, got {period_days}")
        self.rack = rack
        self.gamma = gamma
        self.period_days = period_days
        self.swap_cost = swap_cost
        self._since_check = 0.0
        self.swaps_performed = 0

    def server_imbalance(self) -> float:
        """λ across servers, using server wear (mean SSD erase count)."""
        return wear_imbalance([server.wear for server in self.rack.servers])

    def rack_variance(self) -> float:
        """Variance of server wear -- Figure 23's balance metric."""
        return wear_variance([server.wear for server in self.rack.servers])

    def pick_swap(self) -> Optional[Tuple[SsdWearState, SsdWearState]]:
        servers = self.rack.servers
        if len(servers) < 2:
            return None
        hottest_server = max(servers, key=lambda s: s.wear)
        coldest_server = min(servers, key=lambda s: s.wear)
        if hottest_server is coldest_server:
            return None
        hot_ssd = max(hottest_server.ssds, key=lambda s: s.wear)
        cold_ssd = min(coldest_server.ssds, key=lambda s: s.wear_rate)
        if hot_ssd.wear_rate <= cold_ssd.wear_rate:
            return None
        return hot_ssd, cold_ssd

    def tick(self, days: float = 1.0) -> bool:
        """Advance the balancer clock; swap across servers when due."""
        self._since_check += days
        if self._since_check < self.period_days:
            return False
        self._since_check = 0.0
        if self.server_imbalance() <= 1.0 + self.gamma:
            return False
        pick = self.pick_swap()
        if pick is None:
            return False
        hot_ssd, cold_ssd = pick
        hot_ssd.exchange_workloads(cold_ssd, self.swap_cost)
        self.swaps_performed += 1
        return True
