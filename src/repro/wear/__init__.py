"""Rack-scale wear leveling (§3.6).

A two-level mechanism: a **local** (intra-server) balancer that keeps the
wear imbalance λ = φ_max/φ_avg across a server's SSDs below 1+γ by
periodically swapping the most-worn SSD's workload with that of the SSD
with the minimum wear *rate*, and a **global** (inter-server) balancer
that does the same across servers at a relaxed cadence (8 weeks), since
inter-server swaps pay networking cost.

This subsystem runs on a day-granularity wear model rather than the
microsecond discrete-event simulator: wear evolves over months and years,
five orders of magnitude away from I/O latencies.
"""

from repro.wear.global_ import GlobalWearBalancer
from repro.wear.local import LocalWearBalancer
from repro.wear.model import SsdWearState, VssdWorkload, WearRack, WearServer
from repro.wear.simulate import WearSimulation, WearSimulationResult

__all__ = [
    "VssdWorkload",
    "SsdWearState",
    "WearServer",
    "WearRack",
    "LocalWearBalancer",
    "GlobalWearBalancer",
    "WearSimulation",
    "WearSimulationResult",
]
