"""Package version, kept separate so nothing heavy is imported for it."""

__version__ = "1.0.0"
