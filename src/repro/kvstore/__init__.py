"""A key-value store built on the RackBlox substrate.

Two layers, mirroring how SDF is consumed in practice:

* :class:`~repro.kvstore.lsm.LsmTree` -- a log-structured merge tree
  running directly on one vSSD (the application-managed-flash pattern of
  the paper's reference [84]: LSM-on-open-channel-SSD): memtable,
  sorted runs written as sequential page extents, leveled compaction,
  bloom-filtered lookups;
* :class:`~repro.kvstore.store.RackKvStore` -- a replicated GET/PUT/DELETE
  API over the simulated rack: keys hash to vSSD pairs, writes fan out to
  both replicas (Hermes-style commit on all DRAM copies), reads ride the
  switch's GC-aware redirection like any other RackBlox read.
"""

from repro.kvstore.bloom import BloomFilter
from repro.kvstore.lsm import LsmTree
from repro.kvstore.store import RackKvStore

__all__ = ["BloomFilter", "LsmTree", "RackKvStore"]
