"""A classic Bloom filter for LSM table lookups.

Sized from target capacity and false-positive rate using the standard
formulas: m = -n·ln(p)/ln(2)^2 bits and k = (m/n)·ln(2) hash functions.
Hashes are derived by double hashing over two independent 64-bit values.
"""

import hashlib
import math

from repro.errors import ConfigError


def _hash_pair(key: str) -> "tuple[int, int]":
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=16).digest()
    return (
        int.from_bytes(digest[:8], "little"),
        int.from_bytes(digest[8:], "little") | 1,  # odd => full-period stride
    )


class BloomFilter:
    """Fixed-size Bloom filter over string keys."""

    def __init__(self, capacity: int, false_positive_rate: float = 0.01) -> None:
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 < false_positive_rate < 1.0:
            raise ConfigError("false_positive_rate must be in (0,1)")
        self.capacity = capacity
        self.false_positive_rate = false_positive_rate
        ln2 = math.log(2.0)
        self.num_bits = max(8, int(-capacity * math.log(false_positive_rate) / ln2**2))
        self.num_hashes = max(1, round(self.num_bits / capacity * ln2))
        self._bits = bytearray((self.num_bits + 7) // 8)
        self.inserted = 0

    def _positions(self, key: str):
        h1, h2 = _hash_pair(key)
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, key: str) -> None:
        """Insert a key (sets its k bit positions)."""
        for pos in self._positions(key):
            self._bits[pos // 8] |= 1 << (pos % 8)
        self.inserted += 1

    def might_contain(self, key: str) -> bool:
        """False means *definitely absent*; True means maybe present."""
        return all(
            self._bits[pos // 8] & (1 << (pos % 8)) for pos in self._positions(key)
        )

    def fill_ratio(self) -> float:
        """Fraction of bits set (a saturation diagnostic)."""
        set_bits = sum(bin(b).count("1") for b in self._bits)
        return set_bits / self.num_bits

    @property
    def size_bytes(self) -> int:
        """In-memory footprint of the bit array."""
        return len(self._bits)
