"""A replicated key-value API over the simulated rack.

GET/PUT/DELETE ride the exact same end-to-end path as the evaluation's
synthetic workloads: keys hash to a replica pair and a logical page,
writes fan out to both in-rack replicas and complete when both hold a
DRAM copy, reads go to the primary and get redirected by the switch when
it is collecting.  Values must fit one 4 KB page (the evaluation's
request granularity).

The store keeps the authoritative value map in memory (the simulated
flash carries no payloads); what the rack provides is *timing* and the
full coordination machinery.
"""

import hashlib
from typing import Dict, Generator, Optional, Tuple

from repro.cluster.rack import Rack
from repro.errors import ConfigError
from repro.metrics.collector import ExperimentMetrics
from repro.net.packet import read_request, write_request
from repro.sim import AllOf


def _key_hash(key: str) -> int:
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class RackKvStore:
    """GET/PUT/DELETE over a :class:`~repro.cluster.rack.Rack`."""

    MAX_VALUE_BYTES = 4096

    def __init__(
        self,
        rack: Rack,
        client_name: str = "kv-client",
        working_set_fraction: float = 0.5,
        metrics: Optional[ExperimentMetrics] = None,
    ) -> None:
        if not rack.pairs:
            raise ConfigError("the rack has no vSSD pairs to store into")
        self.rack = rack
        self.sim = rack.sim
        self.client_name = client_name
        self.metrics = metrics if metrics is not None else ExperimentMetrics()
        self._key_spaces = [
            rack.working_set_pages(pair, working_set_fraction)
            for pair in rack.pairs
        ]
        #: The authoritative contents; (pair index, lpn) collisions are
        #: resolved per key (multiple keys may share a page, like slots).
        self._data: Dict[str, str] = {}
        self.gets = 0
        self.puts = 0
        self.deletes = 0
        self.scans = 0
        self.misses = 0

    # ------------------------------------------------------------- routing

    def _route(self, key: str) -> Tuple[int, int]:
        """(pair index, lpn) for a key -- consistent for the store's life."""
        h = _key_hash(key)
        pair_idx = h % len(self.rack.pairs)
        lpn = (h // len(self.rack.pairs)) % self._key_spaces[pair_idx]
        return pair_idx, lpn

    # ----------------------------------------------------------------- API

    def put(self, key: str, value: str) -> Generator:
        """Process: replicated write; returns the end-to-end latency (us).

        Validation is eager, so an oversized value fails at the call site
        rather than inside the scheduled process.
        """
        if len(value.encode("utf-8")) > self.MAX_VALUE_BYTES:
            raise ConfigError(
                f"value for {key!r} exceeds one page "
                f"({self.MAX_VALUE_BYTES} bytes)"
            )
        pair_idx, lpn = self._route(key)
        pair = self.rack.pairs[pair_idx]

        def proc() -> Generator:
            t0 = self.sim.now
            events = []
            for vssd in (pair.primary, pair.replica):
                pkt = write_request(vssd.vssd_id, self.client_name, "", t0)
                rid = self.rack.new_request_id()
                pkt.payload.update(lpn=lpn, rid=rid)
                events.append(self.rack.register_pending(rid))
                self.rack.send_from_client(pkt, flow_id=self.client_name)
            yield AllOf(self.sim, events)
            latency = self.sim.now - t0
            self._data[key] = value
            self.puts += 1
            self.metrics.record("write", latency, at=self.sim.now)
            return latency

        return proc()

    def get(self, key: str) -> Generator:
        """Process: read; returns (value or None, latency us)."""
        pair_idx, lpn = self._route(key)
        pair = self.rack.pairs[pair_idx]
        t0 = self.sim.now
        pkt = read_request(pair.primary.vssd_id, self.client_name, "", t0)
        rid = self.rack.new_request_id()
        pkt.payload.update(lpn=lpn, rid=rid)
        done = self.rack.register_pending(rid)
        self.rack.send_from_client(pkt, flow_id=self.client_name)
        yield done
        latency = self.sim.now - t0
        self.gets += 1
        self.metrics.record("read", latency, at=self.sim.now)
        value = self._data.get(key)
        if value is None:
            self.misses += 1
        return value, latency

    def scan(self, start_key: str, count: int) -> Generator:
        """Process: range scan -- up to ``count`` keys >= ``start_key``.

        Returns ``(items, latency_us)`` where ``items`` is the key-ordered
        list of ``(key, value)`` pairs.  The scan charges one timed read
        per distinct flash page the selected keys map to (keys hashed to
        the same page share its single read, like slots), all issued
        concurrently -- the fan-out a range query pays on a hashed keyspace.
        """
        if count < 1:
            raise ConfigError(f"scan count must be >= 1, got {count}")

        def proc() -> Generator:
            t0 = self.sim.now
            keys = sorted(k for k in self._data if k >= start_key)[:count]
            pages: Dict[Tuple[int, int], int] = {}
            for key in keys:
                pair_idx, lpn = self._route(key)
                pages[(pair_idx, lpn)] = pair_idx
            events = []
            for (pair_idx, lpn), _ in sorted(pages.items()):
                pair = self.rack.pairs[pair_idx]
                pkt = read_request(pair.primary.vssd_id, self.client_name, "", t0)
                rid = self.rack.new_request_id()
                pkt.payload.update(lpn=lpn, rid=rid)
                events.append(self.rack.register_pending(rid))
                self.rack.send_from_client(pkt, flow_id=self.client_name)
            if events:
                yield AllOf(self.sim, events)
            latency = self.sim.now - t0
            self.scans += 1
            if events:
                self.metrics.record("read", latency, at=self.sim.now)
            return [(k, self._data[k]) for k in keys], latency

        return proc()

    def delete(self, key: str) -> Generator:
        """Process: replicated delete (a write of the empty slot)."""
        existed = key in self._data
        latency = yield self.sim.spawn(self.put(key, ""))
        self.puts -= 1  # the inner put counted itself
        if existed:
            self._data.pop(key, None)
        self.deletes += 1
        return latency

    def __len__(self) -> int:
        return len(self._data)

    def contains(self, key: str) -> bool:
        """Whether the store currently holds a value for the key."""
        return key in self._data
