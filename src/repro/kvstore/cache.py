"""A client-side LRU read cache for the rack KV store.

Applications front hot keys with a local cache; this one wraps
:class:`~repro.kvstore.store.RackKvStore` with an invalidate-on-write LRU,
so GETs for hot keys skip the network entirely while writes stay strongly
consistent (the local copy is refreshed at write commit).
"""

from collections import OrderedDict
from typing import Generator, Optional

from repro.errors import ConfigError
from repro.kvstore.store import RackKvStore


class LruCache:
    """A bounded LRU map (the cache's mechanism, standalone-testable)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, str]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[str]:
        """Lookup; refreshes recency on hit."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: str, value: str) -> None:
        """Insert/refresh; evicts the least-recently-used on overflow."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key: str) -> None:
        """Drop a key if cached (idempotent)."""
        self._entries.pop(key, None)

    def hit_ratio(self) -> float:
        """Hits over all lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachedKvStore:
    """GET-through cache over a :class:`RackKvStore`."""

    def __init__(self, store: RackKvStore, capacity: int = 1024) -> None:
        self.store = store
        self.sim = store.sim
        self.cache = LruCache(capacity)

    def get(self, key: str) -> Generator:
        """Process: cached read; (value, latency us, served_from_cache)."""
        cached = self.cache.get(key)
        if cached is not None:
            return cached, 0.0, True
        value, latency = yield self.sim.spawn(self.store.get(key))
        if value is not None:
            self.cache.put(key, value)
        return value, latency, False

    def put(self, key: str, value: str) -> Generator:
        """Process: write-through; the cache is refreshed at commit."""
        latency = yield self.sim.spawn(self.store.put(key, value))
        self.cache.put(key, value)
        return latency

    def delete(self, key: str) -> Generator:
        """Process: delete and drop any cached copy."""
        self.cache.invalidate(key)
        latency = yield self.sim.spawn(self.store.delete(key))
        return latency
