"""A log-structured merge tree on one vSSD.

The application-managed-flash pattern of the paper's reference [84]
(LSM-tree KV store on an open-channel SSD): writes absorb into an
in-memory memtable; full memtables flush as *sorted runs* -- sequential
page extents written through the vSSD -- and leveled compaction merges
runs downward.  Every flush and compaction is timed flash I/O on the
simulated channels, so the engine produces exactly the bursty sequential
write traffic (and subsequent GC pressure) that real LSM stores impose
on SDF.

Modelling notes:

* values are small (``entries_per_page`` per 4 KB page); each table keeps
  an in-memory index (key -> page) and a Bloom filter, as real engines do;
* a tombstone masks older versions and is dropped when a compaction
  writes into the deepest level;
* freed extents are trimmed (invalidating their pages for GC) and the
  LPN space is recycled through a free list.
"""

import itertools
from bisect import insort
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.errors import ConfigError
from repro.kvstore.bloom import BloomFilter
from repro.vssd.vssd import VSsd

#: Sentinel stored as a value to mark deletion.
_TOMBSTONE = object()


@dataclass
class SsTable:
    """One immutable sorted run on flash."""

    table_id: int
    level: int
    first_lpn: int
    num_pages: int
    #: key -> (page offset within the extent); the in-memory sparse index.
    index: Dict[str, int]
    bloom: BloomFilter
    #: Simulated page contents: page offset -> {key: value-or-tombstone}.
    pages: Dict[int, Dict[str, object]]

    @property
    def num_entries(self) -> int:
        """Live keys indexed by this table."""
        return len(self.index)

    def lpn_of(self, page_offset: int) -> int:
        """Logical page number of one page of this table's extent."""
        return self.first_lpn + page_offset


class LsmTree:
    """Memtable + leveled sorted runs over a vSSD."""

    def __init__(
        self,
        vssd: VSsd,
        memtable_entries: int = 256,
        level_fanout: int = 4,
        entries_per_page: int = 16,
        false_positive_rate: float = 0.01,
        max_levels: int = 6,
    ) -> None:
        if memtable_entries < 1 or entries_per_page < 1:
            raise ConfigError("memtable_entries and entries_per_page must be >= 1")
        if level_fanout < 2:
            raise ConfigError("level_fanout must be >= 2")
        self.vssd = vssd
        self.sim = vssd.sim
        self.memtable_entries = memtable_entries
        self.level_fanout = level_fanout
        self.entries_per_page = entries_per_page
        self.false_positive_rate = false_positive_rate
        self.max_levels = max_levels

        self._memtable: Dict[str, object] = {}
        self._levels: List[List[SsTable]] = [[] for _ in range(max_levels)]
        self._table_ids = itertools.count(1)

        # LPN extent allocator: bump pointer + free list of (lpn, n).
        self._next_lpn = 0
        self._free_extents: List[Tuple[int, int]] = []

        # Statistics.
        self.flushes = 0
        self.compactions = 0
        self.pages_written = 0
        self.pages_read = 0
        self.bloom_skips = 0

    # -------------------------------------------------------------- public

    def put(self, key: str, value: str) -> Generator:
        """Process: insert/overwrite a key (may trigger flush+compaction)."""
        self._memtable[key] = value
        if len(self._memtable) >= self.memtable_entries:
            yield self.sim.spawn(self.flush())

    def delete(self, key: str) -> Generator:
        """Process: delete via tombstone."""
        self._memtable[key] = _TOMBSTONE
        if len(self._memtable) >= self.memtable_entries:
            yield self.sim.spawn(self.flush())

    def get(self, key: str) -> Generator:
        """Process: point lookup; returns the value or ``None``."""
        if key in self._memtable:
            value = self._memtable[key]
            return None if value is _TOMBSTONE else value
        for level_tables in self._levels:
            # Within a level, newest table wins.
            for table in reversed(level_tables):
                if not table.bloom.might_contain(key):
                    self.bloom_skips += 1
                    continue
                page_offset = table.index.get(key)
                if page_offset is None:
                    continue  # bloom false positive
                yield self.sim.spawn(self.vssd.read(table.lpn_of(page_offset)))
                self.pages_read += 1
                value = table.pages[page_offset][key]
                return None if value is _TOMBSTONE else value
        return None

    def scan(self, start_key: str, count: int) -> Generator:
        """Process: range scan -- up to ``count`` live entries >= start_key.

        This is the primitive YCSB-E exercises.  The scan resolves the
        newest version of every candidate key (memtable first, then
        levels top-down), skips tombstones, and charges one timed page
        read per distinct flash page actually touched -- a merge-iterator
        cost model.
        """
        if count < 1:
            raise ConfigError(f"count must be >= 1, got {count}")
        # Resolve newest version per key without touching flash yet.
        resolution: Dict[str, Tuple[Optional[SsTable], Optional[int]]] = {}
        for key in self._memtable:
            if key >= start_key:
                resolution[key] = (None, None)  # memtable-resident
        for level_tables in self._levels:
            for table in reversed(level_tables):
                for key, offset in table.index.items():
                    if key >= start_key and key not in resolution:
                        resolution[key] = (table, offset)
        selected = sorted(resolution)[: count * 2]  # headroom for tombstones
        # Charge the flash reads (one per distinct page).
        selected_set = set(selected)
        pages_to_read: Dict[Tuple[int, int], SsTable] = {}
        for key, (table, offset) in resolution.items():
            if key in selected_set and table is not None:
                pages_to_read[(table.table_id, offset)] = table
        for (_table_id, offset), table in sorted(pages_to_read.items()):
            yield self.sim.spawn(self.vssd.read(table.lpn_of(offset)))
            self.pages_read += 1
        # Materialise results in key order, dropping tombstones.
        results: List[Tuple[str, str]] = []
        for key in selected:
            table, offset = resolution[key]
            value = (
                self._memtable[key] if table is None else table.pages[offset][key]
            )
            if value is _TOMBSTONE:
                continue
            results.append((key, value))
            if len(results) >= count:
                break
        return results

    def flush(self) -> Generator:
        """Process: write the memtable out as a level-0 sorted run."""
        if not self._memtable:
            return
        entries = dict(self._memtable)
        self._memtable = {}
        table = yield self.sim.spawn(self._write_table(entries, level=0))
        self._levels[0].append(table)
        self.flushes += 1
        yield self.sim.spawn(self._maybe_compact())

    # ---------------------------------------------------------- internals

    def _alloc_extent(self, num_pages: int) -> int:
        for i, (lpn, length) in enumerate(self._free_extents):
            if length >= num_pages:
                if length == num_pages:
                    self._free_extents.pop(i)
                else:
                    self._free_extents[i] = (lpn + num_pages, length - num_pages)
                return lpn
        lpn = self._next_lpn
        if lpn + num_pages > self.vssd.logical_pages:
            raise ConfigError(
                f"LSM out of logical space: need {num_pages} pages at "
                f"{lpn}/{self.vssd.logical_pages}"
            )
        self._next_lpn += num_pages
        return lpn

    def _free_extent(self, table: SsTable) -> None:
        # Trim the pages (stale for GC) and recycle the LPN range.
        for offset in range(table.num_pages):
            self.vssd.ftl.trim(table.lpn_of(offset))
        insort(self._free_extents, (table.first_lpn, table.num_pages))

    def _write_table(self, entries: Dict[str, object], level: int) -> Generator:
        """Process: materialise sorted entries as a flash-resident table."""
        keys = sorted(entries)
        num_pages = max(1, -(-len(keys) // self.entries_per_page))
        first_lpn = self._alloc_extent(num_pages)
        index: Dict[str, int] = {}
        pages: Dict[int, Dict[str, object]] = {}
        bloom = BloomFilter(max(1, len(keys)), self.false_positive_rate)
        for offset in range(num_pages):
            chunk = keys[offset * self.entries_per_page:
                         (offset + 1) * self.entries_per_page]
            pages[offset] = {k: entries[k] for k in chunk}
            for k in chunk:
                index[k] = offset
                bloom.add(k)
            yield self.sim.spawn(self.vssd.write(first_lpn + offset))
            self.pages_written += 1
        return SsTable(
            table_id=next(self._table_ids), level=level,
            first_lpn=first_lpn, num_pages=num_pages,
            index=index, bloom=bloom, pages=pages,
        )

    def _maybe_compact(self) -> Generator:
        """Process: cascade compactions while any level overflows."""
        level = 0
        while level < self.max_levels - 1:
            if len(self._levels[level]) <= self.level_fanout:
                level += 1
                continue
            yield self.sim.spawn(self._compact_level(level))
            # A merge may have overflowed level+1; re-check from there.
            level += 1

    def _compact_level(self, level: int) -> Generator:
        """Process: merge every table at ``level`` into one at ``level+1``."""
        inputs = self._levels[level]
        self._levels[level] = []
        merged: Dict[str, object] = {}
        # Oldest first, newest overwrites: preserves recency.
        for table in inputs:
            for offset in range(table.num_pages):
                yield self.sim.spawn(self.vssd.read(table.lpn_of(offset)))
                self.pages_read += 1
            merged.update(
                {k: table.pages[off][k] for k, off in table.index.items()}
            )
        target_level = level + 1
        bottom = target_level == self.max_levels - 1
        if bottom:
            # Tombstones have masked everything below; drop them.
            merged = {k: v for k, v in merged.items() if v is not _TOMBSTONE}
        if merged:
            table = yield self.sim.spawn(
                self._write_table(merged, level=target_level)
            )
            self._levels[target_level].append(table)
        for table in inputs:
            self._free_extent(table)
        self.compactions += 1

    # ------------------------------------------------------------- queries

    def table_count(self) -> int:
        """Tables currently resident across all levels."""
        return sum(len(tables) for tables in self._levels)

    def level_sizes(self) -> List[int]:
        """Table count per level (level 0 first)."""
        return [len(tables) for tables in self._levels]

    def resident_entries(self) -> int:
        """Entries across memtable and all tables (incl. shadowed ones)."""
        return len(self._memtable) + sum(
            t.num_entries for tables in self._levels for t in tables
        )

    def space_pages(self) -> int:
        """Flash pages occupied by resident tables."""
        return sum(t.num_pages for tables in self._levels for t in tables)

    def check_invariants(self) -> None:
        """Extents must be disjoint and within the device (test hook)."""
        extents = sorted(
            (t.first_lpn, t.num_pages)
            for tables in self._levels for t in tables
        )
        previous_end = 0
        for lpn, length in extents:
            if lpn < previous_end:
                raise ConfigError(f"overlapping extents at lpn {lpn}")
            previous_end = lpn + length
        if previous_end > self.vssd.logical_pages:
            raise ConfigError("extent beyond device capacity")
