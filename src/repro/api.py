"""The stable public API of the reproduction.

``import repro.api as rackblox`` and everything you are supposed to
build on is here, under names that will not move.  Internal module paths
(``repro.service.server``, ``repro.cluster.config``, ...) keep working
-- nothing is removed by this facade -- but they are implementation
layout, free to be reorganised; ``repro.api`` is the surface the
deprecation-shim test (``tests/test_api_facade.py``) holds stable.

The surface, by layer:

* **sim** (configuration for the discrete-event rack simulator) --
  :class:`RackConfig`, :class:`SystemType`;
* **experiments** (batch runs over the simulator) -- :class:`RunSpec`,
  :class:`ParallelRunner`, :class:`RackResult`;
* **service** (the live serving stack) -- :class:`RackService`,
  :class:`ServiceClient`, :class:`ClientConfig`, :class:`ServiceError`,
  :func:`run_loadgen`, :data:`PROTOCOL_VERSION`,
  :data:`SUPPORTED_VERSIONS`; sharding (:class:`HashRing`,
  :class:`RackShard`, :class:`ShardRouter`,
  :class:`ShardedRackService`, :class:`ShardProxy`,
  :func:`build_shard_configs`); load-aware read routing
  (:class:`ReplicaSelector`, :class:`RoutingTrace`,
  :class:`FakeLoadView`, :class:`Decision`, :class:`ZipfSampler`);
  the elastic fleet (:class:`FleetController`, :class:`MigrationPlan`,
  :class:`MigrationStream`, :class:`KeyRange`,
  :class:`MembershipError`, :class:`MembershipBusy`,
  :class:`MigrationStreamError`); multi-tenant QoS
  (:class:`TenantSpec`, :class:`TenantSpecError`,
  :func:`load_tenant_specs`, :class:`QosScheduler`,
  :class:`ReadCache`); the stats schema (:func:`validate_stats`,
  :class:`StatsSchemaError`);
* **chaos** (fault injection) -- :class:`FaultEvent`,
  :class:`FaultSchedule`, :func:`run_chaos_experiment`,
  :class:`ChaosReport`.
"""

from repro.chaos.runner import ChaosReport, run_chaos_experiment
from repro.chaos.schedule import FaultEvent, FaultSchedule
from repro.cluster.config import RackConfig, SystemType
from repro.experiments.parallel import ParallelRunner, RunSpec
from repro.experiments.runner import RackResult
from repro.service.client import ClientConfig, ServiceClient, ServiceError
from repro.service.loadgen import LoadgenReport, ZipfSampler, run_loadgen
from repro.service.membership import (
    FleetController,
    MembershipBusy,
    MembershipError,
    MigrationPlan,
)
from repro.service.migration import MigrationStream, MigrationStreamError
from repro.service.protocol import PROTOCOL_VERSION, SUPPORTED_VERSIONS
from repro.service.qos import (
    QosScheduler,
    TenantSpec,
    TenantSpecError,
    load_tenant_specs,
)
from repro.service.readcache import ReadCache
from repro.service.router import (
    ShardedRackService,
    ShardProxy,
    ShardRouter,
    build_shard_configs,
)
from repro.service.schema import StatsSchemaError, validate_stats
from repro.service.selector import (
    Decision,
    FakeLoadView,
    ReplicaSelector,
    RoutingTrace,
)
from repro.service.server import RackService
from repro.service.shard import HashRing, KeyRange, RackShard

__all__ = [
    # sim: simulator configuration
    "RackConfig",
    "SystemType",
    # experiments: batch runs over the simulator
    "RunSpec",
    "ParallelRunner",
    "RackResult",
    # service: single-rack serving and the client
    "RackService",
    "ServiceClient",
    "ClientConfig",
    "ServiceError",
    "LoadgenReport",
    "run_loadgen",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    # service: sharded serving
    "HashRing",
    "RackShard",
    "ShardRouter",
    "ShardedRackService",
    "ShardProxy",
    "build_shard_configs",
    # service: load-aware read routing
    "ReplicaSelector",
    "RoutingTrace",
    "FakeLoadView",
    "Decision",
    "ZipfSampler",
    # service: elastic fleet
    "FleetController",
    "MigrationPlan",
    "MigrationStream",
    "KeyRange",
    "MembershipError",
    "MembershipBusy",
    "MigrationStreamError",
    # service: multi-tenant QoS and the read cache
    "TenantSpec",
    "TenantSpecError",
    "load_tenant_specs",
    "QosScheduler",
    "ReadCache",
    # service: stats schema
    "validate_stats",
    "StatsSchemaError",
    # chaos: fault injection
    "FaultEvent",
    "FaultSchedule",
    "run_chaos_experiment",
    "ChaosReport",
]
