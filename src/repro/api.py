"""The stable public API of the reproduction.

``import repro.api as rackblox`` and everything you are supposed to
build on is here, under names that will not move.  Internal module paths
(``repro.service.server``, ``repro.cluster.config``, ...) keep working
-- nothing is removed by this facade -- but they are implementation
layout, free to be reorganised; ``repro.api`` is the surface the
deprecation-shim test (``tests/test_api_facade.py``) holds stable.

The surface, by layer:

* **Configuration** -- :class:`RackConfig`, :class:`SystemType`;
* **Batch experiments** -- :class:`RunSpec`, :class:`ParallelRunner`,
  :class:`RackResult`;
* **Chaos** -- :class:`FaultEvent`, :class:`FaultSchedule`,
  :func:`run_chaos_experiment`, :class:`ChaosReport`;
* **Serving** -- :class:`RackService`, :class:`ServiceClient`,
  :class:`ServiceError`, :func:`run_loadgen`, :data:`PROTOCOL_VERSION`,
  :data:`SUPPORTED_VERSIONS`;
* **Sharded serving** -- :class:`HashRing`, :class:`RackShard`,
  :class:`ShardRouter`, :class:`ShardedRackService`,
  :class:`ShardProxy`, :func:`build_shard_configs`;
* **Load-aware read routing** -- :class:`ReplicaSelector`,
  :class:`RoutingTrace`, :class:`FakeLoadView`, :class:`Decision`,
  :class:`ZipfSampler`;
* **Elastic fleet** -- :class:`FleetController`, :class:`MigrationPlan`,
  :class:`MigrationStream`, :class:`KeyRange`, :class:`MembershipError`,
  :class:`MembershipBusy`, :class:`MigrationStreamError`;
* **Stats schema** -- :func:`validate_stats`, :class:`StatsSchemaError`.
"""

from repro.chaos.runner import ChaosReport, run_chaos_experiment
from repro.chaos.schedule import FaultEvent, FaultSchedule
from repro.cluster.config import RackConfig, SystemType
from repro.experiments.parallel import ParallelRunner, RunSpec
from repro.experiments.runner import RackResult
from repro.service.client import ServiceClient, ServiceError
from repro.service.loadgen import LoadgenReport, ZipfSampler, run_loadgen
from repro.service.membership import (
    FleetController,
    MembershipBusy,
    MembershipError,
    MigrationPlan,
)
from repro.service.migration import MigrationStream, MigrationStreamError
from repro.service.protocol import PROTOCOL_VERSION, SUPPORTED_VERSIONS
from repro.service.router import (
    ShardedRackService,
    ShardProxy,
    ShardRouter,
    build_shard_configs,
)
from repro.service.schema import StatsSchemaError, validate_stats
from repro.service.selector import (
    Decision,
    FakeLoadView,
    ReplicaSelector,
    RoutingTrace,
)
from repro.service.server import RackService
from repro.service.shard import HashRing, KeyRange, RackShard

__all__ = [
    # configuration
    "RackConfig",
    "SystemType",
    # batch experiments
    "RunSpec",
    "ParallelRunner",
    "RackResult",
    # chaos
    "FaultEvent",
    "FaultSchedule",
    "run_chaos_experiment",
    "ChaosReport",
    # serving
    "RackService",
    "ServiceClient",
    "ServiceError",
    "LoadgenReport",
    "run_loadgen",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    # sharded serving
    "HashRing",
    "RackShard",
    "ShardRouter",
    "ShardedRackService",
    "ShardProxy",
    "build_shard_configs",
    # load-aware read routing
    "ReplicaSelector",
    "RoutingTrace",
    "FakeLoadView",
    "Decision",
    "ZipfSampler",
    # elastic fleet
    "FleetController",
    "MigrationPlan",
    "MigrationStream",
    "KeyRange",
    "MembershipError",
    "MembershipBusy",
    "MigrationStreamError",
    # stats schema
    "validate_stats",
    "StatsSchemaError",
]
