"""RackBlox reproduction: software-defined rack-scale storage.

This package reproduces the system described in "RackBlox: A
Software-Defined Rack-Scale Storage System with Network-Storage Co-Design"
(Reidys et al., SOSP 2023).  The physical testbed (Tofino switch,
open-channel SSDs) is replaced by a discrete-event simulation that executes
the same control logic: Algorithm 1 in the switch data plane, Algorithm 2 on
the storage servers, coordinated I/O scheduling, coordinated GC, and
two-level rack-scale wear leveling.

Public entry points:

* :class:`repro.cluster.rack.Rack` -- assemble a simulated rack.
* :mod:`repro.experiments` -- runners reproducing every figure in the paper.
* :mod:`repro.workloads` -- YCSB and BenchBase-style workload generators.
"""

from repro.version import __version__

__all__ = ["__version__"]
