"""SSD emulator validation (§3.7, "Emulation").

The paper validates its Python SSD emulator against the real programmable
SSD.  Without the hardware, we validate against *first principles*: the
simulated device must reproduce the analytically known behaviour of the
modelled geometry --

* a lone operation costs exactly the device profile's latency;
* a saturated channel serves 1/latency operations per second;
* channels scale throughput linearly (channel-level parallelism is the
  isolation primitive of §3.3);
* greedy GC's write amplification under uniform random rewrites stays in
  the band predicted by the standard greedy-GC analysis for the
  configured overprovisioning.
"""

import random
from dataclasses import dataclass
from typing import Generator, List

from repro.flash.ftl import PageMappedFtl
from repro.flash.gc import GreedyGcPolicy
from repro.flash.geometry import FlashGeometry
from repro.flash.ssd import Ssd
from repro.flash.timing import DeviceProfile, PSSD
from repro.sim import AllOf, Simulator
from repro.vssd.allocator import VssdAllocator


@dataclass
class ValidationRow:
    check: str
    expected: float
    measured: float

    @property
    def error_pct(self) -> float:
        if self.expected == 0:
            return 0.0
        return 100.0 * abs(self.measured - self.expected) / self.expected

    @property
    def ok(self) -> bool:
        return self.error_pct <= 10.0


def _single_op_latencies(profile: DeviceProfile) -> List[ValidationRow]:
    sim = Simulator()
    geo = FlashGeometry(channels=1, chips_per_channel=1, blocks_per_chip=16,
                        pages_per_block=16)
    ssd = Ssd(sim, "v", geometry=geo, profile=profile)
    vssd = VssdAllocator(ssd).create_hardware_isolated("v", channels=[0])
    rows = []

    def one_write():
        yield sim.spawn(vssd.write(0))

    start = sim.now
    sim.spawn(one_write())
    sim.run()
    rows.append(ValidationRow(
        "single 4KB program (us)", profile.program_latency(4.0), sim.now - start,
    ))

    start = sim.now
    sim.spawn(vssd.read(0))
    sim.run()
    rows.append(ValidationRow(
        "single 4KB read (us)", profile.read_latency(4.0), sim.now - start,
    ))
    return rows


def _channel_throughput(profile: DeviceProfile, channels: int) -> ValidationRow:
    sim = Simulator()
    geo = FlashGeometry(channels=channels, chips_per_channel=1,
                        blocks_per_chip=64, pages_per_block=16)
    ssd = Ssd(sim, "v", geometry=geo, profile=profile)
    vssd = VssdAllocator(ssd).create_hardware_isolated(
        "v", channels=list(range(channels))
    )
    reads_per_channel = 200

    def reader(offset: int) -> Generator:
        for i in range(reads_per_channel):
            yield sim.spawn(vssd.read((offset + i * channels) % vssd.logical_pages))

    procs = [sim.spawn(reader(c)) for c in range(channels)]
    done = AllOf(sim, procs)
    sim.run()
    assert done.triggered
    total_reads = channels * reads_per_channel
    measured_kiops = total_reads / (sim.now / 1000.0)
    expected_kiops = channels * (1000.0 / profile.read_latency(4.0))
    return ValidationRow(
        f"{channels}-channel saturated read throughput (kIOPS)",
        expected_kiops, measured_kiops,
    )


def _write_amplification(overprovision: float, seed: int = 5) -> ValidationRow:
    from repro.flash.chip import FlashChip

    chips = [FlashChip(i, 64, 32) for i in range(2)]
    ftl = PageMappedFtl("wa", chips, 32, overprovision=overprovision)
    policy = GreedyGcPolicy()
    rng = random.Random(seed)
    # Steady state: many uniform random rewrites over the full LBA space.
    for _ in range(ftl.logical_pages * 6):
        if ftl.free_block_ratio() < 0.1:
            policy.collect_until(ftl, target_ratio=0.12)
        ftl.place_write(rng.randrange(ftl.logical_pages))
    measured = ftl.write_amplification()
    # Greedy GC under uniform random traffic: WA ~= 1 / (2 * OP) for small
    # OP (the classical approximation); at OP=0.25 the usual band is ~2.
    expected = 1.0 / (2.0 * overprovision)
    return ValidationRow(
        f"greedy-GC write amplification (OP={overprovision})",
        expected, measured,
    )


def validate_device(profile: DeviceProfile = PSSD) -> List[ValidationRow]:
    """Run the whole validation battery for one device profile."""
    rows = _single_op_latencies(profile)
    rows.append(_channel_throughput(profile, channels=1))
    rows.append(_channel_throughput(profile, channels=4))
    rows.append(_write_amplification(overprovision=0.25))
    return rows


def validation_table(rows: List[ValidationRow]) -> str:
    lines = ["SSD emulator validation (expected vs measured)"]
    for row in rows:
        flag = "ok" if row.ok else "DEVIATION"
        lines.append(
            f"  {row.check:55s} expected={row.expected:10.1f} "
            f"measured={row.measured:10.1f} err={row.error_pct:5.1f}% {flag}"
        )
    return "\n".join(lines)
