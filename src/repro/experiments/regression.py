"""Regression comparison between saved figure results.

Figures are persisted as JSON (:mod:`repro.experiments.results_io`); this
module diffs two runs -- a baseline and a candidate -- and reports every
metric that drifted beyond a relative tolerance.  Rows are matched by
their non-numeric label columns, so reordering or added rows are handled
gracefully.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.experiments.figures import FigureResult


@dataclass
class Drift:
    """One metric that moved beyond tolerance."""

    figure: str
    row_key: str
    column: str
    baseline: float
    candidate: float

    @property
    def ratio(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.candidate else 1.0
        return self.candidate / self.baseline

    def describe(self) -> str:
        return (
            f"{self.figure} [{self.row_key}] {self.column}: "
            f"{self.baseline:.1f} -> {self.candidate:.1f} "
            f"({self.ratio:.2f}x)"
        )


@dataclass
class RegressionReport:
    drifts: List[Drift] = field(default_factory=list)
    rows_compared: int = 0
    values_compared: int = 0
    missing_rows: List[Tuple[str, str]] = field(default_factory=list)
    missing_figures: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.drifts and not self.missing_rows and not self.missing_figures

    def describe(self) -> str:
        lines = [
            f"compared {self.values_compared} values across "
            f"{self.rows_compared} rows"
        ]
        for figure in self.missing_figures:
            lines.append(f"MISSING FIGURE: {figure}")
        for figure, key in self.missing_rows:
            lines.append(f"MISSING ROW: {figure} [{key}]")
        for drift in sorted(self.drifts, key=lambda d: -abs(d.ratio - 1.0)):
            lines.append("DRIFT: " + drift.describe())
        if self.clean:
            lines.append("no drift beyond tolerance")
        return "\n".join(lines)


def _row_key(row: Dict[str, object]) -> str:
    labels = [str(v) for v in row.values() if not isinstance(v, (int, float))
              and v is not None]
    return " / ".join(labels) if labels else "<unlabelled>"


def compare_figures(
    baseline: FigureResult,
    candidate: FigureResult,
    tolerance: float = 0.25,
) -> RegressionReport:
    """Diff two runs of the same figure.

    ``tolerance`` is the allowed relative change (0.25 = +-25%); latency
    tails are noisy, so the default is generous -- tighten per column by
    diffing again on a filtered result if needed.
    """
    if tolerance <= 0:
        raise ConfigError("tolerance must be positive")
    report = RegressionReport()
    candidate_rows = {_row_key(row): row for row in candidate.rows}
    for row in baseline.rows:
        key = _row_key(row)
        other = candidate_rows.get(key)
        if other is None:
            report.missing_rows.append((baseline.figure, key))
            continue
        report.rows_compared += 1
        for column, value in row.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            other_value = other.get(column)
            if not isinstance(other_value, (int, float)):
                continue
            report.values_compared += 1
            if value == 0:
                drifted = other_value != 0
            else:
                drifted = abs(other_value / value - 1.0) > tolerance
            if drifted:
                report.drifts.append(Drift(
                    figure=baseline.figure, row_key=key, column=column,
                    baseline=float(value), candidate=float(other_value),
                ))
    return report


def compare_runs(
    baseline: Dict[str, FigureResult],
    candidate: Dict[str, FigureResult],
    tolerance: float = 0.25,
) -> RegressionReport:
    """Diff whole saved runs (as loaded by ``load_figures``)."""
    merged = RegressionReport()
    for name, base_figure in baseline.items():
        cand_figure = candidate.get(name)
        if cand_figure is None:
            merged.missing_figures.append(name)
            continue
        partial = compare_figures(base_figure, cand_figure, tolerance)
        merged.drifts.extend(partial.drifts)
        merged.rows_compared += partial.rows_compared
        merged.values_compared += partial.values_compared
        merged.missing_rows.extend(partial.missing_rows)
    return merged
