"""Persistence for figure results.

Figures take minutes to regenerate; saving them as JSON lets reports,
notebooks, and regression diffs reuse a run.  The format is stable and
hand-readable: one object per figure with its title, columns, rows, and
notes.
"""

import json
import os
from typing import Dict

from repro.errors import ConfigError
from repro.experiments.figures import FigureResult

FORMAT_VERSION = 1


def figure_to_dict(result: FigureResult) -> dict:
    return {
        "format_version": FORMAT_VERSION,
        "figure": result.figure,
        "title": result.title,
        "columns": result.columns,
        "rows": result.rows,
        "notes": result.notes,
    }


def figure_from_dict(payload: dict) -> FigureResult:
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigError(
            f"unsupported figure format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    missing = {"figure", "title", "columns", "rows"} - set(payload)
    if missing:
        raise ConfigError(f"figure payload missing fields: {sorted(missing)}")
    return FigureResult(
        figure=payload["figure"],
        title=payload["title"],
        columns=list(payload["columns"]),
        rows=[dict(row) for row in payload["rows"]],
        notes=payload.get("notes", ""),
    )


def save_figure(result: FigureResult, path: str) -> None:
    """Write one figure result as JSON."""
    with open(path, "w") as fh:
        json.dump(figure_to_dict(result), fh, indent=2)
        fh.write("\n")


def load_figure(path: str) -> FigureResult:
    with open(path) as fh:
        return figure_from_dict(json.load(fh))


def save_figures(results: Dict[str, FigureResult], directory: str) -> Dict[str, str]:
    """Write a set of figures into a directory; returns name -> path."""
    os.makedirs(directory, exist_ok=True)
    paths = {}
    for name, result in results.items():
        path = os.path.join(directory, f"{name}.json")
        save_figure(result, path)
        paths[name] = path
    return paths


def load_figures(directory: str) -> Dict[str, FigureResult]:
    """Load every ``*.json`` figure in a directory."""
    if not os.path.isdir(directory):
        raise ConfigError(f"{directory!r} is not a directory")
    results = {}
    for entry in sorted(os.listdir(directory)):
        if entry.endswith(".json"):
            results[entry[:-5]] = load_figure(os.path.join(directory, entry))
    return results
