"""Run one rack under one workload and collect metrics."""

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cluster.client import Client
from repro.cluster.config import RackConfig
from repro.cluster.rack import Rack
from repro.errors import SimulationError
from repro.metrics.collector import ExperimentMetrics
from repro.sim import AllOf, Event, Simulator
from repro.sim.core import MSEC, SEC
from repro.trace.tracer import TraceCollection
from repro.workloads.generator import OpenLoopGenerator
from repro.workloads.spec import WorkloadSpec


def run_until(sim: Simulator, event: Event, chunk_us: float = 500 * MSEC,
              max_sim_us: float = 600 * SEC) -> None:
    """Drive the simulator until ``event`` triggers.

    Perpetual housekeeping processes (GC monitors, cache flushers) keep
    the event heap non-empty forever, so a bare ``run()`` would never
    return; instead we advance in chunks until the completion event fires.
    """
    while not event.triggered:
        if sim.now >= max_sim_us:
            raise SimulationError(
                f"experiment did not converge within {max_sim_us / SEC:.0f} "
                "simulated seconds"
            )
        sim.run(until=sim.now + chunk_us)


@dataclass
class RackResult:
    """Everything an experiment produces from one rack run."""

    metrics: ExperimentMetrics
    redirects: int
    gc_runs: int
    switch_counters: Dict[str, int] = field(default_factory=dict)
    sim_duration_us: float = 0.0
    #: Host wall-clock seconds spent simulating (measures engine speed,
    #: not rack behaviour; this is what --jobs fan-out divides down).
    wall_clock_s: float = 0.0
    #: Simulator callbacks executed during the run.
    events: int = 0
    #: Per-request span traces (None unless the run sampled tracing).
    #: Plain data, so it pickles with the result across the process-pool
    #: fan-out.
    traces: Optional[TraceCollection] = None

    def events_per_sec(self) -> float:
        """Raw engine throughput: simulator events per wall-clock second."""
        if self.wall_clock_s <= 0.0:
            return 0.0
        return self.events / self.wall_clock_s

    def summary(self) -> Dict[str, float]:
        out = self.metrics.summary()
        out["redirects"] = float(self.redirects)
        out["gc_runs"] = float(self.gc_runs)
        out["wall_clock_s"] = self.wall_clock_s
        out["events_per_sec"] = self.events_per_sec()
        if self.traces is not None:
            out.update(self.traces.summary())
        return out


def run_rack_experiment(
    config: RackConfig,
    workload: WorkloadSpec,
    requests_per_pair: int = 3000,
    rate_iops_per_pair: float = 1500.0,
    working_set_fraction: float = 0.5,
    rack: Optional[Rack] = None,
) -> RackResult:
    """Build a rack, precondition it, and drive the workload to completion."""
    started = time.perf_counter()
    if rack is None:
        rack = Rack(config)
    events_before = rack.sim.event_count
    rack.precondition(working_set_fraction=working_set_fraction)
    metrics = ExperimentMetrics()
    chaotic = getattr(rack, "chaos", None) is not None
    if chaotic:
        # Fault-schedule runs need timeout/retry clients: the plain client
        # would wait forever on a packet dropped at a crashed server's NIC.
        from repro.chaos.client import ChaosClient

        client_cls = ChaosClient
    else:
        client_cls = Client
    processes = []
    for idx, pair in enumerate(rack.pairs):
        generator = OpenLoopGenerator(
            workload,
            key_space=rack.working_set_pages(pair, working_set_fraction),
            rate_iops=rate_iops_per_pair,
            rng=rack.rng.stream(f"client-{idx}"),
        )
        client = client_cls(
            rack,
            name=f"client-{idx}",
            pair=pair,
            generator=generator,
            metrics=metrics,
            working_set_fraction=working_set_fraction,
        )
        processes.append(rack.sim.spawn(client.run(requests_per_pair)))
    done = AllOf(rack.sim, processes)
    run_until(rack.sim, done)
    if chaotic:
        # Let trailing schedule events (late recoveries, settle-delayed
        # invariant checks) fire even when the clients drained early, then
        # fold the chaos accounting into the metrics.
        rack.chaos.finish()
        metrics.chaos = rack.chaos.counters()
    metrics.redirected_reads = rack.redirect_count()
    metrics.gc_blocked_reads = rack.gc_blocked_read_count()
    return RackResult(
        metrics=metrics,
        redirects=rack.redirect_count(),
        gc_runs=rack.total_gc_runs(),
        switch_counters={
            "reads_forwarded": rack.switch.reads_forwarded,
            "reads_redirected": rack.switch.reads_redirected,
            "writes_forwarded": rack.switch.writes_forwarded,
            "gc_accepted": rack.switch.gc_accepted,
            "gc_delayed": rack.switch.gc_delayed,
            "recirculations": rack.switch.recirculations,
        },
        sim_duration_us=rack.sim.now,
        wall_clock_s=time.perf_counter() - started,
        events=rack.sim.event_count - events_before,
        traces=rack.tracer.collection(),
    )
