"""Parallel experiment engine: fan independent rack runs out over processes.

Every figure of the paper's evaluation is a sweep of *independent*
(system x workload x seed) simulations, so reproducing the evaluation is
embarrassingly parallel.  This module provides the three pieces the
figure runners and :class:`~repro.experiments.sweeps.Sweep` build on:

* :class:`RunSpec` -- a picklable, hashable description of one rack run
  (the unit of work shipped to worker processes and the cache key);
* :class:`RunCache` -- a bounded LRU of ``RunSpec -> RackResult`` shared
  by every figure in the process (figures 9-12 all read the same YCSB
  sweep and pay for it once);
* :class:`ParallelRunner` -- executes a list of specs with deterministic
  result ordering, per-spec deduplication, and a
  :class:`~concurrent.futures.ProcessPoolExecutor` fan-out that degrades
  gracefully to in-process execution when ``jobs=1``, when there is only
  one uncached spec, or on platforms without ``fork``.

Determinism guarantee: a run's result depends only on its spec (one root
seed feeds named RNG substreams -- see ``docs/simulation-model.md``), so
executing specs in any order, in any process, yields bit-identical
results; the runner then re-assembles them in request order.
"""

import multiprocessing
import pickle
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cluster.config import RackConfig, SystemType
from repro.errors import ConfigError
from repro.experiments.runner import RackResult, run_rack_experiment
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to reproduce one rack run, picklable and hashable.

    ``overrides`` holds extra :class:`RackConfig` keyword arguments as a
    sorted tuple of pairs so specs hash and compare by value; build specs
    with :meth:`create` to get the normalisation for free.
    """

    system: SystemType
    workload: WorkloadSpec
    requests: int = 3000
    rate: float = 1500.0
    seed: int = 42
    overrides: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def create(
        cls,
        system: SystemType,
        workload: WorkloadSpec,
        requests: int,
        rate: float,
        seed: int,
        **overrides: Any,
    ) -> "RunSpec":
        return cls(
            system=system,
            workload=workload,
            requests=requests,
            rate=rate,
            seed=seed,
            overrides=tuple(sorted(overrides.items())),
        )

    def build_config(self) -> RackConfig:
        return RackConfig(system=self.system, seed=self.seed, **dict(self.overrides))

    def execute(self) -> RackResult:
        """Run this spec in the current process."""
        return run_rack_experiment(
            self.build_config(),
            self.workload,
            requests_per_pair=self.requests,
            rate_iops_per_pair=self.rate,
        )


def _execute_spec(spec: RunSpec) -> RackResult:
    """Top-level worker entry point (must be picklable by name)."""
    return spec.execute()


def _call_with_kwargs(task: Tuple[Callable[..., Any], Dict[str, Any]]) -> Any:
    """Top-level trampoline for :meth:`ParallelRunner.map` keyword tasks."""
    fn, kwargs = task
    return fn(**kwargs)


class RunCache:
    """A bounded LRU of memoized runs, shared across figures.

    Eviction is by least-recent *use* (gets refresh recency), so a long
    sweep session cannot grow the cache without limit while the runs the
    current figure keeps re-reading stay resident.
    """

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ConfigError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Any) -> Optional[Any]:
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Any, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, RunCache):
            return self._data == other._data
        if isinstance(other, dict):
            return dict(self._data) == other
        return NotImplemented


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The ``fork`` multiprocessing context, or ``None`` where unsupported.

    Workers are forked rather than spawned so they inherit the fully
    imported package (spawn would re-import per worker and cannot ship
    closures); where fork does not exist (Windows, some sandboxes) the
    runner simply executes in-process.
    """
    try:
        if "fork" not in multiprocessing.get_all_start_methods():
            return None
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - defensive
        return None


class ParallelRunner:
    """Executes :class:`RunSpec` lists with process-pool fan-out.

    * **Deterministic ordering** -- ``run_specs(specs)[i]`` is always the
      result of ``specs[i]``, regardless of completion order.
    * **Deduplication** -- repeated specs (figures frequently re-request
      the runs of an earlier figure) execute exactly once.
    * **Caching** -- results land in a shared :class:`RunCache`; cached
      specs never re-execute, even across figures.
    * **Graceful fallback** -- ``jobs=1``, a single pending spec, a
      platform without ``fork``, or a pool that fails to start all fall
      back to plain in-process execution with identical results.
    """

    def __init__(self, jobs: int = 1, cache: Optional[RunCache] = None) -> None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache if cache is not None else RunCache()

    # ------------------------------------------------------------- specs

    def run_specs(self, specs: Sequence[RunSpec]) -> List[RackResult]:
        """Execute every spec (deduplicated, cached) and return results
        aligned with the input order."""
        pending: List[RunSpec] = []
        seen = set()
        for spec in specs:
            if spec not in seen and spec not in self.cache:
                seen.add(spec)
                pending.append(spec)
        for spec, result in zip(pending, self._execute(pending, _execute_spec)):
            self.cache.put(spec, result)
        return [self.cache.get(spec) for spec in specs]

    def run_spec(self, spec: RunSpec) -> RackResult:
        return self.run_specs([spec])[0]

    # ------------------------------------------------------------ generic

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """``[fn(item) for item in items]`` with the same fan-out rules.

        No caching or deduplication -- this is the escape hatch for
        non-rack work (wear campaigns, user sweeps).  ``fn`` must be a
        module-level function to cross the process boundary; unpicklable
        work degrades to in-process execution instead of failing.
        """
        return self._execute(list(items), fn)

    def starmap_kwargs(
        self, fn: Callable[..., Any], kwargs_list: Sequence[Dict[str, Any]]
    ) -> List[Any]:
        """``[fn(**kw) for kw in kwargs_list]`` via the fan-out engine."""
        tasks = [(fn, dict(kwargs)) for kwargs in kwargs_list]
        return self._execute(tasks, _call_with_kwargs)

    # ----------------------------------------------------------- internals

    def _execute(self, items: List[Any], fn: Callable[[Any], Any]) -> List[Any]:
        if not items:
            return []
        context = _fork_context()
        if self.jobs == 1 or len(items) == 1 or context is None:
            return [fn(item) for item in items]
        if not _is_picklable((fn, items)):
            return [fn(item) for item in items]
        from concurrent.futures import ProcessPoolExecutor

        workers = min(self.jobs, len(items))
        try:
            with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
                return list(pool.map(fn, items))
        except (OSError, PermissionError):
            # Pool creation can be forbidden (containers, seccomp); the
            # work is still valid, just slower in one process.
            return [fn(item) for item in items]


def _is_picklable(payload: Any) -> bool:
    try:
        pickle.dumps(payload)
    except Exception:
        return False
    return True


def default_jobs() -> int:
    """All available cores -- what ``--jobs 0`` resolves to."""
    import os

    return max(1, os.cpu_count() or 1)


# --------------------------------------------------------- shared instances

#: The process-wide run cache every figure shares (figures 9-12 read the
#: same YCSB sweep; this is what makes them pay for it once).
shared_cache = RunCache()

_active_runner = ParallelRunner(jobs=1, cache=shared_cache)


def get_runner() -> ParallelRunner:
    """The runner figure sweeps currently execute through."""
    return _active_runner


def set_jobs(jobs: int) -> ParallelRunner:
    """Install a runner with ``jobs`` workers (0 means all cores).

    The shared cache is preserved, so flipping parallelism never forces
    re-runs.  Returns the new active runner.
    """
    global _active_runner
    resolved = default_jobs() if jobs == 0 else jobs
    _active_runner = ParallelRunner(jobs=resolved, cache=shared_cache)
    return _active_runner


@contextmanager
def using_jobs(jobs: int) -> Iterator[ParallelRunner]:
    """Temporarily run figure sweeps with ``jobs`` workers."""
    global _active_runner
    previous = _active_runner
    _active_runner = ParallelRunner(
        jobs=default_jobs() if jobs == 0 else jobs, cache=previous.cache
    )
    try:
        yield _active_runner
    finally:
        _active_runner = previous
