"""Render reproduced figures as a text report (the EXPERIMENTS.md body)."""

import sys
import time
from contextlib import nullcontext
from typing import Dict, Iterable, Optional

from repro.experiments.figures import ALL_FIGURES, FigureResult
from repro.experiments.parallel import using_jobs


def run_figures(
    names: Optional[Iterable[str]] = None,
    quick: bool = False,
    stream=None,
    out_dir: Optional[str] = None,
    jobs: Optional[int] = None,
) -> Dict[str, FigureResult]:
    """Run the named figures (all by default) and return their results.

    ``quick`` shrinks request counts ~4x for smoke runs; the full settings
    are what EXPERIMENTS.md records.  When ``out_dir`` is given, each
    figure is also persisted as JSON (see
    :mod:`repro.experiments.results_io`).  ``jobs`` fans each figure's
    independent rack runs out over that many worker processes (0 = all
    cores); results are bit-identical to a serial run.
    """
    stream = stream if stream is not None else sys.stdout
    selected = list(names) if names is not None else list(ALL_FIGURES)
    results: Dict[str, FigureResult] = {}
    scope = using_jobs(jobs) if jobs is not None else nullcontext()
    with scope:
        for name in selected:
            if name not in ALL_FIGURES:
                raise KeyError(
                    f"unknown figure {name!r}; know {sorted(ALL_FIGURES)}"
                )
            fn = ALL_FIGURES[name]
            kwargs = {}
            if quick and "requests" in fn.__code__.co_varnames:
                kwargs["requests"] = 800
            if quick and "days" in fn.__code__.co_varnames:
                kwargs["days"] = 365
            started = time.time()
            result = fn(**kwargs)
            elapsed = time.time() - started
            results[name] = result
            print(result.to_table(), file=stream)
            print(f"[{name} took {elapsed:.1f}s]\n", file=stream)
    if out_dir is not None:
        from repro.experiments.results_io import save_figures

        paths = save_figures(results, out_dir)
        print(f"saved {len(paths)} figure(s) to {out_dir}", file=stream)
    return results


def main(argv=None) -> int:
    """CLI: ``python -m repro.experiments.report [--quick] [--jobs N]
    [--out DIR] [fig9 fig10 ...]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    quick = "--quick" in argv
    out_dir = None
    if "--out" in argv:
        idx = argv.index("--out")
        try:
            out_dir = argv[idx + 1]
        except IndexError:
            raise SystemExit("--out needs a directory argument")
        del argv[idx:idx + 2]
    jobs = None
    if "--jobs" in argv:
        idx = argv.index("--jobs")
        try:
            jobs = int(argv[idx + 1])
        except (IndexError, ValueError):
            raise SystemExit("--jobs needs an integer argument")
        if jobs < 0:
            raise SystemExit(f"--jobs must be >= 0, got {jobs}")
        del argv[idx:idx + 2]
    names = [a for a in argv if not a.startswith("-")] or None
    run_figures(names, quick=quick, out_dir=out_dir, jobs=jobs)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
