"""Generic parameter sweeps.

The figure runners are fixed sweeps; downstream users want their own
("what does the read tail do as I vary the soft threshold and cache
size?").  :class:`Sweep` expresses that in a few lines: declare axes,
point a run function at them, get a :class:`FigureResult` back -- which
then renders as a table/chart and persists/diffs like any built-in figure.

    sweep = Sweep("cache-study", axes={
        "cache": [16, 64, 256],
        "write_ratio": [0.2, 0.8],
    })
    result = sweep.run(lambda cache, write_ratio: {
        "write_p999": run_my_rack(cache, write_ratio),
    })
"""

import itertools
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.experiments.figures import FigureResult
from repro.experiments.parallel import ParallelRunner


class Sweep:
    """A cartesian sweep over named axes."""

    def __init__(
        self,
        name: str,
        axes: Mapping[str, Sequence[object]],
        title: str = "",
    ) -> None:
        if not axes:
            raise ConfigError("a sweep needs at least one axis")
        for axis, values in axes.items():
            if not values:
                raise ConfigError(f"axis {axis!r} has no values")
        self.name = name
        self.title = title or name
        self.axes: Dict[str, List[object]] = {
            axis: list(values) for axis, values in axes.items()
        }

    @property
    def num_points(self) -> int:
        product = 1
        for values in self.axes.values():
            product *= len(values)
        return product

    def points(self) -> Iterable[Dict[str, object]]:
        """Every axis combination, in row-major order."""
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            yield dict(zip(names, combo))

    def run(
        self,
        run_fn: Callable[..., Mapping[str, object]],
        progress_fn: Callable[[int, int, Dict[str, object]], None] = None,
        jobs: int = 1,
        runner: Optional[ParallelRunner] = None,
    ) -> FigureResult:
        """Execute ``run_fn(**point)`` at every *distinct* point.

        ``run_fn`` returns a mapping of metric name -> value; axis values
        and metrics merge into one row per point.  Duplicate points (axes
        listing the same value twice) execute once and share a result.
        ``progress_fn`` (if given) is called as ``(index, total, point)``
        before each distinct run is dispatched.

        With ``jobs > 1`` (or an explicit ``runner``) the distinct points
        fan out over a process pool -- ``run_fn`` must then be a picklable
        module-level function; anything else silently degrades to serial
        in-process execution.  Result rows are ordered and bit-identical
        either way.
        """
        if runner is None:
            runner = ParallelRunner(jobs=jobs)
        points = list(self.points())
        unique_points: List[Dict[str, object]] = []
        unique_keys: List[Tuple] = []
        seen = set()
        for point in points:
            key = _point_key(point)
            if key not in seen:
                seen.add(key)
                unique_keys.append(key)
                unique_points.append(point)
        total = len(unique_points)
        if progress_fn is not None:
            for index, point in enumerate(unique_points):
                progress_fn(index, total, point)
        outcomes = runner.starmap_kwargs(run_fn, unique_points)
        by_key = dict(zip(unique_keys, outcomes))

        rows: List[Dict[str, object]] = []
        metric_columns: List[str] = []
        for point in points:
            metrics = by_key[_point_key(point)]
            if not isinstance(metrics, Mapping):
                raise ConfigError(
                    f"run_fn must return a mapping of metrics, got "
                    f"{type(metrics).__name__}"
                )
            for key in metrics:
                if key in self.axes:
                    raise ConfigError(
                        f"metric {key!r} collides with an axis name"
                    )
                if key not in metric_columns:
                    metric_columns.append(key)
            row: Dict[str, object] = {
                axis: _render(value) for axis, value in point.items()
            }
            row.update(metrics)
            rows.append(row)
        columns = list(self.axes) + metric_columns
        return FigureResult(
            figure=self.name, title=self.title, columns=columns, rows=rows,
        )


def _point_key(point: Dict[str, object]) -> Tuple:
    """A hashable identity for one sweep point (dedup + result lookup)."""
    parts = []
    for axis, value in point.items():
        try:
            hash(value)
        except TypeError:
            value = repr(value)
        parts.append((axis, value))
    return tuple(parts)


def _render(value: object) -> object:
    """Axis values become row labels; keep short reprs for objects."""
    if isinstance(value, (int, str)):
        return str(value)
    if isinstance(value, float):
        return f"{value:g}"
    name = getattr(value, "name", None)
    return str(name) if name is not None else repr(value)


def best_point(
    result: FigureResult, metric: str, minimize: bool = True
) -> Tuple[Dict[str, object], float]:
    """The sweep row optimising ``metric`` (and its value)."""
    candidates = [
        (row, row[metric]) for row in result.rows
        if isinstance(row.get(metric), (int, float))
    ]
    if not candidates:
        raise ConfigError(f"no numeric values for metric {metric!r}")
    chooser = min if minimize else max
    return chooser(candidates, key=lambda pair: pair[1])
