"""One runner per figure of the paper's evaluation (§4).

Every ``figN_*`` function sweeps the relevant parameter space, runs the
simulated rack, and returns a :class:`FigureResult` whose rows mirror the
series the paper plots.  Absolute values come from our simulated devices
and network, so EXPERIMENTS.md compares *shapes* (who wins, by what
factor) rather than microseconds.

Runs are memoized per parameter set within the process, so figures that
share a sweep (9/10/11/12 all read the same YCSB runs) pay for it once.

Every figure runner *declares* its full point list up front and executes
it through the active :class:`~repro.experiments.parallel.ParallelRunner`
(see ``--jobs``), so independent rack simulations fan out across worker
processes while row assembly stays serial and deterministic.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.config import SystemType
from repro.experiments.parallel import RunSpec, get_runner, shared_cache
from repro.experiments.runner import RackResult
from repro.flash.timing import profile_by_name
from repro.net.latency import profile_by_name as net_profile_by_name
from repro.wear.simulate import WearSimulation
from repro.workloads.spec import TABLE2_WORKLOADS, WorkloadSpec, ycsb


@dataclass
class FigureResult:
    """A reproduced figure: labelled rows of measured values."""

    figure: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def to_table(self) -> str:
        """Render as an aligned text table (what EXPERIMENTS.md records)."""
        widths = {
            col: max(
                len(col),
                max((len(_fmt(row.get(col))) for row in self.rows), default=0),
            )
            for col in self.columns
        }
        header = "  ".join(col.ljust(widths[col]) for col in self.columns)
        sep = "  ".join("-" * widths[col] for col in self.columns)
        lines = [f"{self.figure}: {self.title}", header, sep]
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(row.get(col)).ljust(widths[col]) for col in self.columns)
            )
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def series(self, column: str) -> List[object]:
        return [row.get(column) for row in self.rows]

    def to_chart(self, width: int = 40) -> str:
        """Render the numeric columns as grouped text bars.

        Rows become groups (labelled by their non-numeric columns);
        numeric columns become the bars, scaled against the global peak
        -- a terminal-native view of the figure's shape.
        """
        from repro.metrics.ascii_chart import grouped_bar_chart

        numeric_columns = [
            col for col in self.columns
            if any(isinstance(row.get(col), (int, float)) for row in self.rows)
        ]
        groups = []
        for row in self.rows:
            label = " / ".join(
                str(row[col]) for col in self.columns
                if col not in numeric_columns and row.get(col) is not None
            ) or "row"
            groups.append((
                label,
                {col: row.get(col) for col in numeric_columns},
            ))
        chart = grouped_bar_chart(
            groups, series_order=numeric_columns, width=width,
            title=f"{self.figure}: {self.title}",
        )
        return chart


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


#: Labels used in tables for each system.
_LABEL = {
    SystemType.VDC: "VDC",
    SystemType.RACKBLOX_SOFTWARE: "RackBlox (Software)",
    SystemType.RACKBLOX: "RackBlox",
    SystemType.RACKBLOX_COORD_IO: "RackBlox-Coord I/O",
}

MAIN_SYSTEMS = (SystemType.VDC, SystemType.RACKBLOX_SOFTWARE, SystemType.RACKBLOX)
BREAKDOWN_SYSTEMS = (
    SystemType.VDC,
    SystemType.RACKBLOX_COORD_IO,
    SystemType.RACKBLOX_SOFTWARE,
    SystemType.RACKBLOX,
)

DEFAULT_WRITE_RATIOS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)

#: The shared, bounded run cache (kept under its historical name for
#: callers and tests that reach in).
_run_cache = shared_cache


def clear_cache() -> None:
    """Drop memoized runs (tests use this to force fresh racks)."""
    shared_cache.clear()


def _spec(
    system: SystemType,
    workload: WorkloadSpec,
    requests: int,
    rate: float,
    seed: int,
    **config_overrides,
) -> RunSpec:
    return RunSpec.create(system, workload, requests, rate, seed, **config_overrides)


def _run_all(specs: Sequence[RunSpec]) -> Dict[RunSpec, RackResult]:
    """Execute a figure's declared point list through the active runner."""
    results = get_runner().run_specs(list(specs))
    return dict(zip(specs, results))


def _cached_run(
    system: SystemType,
    workload: WorkloadSpec,
    requests: int,
    rate: float,
    seed: int,
    **config_overrides,
) -> RackResult:
    return get_runner().run_spec(
        _spec(system, workload, requests, rate, seed, **config_overrides)
    )


def _safe(recorder, method: str) -> Optional[float]:
    if recorder.count == 0:
        return None
    return getattr(recorder, method)()


# --------------------------------------------------------------- Figs 9-12


def _ycsb_sweep_rows(
    metric_fn,
    columns_suffix: str,
    write_ratios: Sequence[float],
    systems: Sequence[SystemType],
    requests: int,
    rate: float,
    seed: int,
) -> List[Dict[str, object]]:
    results = _run_all([
        _spec(system, ycsb(ratio), requests, rate, seed)
        for ratio in write_ratios
        for system in systems
    ])
    rows = []
    for ratio in write_ratios:
        row: Dict[str, object] = {"write_ratio": f"{int(ratio * 100)}%"}
        for system in systems:
            result = results[_spec(system, ycsb(ratio), requests, rate, seed)]
            read_val, write_val = metric_fn(result)
            row[f"{_LABEL[system]} read {columns_suffix}"] = read_val
            row[f"{_LABEL[system]} write {columns_suffix}"] = write_val
        rows.append(row)
    return rows


def _sweep_figure(
    figure: str,
    title: str,
    metric_fn,
    suffix: str,
    write_ratios: Sequence[float],
    systems: Sequence[SystemType],
    requests: int,
    rate: float,
    seed: int,
    notes: str = "",
) -> FigureResult:
    rows = _ycsb_sweep_rows(metric_fn, suffix, write_ratios, systems, requests, rate, seed)
    columns = ["write_ratio"]
    for system in systems:
        columns.append(f"{_LABEL[system]} read {suffix}")
        columns.append(f"{_LABEL[system]} write {suffix}")
    return FigureResult(figure=figure, title=title, columns=columns, rows=rows,
                        notes=notes)


def fig9_p999_latency(
    write_ratios: Sequence[float] = DEFAULT_WRITE_RATIOS,
    requests: int = 3000,
    rate: float = 1500.0,
    seed: int = 42,
) -> FigureResult:
    """Figure 9: P99.9 end-to-end latency, YCSB zipfian, write-ratio sweep."""
    return _sweep_figure(
        "Figure 9", "P99.9 end-to-end latency (us), YCSB zipfian",
        lambda r: (_safe(r.metrics.read_total, "p999"),
                   _safe(r.metrics.write_total, "p999")),
        "P99.9", write_ratios, MAIN_SYSTEMS, requests, rate, seed,
        notes="paper: RackBlox improves read P99.9 up to 4.4x over VDC, "
              "write up to 1.4x; RackBlox (Software) sits in between",
    )


def fig10_p99_latency(
    write_ratios: Sequence[float] = DEFAULT_WRITE_RATIOS,
    requests: int = 3000,
    rate: float = 1500.0,
    seed: int = 42,
) -> FigureResult:
    """Figure 10: P99 end-to-end latency for the same sweep."""
    return _sweep_figure(
        "Figure 10", "P99 end-to-end latency (us), YCSB zipfian",
        lambda r: (_safe(r.metrics.read_total, "p99"),
                   _safe(r.metrics.write_total, "p99")),
        "P99", write_ratios, MAIN_SYSTEMS, requests, rate, seed,
        notes="paper: read up to 2.1x, write up to 1.3x",
    )


def fig11_avg_latency(
    write_ratios: Sequence[float] = DEFAULT_WRITE_RATIOS,
    requests: int = 3000,
    rate: float = 1500.0,
    seed: int = 42,
) -> FigureResult:
    """Figure 11: average latency -- RackBlox must not hurt the mean."""
    return _sweep_figure(
        "Figure 11", "Average end-to-end latency (us), YCSB zipfian",
        lambda r: (_safe(r.metrics.read_total, "mean"),
                   _safe(r.metrics.write_total, "mean")),
        "avg", write_ratios, MAIN_SYSTEMS, requests, rate, seed,
        notes="paper: averages rise with write ratio; RackBlox never worse",
    )


def fig12_throughput(
    write_ratios: Sequence[float] = DEFAULT_WRITE_RATIOS,
    requests: int = 3000,
    rate: float = 1500.0,
    seed: int = 42,
) -> FigureResult:
    """Figure 12: throughput parity across systems."""
    results = _run_all([
        _spec(system, ycsb(ratio), requests, rate, seed)
        for ratio in write_ratios
        for system in MAIN_SYSTEMS
    ])
    rows = []
    for ratio in write_ratios:
        row: Dict[str, object] = {"write_ratio": f"{int(ratio * 100)}%"}
        for system in MAIN_SYSTEMS:
            result = results[_spec(system, ycsb(ratio), requests, rate, seed)]
            row[f"{_LABEL[system]} kIOPS"] = result.metrics.total_kiops()
        rows.append(row)
    columns = ["write_ratio"] + [f"{_LABEL[s]} kIOPS" for s in MAIN_SYSTEMS]
    return FigureResult(
        "Figure 12", "Average throughput (kIOPS), YCSB zipfian", columns, rows,
        notes="paper: RackBlox does not affect throughput (tail-focused)",
    )


# -------------------------------------------------------------- Figs 13-14


def fig13_workloads_tail(
    requests: int = 3000,
    rate: float = 1500.0,
    seed: int = 42,
    percentile: float = 99.9,
) -> FigureResult:
    """Figure 13: tail latency across the BenchBase workloads (Table 2)."""
    ordered = sorted(TABLE2_WORKLOADS.items(), key=lambda kv: kv[1].write_ratio)
    results = _run_all([
        _spec(system, spec, requests, rate, seed)
        for _name, spec in ordered
        for system in MAIN_SYSTEMS
    ])
    rows = []
    for name, spec in ordered:
        row: Dict[str, object] = {
            "workload": name, "write%": f"{spec.write_ratio * 100:.1f}",
        }
        for system in MAIN_SYSTEMS:
            result = results[_spec(system, spec, requests, rate, seed)]
            row[f"{_LABEL[system]} read P{percentile}"] = (
                result.metrics.read_total.p(percentile)
                if result.metrics.read_total.count else None
            )
            row[f"{_LABEL[system]} write P{percentile}"] = (
                result.metrics.write_total.p(percentile)
                if result.metrics.write_total.count else None
            )
        rows.append(row)
    columns = ["workload", "write%"]
    for system in MAIN_SYSTEMS:
        columns.append(f"{_LABEL[system]} read P{percentile}")
        columns.append(f"{_LABEL[system]} write P{percentile}")
    return FigureResult(
        "Figure 13", f"P{percentile} latency (us) across BenchBase workloads",
        columns, rows,
        notes="paper: up to 7.9x read improvement; write-heavy workloads gain "
              "most; AuctionMark gains less than its write ratio suggests "
              "(phased write bursts)",
    )


def fig14_workloads_tput(
    requests: int = 3000, rate: float = 1500.0, seed: int = 42
) -> FigureResult:
    """Figure 14: throughput across the BenchBase workloads."""
    ordered = sorted(TABLE2_WORKLOADS.items(), key=lambda kv: kv[1].write_ratio)
    results = _run_all([
        _spec(system, spec, requests, rate, seed)
        for _name, spec in ordered
        for system in MAIN_SYSTEMS
    ])
    rows = []
    for name, spec in ordered:
        row: Dict[str, object] = {"workload": name}
        for system in MAIN_SYSTEMS:
            result = results[_spec(system, spec, requests, rate, seed)]
            row[f"{_LABEL[system]} kIOPS"] = result.metrics.total_kiops()
        rows.append(row)
    columns = ["workload"] + [f"{_LABEL[s]} kIOPS" for s in MAIN_SYSTEMS]
    return FigureResult(
        "Figure 14", "Throughput (kIOPS) across BenchBase workloads", columns,
        rows, notes="paper: parity across systems",
    )


# ------------------------------------------------------------------ Fig 15


def fig15_breakdown(
    write_ratios: Sequence[float] = (0.2, 0.5, 0.8),
    requests: int = 3000,
    rate: float = 1500.0,
    seed: int = 42,
) -> FigureResult:
    """Figure 15: storage vs end-to-end P99.9, with the Coord-I/O ablation."""
    results = _run_all([
        _spec(system, ycsb(ratio), requests, rate, seed)
        for ratio in write_ratios
        for system in BREAKDOWN_SYSTEMS
    ])
    rows = []
    for ratio in write_ratios:
        for system in BREAKDOWN_SYSTEMS:
            result = results[_spec(system, ycsb(ratio), requests, rate, seed)]
            m = result.metrics
            rows.append({
                "write_ratio": f"{int(ratio * 100)}%",
                "system": _LABEL[system],
                "read storage P99.9": _safe(m.read_storage, "p999"),
                "read total P99.9": _safe(m.read_total, "p999"),
                "read total P99": _safe(m.read_total, "p99"),
                "write storage P99.9": _safe(m.write_storage, "p999"),
                "write total P99.9": _safe(m.write_total, "p999"),
            })
    return FigureResult(
        "Figure 15", "P99.9 latency breakdown (us): storage vs end-to-end",
        ["write_ratio", "system", "read storage P99.9", "read total P99.9",
         "read total P99", "write storage P99.9", "write total P99.9"],
        rows,
        notes="paper: Coord I/O alone gives 1.1-1.23x reads; coordinated GC "
              "adds up to 4.3x more",
    )


# ------------------------------------------------------------------ Fig 16


def fig16_read_cdf(
    write_ratio: float = 0.5,
    requests: int = 3000,
    rate: float = 1500.0,
    seed: int = 42,
    points: int = 12,
) -> FigureResult:
    """Figure 16: cumulative distribution of read latency."""
    quantiles = [50.0, 90.0, 95.0, 99.0, 99.5, 99.9][: max(2, points)]
    results = _run_all([
        _spec(system, ycsb(write_ratio), requests, rate, seed)
        for system in BREAKDOWN_SYSTEMS
    ])
    rows = []
    for q in quantiles:
        row: Dict[str, object] = {"percentile": f"P{q}"}
        for system in BREAKDOWN_SYSTEMS:
            result = results[_spec(system, ycsb(write_ratio), requests, rate, seed)]
            row[_LABEL[system]] = result.metrics.read_total.p(q)
        rows.append(row)
    return FigureResult(
        "Figure 16", f"Read latency CDF (us), YCSB {int(write_ratio*100)}% writes",
        ["percentile"] + [_LABEL[s] for s in BREAKDOWN_SYSTEMS], rows,
        notes="paper: RackBlox's curve dominates; the GC knee above P99 is "
              "removed by redirection",
    )


# ------------------------------------------------------------------ Fig 17


def fig17_storage_schedulers(
    schedulers: Sequence[str] = ("fifo", "deadline", "kyber"),
    write_ratio: float = 0.5,
    requests: int = 3000,
    rate: float = 1500.0,
    seed: int = 42,
) -> FigureResult:
    """Figure 17: coordinated I/O scheduling under each storage scheduler."""
    results = _run_all([
        _spec(system, ycsb(write_ratio), requests, rate, seed,
              storage_scheduler=scheduler)
        for scheduler in schedulers
        for system in (SystemType.VDC, SystemType.RACKBLOX)
    ])
    rows = []
    for scheduler in schedulers:
        base = results[_spec(
            SystemType.VDC, ycsb(write_ratio), requests, rate, seed,
            storage_scheduler=scheduler,
        )]
        coordinated = results[_spec(
            SystemType.RACKBLOX, ycsb(write_ratio), requests, rate, seed,
            storage_scheduler=scheduler,
        )]
        base_p999 = base.metrics.read_total.p999()
        coord_p999 = coordinated.metrics.read_total.p999()
        rows.append({
            "scheduler": scheduler,
            "baseline read P99.9": base_p999,
            "RackBlox read P99.9": coord_p999,
            "speedup": base_p999 / coord_p999,
        })
    return FigureResult(
        "Figure 17", "P99.9 read latency (us) per storage I/O scheduler",
        ["scheduler", "baseline read P99.9", "RackBlox read P99.9", "speedup"],
        rows,
        notes="paper: coordination always wins; FIFO gains most (1.5x), "
              "Kyber 1.24x, Deadline 1.36x",
    )


# ------------------------------------------------------------------ Fig 18


def fig18_network_schedulers(
    policies: Sequence[str] = ("tb", "fq", "priority"),
    write_ratio: float = 0.5,
    requests: int = 3000,
    rate: float = 1500.0,
    seed: int = 42,
) -> FigureResult:
    """Figure 18: coordinated I/O under each network scheduling policy."""
    def _overrides(policy: str) -> Dict[str, object]:
        # Constrain the egress line rate so the policy actually binds (the
        # paper's setup has four clients competing for one server); the
        # Priority run injects the periodic high-priority traffic of
        # §4.5.2.
        overrides = dict(
            network_scheduler=policy,
            egress_rate_kb_per_us=0.05,
            background_traffic=(policy == "priority"),
        )
        if policy == "tb":
            # Low enough to shape bursts, high enough to carry the load.
            overrides["tb_flow_rate_kb_per_sec"] = 6_000.0
        return overrides

    results = _run_all([
        _spec(system, ycsb(write_ratio), requests, rate, seed,
              **_overrides(policy))
        for policy in policies
        for system in (SystemType.VDC, SystemType.RACKBLOX)
    ])
    rows = []
    for policy in policies:
        overrides = _overrides(policy)
        base = results[_spec(
            SystemType.VDC, ycsb(write_ratio), requests, rate, seed, **overrides
        )]
        coordinated = results[_spec(
            SystemType.RACKBLOX, ycsb(write_ratio), requests, rate, seed,
            **overrides,
        )]
        base_p999 = base.metrics.read_total.p999()
        coord_p999 = coordinated.metrics.read_total.p999()
        rows.append({
            "policy": policy,
            "baseline read P99.9": base_p999,
            "RackBlox read P99.9": coord_p999,
            "speedup": base_p999 / coord_p999,
        })
    return FigureResult(
        "Figure 18", "P99.9 read latency (us) per network scheduler",
        ["policy", "baseline read P99.9", "RackBlox read P99.9", "speedup"],
        rows,
        notes="paper: benefits under every policy; FQ 1.21x and Priority "
              "1.15x average gains",
    )


# -------------------------------------------------------------- Figs 19-20


def fig19_device_network_matrix(
    devices: Sequence[str] = ("optane", "intel-dc", "pssd"),
    networks: Sequence[str] = ("fast", "medium", "slow"),
    write_ratio: float = 0.5,
    requests: int = 2000,
    rate: float = 1500.0,
    seed: int = 42,
) -> FigureResult:
    """Figure 19: read latency distribution across SSD x network."""
    def _pairing(device: str, network: str) -> Dict[str, object]:
        return dict(
            device_profile=profile_by_name(device),
            network_profile=net_profile_by_name(network),
        )

    results = _run_all([
        _spec(SystemType.RACKBLOX, ycsb(write_ratio), requests, rate, seed,
              **_pairing(device, network))
        for device in devices
        for network in networks
    ])
    rows = []
    for device in devices:
        for network in networks:
            result = results[_spec(
                SystemType.RACKBLOX, ycsb(write_ratio), requests, rate, seed,
                **_pairing(device, network),
            )]
            reads = result.metrics.read_total
            rows.append({
                "ssd": device, "network": network,
                "P50": reads.p50(), "P99": reads.p99(), "P99.9": reads.p999(),
            })
    return FigureResult(
        "Figure 19", "RackBlox read latency (us) across SSD x network (YCSB-A)",
        ["ssd", "network", "P50", "P99", "P99.9"], rows,
        notes="paper: upgrading only the slower side of the pair moves the "
              "distribution; matched speeds benefit most",
    )


def fig20_improvement_matrix(
    devices: Sequence[str] = ("optane", "intel-dc", "pssd"),
    networks: Sequence[str] = ("fast", "medium", "slow"),
    write_ratios: Sequence[float] = (0.5,),
    requests: int = 2000,
    rate: float = 1500.0,
    seed: int = 42,
) -> FigureResult:
    """Figure 20: VDC -> RackBlox P99.9 read improvement per pairing."""
    def _pairing(device: str, network: str) -> Dict[str, object]:
        return dict(
            device_profile=profile_by_name(device),
            network_profile=net_profile_by_name(network),
        )

    results = _run_all([
        _spec(system, ycsb(ratio), requests, rate, seed,
              **_pairing(device, network))
        for device in devices
        for network in networks
        for ratio in write_ratios
        for system in (SystemType.VDC, SystemType.RACKBLOX)
    ])
    rows = []
    for device in devices:
        for network in networks:
            overrides = _pairing(device, network)
            improvements = []
            for ratio in write_ratios:
                vdc = results[_spec(
                    SystemType.VDC, ycsb(ratio), requests, rate, seed, **overrides
                )]
                rb = results[_spec(
                    SystemType.RACKBLOX, ycsb(ratio), requests, rate, seed,
                    **overrides,
                )]
                improvements.append(
                    vdc.metrics.read_total.p999() / rb.metrics.read_total.p999()
                )
            rows.append({
                "ssd": device, "network": network,
                "P99.9 improvement": sum(improvements) / len(improvements),
            })
    return FigureResult(
        "Figure 20", "P99.9 read improvement of RackBlox over VDC per pairing",
        ["ssd", "network", "P99.9 improvement"], rows,
        notes="paper: the diagonal (matched SSD/network speeds) dominates",
    )


# ------------------------------------------------------------------ Fig 21


def fig21_isolation(
    write_ratio: float = 0.5,
    requests: int = 3000,
    rate: float = 1500.0,
    seed: int = 42,
) -> FigureResult:
    """Figure 21: software- vs hardware-isolated vSSDs."""
    results = _run_all([
        _spec(system, ycsb(write_ratio), requests, rate, seed, sw_isolated=sw)
        for sw in (False, True)
        for system in (SystemType.VDC, SystemType.RACKBLOX)
    ])
    rows = []
    for label, sw in (("HW-isolated", False), ("SW-isolated", True)):
        vdc = results[_spec(
            SystemType.VDC, ycsb(write_ratio), requests, rate, seed,
            sw_isolated=sw,
        )]
        rb = results[_spec(
            SystemType.RACKBLOX, ycsb(write_ratio), requests, rate, seed,
            sw_isolated=sw,
        )]
        vdc_p999 = vdc.metrics.read_total.p999()
        rb_p999 = rb.metrics.read_total.p999()
        rows.append({
            "isolation": label,
            "VDC read P99.9": vdc_p999,
            "RackBlox read P99.9": rb_p999,
            "speedup": vdc_p999 / rb_p999,
        })
    return FigureResult(
        "Figure 21", "Read tail latency (us) with different vSSD isolation",
        ["isolation", "VDC read P99.9", "RackBlox read P99.9", "speedup"], rows,
        notes="paper: 1.47x (SW) and 1.51x (HW) -- RackBlox helps both, "
              "hardware isolation marginally more",
    )


# -------------------------------------------------------------- Figs 22-23


def _wear_point(params: Dict[str, object]):
    """Top-level worker: one wear-campaign configuration (picklable)."""
    kwargs = dict(params)
    days = kwargs.pop("days")
    sample_every = kwargs.pop("sample_every")
    return WearSimulation(**kwargs).run(days=days, sample_every=sample_every)


def fig22_local_wear(
    num_servers: int = 8,
    ssds_per_server: int = 16,
    days: int = 1095,
    seed: int = 3,
) -> FigureResult:
    """Figure 22: per-server wear balance, local balancer vs No Swap."""
    kwargs = dict(
        num_servers=num_servers, ssds_per_server=ssds_per_server, seed=seed,
        replacement_rate_per_year=0.0, days=days, sample_every=30,
    )
    noswap, balanced = get_runner().map(_wear_point, [
        dict(enable_local=False, enable_global=False, **kwargs),
        dict(enable_local=True, enable_global=False, **kwargs),
    ])
    rows = [
        {
            "policy": "No Swap",
            "mean server lambda": noswap.mean_final_server_imbalance(),
            "worst server lambda": noswap.final_server_imbalance(),
            "swaps": noswap.local_swaps,
        },
        {
            "policy": "RackBlox (local)",
            "mean server lambda": balanced.mean_final_server_imbalance(),
            "worst server lambda": balanced.final_server_imbalance(),
            "swaps": balanced.local_swaps,
        },
    ]
    return FigureResult(
        "Figure 22",
        f"Per-server wear imbalance after {days} days "
        f"({num_servers} servers x {ssds_per_server} SSDs)",
        ["policy", "mean server lambda", "worst server lambda", "swaps"], rows,
        notes="paper: No Swap shows significant imbalance; periodic swapping "
              "keeps servers near-optimal",
    )


def fig23_rack_wear(
    num_servers: int = 32,
    ssds_per_server: int = 16,
    days: int = 1095,
    seed: int = 3,
) -> FigureResult:
    """Figure 23: rack-scale wear balance, global balancer vs No Swap."""
    kwargs = dict(
        num_servers=num_servers, ssds_per_server=ssds_per_server, seed=seed,
        replacement_rate_per_year=0.08, days=days, sample_every=30,
    )
    noswap, local_only, both = get_runner().map(_wear_point, [
        dict(enable_local=False, enable_global=False, **kwargs),
        dict(enable_local=True, enable_global=False, **kwargs),
        dict(enable_local=True, enable_global=True, **kwargs),
    ])
    rows = [
        {"policy": "No Swap", "rack wear variance": noswap.final_rack_variance(),
         "rack lambda": noswap.final_rack_imbalance(), "global swaps": 0},
        {"policy": "Local only", "rack wear variance": local_only.final_rack_variance(),
         "rack lambda": local_only.final_rack_imbalance(), "global swaps": 0},
        {"policy": "RackBlox (two-level)", "rack wear variance": both.final_rack_variance(),
         "rack lambda": both.final_rack_imbalance(),
         "global swaps": both.global_swaps},
    ]
    return FigureResult(
        "Figure 23",
        f"Rack-scale wear balance after {days} days "
        f"({num_servers} servers x {ssds_per_server} SSDs, with SSD "
        "replacement churn)",
        ["policy", "rack wear variance", "rack lambda", "global swaps"], rows,
        notes="paper: the global balancer maintains rack balance despite the "
              "relaxed 8-week cadence (lower is better)",
    )


# ------------------------------------------------------------ §3.4 predictor


def predictor_accuracy(
    networks: Sequence[str] = ("fast", "medium", "slow"),
    samples: int = 5000,
    window: int = 100,
    seed: int = 9,
) -> FigureResult:
    """§3.4's claim: the sliding-window predictor tracks return latency.

    Feeds a latency process into the predictor the way the server does
    (incoming packets) and scores predictions against the next outgoing
    sample.  The paper reports predictions within 25 us of the true value
    95% of the time, within 10% in the worst case, with mispredictions at
    congestion boundaries.
    """
    import random

    from repro.net.latency import LatencyProcess
    from repro.server.predictor import ReturnLatencyPredictor

    rows = []
    for network in networks:
        process = LatencyProcess(net_profile_by_name(network), random.Random(seed))
        predictor = ReturnLatencyPredictor(window=window)
        now = 0.0
        errors = []
        relative_errors = []
        for _ in range(samples):
            now += 200.0  # one request every 200 us
            incoming = process.sample(now)
            prediction = predictor.predict(1, "read")
            actual = process.sample(now)
            if predictor.window_fill(1, "read") >= window // 2:
                errors.append(abs(prediction - actual))
                relative_errors.append(abs(prediction - actual) / actual)
            predictor.observe(1, "read", incoming)
        errors.sort()
        relative_errors.sort()
        rows.append({
            "network": network,
            "median abs error (us)": errors[len(errors) // 2],
            "P95 abs error (us)": errors[int(len(errors) * 0.95)],
            "median rel error (%)": 100 * relative_errors[len(relative_errors) // 2],
            "samples": len(errors),
        })
    return FigureResult(
        "§3.4 predictor", "Sliding-window return-latency prediction accuracy",
        ["network", "median abs error (us)", "P95 abs error (us)",
         "median rel error (%)", "samples"],
        rows,
        notes="paper: within 25 us of the true value 95% of the time; "
              "mispredictions cluster at congestion boundaries",
    )


ALL_FIGURES = {
    "fig9": fig9_p999_latency,
    "fig10": fig10_p99_latency,
    "fig11": fig11_avg_latency,
    "fig12": fig12_throughput,
    "fig13": fig13_workloads_tail,
    "fig14": fig14_workloads_tput,
    "fig15": fig15_breakdown,
    "fig16": fig16_read_cdf,
    "fig17": fig17_storage_schedulers,
    "fig18": fig18_network_schedulers,
    "fig19": fig19_device_network_matrix,
    "fig20": fig20_improvement_matrix,
    "fig21": fig21_isolation,
    "fig22": fig22_local_wear,
    "fig23": fig23_rack_wear,
    "predictor": predictor_accuracy,
}
