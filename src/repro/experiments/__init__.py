"""Experiment runners reproducing every figure of the paper's evaluation.

:mod:`repro.experiments.runner` runs one rack under one workload and
returns metrics; :mod:`repro.experiments.figures` maps each paper figure
to a parameter sweep over runner calls; :mod:`repro.experiments.report`
renders results as the text tables recorded in EXPERIMENTS.md.
"""

from repro.experiments.figures import ALL_FIGURES, FigureResult
from repro.experiments.parallel import (
    ParallelRunner,
    RunCache,
    RunSpec,
    default_jobs,
    get_runner,
    set_jobs,
    using_jobs,
)
from repro.experiments.regression import compare_figures, compare_runs
from repro.experiments.report import run_figures
from repro.experiments.results_io import load_figures, save_figures
from repro.experiments.runner import RackResult, run_rack_experiment, run_until
from repro.experiments.sweeps import Sweep, best_point

__all__ = [
    "run_rack_experiment",
    "RackResult",
    "run_until",
    "FigureResult",
    "ALL_FIGURES",
    "run_figures",
    "save_figures",
    "load_figures",
    "compare_figures",
    "compare_runs",
    "Sweep",
    "best_point",
    "ParallelRunner",
    "RunCache",
    "RunSpec",
    "default_jobs",
    "get_runner",
    "set_jobs",
    "using_jobs",
]
