"""Arrival processes beyond Poisson.

The open-loop generator's exponential gaps model a well-multiplexed
tenant; real tenants are burstier.  These processes plug into the same
``gap_us`` slot:

* :class:`MmppArrivals` -- a two-state Markov-modulated Poisson process
  (calm/burst), the standard bursty-traffic model;
* :class:`DiurnalArrivals` -- a slow sinusoidal rate swing (day/night),
  for wear- and soak-style experiments.
"""

import math
import random
from typing import Iterator, Optional

from repro.errors import ConfigError
from repro.workloads.generator import Request, _OpPicker
from repro.workloads.spec import WorkloadSpec


class MmppArrivals:
    """Two-state MMPP: exponential gaps whose rate flips calm <-> burst."""

    def __init__(
        self,
        calm_iops: float,
        burst_iops: float,
        mean_calm_us: float = 500_000.0,
        mean_burst_us: float = 50_000.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if calm_iops <= 0 or burst_iops <= 0:
            raise ConfigError("rates must be positive")
        if burst_iops <= calm_iops:
            raise ConfigError("burst rate must exceed calm rate")
        if mean_calm_us <= 0 or mean_burst_us <= 0:
            raise ConfigError("state holding times must be positive")
        self.calm_iops = calm_iops
        self.burst_iops = burst_iops
        self.mean_calm_us = mean_calm_us
        self.mean_burst_us = mean_burst_us
        self._rng = rng if rng is not None else random.Random(0)
        self._in_burst = False
        self._state_left_us = self._rng.expovariate(1.0 / mean_calm_us)

    @property
    def in_burst(self) -> bool:
        return self._in_burst

    def _rate(self) -> float:
        return self.burst_iops if self._in_burst else self.calm_iops

    def next_gap_us(self) -> float:
        """Gap to the next arrival, advancing the modulating state."""
        gap = self._rng.expovariate(self._rate() / 1e6)
        # Consume state time; flip states as needed (memoryless, so the
        # residual gap can be resampled at the flip without bias).
        while gap >= self._state_left_us:
            # The gap into the new state is resampled from that state's
            # rate rather than carried over (memoryless).
            self._in_burst = not self._in_burst
            mean = self.mean_burst_us if self._in_burst else self.mean_calm_us
            carried = self._state_left_us
            self._state_left_us = self._rng.expovariate(1.0 / mean)
            gap = carried + self._rng.expovariate(self._rate() / 1e6)
        self._state_left_us -= gap
        return gap


class BurstyWorkloadGenerator:
    """A workload spec driven by MMPP gaps (OpenLoopGenerator-compatible).

    Plugs into :class:`repro.cluster.client.Client` anywhere an
    OpenLoopGenerator would go, producing the same read/write/key mix but
    with calm/burst arrival structure.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        key_space: int,
        arrivals: MmppArrivals,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._rng = rng if rng is not None else random.Random(0)
        self._picker = _OpPicker(spec, key_space, self._rng)
        self.arrivals = arrivals

    def requests(self, count: int) -> Iterator[Request]:
        if count < 0:
            raise ConfigError(f"count must be >= 0, got {count}")
        for _ in range(count):
            request = self._picker.next_op()
            request.gap_us = self.arrivals.next_gap_us()
            yield request


class DiurnalArrivals:
    """Sinusoidal rate: peak at mid-'day', trough at mid-'night'."""

    def __init__(
        self,
        mean_iops: float,
        swing: float = 0.5,
        period_us: float = 86_400.0 * 1e6,
        rng: Optional[random.Random] = None,
    ) -> None:
        if mean_iops <= 0:
            raise ConfigError("mean rate must be positive")
        if not 0.0 <= swing < 1.0:
            raise ConfigError("swing must be in [0,1)")
        if period_us <= 0:
            raise ConfigError("period must be positive")
        self.mean_iops = mean_iops
        self.swing = swing
        self.period_us = period_us
        self._rng = rng if rng is not None else random.Random(0)
        self._now = 0.0

    def rate_at(self, t_us: float) -> float:
        phase = 2.0 * math.pi * (t_us % self.period_us) / self.period_us
        return self.mean_iops * (1.0 + self.swing * math.sin(phase))

    def next_gap_us(self) -> float:
        """Thinning-free approximation: sample at the current phase rate."""
        rate = self.rate_at(self._now)
        gap = self._rng.expovariate(rate / 1e6)
        self._now += gap
        return gap
