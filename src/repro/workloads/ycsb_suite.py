"""The canonical YCSB core workloads (A-F).

The paper sweeps YCSB by write ratio; the named suite is the form users
know, so we provide it too:

* **A** -- update heavy: 50% reads / 50% updates, zipfian;
* **B** -- read mostly: 95% reads / 5% updates, zipfian;
* **C** -- read only, zipfian;
* **D** -- read latest: 95% reads / 5% inserts, *latest* distribution
  (reads concentrate on recently inserted keys);
* **F** -- read-modify-write: every update is a read followed by a write
  of the same key.

(E -- short scans -- needs a range-read primitive the 4 KB-request rack
model does not expose; the LSM engine provides the scan primitive at the
device level instead: :meth:`repro.kvstore.lsm.LsmTree.scan`.)

:class:`YcsbGenerator` extends the open-loop generator with the *latest*
key distribution and composite read-modify-write operations; RMW yields
two back-to-back requests with zero gap between them.
"""

import random
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.errors import ConfigError
from repro.sim.rng import ZipfianSampler
from repro.workloads.generator import Request


@dataclass(frozen=True)
class YcsbWorkload:
    """One named YCSB core workload."""

    name: str
    read_ratio: float
    update_ratio: float
    insert_ratio: float = 0.0
    #: "zipfian" or "latest" (YCSB-D's recency-skewed reads).
    distribution: str = "zipfian"
    #: Updates are read-modify-write pairs (YCSB-F).
    read_modify_write: bool = False

    def __post_init__(self) -> None:
        total = self.read_ratio + self.update_ratio + self.insert_ratio
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(
                f"workload {self.name!r}: ratios must sum to 1, got {total}"
            )
        if self.distribution not in ("zipfian", "latest"):
            raise ConfigError(f"unknown distribution {self.distribution!r}")


YCSB_A = YcsbWorkload("ycsb-a", read_ratio=0.5, update_ratio=0.5)
YCSB_B = YcsbWorkload("ycsb-b", read_ratio=0.95, update_ratio=0.05)
YCSB_C = YcsbWorkload("ycsb-c", read_ratio=1.0, update_ratio=0.0)
YCSB_D = YcsbWorkload(
    "ycsb-d", read_ratio=0.95, update_ratio=0.0, insert_ratio=0.05,
    distribution="latest",
)
YCSB_F = YcsbWorkload(
    "ycsb-f", read_ratio=0.5, update_ratio=0.5, read_modify_write=True
)

YCSB_SUITE: Dict[str, YcsbWorkload] = {
    w.name: w for w in (YCSB_A, YCSB_B, YCSB_C, YCSB_D, YCSB_F)
}


class YcsbGenerator:
    """Open-loop generator for the named YCSB workloads."""

    def __init__(
        self,
        workload: YcsbWorkload,
        key_space: int,
        rate_iops: float,
        theta: float = 0.99,
        rng: Optional[random.Random] = None,
    ) -> None:
        if key_space < 1:
            raise ConfigError("key_space must be >= 1")
        if rate_iops <= 0:
            raise ConfigError("rate_iops must be positive")
        self.workload = workload
        self.key_space = key_space
        self.mean_gap_us = 1e6 / rate_iops
        self._rng = rng if rng is not None else random.Random(0)
        self._zipf = ZipfianSampler(key_space, theta=theta, rng=self._rng)
        #: High-water mark for inserts; "latest" reads cluster below it.
        self._insert_cursor = max(1, key_space // 2)

    def _pick_key(self) -> int:
        if self.workload.distribution == "latest":
            # Recency skew: zipf rank 0 maps to the newest key.
            rank = self._zipf.sample() % self._insert_cursor
            return (self._insert_cursor - 1 - rank) % self.key_space
        return self._zipf.sample()

    def _next_insert_key(self) -> int:
        key = self._insert_cursor % self.key_space
        self._insert_cursor += 1
        return key

    def requests(self, count: int) -> Iterator[Request]:
        """Yield ``count`` requests (an RMW pair counts as two)."""
        if count < 0:
            raise ConfigError(f"count must be >= 0, got {count}")
        produced = 0
        while produced < count:
            gap = self._rng.expovariate(1.0 / self.mean_gap_us)
            roll = self._rng.random()
            if roll < self.workload.read_ratio:
                yield Request(kind="read", lpn=self._pick_key(), gap_us=gap)
                produced += 1
            elif roll < self.workload.read_ratio + self.workload.update_ratio:
                key = self._pick_key()
                if self.workload.read_modify_write:
                    yield Request(kind="read", lpn=key, gap_us=gap)
                    produced += 1
                    if produced >= count:
                        return
                    yield Request(kind="write", lpn=key, gap_us=0.0)
                    produced += 1
                else:
                    yield Request(kind="write", lpn=key, gap_us=gap)
                    produced += 1
            else:
                yield Request(
                    kind="write", lpn=self._next_insert_key(), gap_us=gap
                )
                produced += 1
