"""Trace recording and replay.

Two kinds of traces, mirroring §3.7's methodology:

* **request traces** -- timestamped read/write operations, replayable
  through the same client machinery as the synthetic generators (so real
  application traces can drive the rack);
* **latency traces** -- timestamped one-way network latencies.  The paper
  takes the PTPmesh trace [67] and *scales* it to the latency patterns of
  [32, 59]; :meth:`LatencyTrace.scaled` is that operation, and
  :class:`TraceLatencyProcess` adapts a trace to the
  :class:`~repro.net.latency.LatencyProcess` sampling interface.

The on-disk format is deliberately plain (one record per line, ``#``
comments) so traces can be produced by anything.
"""

import bisect
from dataclasses import dataclass
from typing import Iterator, Sequence, TextIO, Union

from repro.errors import ConfigError
from repro.workloads.generator import Request


@dataclass(frozen=True)
class TraceOp:
    """One request-trace record."""

    time_us: float
    kind: str  # "read" | "write"
    lpn: int

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ConfigError(f"kind must be read/write, got {self.kind!r}")
        if self.time_us < 0 or self.lpn < 0:
            raise ConfigError("time and lpn must be non-negative")


class RequestTrace:
    """An ordered request trace with save/load and replay."""

    def __init__(self, ops: Sequence[TraceOp]) -> None:
        self.ops = sorted(ops, key=lambda op: op.time_us)

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def duration_us(self) -> float:
        return self.ops[-1].time_us if self.ops else 0.0

    def write_ratio(self) -> float:
        if not self.ops:
            return 0.0
        return sum(1 for op in self.ops if op.kind == "write") / len(self.ops)

    def save(self, stream: Union[TextIO, str]) -> None:
        """Write ``time_us kind lpn`` lines to a stream or path."""
        if isinstance(stream, str):
            with open(stream, "w") as fh:
                self.save(fh)
            return
        stream.write("# repro request trace v1: time_us kind lpn\n")
        for op in self.ops:
            stream.write(f"{op.time_us:.3f} {op.kind} {op.lpn}\n")

    @classmethod
    def load(cls, stream: Union[TextIO, str]) -> "RequestTrace":
        if isinstance(stream, str):
            with open(stream) as fh:
                return cls.load(fh)
        ops = []
        for line_no, line in enumerate(stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise ConfigError(
                    f"trace line {line_no}: expected 'time kind lpn', got {line!r}"
                )
            ops.append(TraceOp(float(parts[0]), parts[1], int(parts[2])))
        return cls(ops)

    def replay_requests(self) -> Iterator[Request]:
        """Yield :class:`Request` objects with inter-arrival gaps set."""
        previous = 0.0
        for op in self.ops:
            yield Request(kind=op.kind, lpn=op.lpn, gap_us=op.time_us - previous)
            previous = op.time_us


class TraceWorkloadGenerator:
    """Adapter: a request trace behind the OpenLoopGenerator interface."""

    def __init__(self, trace: RequestTrace) -> None:
        if len(trace) == 0:
            raise ConfigError("cannot replay an empty trace")
        self.trace = trace

    def requests(self, count: int) -> Iterator[Request]:
        """Replay up to ``count`` trace operations (wrapping if needed)."""
        if count < 0:
            raise ConfigError(f"count must be >= 0, got {count}")
        produced = 0
        while produced < count:
            for request in self.trace.replay_requests():
                if produced >= count:
                    return
                yield request
                produced += 1


@dataclass(frozen=True)
class LatencySample:
    time_us: float
    latency_us: float


class LatencyTrace:
    """A timestamped series of one-way latencies, with scaling."""

    def __init__(self, samples: Sequence[LatencySample]) -> None:
        if not samples:
            raise ConfigError("latency trace needs at least one sample")
        ordered = sorted(samples, key=lambda s: s.time_us)
        self.times = [s.time_us for s in ordered]
        self.latencies = [s.latency_us for s in ordered]

    def __len__(self) -> int:
        return len(self.times)

    def mean(self) -> float:
        return sum(self.latencies) / len(self.latencies)

    def scaled(self, factor: float) -> "LatencyTrace":
        """The paper's trace-scaling step: stretch latencies by ``factor``
        (pattern preserved, magnitude moved to another regime)."""
        if factor <= 0:
            raise ConfigError(f"scale factor must be positive, got {factor}")
        return LatencyTrace([
            LatencySample(t, lat * factor)
            for t, lat in zip(self.times, self.latencies)
        ])

    def at(self, now: float) -> float:
        """Latency of the nearest-at-or-before sample (wrapping in time)."""
        if now < 0:
            raise ConfigError("time must be non-negative")
        last = self.times[-1]
        if now > last and last > 0:
            now = now % last
        idx = bisect.bisect_right(self.times, now) - 1
        return self.latencies[max(0, idx)]

    def save(self, stream: Union[TextIO, str]) -> None:
        if isinstance(stream, str):
            with open(stream, "w") as fh:
                self.save(fh)
            return
        stream.write("# repro latency trace v1: time_us latency_us\n")
        for t, lat in zip(self.times, self.latencies):
            stream.write(f"{t:.3f} {lat:.3f}\n")

    @classmethod
    def load(cls, stream: Union[TextIO, str]) -> "LatencyTrace":
        if isinstance(stream, str):
            with open(stream) as fh:
                return cls.load(fh)
        samples = []
        for line_no, line in enumerate(stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ConfigError(
                    f"trace line {line_no}: expected 'time latency', got {line!r}"
                )
            samples.append(LatencySample(float(parts[0]), float(parts[1])))
        return cls(samples)


class TraceLatencyProcess:
    """LatencyProcess-compatible sampler driven by a recorded trace.

    Drop-in for :class:`repro.net.latency.LatencyProcess` wherever only
    ``sample(now)`` is required (e.g. a Rack's latency source).
    """

    def __init__(self, trace: LatencyTrace) -> None:
        self.trace = trace

    def sample(self, now: float) -> float:
        return self.trace.at(now)

    def congested(self, now: float) -> bool:
        """Heuristic: 'congested' when above 3x the trace mean."""
        return self.trace.at(now) > 3.0 * self.trace.mean()

    def expected_uncongested(self) -> float:
        return self.trace.mean()


def record_latency_process(process, duration_us: float, step_us: float) -> LatencyTrace:
    """Sample a (synthetic) latency process into a trace.

    Closes the loop for testing: synthesize -> record -> scale -> replay.
    """
    if duration_us <= 0 or step_us <= 0:
        raise ConfigError("duration and step must be positive")
    samples = []
    t = 0.0
    while t <= duration_us:
        samples.append(LatencySample(t, process.sample(t)))
        t += step_us
    return LatencyTrace(samples)
