"""Workload specifications (Table 2).

Each spec captures what the paper's figures actually depend on: the write
ratio, the key-popularity skew, and the request *pattern* -- most
workloads interleave reads and writes uniformly, while AuctionMark issues
"a long sequence of writes followed by a sequence of reads" (§4.3), which
is why its GC interference is lower than its write ratio suggests.
"""

import enum
from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError


class Pattern(enum.Enum):
    MIXED = "mixed"  # reads and writes interleaved (YCSB-style)
    PHASED = "phased"  # write bursts alternating with read bursts


@dataclass(frozen=True)
class WorkloadSpec:
    """A parametric workload: mix, skew, and arrival pattern."""

    name: str
    write_ratio: float
    zipf_theta: float = 0.99
    pattern: Pattern = Pattern.MIXED
    #: For PHASED workloads: ops per burst of one kind.
    phase_length: int = 64

    def __post_init__(self) -> None:
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ConfigError(f"write_ratio must be in [0,1], got {self.write_ratio}")
        if self.zipf_theta < 0:
            raise ConfigError(f"zipf_theta must be >= 0, got {self.zipf_theta}")
        if self.phase_length <= 0:
            raise ConfigError(f"phase_length must be positive, got {self.phase_length}")


def ycsb(write_ratio: float, theta: float = 0.99) -> WorkloadSpec:
    """YCSB with the given write ratio and zipfian skew (§4.2's sweep)."""
    return WorkloadSpec(
        name=f"ycsb-w{int(round(write_ratio * 100))}",
        write_ratio=write_ratio,
        zipf_theta=theta,
    )


#: Table 2, with the paper's measured write percentages.
TPCH = WorkloadSpec(name="tpch", write_ratio=0.0227)
SEATS = WorkloadSpec(name="seats", write_ratio=0.1034)
AUCTIONMARK = WorkloadSpec(
    name="auctionmark", write_ratio=0.5376, pattern=Pattern.PHASED
)
TPCC = WorkloadSpec(name="tpcc", write_ratio=0.5995)
TWITTER = WorkloadSpec(name="twitter", write_ratio=0.9786)

TABLE2_WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec for spec in (TPCH, SEATS, AUCTIONMARK, TPCC, TWITTER)
}
