"""Workload generation.

Parametric stand-ins for the paper's benchmarks (Table 2): YCSB with a
configurable read/write mix and zipfian key popularity, plus BenchBase
profiles (TPC-H, Seats, AuctionMark, TPC-C, Twitter) characterised by
their write ratios and request patterns.
"""

from repro.workloads.arrival import DiurnalArrivals, MmppArrivals
from repro.workloads.generator import ClosedLoopGenerator, OpenLoopGenerator, Request
from repro.workloads.traces import (
    LatencyTrace,
    RequestTrace,
    TraceLatencyProcess,
    TraceWorkloadGenerator,
)
from repro.workloads.ycsb_suite import (
    YCSB_A,
    YCSB_B,
    YCSB_C,
    YCSB_D,
    YCSB_F,
    YCSB_SUITE,
    YcsbGenerator,
    YcsbWorkload,
)
from repro.workloads.spec import (
    AUCTIONMARK,
    SEATS,
    TABLE2_WORKLOADS,
    TPCC,
    TPCH,
    TWITTER,
    WorkloadSpec,
    ycsb,
)

__all__ = [
    "WorkloadSpec",
    "ycsb",
    "TPCH",
    "SEATS",
    "AUCTIONMARK",
    "TPCC",
    "TWITTER",
    "TABLE2_WORKLOADS",
    "Request",
    "OpenLoopGenerator",
    "ClosedLoopGenerator",
    "MmppArrivals",
    "DiurnalArrivals",
    "RequestTrace",
    "LatencyTrace",
    "TraceWorkloadGenerator",
    "TraceLatencyProcess",
    "YcsbWorkload",
    "YcsbGenerator",
    "YCSB_A",
    "YCSB_B",
    "YCSB_C",
    "YCSB_D",
    "YCSB_F",
    "YCSB_SUITE",
]
