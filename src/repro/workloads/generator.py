"""Request stream generation.

Two arrival disciplines:

* :class:`OpenLoopGenerator` -- Poisson arrivals at a target rate; the
  right model for tail-latency experiments because slow responses do not
  throttle the offered load (the coordinated-vs-uncoordinated gap would
  otherwise self-hide).
* :class:`ClosedLoopGenerator` -- a fixed number of outstanding requests
  with optional think time (YCSB's default client model); used by the
  throughput figures.
"""

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import ConfigError
from repro.sim.rng import ZipfianSampler
from repro.workloads.spec import Pattern, WorkloadSpec


@dataclass
class Request:
    """One logical operation produced by a generator."""

    kind: str  # "read" | "write"
    lpn: int
    #: Inter-arrival gap before this request (open loop), microseconds.
    gap_us: float = 0.0


class _OpPicker:
    """Shared read/write + key selection logic."""

    def __init__(self, spec: WorkloadSpec, key_space: int, rng: random.Random) -> None:
        if key_space <= 0:
            raise ConfigError(f"key_space must be positive, got {key_space}")
        self.spec = spec
        self.key_space = key_space
        self._rng = rng
        self._zipf = ZipfianSampler(key_space, theta=max(spec.zipf_theta, 1e-6), rng=rng)
        self._phase_kind = "write"
        self._phase_left = spec.phase_length

    def next_op(self) -> Request:
        if self.spec.pattern is Pattern.PHASED:
            kind = self._next_phased_kind()
        else:
            kind = "write" if self._rng.random() < self.spec.write_ratio else "read"
        lpn = self._zipf.sample()
        return Request(kind=kind, lpn=lpn)

    def _next_phased_kind(self) -> str:
        """AuctionMark-style bursts: runs of writes, then runs of reads,
        sized so the long-run mix matches the spec's write ratio."""
        if self._phase_left <= 0:
            if self._phase_kind == "write":
                self._phase_kind = "read"
                ratio = max(1e-6, self.spec.write_ratio)
                self._phase_left = max(
                    1, int(self.spec.phase_length * (1.0 - ratio) / ratio)
                )
            else:
                self._phase_kind = "write"
                self._phase_left = self.spec.phase_length
        self._phase_left -= 1
        return self._phase_kind


class OpenLoopGenerator:
    """Poisson arrivals at ``rate_iops`` over a zipfian key space."""

    def __init__(
        self,
        spec: WorkloadSpec,
        key_space: int,
        rate_iops: float,
        rng: Optional[random.Random] = None,
    ) -> None:
        if rate_iops <= 0:
            raise ConfigError(f"rate_iops must be positive, got {rate_iops}")
        self._rng = rng if rng is not None else random.Random(0)
        self._picker = _OpPicker(spec, key_space, self._rng)
        self.mean_gap_us = 1e6 / rate_iops

    def requests(self, count: int) -> Iterator[Request]:
        """Yield ``count`` requests with exponential inter-arrival gaps."""
        if count < 0:
            raise ConfigError(f"count must be >= 0, got {count}")
        for _ in range(count):
            request = self._picker.next_op()
            request.gap_us = self._rng.expovariate(1.0 / self.mean_gap_us)
            yield request


class ClosedLoopGenerator:
    """A fixed-concurrency client: next op is released on completion."""

    def __init__(
        self,
        spec: WorkloadSpec,
        key_space: int,
        think_time_us: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if think_time_us < 0:
            raise ConfigError(f"think_time must be >= 0, got {think_time_us}")
        self._rng = rng if rng is not None else random.Random(0)
        self._picker = _OpPicker(spec, key_space, self._rng)
        self.think_time_us = think_time_us

    def next_request(self) -> Request:
        request = self._picker.next_op()
        request.gap_us = self.think_time_us
        return request
