"""Load-aware replica read routing: power-of-two-choices placement.

The hash router places every read at the ring owner, so one hot or
GC-stalled replica drags fleet p99 even while its peer idles -- the
inter-server imbalance RackSched schedules around at the ToR switch.
This module is the serving-layer version of that scheduler: a
:class:`ReplicaSelector` that, per read, looks at the key's preference
list and picks the cheaper of the first two **live** replicas, where
cost is

    ``(outstanding_depth + 1) * ewma_service_us  (+ penalty)``

-- tracked queue depth times an EWMA of observed per-shard service
latency, the same two signals the switch's INT view exports (stage
latency) and the admission controller already counts (queue depth).
The ``+ 1`` makes an idle replica cost one service time, not zero, so
latency still discriminates between two empty queues.

The selector is deliberately conservative: whenever its information is
not trustworthy it degrades to **strict hash order** (the exact replica
the plain router would have picked) rather than guessing --

* the policy is ``"hash"`` (disabled; the router never even calls it),
* fewer than two live candidates remain after dropping dead or
  epoch-retired replicas,
* a top-two candidate is draining/joining (membership changes own those
  racks; diverting onto -- or away from -- a migrating rack mid-window
  would fight the epoch fence),
* a top-two candidate's stats are stale (older than ``stale_after_s``
  -- the switch-view sync has stopped refreshing it).

Every decision is recorded as a :class:`Decision` and, when a
:class:`RoutingTrace` is attached, becomes replayable: tests script a
:class:`FakeLoadView` timeline and assert exactly which replica each
read chose *and why*.  Load-dependent routing is nondeterministic in
production; against a scripted view it is a pure function.
"""

import collections
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError

#: Valid ``--read-policy`` values.
POLICY_HASH = "hash"
POLICY_P2C = "p2c"
READ_POLICIES = (POLICY_HASH, POLICY_P2C)

#: Stats older than this (wall seconds) are untrustworthy: the
#: switch-view sync loop runs every ~5 ms, so a quarter second of
#: silence means the feed is down, not just between beats.
DEFAULT_STALE_AFTER_S = 0.25

#: EWMA smoothing for observed service latency -- matches the INT
#: flow-telemetry alpha (:class:`repro.switch.telemetry.FlowStats`).
DEFAULT_EWMA_ALPHA = 0.2

#: Decision reasons (the ``why`` of every routing choice).
REASON_P2C = "p2c"                  # scored pick over two live replicas
REASON_POLICY_HASH = "policy-hash"  # policy disabled: strict hash order
REASON_SINGLE = "single"            # < 2 live candidates: nothing to race
REASON_NO_LIVE = "no-live"          # no live candidate: hash-first anyway
REASON_MIGRATING = "migrating"      # top-2 touches a joining/draining rack
REASON_STALE = "stale"              # top-2 stats too old to trust


@dataclass(frozen=True)
class ReplicaStats:
    """One replica's load signals as the selector sees them."""

    depth: float = 0.0      #: outstanding requests right now
    ewma_us: float = 0.0    #: EWMA of observed service latency (0 = none)
    age_s: float = 0.0      #: wall seconds since the stats were refreshed
    live: bool = True       #: registered, reachable, serving
    draining: bool = False  #: mid-drain: still authoritative, not a target


@dataclass(frozen=True)
class Decision:
    """One routing decision: what was considered, what won, and why."""

    seq: int
    key: str
    candidates: Tuple[int, ...]
    chosen: int
    reason: str
    epoch: int = 0
    #: ``(node, cost)`` per scored candidate; empty unless ``reason`` is
    #: :data:`REASON_P2C`.
    scores: Tuple[Tuple[int, float], ...] = ()

    @property
    def diverted(self) -> bool:
        """True when the pick differs from strict hash order."""
        return bool(self.candidates) and self.chosen != self.candidates[0]

    def as_tuple(self) -> Tuple[str, int, str]:
        """The replay-comparison form: ``(key, chosen, reason)``."""
        return (self.key, self.chosen, self.reason)


class RoutingTrace:
    """A bounded, replayable log of routing decisions.

    The deterministic harness's assertion surface: run a scripted
    workload, then compare :meth:`tuples` against the expected
    ``(key, chosen, reason)`` sequence with :meth:`expect`.
    """

    def __init__(self, maxlen: int = 4096) -> None:
        self._decisions: "collections.deque[Decision]" = collections.deque(
            maxlen=maxlen
        )

    def record(self, decision: Decision) -> None:
        self._decisions.append(decision)

    def __len__(self) -> int:
        return len(self._decisions)

    def __iter__(self):
        return iter(self._decisions)

    def decisions(self) -> List[Decision]:
        return list(self._decisions)

    def tuples(self) -> List[Tuple[str, int, str]]:
        return [d.as_tuple() for d in self._decisions]

    def chosen_nodes(self) -> List[int]:
        return [d.chosen for d in self._decisions]

    def clear(self) -> None:
        self._decisions.clear()

    def expect(self, expected: Sequence[Tuple[str, int, str]]) -> None:
        """Assert the trace replays exactly as ``expected``.

        Raises ``AssertionError`` naming the first diverging decision --
        the error message is the debugging surface, so it carries both
        sides in full.
        """
        actual = self.tuples()
        if actual == list(expected):
            return
        for slot, (want, got) in enumerate(zip(expected, actual)):
            if want != got:
                raise AssertionError(
                    f"routing trace diverges at decision {slot}: "
                    f"expected {want!r}, got {got!r}\n"
                    f"full trace: {actual!r}"
                )
        raise AssertionError(
            f"routing trace length mismatch: expected {len(expected)} "
            f"decisions, got {len(actual)}\nfull trace: {actual!r}"
        )


class FakeLoadView:
    """A scripted load view: the deterministic half of the harness.

    Tests set each replica's signals directly (:meth:`set_replica`) or
    script a timeline (:meth:`script`) that :meth:`advance` steps
    through -- the last timeline entry sticks, so a "replica 1 is slow
    for 3 decisions then recovers" scenario is three dicts long.
    Unknown nodes read as dead, which is exactly how an epoch-retired
    rack looks to the live views.
    """

    def __init__(self) -> None:
        self._replicas: Dict[int, ReplicaStats] = {}
        #: node -> (timeline, step the script was installed at)
        self._scripts: Dict[int, Tuple[List[ReplicaStats], int]] = {}
        self.step = 0

    def set_replica(self, node: int, *, depth: float = 0.0,
                    ewma_us: float = 0.0, age_s: float = 0.0,
                    live: bool = True, draining: bool = False) -> None:
        self._replicas[int(node)] = ReplicaStats(
            depth=float(depth), ewma_us=float(ewma_us), age_s=float(age_s),
            live=bool(live), draining=bool(draining),
        )

    def remove_replica(self, node: int) -> None:
        """Retire a node entirely -- it now reads as dead."""
        self._replicas.pop(int(node), None)
        self._scripts.pop(int(node), None)

    def script(self, node: int,
               timeline: Iterable[Mapping[str, object]]) -> None:
        """Queue per-step stats for ``node``; applied by :meth:`advance`."""
        steps = [
            ReplicaStats(
                depth=float(entry.get("depth", 0.0)),        # type: ignore
                ewma_us=float(entry.get("ewma_us", 0.0)),    # type: ignore
                age_s=float(entry.get("age_s", 0.0)),        # type: ignore
                live=bool(entry.get("live", True)),
                draining=bool(entry.get("draining", False)),
            )
            for entry in timeline
        ]
        if not steps:
            raise ConfigError("a timeline needs at least one step")
        self._scripts[int(node)] = (steps, self.step)
        self._replicas[int(node)] = steps[0]

    def advance(self, steps: int = 1) -> None:
        """Step every scripted timeline forward (last entry sticks)."""
        for _ in range(int(steps)):
            self.step += 1
            for node, (timeline, start) in self._scripts.items():
                slot = min(self.step - start, len(timeline) - 1)
                self._replicas[node] = timeline[slot]

    def replica(self, node: int) -> ReplicaStats:
        stats = self._replicas.get(int(node))
        if stats is None:
            return ReplicaStats(live=False, age_s=float("inf"))
        return stats

    def nodes(self) -> List[int]:
        return sorted(self._replicas)


class ReplicaSelector:
    """Power-of-two-choices over a preference list, with honest fallbacks.

    ``view`` is anything with ``replica(node) -> ReplicaStats`` --
    :class:`FakeLoadView` in tests, the router/proxy live views in
    production.  ``candidates`` passed to :meth:`choose` must already be
    in strict hash (preference) order; every fallback resolves to
    ``candidates`` order restricted to live replicas, so hash mode and
    p2c-that-degraded route identically.
    """

    def __init__(self, view, *, policy: str = POLICY_P2C,
                 stale_after_s: float = DEFAULT_STALE_AFTER_S,
                 trace: Optional[RoutingTrace] = None) -> None:
        if policy not in READ_POLICIES:
            raise ConfigError(
                f"read policy must be one of {READ_POLICIES}, got {policy!r}"
            )
        if stale_after_s <= 0:
            raise ConfigError(
                f"stale_after_s must be > 0, got {stale_after_s}"
            )
        self.view = view
        self.policy = policy
        self.stale_after_s = float(stale_after_s)
        self.trace = trace
        self.counters: Dict[str, int] = {
            "decisions": 0,
            "p2c_picks": 0,
            "p2c_diverted": 0,
            "fallbacks": 0,
            "stale_fallbacks": 0,
            "migrating_fallbacks": 0,
            "single_candidate": 0,
            "no_live_fallbacks": 0,
            "dead_skips": 0,
        }

    # --------------------------------------------------------------- choice

    def choose(self, key: str, candidates: Sequence[int], *,
               migrating_node: Optional[int] = None, epoch: int = 0,
               penalties: Optional[Mapping[int, float]] = None) -> Decision:
        """Pick a replica for ``key`` from hash-ordered ``candidates``.

        ``migrating_node`` is the rack a live membership change owns
        right now (joining or draining); ``penalties`` adds cost to a
        candidate's score (the router feeds its GC view through here so
        a both-copies-collecting rack loses ties it would otherwise
        win).  Never raises on bad load data -- an unroutable key is the
        router's problem; this layer only ever narrows *which* replica.
        """
        candidates = tuple(int(c) for c in candidates)
        if not candidates:
            raise ConfigError("choose() needs at least one candidate")
        seq = self.counters["decisions"]
        self.counters["decisions"] += 1
        decision = self._decide(seq, str(key), candidates, migrating_node,
                                int(epoch), penalties or {})
        self._count(decision)
        if self.trace is not None:
            self.trace.record(decision)
        return decision

    def _decide(self, seq: int, key: str, candidates: Tuple[int, ...],
                migrating_node: Optional[int], epoch: int,
                penalties: Mapping[int, float]) -> Decision:
        if self.policy == POLICY_HASH:
            return Decision(seq, key, candidates, candidates[0],
                            REASON_POLICY_HASH, epoch)
        stats = {node: self.view.replica(node) for node in candidates}
        live = [node for node in candidates if stats[node].live]
        self.counters["dead_skips"] += len(candidates) - len(live)
        if not live:
            # Nothing is known-live; send to the hash owner and let the
            # request fail (or succeed -- the view may just be blind)
            # exactly where it would have without a selector.
            return Decision(seq, key, candidates, candidates[0],
                            REASON_NO_LIVE, epoch)
        first, contenders = live[0], live[:2]
        if len(live) < 2:
            return Decision(seq, key, candidates, first,
                            REASON_SINGLE, epoch)
        if any(node == migrating_node or stats[node].draining
               for node in contenders):
            return Decision(seq, key, candidates, first,
                            REASON_MIGRATING, epoch)
        if any(stats[node].age_s > self.stale_after_s
               or stats[node].ewma_us <= 0.0
               for node in contenders):
            return Decision(seq, key, candidates, first,
                            REASON_STALE, epoch)
        scores = tuple(
            (node,
             (stats[node].depth + 1.0) * stats[node].ewma_us
             + float(penalties.get(node, 0.0)))
            for node in contenders
        )
        # min() is stable: a tie goes to the earlier (hash-first) node.
        chosen = min(scores, key=lambda pair: pair[1])[0]
        return Decision(seq, key, candidates, chosen, REASON_P2C, epoch,
                        scores)

    def _count(self, decision: Decision) -> None:
        if decision.reason == REASON_P2C:
            self.counters["p2c_picks"] += 1
            if decision.diverted:
                self.counters["p2c_diverted"] += 1
            return
        if decision.reason == REASON_POLICY_HASH:
            return
        self.counters["fallbacks"] += 1
        if decision.reason == REASON_STALE:
            self.counters["stale_fallbacks"] += 1
        elif decision.reason == REASON_MIGRATING:
            self.counters["migrating_fallbacks"] += 1
        elif decision.reason == REASON_SINGLE:
            self.counters["single_candidate"] += 1
        elif decision.reason == REASON_NO_LIVE:
            self.counters["no_live_fallbacks"] += 1

    # ------------------------------------------------------------ reporting

    def stats_section(self) -> Dict[str, float]:
        """The scalar half of the ``routing`` stats section."""
        out: Dict[str, float] = {
            name: float(value) for name, value in self.counters.items()
        }
        out["policy_p2c"] = 1.0 if self.policy == POLICY_P2C else 0.0
        return out
