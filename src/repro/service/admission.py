"""Admission control: meter traffic *before* it reaches the flash.

Two independent gates, both shedding with an explicit ``BUSY`` rather
than queueing without bound (Gimbal's switch-side admission philosophy):

* a **global queue-depth cap** -- the bridge carries at most N in-flight
  simulated requests; past that the service is saturated and the only
  honest answer is backpressure;
* **per-client token buckets** -- wall-clock rate limits so one greedy
  client cannot starve the rest (the serving-tier analogue of the vSSD
  token buckets in §3.3, which meter in *sim* time).
"""

import time
from typing import Dict, Optional

from repro.errors import ConfigError


class WallClockTokenBucket:
    """A token bucket refilled in wall-clock (monotonic) time."""

    __slots__ = ("rate_per_sec", "capacity", "_tokens", "_last")

    def __init__(self, rate_per_sec: float, capacity: float,
                 now: Optional[float] = None) -> None:
        if rate_per_sec <= 0:
            raise ConfigError(f"rate must be positive, got {rate_per_sec}")
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.rate_per_sec = rate_per_sec
        self.capacity = capacity
        self._tokens = capacity
        self._last = time.monotonic() if now is None else now

    def try_take(self, now: Optional[float] = None) -> bool:
        """Take one token if available; never blocks."""
        if now is None:
            now = time.monotonic()
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.capacity,
                               self._tokens + elapsed * self.rate_per_sec)
            self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    @property
    def tokens(self) -> float:
        return self._tokens


class AdmissionController:
    """Decides, per request, between *admit* and *shed*."""

    def __init__(
        self,
        max_queue_depth: int = 256,
        client_rate_per_sec: float = 0.0,
        client_burst: float = 64.0,
    ) -> None:
        if max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if client_rate_per_sec < 0:
            raise ConfigError("client rate must be >= 0 (0 disables)")
        self.max_queue_depth = max_queue_depth
        #: 0 disables per-client metering (the depth cap still applies).
        self.client_rate_per_sec = client_rate_per_sec
        self.client_burst = client_burst
        self._buckets: Dict[str, WallClockTokenBucket] = {}
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_rate_limited = 0

    def try_admit(self, client: str, inflight: int,
                  now: Optional[float] = None) -> bool:
        """One admission decision; counts the outcome either way.

        The depth gate is checked first: when the service is saturated it
        sheds regardless of which client asks, so a full queue never burns
        anyone's tokens.
        """
        if inflight >= self.max_queue_depth:
            self.shed_queue_full += 1
            return False
        if self.client_rate_per_sec > 0:
            key = bucket_key(client)
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = WallClockTokenBucket(
                    self.client_rate_per_sec, self.client_burst, now=now
                )
                self._buckets[key] = bucket
            if not bucket.try_take(now=now):
                self.shed_rate_limited += 1
                return False
        self.admitted += 1
        return True

    def stats(self) -> Dict[str, float]:
        return {
            "admitted": float(self.admitted),
            "shed_queue_full": float(self.shed_queue_full),
            "shed_rate_limited": float(self.shed_rate_limited),
            "max_queue_depth": float(self.max_queue_depth),
            "clients": float(len(self._buckets)),
        }


def bucket_key(client: str) -> str:
    """Normalise a client identity to its bucket key."""
    return client or "anonymous"
