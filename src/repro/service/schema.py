"""The one documented shape for every ``stats`` payload.

Three producers used to improvise their own dicts -- the bridge
(:meth:`BridgeStats.as_dict`), the server's ``stats`` response, and
:meth:`ServiceClient.stats` -- which left consumers key-guessing.  This
module is now the single source of truth: the section names, the fields
each section carries, an assembler both server flavours use, and a
validator the tests (and any consumer that wants a hard guarantee) can
run against a live payload.

A **single-rack** stats payload looks like::

    {
      "bridge":     {sim_now_us, inflight, submitted, completed,
                     timed_out, sim_chunks},
      "metrics":    {...ExperimentMetrics.summary()...},
      "kvstore":    {keys, gets, puts, scans, misses},
      "admission":  {admitted, shed_queue_full, shed_rate_limited,
                     max_queue_depth, clients},
      "connections": <float>,
      "chaos":  {...}            # only when a fault schedule is armed
      "traces": {...}            # only when tracing samples
    }

A **sharded** payload is a strict superset: the same top-level sections
hold the *aggregate* view (counters summed across shards; ``sim_now_us``
is the max; aggregate latency percentiles come from the router's own
collector, since per-shard percentiles do not merge), plus::

    "router": {racks, virtual_nodes, routed, cross_rack_redirects,
               scatter_scans, unroutable, gc_view_commits, epoch},
    "tenants": {"gold": {weight, slo_target_ms, share, admitted, ...},
                ...}           # when a tenant spec is configured
                               # (single-rack payloads may carry it too)
    "readcache": {capacity, segments, entries, hits, misses, hit_rate,
                  fills, fill_races, invalidations, evictions, epoch}
                               # when the DRAM read cache is on
    "migration": {keys_moved, bytes_streamed, batches,
                  dual_read_fallbacks, write_forwards, aborts, cutovers,
                  cleanup_deletes, racks_added, racks_drained, epoch,
                  active},
    "shards": {"0": {bridge, metrics, kvstore, admission[, chaos]}, ...}
    "routing": {policy_p2c, decisions, p2c_picks, ..., "replicas":
                {"0": {depth, ewma_us, age_s}, ...}}
                               # only under --read-policy p2c

:meth:`ServiceClient.stats` adds one more section client-side::

    "client": {retries, hedged, hedged_wins, reconnects, timeouts,
               bytes_sent, bytes_received}

All leaf values are numbers (floats on the wire) except inside
``metrics`` / ``traces`` / ``chaos``, whose keys are owned by their
producers (`ExperimentMetrics.summary`, the trace collector, the chaos
injector) and may be numbers or null.
"""

from typing import Any, Dict, Mapping, Optional

from repro.errors import ReproError

# ------------------------------------------------------------- section names

SECTION_BRIDGE = "bridge"
SECTION_METRICS = "metrics"
SECTION_KVSTORE = "kvstore"
SECTION_ADMISSION = "admission"
SECTION_CHAOS = "chaos"
SECTION_TRACES = "traces"
SECTION_CLIENT = "client"
SECTION_ROUTER = "router"
SECTION_MIGRATION = "migration"
SECTION_SHARDS = "shards"
SECTION_ROUTING = "routing"
SECTION_TENANTS = "tenants"
SECTION_READCACHE = "readcache"
FIELD_CONNECTIONS = "connections"
FIELD_ROUTING_REPLICAS = "replicas"

# ------------------------------------------------------------ section fields

BRIDGE_FIELDS = (
    "sim_now_us", "inflight", "submitted", "completed", "timed_out",
    "sim_chunks",
)
KVSTORE_FIELDS = ("keys", "gets", "puts", "scans", "misses")
ADMISSION_FIELDS = (
    "admitted", "shed_queue_full", "shed_rate_limited", "max_queue_depth",
    "clients",
)
CLIENT_FIELDS = (
    "retries", "hedged", "hedged_wins", "reconnects", "timeouts",
    "bytes_sent", "bytes_received", "ring_refreshes",
)
ROUTER_FIELDS = (
    "racks", "virtual_nodes", "routed", "cross_rack_redirects",
    "scatter_scans", "unroutable", "gc_view_commits", "epoch",
)
#: Fleet-membership counters (:meth:`FleetController.stats_section`);
#: present on every sharded payload, absent from single-rack ones.
MIGRATION_FIELDS = (
    "keys_moved", "bytes_streamed", "batches", "dual_read_fallbacks",
    "write_forwards", "aborts", "cutovers", "cleanup_deletes",
    "racks_added", "racks_drained", "epoch", "active",
)
#: Load-aware read-routing counters (:class:`ReplicaSelector`); present
#: only when the fleet serves under ``--read-policy p2c`` -- the hash
#: policy's payload stays byte-identical to a selector-less fleet.
#: Alongside these scalars the section carries ``replicas``, a mapping
#: of rack index to that replica's live load view
#: (:data:`ROUTING_REPLICA_FIELDS`).
ROUTING_FIELDS = (
    "policy_p2c", "decisions", "p2c_picks", "p2c_diverted", "fallbacks",
    "stale_fallbacks", "migrating_fallbacks", "single_candidate",
    "no_live_fallbacks", "dead_skips",
)
ROUTING_REPLICA_FIELDS = ("depth", "ewma_us", "age_s")
#: Per-tenant QoS counters (:meth:`QosScheduler.stats_section`); the
#: section maps tenant name to one numeric map each, present only when
#: a tenant spec is configured on the front-end.
TENANT_FIELDS = (
    "weight", "slo_target_ms", "share", "admitted", "shed_rate_limited",
    "shed_over_share", "inflight", "completed", "slo_violations",
    "slo_burn",
)
#: DRAM read-cache counters (:meth:`ReadCache.stats_section`); present
#: only when the read-cache tier is enabled.
READCACHE_FIELDS = (
    "capacity", "segments", "entries", "hits", "misses", "hit_rate",
    "fills", "fill_races", "invalidations", "evictions", "epoch",
)

#: Sections every server payload must carry.
REQUIRED_SECTIONS = (
    SECTION_BRIDGE, SECTION_METRICS, SECTION_KVSTORE, SECTION_ADMISSION,
)

#: Aggregating a bridge section across shards: every counter sums except
#: the clock, which reads as the furthest-ahead shard.
_BRIDGE_MAX_FIELDS = ("sim_now_us",)
_ADMISSION_SUM_FIELDS = (
    "admitted", "shed_queue_full", "shed_rate_limited", "max_queue_depth",
    "clients",
)
#: Tenant fields that take the worst/declared value when sections merge
#: (everything else is an additive counter).
_TENANT_MAX_FIELDS = ("weight", "slo_target_ms", "slo_burn")
#: Read-cache fields that take the max when sections merge; ``hit_rate``
#: is recomputed from the merged hits/misses instead.
_READCACHE_MAX_FIELDS = ("segments", "epoch")


class StatsSchemaError(ReproError):
    """A stats payload does not match the documented schema."""


# ---------------------------------------------------------------- assembly


def assemble_server_stats(
    bridge_payload: Dict[str, Any],
    admission_stats: Dict[str, float],
    connections: int,
    tenants: Optional[Dict[str, Dict[str, float]]] = None,
    readcache: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """The canonical server-side ``stats`` response body.

    ``bridge_payload`` is ``SimTimeBridge.stats_payload()`` (bridge +
    metrics + kvstore + optional chaos/traces); this adds the admission
    and connection sections every server flavour owes its clients, plus
    the optional QoS sections when a tenant spec / read cache is live.
    """
    out = dict(bridge_payload)
    out[SECTION_ADMISSION] = dict(admission_stats)
    out[FIELD_CONNECTIONS] = float(connections)
    if tenants is not None:
        out[SECTION_TENANTS] = tenants
    if readcache is not None:
        out[SECTION_READCACHE] = readcache
    return out


def aggregate_sections(shard_sections: "list[Dict[str, Any]]",
                       ) -> Dict[str, Any]:
    """Fold per-shard bridge/kvstore/admission sections into aggregates.

    Counters sum; ``sim_now_us`` is the max (each shard owns its own
    simulated clock, so "the" time is the furthest one).  ``metrics`` is
    deliberately *not* folded here -- percentiles do not merge -- the
    router supplies its own aggregate collector for that.
    """
    agg: Dict[str, Any] = {
        SECTION_BRIDGE: {field: 0.0 for field in BRIDGE_FIELDS},
        SECTION_KVSTORE: {field: 0.0 for field in KVSTORE_FIELDS},
        SECTION_ADMISSION: {field: 0.0 for field in ADMISSION_FIELDS},
    }
    for section in shard_sections:
        for name, fields in (
            (SECTION_BRIDGE, BRIDGE_FIELDS),
            (SECTION_KVSTORE, KVSTORE_FIELDS),
            (SECTION_ADMISSION, ADMISSION_FIELDS),
        ):
            src = section.get(name, {})
            dst = agg[name]
            for field in fields:
                value = float(src.get(field, 0.0))
                if name == SECTION_BRIDGE and field in _BRIDGE_MAX_FIELDS:
                    dst[field] = max(dst[field], value)
                else:
                    dst[field] += value
        # QoS sections appear only where a front-end carries them (e.g.
        # per-core workers each own a scheduler + cache): fold when
        # present, never synthesize an empty section.
        cache = section.get(SECTION_READCACHE)
        if isinstance(cache, Mapping):
            dst = agg.setdefault(
                SECTION_READCACHE, {f: 0.0 for f in READCACHE_FIELDS})
            for field in READCACHE_FIELDS:
                value = float(cache.get(field, 0.0))
                if field in _READCACHE_MAX_FIELDS:
                    dst[field] = max(dst[field], value)
                elif field != "hit_rate":
                    dst[field] += value
        tenants = section.get(SECTION_TENANTS)
        if isinstance(tenants, Mapping):
            dst = agg.setdefault(SECTION_TENANTS, {})
            for tenant, body in tenants.items():
                tdst = dst.setdefault(
                    tenant, {f: 0.0 for f in TENANT_FIELDS})
                for field in TENANT_FIELDS:
                    value = float(body.get(field, 0.0))
                    if field in _TENANT_MAX_FIELDS:
                        tdst[field] = max(tdst[field], value)
                    else:
                        tdst[field] += value
    cache = agg.get(SECTION_READCACHE)
    if cache is not None:
        total = cache["hits"] + cache["misses"]
        cache["hit_rate"] = cache["hits"] / total if total else 0.0
    return agg


def merge_metric_summaries(summaries: "list[Mapping[str, Any]]",
                           ) -> Dict[str, float]:
    """Best-effort fold of per-shard ``ExperimentMetrics.summary()`` dicts.

    Used only where no shared collector exists (the multi-process proxy):
    counts and rates sum, tail percentiles take the worst shard (a valid
    upper bound -- the aggregate p99 cannot exceed the worst shard's),
    and means weight by their shard's count.
    """
    out: Dict[str, float] = {}
    weights: Dict[str, float] = {}
    for summary in summaries:
        for key, value in summary.items():
            if value is None:
                continue
            value = float(value)
            if key.endswith("_avg_us"):
                count = float(summary.get(
                    key.replace("_avg_us", "_count"), 1.0) or 1.0)
                out[key] = out.get(key, 0.0) + value * count
                weights[key] = weights.get(key, 0.0) + count
            elif key.endswith(("_p99_us", "_p999_us")):
                out[key] = max(out.get(key, 0.0), value)
            else:  # counts, kiops, redirected/chaos counters: additive
                out[key] = out.get(key, 0.0) + value
    for key, weight in weights.items():
        if weight > 0:
            out[key] /= weight
    return out


# -------------------------------------------------------------- validation


def _require_number(payload: Mapping, section: str, field: str,
                    where: str) -> None:
    value = payload.get(field)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise StatsSchemaError(
            f"{where}: section {section!r} field {field!r} must be a "
            f"number, got {type(value).__name__}"
        )


def _validate_section(payload: Mapping, section: str, fields: tuple,
                      where: str, required: bool = True) -> None:
    body = payload.get(section)
    if body is None:
        if required:
            raise StatsSchemaError(f"{where}: missing section {section!r}")
        return
    if not isinstance(body, Mapping):
        raise StatsSchemaError(
            f"{where}: section {section!r} must be a mapping, "
            f"got {type(body).__name__}"
        )
    for field in fields:
        _require_number(body, section, field, where)


def validate_stats(payload: Mapping, *, client: bool = False,
                   where: str = "stats") -> None:
    """Raise :class:`StatsSchemaError` unless ``payload`` fits the schema.

    Accepts both single-rack and sharded payloads; ``client=True``
    additionally requires the ``client`` section a
    :meth:`ServiceClient.stats` response carries.
    """
    if not isinstance(payload, Mapping):
        raise StatsSchemaError(
            f"{where}: payload must be a mapping, got {type(payload).__name__}"
        )
    _validate_section(payload, SECTION_BRIDGE, BRIDGE_FIELDS, where)
    _validate_section(payload, SECTION_KVSTORE, KVSTORE_FIELDS, where)
    _validate_section(payload, SECTION_ADMISSION, ADMISSION_FIELDS, where)
    metrics = payload.get(SECTION_METRICS)
    if not isinstance(metrics, Mapping):
        raise StatsSchemaError(
            f"{where}: missing or non-mapping section "
            f"{SECTION_METRICS!r}"
        )
    _require_number(payload, "<top>", FIELD_CONNECTIONS, where)
    if client:
        _validate_section(payload, SECTION_CLIENT, CLIENT_FIELDS, where)
    router = payload.get(SECTION_ROUTER)
    shards = payload.get(SECTION_SHARDS)
    if (router is None) != (shards is None):
        raise StatsSchemaError(
            f"{where}: sharded payloads carry both {SECTION_ROUTER!r} and "
            f"{SECTION_SHARDS!r}, or neither"
        )
    _validate_section(payload, SECTION_MIGRATION, MIGRATION_FIELDS, where,
                      required=False)
    _validate_section(payload, SECTION_ROUTING, ROUTING_FIELDS, where,
                      required=False)
    _validate_section(payload, SECTION_READCACHE, READCACHE_FIELDS, where,
                      required=False)
    tenants = payload.get(SECTION_TENANTS)
    if tenants is not None:
        if not isinstance(tenants, Mapping) or not tenants:
            raise StatsSchemaError(
                f"{where}: {SECTION_TENANTS!r} must be a non-empty mapping "
                f"of tenant name to counters"
            )
        for tenant, body in tenants.items():
            tenant_where = f"{where}.tenants[{tenant!r}]"
            if not isinstance(tenant, str) or not tenant:
                raise StatsSchemaError(
                    f"{tenant_where}: tenant keys are non-empty names"
                )
            if not isinstance(body, Mapping):
                raise StatsSchemaError(f"{tenant_where}: must be a mapping")
            for field in TENANT_FIELDS:
                _require_number(body, SECTION_TENANTS, field, tenant_where)
    routing = payload.get(SECTION_ROUTING)
    if routing is not None:
        replicas = routing.get(FIELD_ROUTING_REPLICAS)
        if not isinstance(replicas, Mapping):
            raise StatsSchemaError(
                f"{where}: {SECTION_ROUTING!r} must carry a "
                f"{FIELD_ROUTING_REPLICAS!r} mapping"
            )
        for node, view in replicas.items():
            node_where = f"{where}.routing.replicas[{node!r}]"
            if not str(node).isdigit():
                raise StatsSchemaError(
                    f"{node_where}: replica keys are decimal rack indices"
                )
            if not isinstance(view, Mapping):
                raise StatsSchemaError(f"{node_where}: must be a mapping")
            for field in ROUTING_REPLICA_FIELDS:
                _require_number(view, SECTION_ROUTING, field, node_where)
    if router is not None:
        _validate_section(payload, SECTION_ROUTER, ROUTER_FIELDS, where)
        if not isinstance(shards, Mapping) or not shards:
            raise StatsSchemaError(
                f"{where}: {SECTION_SHARDS!r} must be a non-empty mapping"
            )
        for shard_id, section in shards.items():
            shard_where = f"{where}.shards[{shard_id!r}]"
            if not str(shard_id).isdigit():
                raise StatsSchemaError(
                    f"{shard_where}: shard keys are decimal rack indices"
                )
            if not isinstance(section, Mapping):
                raise StatsSchemaError(
                    f"{shard_where}: must be a mapping"
                )
            _validate_section(section, SECTION_BRIDGE, BRIDGE_FIELDS,
                              shard_where)
            _validate_section(section, SECTION_KVSTORE, KVSTORE_FIELDS,
                              shard_where)
            _validate_section(section, SECTION_ADMISSION, ADMISSION_FIELDS,
                              shard_where)
            if not isinstance(section.get(SECTION_METRICS), Mapping):
                raise StatsSchemaError(
                    f"{shard_where}: missing section {SECTION_METRICS!r}"
                )


def is_sharded(payload: Mapping) -> bool:
    """True when a validated payload came from a sharded front-end."""
    return SECTION_ROUTER in payload


def shard_ids(payload: Mapping) -> "list[int]":
    """The rack indices a sharded payload reports, sorted."""
    shards: Optional[Mapping] = payload.get(SECTION_SHARDS)
    if not shards:
        return []
    return sorted(int(k) for k in shards.keys())
