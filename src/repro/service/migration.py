"""The data mover for fleet membership changes.

:class:`MigrationStream` copies every key a
:class:`~repro.service.membership.MigrationPlan` obliges to move from its
old owner to its new one, while the fleet keeps serving.  It is
deliberately dumb about transport: the caller hands it three async
endpoints --

* ``scan(src, start, count)`` -> ``[(key, value), ...]`` (key-ordered,
  at most ``count`` items with key >= ``start``),
* ``put(dst, key, value)``,
* ``delete(src, key)`` (optional; post-commit shadow cleanup)

-- which the in-proc router binds straight to the shards' sim-time
bridges, and the process-mode proxy binds to wire-level
:class:`~repro.service.client.ServiceClient` calls against the backend
racks.  Either way the stream rides the same serving path as foreground
traffic, so its load is *visible* to admission and the simulator rather
than teleporting data behind the fleet's back.

Two properties keep it correct under live load:

* **bounded + throttled**: keys move in ``batch_size`` chunks with an
  asyncio pause between batches, so foreground p99 survives the copy;
* **forward-aware**: a key the write path dual-forwarded after the
  stream read it would be *clobbered* by applying the stream's older
  value, so forwarded keys are skipped at apply time (the forward
  already delivered the freshest value to the destination).

Any endpoint failure (a rack crash mid-migration surfaces here as a
timeout or connection error) aborts the run with the partial tally
attached; the caller decides whether to retry -- tainted, per
:meth:`FleetController.retry` -- or abort the plan outright.
"""

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.service.client import ServiceError
from repro.service.membership import FleetController, MigrationPlan

#: Keys copied per scan page / applied per burst.
DEFAULT_BATCH_SIZE = 64

#: Wall-clock pause between batches; the foreground's breathing room.
DEFAULT_PAUSE_S = 0.002

ScanFn = Callable[[int, str, int], Awaitable[List[Tuple[str, str]]]]
PutFn = Callable[[int, str, str], Awaitable[None]]
DeleteFn = Callable[[int, str], Awaitable[None]]


class MigrationStreamError(ReproError):
    """The stream could not finish; ``report`` holds the partial tally."""

    def __init__(self, message: str, report: "StreamReport") -> None:
        super().__init__(message)
        self.report = report


@dataclass
class StreamReport:
    """What one stream run (or attempt) actually moved."""

    keys_moved: int = 0
    bytes_streamed: int = 0
    batches: int = 0
    skipped_forwarded: int = 0
    sources_drained: int = 0
    #: ``(src, key)`` pairs that were copied -- the post-commit shadow
    #: cleanup list.
    moved: List[Tuple[int, str]] = field(default_factory=list)


class MigrationStream:
    """Copies a plan's moving keys source-by-source, page-by-page."""

    def __init__(self, controller: FleetController, plan: MigrationPlan, *,
                 scan: ScanFn, put: PutFn, delete: Optional[DeleteFn] = None,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 pause_s: float = DEFAULT_PAUSE_S) -> None:
        if batch_size < 1:
            raise ReproError(f"batch_size must be >= 1, got {batch_size}")
        self.controller = controller
        self.plan = plan
        self._scan = scan
        self._put = put
        self._delete = delete
        self.batch_size = batch_size
        self.pause_s = max(0.0, pause_s)

    async def run(self) -> StreamReport:
        """Stream every moving key; raises :class:`MigrationStreamError`
        wrapping the first endpoint failure."""
        report = StreamReport()
        counters = self.controller.counters
        sources = sorted({rng.src for rng in self.plan.ranges})
        try:
            for src in sources:
                await self._stream_source(src, report)
                report.sources_drained += 1
        except (asyncio.TimeoutError, ConnectionError, OSError,
                ReproError, ServiceError) as exc:
            raise MigrationStreamError(
                f"migration stream failed after {report.keys_moved} keys "
                f"({type(exc).__name__}: {exc})", report
            ) from exc
        finally:
            counters["keys_moved"] += report.keys_moved
            counters["bytes_streamed"] += report.bytes_streamed
            counters["batches"] += report.batches
        return report

    async def _stream_source(self, src: int, report: StreamReport) -> None:
        plan = self.plan
        start = ""
        while True:
            items = await self._scan(src, start, self.batch_size)
            if not items:
                return
            moving: List[Tuple[str, str]] = []
            for key, value in items:
                rng = plan.moving_range_for_key(key)
                if rng is None or rng.src != src:
                    continue
                if self.controller.is_forwarded(key):
                    # The write path already delivered a fresher value to
                    # the destination; applying ours would clobber it.
                    report.skipped_forwarded += 1
                    continue
                moving.append((key, value))
            if moving:
                await asyncio.gather(*(
                    self._apply(src, key, value, report)
                    for key, value in moving
                ))
                report.batches += 1
            # Resume strictly after the last key this page returned.
            start = items[-1][0] + "\x00"
            if len(items) < self.batch_size:
                return
            if self.pause_s:
                await asyncio.sleep(self.pause_s)

    async def _apply(self, src: int, key: str, value: str,
                     report: StreamReport) -> None:
        rng = self.plan.moving_range_for_key(key)
        assert rng is not None
        if self.controller.is_forwarded(key):
            report.skipped_forwarded += 1
            return
        # Register the in-flight put so a concurrent forwarded write to
        # the same key orders itself *after* us at the destination.
        token = self.controller.stream_put_begin(key)
        try:
            await self._put(rng.dst, key, value)
        finally:
            self.controller.stream_put_end(key, token)
        report.keys_moved += 1
        report.bytes_streamed += len(key.encode("utf-8")) + \
            len(str(value).encode("utf-8"))
        report.moved.append((src, key))

    async def cleanup(self, report: StreamReport) -> int:
        """Post-commit: delete the moved keys' shadow copies from their
        old owners (best-effort -- the copies are harmless to reads,
        they only pad scans).  Returns the number deleted."""
        if self._delete is None:
            return 0
        deleted = 0
        for offset in range(0, len(report.moved), self.batch_size):
            batch = report.moved[offset:offset + self.batch_size]
            results = await asyncio.gather(*(
                self._delete(src, key) for src, key in batch
            ), return_exceptions=True)
            deleted += sum(1 for r in results if not isinstance(r, Exception))
            if self.pause_s and offset + self.batch_size < len(report.moved):
                await asyncio.sleep(self.pause_s)
        self.controller.counters["cleanup_deletes"] += deleted
        return deleted
