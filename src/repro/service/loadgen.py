"""Open/closed-loop load generation against a running rack service.

* **closed loop**: N concurrent clients, each issuing the next request
  the moment the previous one answers -- measures capacity at a fixed
  concurrency (what the 32-client localhost benchmark runs);
* **open loop**: requests fired at a target aggregate rate regardless
  of completions (Poisson or uniform gaps) -- the coordinated-omission-
  free way to find where a service starts shedding.

Latencies are measured client-side in wall-clock time; ``BUSY`` sheds
are counted separately and *excluded* from the latency distribution, so
an overloaded run reports the p99 of admitted requests plus an explicit
shed rate rather than a meaningless blend.
"""

import asyncio
import bisect
import itertools
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.metrics.percentiles import percentile
from repro.service import protocol
from repro.service.client import ClientConfig, ServiceClient, ServiceError


@dataclass
class TenantReport:
    """One tenant's slice of a multi-tenant run (client-side view)."""

    sent: int = 0
    ok: int = 0
    busy: int = 0
    errors: int = 0
    latencies_ms: List[float] = field(default_factory=list)

    def latency_ms(self, q: float) -> float:
        if not self.latencies_ms:
            return float("nan")
        return percentile(self.latencies_ms, q)


@dataclass
class LoadgenReport:
    """Client-side view of one load-generation run."""

    mode: str
    clients: int
    wall_s: float
    sent: int = 0
    ok: int = 0
    busy: int = 0
    errors: int = 0
    retried: int = 0
    #: The framing the run actually used after negotiation ("json"/"bin").
    protocol: str = "json"
    #: Key/pair popularity shape the run drew from ("uniform"/"zipf").
    key_dist: str = "uniform"
    #: Wall seconds the generator spent encoding requests + decoding
    #: responses (closed loop only) -- the loadgen runs one event loop,
    #: so ``codec_s / wall_s`` is the codec's share of generator time.
    codec_s: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)
    server_stats: Optional[Dict] = None
    #: Per-tenant slices, present only when the run assigned tenants.
    tenants: Dict[str, TenantReport] = field(default_factory=dict)

    def tenant_lane(self, tenant: str) -> TenantReport:
        lane = self.tenants.get(tenant)
        if lane is None:
            lane = self.tenants[tenant] = TenantReport()
        return lane

    @property
    def codec_share(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.codec_s / self.wall_s

    @property
    def throughput_rps(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.ok / self.wall_s

    @property
    def shed_fraction(self) -> float:
        if self.sent == 0:
            return 0.0
        return self.busy / self.sent

    def latency_ms(self, q: float) -> float:
        if not self.latencies_ms:
            return float("nan")
        return percentile(self.latencies_ms, q)

    def describe(self) -> str:
        lines = [
            f"{self.mode}-loop loadgen: {self.clients} clients, "
            f"{self.wall_s:.2f}s wall",
            f"  sent {self.sent}  ok {self.ok}  busy {self.busy} "
            f"({self.shed_fraction:.1%} shed)  errors {self.errors}"
            + (f"  retried {self.retried}" if self.retried else ""),
            f"  throughput {self.throughput_rps:,.0f} req/s (admitted)",
            f"  protocol {self.protocol}"
            + (f"  key-dist {self.key_dist}"
               if self.key_dist != "uniform" else "")
            + (f"  codec {self.codec_s:.2f}s "
               f"({self.codec_share:.1%} of wall)"
               if self.codec_s > 0 else ""),
        ]
        if self.latencies_ms:
            lines.append(
                f"  latency ms  p50 {self.latency_ms(50):.2f}  "
                f"p90 {self.latency_ms(90):.2f}  "
                f"p99 {self.latency_ms(99):.2f}  "
                f"max {max(self.latencies_ms):.2f}"
            )
        for name in sorted(self.tenants):
            lane = self.tenants[name]
            p99 = (f"  p99 {lane.latency_ms(99):.2f}ms"
                   if lane.latencies_ms else "")
            lines.append(
                f"  tenant {name}: sent {lane.sent}  ok {lane.ok}  "
                f"busy {lane.busy}  errors {lane.errors}{p99}"
            )
        if self.server_stats:
            bridge = self.server_stats.get("bridge", {})
            metrics = self.server_stats.get("metrics", {})
            admission = self.server_stats.get("admission", {})
            lines.append(
                f"  server: sim_now {bridge.get('sim_now_us', 0) / 1e6:.3f}s  "
                f"completed {bridge.get('completed', 0):.0f}  "
                f"shed {admission.get('shed_queue_full', 0):.0f}"
            )
            routing = self.server_stats.get("routing", {})
            if routing:
                lines.append(
                    f"  routing: p2c_picks "
                    f"{routing.get('p2c_picks', 0):.0f}  "
                    f"diverted {routing.get('p2c_diverted', 0):.0f}  "
                    f"fallbacks {routing.get('fallbacks', 0):.0f}"
                )
            migration = self.server_stats.get("migration", {})
            if migration.get("cutovers", 0) or migration.get("active", 0) \
                    or migration.get("aborts", 0):
                lines.append(
                    f"  migration: epoch {migration.get('epoch', 0):.0f}  "
                    f"keys_moved {migration.get('keys_moved', 0):.0f}  "
                    f"forwards {migration.get('write_forwards', 0):.0f}  "
                    f"dual_reads "
                    f"{migration.get('dual_read_fallbacks', 0):.0f}  "
                    f"aborts {migration.get('aborts', 0):.0f}"
                )
            for key in sorted(metrics):
                if key.endswith(("_avg_us", "_p99_us")):
                    lines.append(f"    {key:24s} {metrics[key]:12.1f}")
        return "\n".join(lines)


class ZipfSampler:
    """A seeded zipfian rank sampler over ``[0, n)``.

    Rank ``r`` (0-based) is drawn with probability proportional to
    ``1 / (r + 1) ** s`` -- rank 0 is the hottest -- via one uniform
    draw and a bisect over the precomputed cumulative weights, so
    sampling is O(log n) and fully determined by the caller's ``rng``.
    The identity rank->index mapping is deliberate: key ``k00000000``
    (or pair 0) is always the hot spot, which makes skew tests and the
    routing benchmark easy to reason about.
    """

    def __init__(self, n: int, s: float, rng: "random.Random") -> None:
        if n < 1:
            raise ConfigError(f"zipf population must be >= 1, got {n}")
        if s <= 0:
            raise ConfigError(f"zipf exponent s must be > 0, got {s}")
        self.n = int(n)
        self.s = float(s)
        self._rng = rng
        cumulative: List[float] = []
        total = 0.0
        for rank in range(self.n):
            total += 1.0 / float(rank + 1) ** self.s
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def probability(self, rank: int) -> float:
        """The exact probability of drawing ``rank`` (for shape tests)."""
        return (1.0 / float(rank + 1) ** self.s) / self._total

    def sample(self) -> int:
        return bisect.bisect_right(
            self._cumulative, self._rng.random() * self._total
        )


def make_key_sampler(key_dist: str, zipf_s: float, n: int,
                     rng: "random.Random") -> Optional[ZipfSampler]:
    """``None`` for uniform (the rng's own randrange stays the source --
    byte-identical to older generators); a :class:`ZipfSampler` for zipf."""
    if key_dist == "uniform":
        return None
    if key_dist == "zipf":
        return ZipfSampler(n, zipf_s, rng)
    raise ConfigError(
        f"key_dist must be uniform/zipf, got {key_dist!r}"
    )


def _make_op(rng: "random.Random", write_ratio: float, kind: str,
             pairs: int, keyspace: int,
             sampler: Optional[ZipfSampler] = None) -> Dict:
    if kind == "kv":
        index = sampler.sample() if sampler else rng.randrange(keyspace)
        key = f"k{index:08d}"
        if rng.random() < write_ratio:
            return {"type": "put", "key": key, "value": f"v{key}"}
        return {"type": "get", "key": key}
    pair = sampler.sample() if sampler else rng.randrange(pairs)
    lpn = rng.randrange(keyspace)
    if rng.random() < write_ratio:
        return {"type": "write", "pair": pair, "lpn": lpn}
    return {"type": "read", "pair": pair, "lpn": lpn}


class _ClosedLoopConnection(asyncio.Protocol):
    """One closed-loop connection, driven straight on the transport.

    A response arriving *is* the trigger for the next request, so the
    driver needs no per-request future, task, or stream -- just a frame
    decoder and an id->send-time map.  Keeping the generator this lean
    matters on small hosts: a heavyweight client steals CPU from the
    server under test and reports the generator's ceiling, not the
    service's.
    """

    def __init__(self, index: int, quota: int, pipeline: int,
                 report: LoadgenReport, write_ratio: float, kind: str,
                 pairs: int, keyspace: int, seed: int,
                 retries: int = 0, wire_protocol: str = "json",
                 key_dist: str = "uniform", zipf_s: float = 1.1,
                 tenant: Optional[str] = None) -> None:
        self.report = report
        self.tenant = tenant
        self.lane = report.tenant_lane(tenant) if tenant else None
        self.quota = quota
        self.pipeline = pipeline
        self.write_ratio = write_ratio
        self.kind = kind
        self.pairs = pairs
        self.keyspace = keyspace
        self.retries = retries
        self.wire_protocol = wire_protocol
        self.use_bin = False
        self._negotiating = False
        self.client_name = f"loadgen-{index}"
        self.rng = random.Random(seed * 1_000_003 + index)
        self.sampler = make_key_sampler(
            key_dist, zipf_s, keyspace if kind == "kv" else pairs, self.rng,
        )
        self.decoder = protocol.FrameDecoder()
        self.sent = 0
        self.deadline: Optional[float] = None
        # rid -> (send time, the op payload, attempt number) so a
        # retryable rejection can be re-sent as the same logical op.
        self._inflight: Dict[int, Tuple[float, Dict, int]] = {}
        self._ids = itertools.count(1)
        self.transport: Optional["asyncio.Transport"] = None
        self.done: "asyncio.Future" = (
            asyncio.get_running_loop().create_future()
        )

    # ------------------------------------------------------------- protocol

    def connection_made(self, transport: "asyncio.BaseTransport") -> None:
        self.transport = transport  # type: ignore[assignment]

    def start(self, deadline: Optional[float]) -> None:
        """Fire the initial window (called once all connections are up).

        Under ``wire_protocol`` "auto"/"bin" a JSON ``hello`` goes out
        first and the window waits for its answer -- binary frames only
        ever follow a successful negotiation.  A tenant-bound connection
        hellos too (declaring its tenant), even on the plain JSON wire.
        """
        self.deadline = deadline
        if self.wire_protocol != "json" or self.tenant is not None:
            self._negotiating = True
            hello = {"type": "hello", "v": protocol.PROTOCOL_VERSION,
                     "id": 0}
            if self.tenant is not None:
                hello["tenant"] = self.tenant
            self.transport.write(protocol.encode_frame(hello))
            return
        self._fire_window()

    def _fire_window(self) -> None:
        burst = bytearray()
        for _ in range(self.pipeline):
            if not self._may_send():
                break
            burst += self._next_request()
        if burst:
            self.transport.write(bytes(burst))
        elif not self._inflight:
            self._finish()

    def data_received(self, data: bytes) -> None:
        t_dec = time.perf_counter()
        try:
            responses = self.decoder.feed(data)
        except protocol.FrameError:
            self._abort()
            return
        self.report.codec_s += time.perf_counter() - t_dec
        if self._negotiating:
            hello = next((r for r in responses if r.get("id") == 0), None)
            if hello is not None:
                responses = [r for r in responses if r.get("id") != 0]
                self._negotiating = False
                if not hello.get("ok"):
                    # A rejected hello (e.g. unknown tenant) fails the
                    # run loudly instead of silently riding "default".
                    self.done.set_exception(ConfigError(
                        f"hello rejected: {hello.get('message', hello)}"
                    ))
                    if (self.transport is not None
                            and not self.transport.is_closing()):
                        self.transport.close()
                    return
                capable = "bin" in (hello.get("capabilities") or [])
                if not capable and self.wire_protocol == "bin":
                    self.done.set_exception(ConfigError(
                        "server does not offer the 'bin' capability"
                    ))
                    if (self.transport is not None
                            and not self.transport.is_closing()):
                        self.transport.close()
                    return
                if self.wire_protocol != "json":
                    self.use_bin = capable
                    self.report.protocol = "bin" if capable else "json"
                self._fire_window()
        now = time.monotonic()
        burst = bytearray()
        for response in responses:
            entry = self._inflight.pop(response.get("id"), None)
            if entry is None:
                continue
            t0, op, attempt = entry
            if response.get("ok"):
                self.report.ok += 1
                self.report.latencies_ms.append((now - t0) * 1e3)
                if self.lane is not None:
                    self.lane.ok += 1
                    self.lane.latencies_ms.append((now - t0) * 1e3)
            elif (response.get("error") in (protocol.BUSY, protocol.TIMEOUT)
                  and attempt < self.retries):
                # Re-send the same logical op in this pipeline slot; it
                # does not consume quota (same op, new attempt).
                self.report.retried += 1
                burst += self._encode(op, attempt + 1)
                continue
            elif response.get("error") == protocol.BUSY:
                self.report.busy += 1
                if self.lane is not None:
                    self.lane.busy += 1
            else:
                self.report.errors += 1
                if self.lane is not None:
                    self.lane.errors += 1
            if self._may_send():
                burst += self._next_request()
        if burst:
            self.transport.write(bytes(burst))
        elif not self._inflight and not self._negotiating:
            self._finish()

    def connection_lost(self, exc: Optional[Exception]) -> None:
        if not self.done.done():
            # Anything still unanswered when the server hangs up is an
            # error from the client's point of view.
            self.report.errors += len(self._inflight)
            if self.lane is not None:
                self.lane.errors += len(self._inflight)
            self._inflight.clear()
            self.done.set_result(None)

    # -------------------------------------------------------------- helpers

    def _may_send(self) -> bool:
        if self.deadline is not None:
            return time.monotonic() < self.deadline
        return self.sent < self.quota

    def _next_request(self) -> bytes:
        op = _make_op(self.rng, self.write_ratio, self.kind, self.pairs,
                      self.keyspace, self.sampler)
        self.sent += 1
        self.report.sent += 1
        if self.lane is not None:
            self.lane.sent += 1
        return self._encode(op, 0)

    def _encode(self, op: Dict, attempt: int) -> bytes:
        op = dict(op)
        rid = next(self._ids)
        op["id"] = rid
        op["client"] = self.client_name
        self._inflight[rid] = (time.monotonic(), op, attempt)
        t_enc = time.perf_counter()
        frame = protocol.encode_frame_as(op, self.use_bin)
        self.report.codec_s += time.perf_counter() - t_enc
        return frame

    def _finish(self) -> None:
        if not self.done.done():
            self.done.set_result(None)
        if self.transport is not None and not self.transport.is_closing():
            self.transport.close()

    def _abort(self) -> None:
        self.report.errors += len(self._inflight)
        if self.lane is not None:
            self.lane.errors += len(self._inflight)
        self._inflight.clear()
        self._finish()


async def _issue(client: ServiceClient, op: Dict,
                 report: LoadgenReport) -> None:
    t0 = time.monotonic()
    report.sent += 1
    lane = report.tenant_lane(client.tenant) if client.tenant else None
    if lane is not None:
        lane.sent += 1
    try:
        await client.request(op)
    except ServiceError as exc:
        if exc.is_busy:
            report.busy += 1
            if lane is not None:
                lane.busy += 1
        else:
            report.errors += 1
            if lane is not None:
                lane.errors += 1
        return
    except (ConnectionError, asyncio.CancelledError):
        report.errors += 1
        if lane is not None:
            lane.errors += 1
        return
    latency_ms = (time.monotonic() - t0) * 1e3
    report.latencies_ms.append(latency_ms)
    report.ok += 1
    if lane is not None:
        lane.ok += 1
        lane.latencies_ms.append(latency_ms)


async def run_loadgen(
    host: str,
    port: int,
    *,
    mode: str = "closed",
    clients: int = 32,
    requests_per_client: int = 200,
    pipeline: int = 1,
    duration_s: float = 0.0,
    rate_rps: float = 5000.0,
    write_ratio: float = 0.3,
    kind: str = "raw",
    pairs: int = 4,
    keyspace: int = 1024,
    key_dist: str = "uniform",
    zipf_s: float = 1.1,
    seed: int = 42,
    retries: int = 0,
    wire_protocol: str = "auto",
    fetch_stats: bool = True,
    connect_retries: int = 25,
    tenants: Optional[List[str]] = None,
) -> LoadgenReport:
    """Drive the service and return the client-side report.

    In closed-loop mode each of ``clients`` connections runs
    ``requests_per_client`` back-to-back requests (or keeps going until
    ``duration_s``, when given); ``pipeline`` > 1 keeps that many
    requests outstanding per connection, using the protocol's id
    matching -- the knob that separates measuring *latency at fixed
    concurrency* (1) from *capacity* (8+).  In open-loop mode requests
    are fired across the connections at ``rate_rps`` aggregate with
    exponential gaps for ``duration_s`` seconds.

    ``retries`` re-sends a request up to that many times when the server
    answers ``BUSY``/``TIMEOUT`` (or, open loop, the connection drops) --
    the knob that turns transient chaos-window failures into retried
    successes instead of errors.

    ``wire_protocol`` picks the framing: ``"auto"`` (default) negotiates
    via ``hello`` and uses binary iff the server offers it, ``"json"``
    stays on v1 JSON (no hello -- byte-identical to older generators),
    ``"bin"`` demands binary and fails when unavailable.  The framing
    the run actually used lands in ``report.protocol``.

    ``key_dist`` shapes popularity: ``"uniform"`` (default, the exact
    randrange stream older generators drew) or ``"zipf"`` with exponent
    ``zipf_s`` -- raw ops skew which *pair* is hit, kv ops which *key*,
    with rank 0 (pair 0 / ``k00000000``) always the hottest.  Each
    closed-loop connection samples from its own seeded stream, so a run
    is reproducible for any client count.

    ``tenants`` assigns connections to QoS tenant names round-robin
    (connection ``i`` serves ``tenants[i % len(tenants)]``), so e.g.
    ``["gold", "silver", "bronze"]`` across 12 clients drives a
    3-tenant-class mix at 4 connections per class.  Tenant-bound
    connections declare themselves via ``hello`` and the report grows
    per-tenant lanes (``report.tenants``) with their own latency
    distributions.
    """
    if mode not in ("closed", "open"):
        raise ConfigError(f"mode must be closed/open, got {mode!r}")
    if clients < 1:
        raise ConfigError(f"clients must be >= 1, got {clients}")
    if pipeline < 1:
        raise ConfigError(f"pipeline depth must be >= 1, got {pipeline}")
    if kind not in ("raw", "kv"):
        raise ConfigError(f"kind must be raw/kv, got {kind!r}")
    if mode == "open" and duration_s <= 0:
        raise ConfigError("open-loop mode needs duration_s > 0")
    if retries < 0:
        raise ConfigError(f"retries must be >= 0, got {retries}")
    if wire_protocol not in ("json", "bin", "auto"):
        raise ConfigError(
            f"wire_protocol must be json/bin/auto, got {wire_protocol!r}"
        )
    if key_dist not in ("uniform", "zipf"):
        raise ConfigError(
            f"key_dist must be uniform/zipf, got {key_dist!r}"
        )
    if key_dist == "zipf" and zipf_s <= 0:
        raise ConfigError(f"zipf_s must be > 0, got {zipf_s}")
    if tenants is not None:
        if not tenants or not all(
                isinstance(t, str) and t for t in tenants):
            raise ConfigError(
                f"tenants must be a non-empty list of non-empty tenant "
                f"names, got {tenants!r}"
            )
    report = LoadgenReport(mode=mode, clients=clients, wall_s=0.0,
                           key_dist=key_dist)
    if mode == "closed":
        await _closed_loop(host, port, report, clients,
                           requests_per_client, duration_s, write_ratio,
                           kind, pairs, keyspace, seed, pipeline,
                           connect_retries, retries, wire_protocol,
                           key_dist, zipf_s, tenants)
    else:
        pool: List[ServiceClient] = []
        for i in range(clients):
            client = ServiceClient(host, port, client_name=f"loadgen-{i}",
                                   config=ClientConfig(
                                       max_retries=retries,
                                       retry_backoff_s=0.005,
                                       wire_protocol=wire_protocol,
                                       tenant=(tenants[i % len(tenants)]
                                               if tenants else None),
                                   ))
            for attempt in range(connect_retries):
                try:
                    await client.connect()
                    break
                except OSError:
                    if attempt == connect_retries - 1:
                        raise
                    await asyncio.sleep(0.2)
            pool.append(client)
        report.protocol = pool[0].negotiated_protocol if pool else "json"
        t_start = time.monotonic()
        try:
            await _open_loop(pool, report, duration_s, rate_rps,
                             write_ratio, kind, pairs, keyspace, seed,
                             key_dist, zipf_s)
            report.wall_s = time.monotonic() - t_start
        finally:
            for client in pool:
                report.retried += client.counters["retries"]
                await client.close()
    if fetch_stats:
        try:
            async with ServiceClient(host, port,
                                     client_name="loadgen-stats") as probe:
                stats = await probe.stats()
            report.server_stats = {
                k: v for k, v in stats.items() if k not in ("ok", "id")
            }
        except (ServiceError, ConnectionError, OSError):
            pass
    return report


async def _closed_loop(host: str, port: int, report: LoadgenReport,
                       clients: int, requests_per_client: int,
                       duration_s: float, write_ratio: float, kind: str,
                       pairs: int, keyspace: int, seed: int,
                       pipeline: int, connect_retries: int,
                       retries: int = 0,
                       wire_protocol: str = "json",
                       key_dist: str = "uniform",
                       zipf_s: float = 1.1,
                       tenants: Optional[List[str]] = None) -> None:
    loop = asyncio.get_running_loop()
    connections: List[_ClosedLoopConnection] = []
    for i in range(clients):
        conn = _ClosedLoopConnection(i, requests_per_client, pipeline,
                                     report, write_ratio, kind, pairs,
                                     keyspace, seed, retries,
                                     wire_protocol, key_dist, zipf_s,
                                     tenant=(tenants[i % len(tenants)]
                                             if tenants else None))
        for attempt in range(connect_retries):
            try:
                await loop.create_connection(lambda c=conn: c, host, port)
                break
            except OSError:
                if attempt == connect_retries - 1:
                    raise
                await asyncio.sleep(0.2)
        connections.append(conn)
    # Start every connection's window only once all are connected, so the
    # measured interval holds the full concurrency throughout.
    t_start = time.monotonic()
    deadline = (t_start + duration_s) if duration_s > 0 else None
    for conn in connections:
        conn.start(deadline)
    await asyncio.gather(*(conn.done for conn in connections))
    report.wall_s = time.monotonic() - t_start


async def _open_loop(pool: List[ServiceClient], report: LoadgenReport,
                     duration_s: float, rate_rps: float, write_ratio: float,
                     kind: str, pairs: int, keyspace: int, seed: int,
                     key_dist: str = "uniform",
                     zipf_s: float = 1.1) -> None:
    if rate_rps <= 0:
        raise ConfigError(f"open-loop rate must be positive, got {rate_rps}")
    rng = random.Random(seed)
    sampler = make_key_sampler(key_dist, zipf_s,
                               keyspace if kind == "kv" else pairs, rng)
    deadline = time.monotonic() + duration_s
    outstanding: List["asyncio.Task"] = []
    loop = asyncio.get_running_loop()
    i = 0
    next_at = time.monotonic()
    while True:
        now = time.monotonic()
        if now >= deadline:
            break
        if now < next_at:
            await asyncio.sleep(next_at - now)
        op = _make_op(rng, write_ratio, kind, pairs, keyspace, sampler)
        client = pool[i % len(pool)]
        i += 1
        outstanding.append(loop.create_task(_issue(client, op, report)))
        # Exponential inter-arrival: Poisson arrivals at the target rate.
        next_at += rng.expovariate(rate_rps)
    if outstanding:
        await asyncio.wait(outstanding, timeout=30.0)
        for task in outstanding:
            if not task.done():
                task.cancel()
