"""Sharded multi-rack serving: a consistent-hash router over live racks.

RackBlox §3.7 leaves multi-rack operation as future work and
:mod:`repro.cluster.multirack` reproduces its batch half (inter-switch
GC-state sync + cross-rack fail-over).  This module is the *serving*
half: a front-end that owns N independent rack simulators -- each with
its own :class:`~repro.service.bridge.SimTimeBridge` pump, ToR switch
and admission controller -- and places traffic onto them with the seeded
consistent-hash ring from :mod:`repro.service.shard`.

Two deployment shapes share the wire protocol:

* :class:`ShardedRackService` -- **in-process**: all N racks ride one
  event loop behind one listener.  Full semantics (per-shard admission,
  GC-aware cross-rack fallback honouring the sync-staleness window,
  scatter-gather scans, rack-qualified fault schedules) and fully
  deterministic, but all racks share one core.
* :class:`ShardProxy` -- **multi-process**: one backend ``serve``
  process per rack, the proxy relaying frames at frame granularity
  (:class:`~repro.service.protocol.FrameSplitter`).  Each rack gets its
  own interpreter and core, which is what makes throughput scale
  near-linearly on multicore hosts (``benchmarks/test_service_loadgen.py``).

Routing rules (both shapes):

* raw ``read``/``write`` address a **global pair index** ``g`` in
  ``[0, racks * pairs_per_rack)``; the owner is
  ``ring.node_for(f"pair:{g}")`` and the local pair is
  ``g % pairs_per_rack``;
* ``get``/``put`` route by key; ``scan`` scatter-gathers every shard
  in-process (the proxy routes a scan to the start-key owner);
* when the router's *view* of the owner says both in-rack copies of the
  target pair are collecting, a raw read falls back to the next distinct
  ring node -- the serving-layer form of
  :meth:`MultiRackFabric.process_read`, with the same staleness caveat:
  the view refreshes only every ``gc_sync_s`` seconds;
* under ``--read-policy p2c`` raw reads instead go through the
  :class:`~repro.service.selector.ReplicaSelector`: power-of-two-choices
  over the pair's preference list, scored by live queue depth times a
  latency EWMA (both shapes), with the GC view folded in as a score
  penalty (in-process only) and strict-hash fallback whenever the load
  view is stale or a membership change is in flight.  Key-value ops are
  *not* replicated across racks, so they always route to their
  authoritative owner regardless of policy.
"""

import asyncio
import dataclasses
import json
import re
import time
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.config import RackConfig
from repro.errors import ConfigError
from repro.metrics.collector import ExperimentMetrics
from repro.service import protocol, schema
from repro.service.admission import AdmissionController
from repro.service.bridge import BridgeStats, SimTimeBridge
from repro.service.membership import (
    FleetController,
    MembershipBusy,
    MembershipError,
)
from repro.service.migration import MigrationStream, MigrationStreamError
from repro.service.qos import DEFAULT_TENANT, QosScheduler
from repro.service.readcache import ReadCache
from repro.service.selector import (
    DEFAULT_EWMA_ALPHA,
    DEFAULT_STALE_AFTER_S,
    POLICY_HASH,
    POLICY_P2C,
    READ_POLICIES,
    ReplicaSelector,
    ReplicaStats,
    RoutingTrace,
)
from repro.service.server import CACHE_HIT_LATENCY_US, RackService
from repro.service.shard import (
    DEFAULT_RING_SEED,
    DEFAULT_VNODES,
    HashRing,
    RackShard,
)

#: How often (wall seconds) the router refreshes its view of each
#: shard's GC state.  The batch fabric syncs after 40 us of simulated
#: inter-switch delay; a live front-end polls, and this is its window
#: of allowed staleness.
DEFAULT_GC_SYNC_S = 0.005

#: Score penalty (sim us) the selector adds to a replica whose target
#: pair the GC view says is both-copies-collecting -- large enough to
#: lose any realistic depth*latency race, so p2c mode keeps the hash
#: router's GC avoidance without a separate redirect path.
GC_SCORE_PENALTY_US = 1e6


def build_shard_configs(config: RackConfig, racks: int) -> List[RackConfig]:
    """Derive one config per rack from the base config.

    Each rack gets a distinct seed (so shards are independent rather
    than N clones replaying identical randomness) and only its slice of
    the fault schedule (events carrying ``rack: i`` or no rack at all).
    ``racks == 1`` returns the base config untouched -- the single-rack
    special case stays byte-identical to the unsharded service.
    """
    if racks < 1:
        raise ConfigError(f"racks must be >= 1, got {racks}")
    if racks == 1:
        return [config]
    out = []
    for index in range(racks):
        schedule = config.fault_schedule
        if schedule is not None:
            schedule = schedule.for_rack(index)
        out.append(dataclasses.replace(
            config, seed=config.seed + index, fault_schedule=schedule,
        ))
    return out


class RouterLoadView:
    """The in-process router's live load view, one signal per layer.

    Queue depth reads straight off each shard (``shard.inflight`` is
    exact at decision time); the latency EWMA updates on every read
    completion the router observes (sim microseconds -- durations, so
    comparable across shards despite independent sim clocks); and the
    freshness stamp rides the GC sync loop, i.e. the same periodically-
    synced switch-table view the GC fallback trusts.  A cold EWMA seeds
    from the shard's own cumulative ``read_avg_us`` at the next sync --
    the INT/switch-view stage-latency bootstrap -- and until either
    source has spoken the replica reads as stale, which the selector
    answers with strict hash order.
    """

    def __init__(self, router: "ShardRouter", *,
                 ewma_alpha: float = DEFAULT_EWMA_ALPHA) -> None:
        self._router = router
        self.ewma_alpha = float(ewma_alpha)
        self._ewma: Dict[int, float] = {}
        self._synced: Dict[int, float] = {}

    def observe(self, node: int, latency_us: float) -> None:
        prev = self._ewma.get(node, 0.0)
        if prev <= 0.0:
            self._ewma[node] = float(latency_us)
        else:
            alpha = self.ewma_alpha
            self._ewma[node] = (1.0 - alpha) * prev + alpha * float(latency_us)
        self._synced[node] = time.monotonic()

    def sync(self) -> None:
        """Refresh freshness stamps; seed cold EWMAs from shard metrics."""
        now = time.monotonic()
        for shard in self._router.shards:
            if self._ewma.get(shard.index, 0.0) <= 0.0:
                avg = shard.bridge.metrics.summary().get("read_avg_us")
                if avg:
                    self._ewma[shard.index] = float(avg)
            self._synced[shard.index] = now

    def replica(self, node: int) -> ReplicaStats:
        shard = self._router._by_index.get(node)
        if shard is None:  # deregistered = epoch-retired: dead to us
            return ReplicaStats(live=False, age_s=float("inf"))
        synced = self._synced.get(node)
        age = float("inf") if synced is None else time.monotonic() - synced
        plan = self._router.fleet.plan
        return ReplicaStats(
            depth=float(shard.inflight),
            ewma_us=self._ewma.get(node, 0.0),
            age_s=age,
            live=True,
            draining=(plan is not None and plan.kind == "drain"
                      and plan.node == node),
        )


class ShardRouter:
    """Owns N :class:`RackShard`s and routes requests onto them.

    The router implements the same surface the server expects of a
    bridge (``start``/``stop``/``inflight``/``stats``/``stats_payload``/
    ``submit_*``/``after_chunk``), so :class:`ShardedRackService` can
    hand it to the unmodified :class:`RackService` machinery.
    """

    def __init__(self, shards: Sequence[RackShard], *,
                 vnodes: int = DEFAULT_VNODES,
                 ring_seed: int = DEFAULT_RING_SEED,
                 gc_sync_s: float = DEFAULT_GC_SYNC_S,
                 read_policy: str = POLICY_HASH,
                 stale_after_s: float = DEFAULT_STALE_AFTER_S,
                 routing_trace: Optional[RoutingTrace] = None) -> None:
        if not shards:
            raise ConfigError("a router needs at least one shard")
        if gc_sync_s < 0:
            raise ConfigError(f"gc_sync_s must be >= 0, got {gc_sync_s}")
        if read_policy not in READ_POLICIES:
            raise ConfigError(
                f"read_policy must be one of {READ_POLICIES}, "
                f"got {read_policy!r}"
            )
        self.shards: List[RackShard] = list(shards)
        self._by_index = {shard.index: shard for shard in self.shards}
        if len(self._by_index) != len(self.shards):
            raise ConfigError("shard indices must be unique")
        #: Membership control plane: owns the ring, the epoch, and at
        #: most one live migration (``admit_rack``/``drain_rack``).
        self.fleet = FleetController(HashRing(
            (s.index for s in self.shards), vnodes=vnodes, seed=ring_seed,
        ))
        self.gc_sync_s = gc_sync_s
        # Construction recipe for racks admitted later; ``from_config``
        # fills these in, direct construction leaves them unset and
        # ``admit_rack`` then needs an explicit config.
        self._base_config: Optional[RackConfig] = None
        self._precondition = False
        self._bridge_kwargs: Dict[str, Any] = {}
        self._admission_kwargs: Dict[str, Any] = {}
        #: Aggregate latency collector.  Per-shard collectors cannot be
        #: merged (percentiles do not add), so the router records every
        #: completed request itself.
        self.metrics = ExperimentMetrics()
        #: The router's (possibly stale) view of each shard's per-pair
        #: "both copies collecting" state -- what the fallback decides on.
        self._gc_views: Dict[int, Tuple[bool, ...]] = {
            shard.index: tuple(False for _ in range(shard.num_pairs))
            for shard in self.shards
        }
        self.routed = 0
        self.cross_rack_redirects = 0
        self.scatter_scans = 0
        self.unroutable = 0
        self.gc_view_commits = 0
        #: Load-aware read placement (RackSched-style p2c).  Under the
        #: default ``"hash"`` policy neither object exists and every
        #: code path is byte-identical to the plain router.
        self.read_policy = read_policy
        self.load_view: Optional[RouterLoadView] = None
        self.selector: Optional[ReplicaSelector] = None
        if read_policy == POLICY_P2C:
            self.load_view = RouterLoadView(self)
            self.selector = ReplicaSelector(
                self.load_view, policy=read_policy,
                stale_after_s=stale_after_s, trace=routing_trace,
            )
        #: Front-end read cache, attached by :class:`ShardedRackService`
        #: when caching is on.  The router's duty is correctness only:
        #: invalidate on migration-stream writes (they bypass the
        #: server's submit path) and fence at every epoch commit.
        self.read_cache: Optional[ReadCache] = None
        self._after_chunk: Optional[Any] = None
        self._gc_task: Optional["asyncio.Task"] = None
        self._running = False

    @property
    def ring(self) -> HashRing:
        """The *current* ring -- swapped atomically at membership commit."""
        return self.fleet.ring

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        if self._running:
            return
        self._running = True
        for shard in self.shards:
            await shard.start()
        if self.gc_sync_s > 0:
            self._gc_task = asyncio.get_running_loop().create_task(
                self._gc_sync_loop()
            )

    async def stop(self, drain: bool = True,
                   drain_timeout_s: float = 10.0) -> None:
        if not self._running:
            return
        self._running = False
        if self._gc_task is not None:
            self._gc_task.cancel()
            try:
                await self._gc_task
            except asyncio.CancelledError:
                pass
            self._gc_task = None
        await asyncio.gather(*(
            shard.stop(drain=drain, drain_timeout_s=drain_timeout_s)
            for shard in self.shards
        ))

    @property
    def inflight(self) -> int:
        return sum(shard.inflight for shard in self.shards)

    @property
    def after_chunk(self) -> Optional[Any]:
        return self._after_chunk

    @after_chunk.setter
    def after_chunk(self, hook: Optional[Any]) -> None:
        # Every shard pump flushes the server's write buffers after its
        # own chunk; responses from other shards that completed in the
        # meantime ride along for free.  The flush is deferred one extra
        # event-loop tick: routed completions cross *two* futures (the
        # shard's, then the router's), so the server buffers the
        # response one callback batch later than a single-rack service
        # would -- an undeferred flush would run before the response
        # exists and, with nothing left in flight, never run again.
        self._after_chunk = hook
        if hook is None:
            wrapped = None
        else:
            def wrapped(hook: Any = hook) -> None:
                asyncio.get_running_loop().call_soon(hook)
        for shard in self.shards:
            shard.bridge.after_chunk = wrapped

    # -------------------------------------------------------------- GC view

    async def _gc_sync_loop(self) -> None:
        while True:
            await asyncio.sleep(self.gc_sync_s)
            self.sync_gc_views()

    def sync_gc_views(self) -> None:
        """Commit each shard's *current* GC truth into the router view.

        Until this runs, the router routes on the old view -- exactly the
        staleness window the batch fabric's sync delay models.
        """
        for shard in self.shards:
            self._gc_views[shard.index] = shard.gc_busy_pairs()
        self.gc_view_commits += 1
        if self.load_view is not None:
            self.load_view.sync()

    # -------------------------------------------------------------- routing

    @property
    def total_pairs(self) -> int:
        return sum(shard.num_pairs for shard in self.shards)

    def _owner_of_pair(self, global_pair: int) -> RackShard:
        total = self.total_pairs
        if not 0 <= global_pair < total:
            raise ConfigError(
                f"pair index {global_pair} out of range [0, {total})"
            )
        node = self.ring.node_for(f"pair:{global_pair}")
        return self._by_index[node]

    def _local_pair(self, shard: RackShard, global_pair: int) -> int:
        return global_pair % shard.num_pairs

    def _route_read(self, global_pair: int) -> Tuple[RackShard, int, bool]:
        """(shard, local pair, redirected?) for a raw read.

        The fallback mirrors :meth:`MultiRackFabric.process_read`: only
        when the router's view says *both* in-rack copies of the owner's
        pair are collecting does the read leave the rack, and then to the
        next distinct ring node (where the cross-rack replica of the
        pair lives under 2+1 placement).
        """
        owner = self._owner_of_pair(global_pair)
        local = self._local_pair(owner, global_pair)
        if len(self.shards) > 1:
            view = self._gc_views.get(owner.index, ())
            if local < len(view) and view[local]:
                nodes = self.ring.preference(f"pair:{global_pair}", count=2)
                if len(nodes) > 1:
                    fallback = self._by_index[nodes[1]]
                    return fallback, self._local_pair(fallback, global_pair), True
        return owner, local, False

    def _route_read_p2c(self, global_pair: int) -> Tuple[RackShard, int, bool]:
        """(shard, local pair, diverted?) under the p2c policy.

        Candidates are the first two distinct ring nodes for the pair in
        strict hash order -- under 2+1 placement the cross-rack replica
        the GC fallback already reads from -- restricted to registered
        shards.  The GC view feeds in as a score penalty instead of a
        separate redirect, so a both-copies-collecting owner loses the
        race the same way an overloaded one does.  Every fallback inside
        the selector resolves to hash order, so degraded p2c and plain
        hash place reads identically.
        """
        assert self.selector is not None
        owner = self._owner_of_pair(global_pair)  # also range-checks
        nodes = [
            node
            for node in self.ring.preference(f"pair:{global_pair}", count=2)
            if node in self._by_index
        ]
        if not nodes:
            return owner, self._local_pair(owner, global_pair), False
        penalties: Dict[int, float] = {}
        for node in nodes:
            shard = self._by_index[node]
            view = self._gc_views.get(node, ())
            local = self._local_pair(shard, global_pair)
            if local < len(view) and view[local]:
                penalties[node] = GC_SCORE_PENALTY_US
        plan = self.fleet.plan
        decision = self.selector.choose(
            f"pair:{global_pair}", nodes,
            migrating_node=plan.node if plan is not None else None,
            epoch=self.fleet.epoch, penalties=penalties,
        )
        chosen = self._by_index[decision.chosen]
        return chosen, self._local_pair(chosen, global_pair), \
            decision.diverted

    def shard_for_key(self, key: str) -> RackShard:
        """The shard holding the *authoritative* copy of ``key`` right
        now (the old owner while that key's range is migrating)."""
        return self._by_index[self.fleet.read_owner(str(key))]

    def shard_for_request(self, request: Dict[str, Any]) -> Optional[RackShard]:
        """The shard that would *execute* a request; None if unroutable.

        Unroutable requests (missing/bad operands, unknown types) are
        admitted through so the dispatch path raises the same
        ``BAD_REQUEST`` a single rack would.
        """
        rtype = request.get("type")
        try:
            if rtype in ("read", "write"):
                global_pair = int(request["pair"])
                if rtype == "read":
                    return self._route_read(global_pair)[0]
                return self._owner_of_pair(global_pair)
            if rtype in ("get", "put", "del"):
                return self.shard_for_key(str(request["key"]))
            if rtype == "scan":
                return self.shard_for_key(str(request.get("start", "")))
        except (KeyError, TypeError, ValueError, ConfigError):
            return None
        return None

    def try_admit(self, client: str, request: Dict[str, Any]) -> bool:
        """Route, then ask the owning shard's own admission controller.

        Scatter scans are metered against the start-key owner (one
        decision per request, not one per shard it touches).
        """
        shard = self.shard_for_request(request)
        if shard is None:
            self.unroutable += 1
            return True  # let dispatch raise the precise BAD_REQUEST
        return shard.admission.try_admit(client, shard.inflight)

    # ----------------------------------------------------------- submission

    def _finish(self, shard: RackShard, kind: str,
                inner: "asyncio.Future",
                extra: Dict[str, Any]) -> "asyncio.Future":
        """Wrap a shard future: tag the response with its rack and feed
        the aggregate collector (cancellation propagates both ways)."""
        loop = asyncio.get_running_loop()
        outer: "asyncio.Future" = loop.create_future()

        def _done(fut: "asyncio.Future") -> None:
            if outer.done():
                return
            if fut.cancelled():
                outer.cancel()
                return
            exc = fut.exception()
            if exc is not None:
                outer.set_exception(exc)
                return
            payload = dict(fut.result())
            payload.update(extra)
            latency = payload.get("latency_us")
            if latency is not None:
                self.metrics.record(
                    kind, latency, at=shard.bridge.rack.sim.now,
                    storage_us=payload.get("storage_us"),
                )
                if kind == "read" and self.load_view is not None:
                    self.load_view.observe(shard.index, float(latency))
            outer.set_result(payload)

        def _cancelled(out: "asyncio.Future") -> None:
            if out.cancelled() and not inner.done():
                inner.cancel()

        inner.add_done_callback(_done)
        outer.add_done_callback(_cancelled)
        return outer

    def submit_read(self, pair_index: int, lpn: int,
                    client: str = "live", replica: bool = False,
                    ) -> "asyncio.Future":
        extra: Dict[str, Any] = {}
        if self.selector is not None:
            shard, local, diverted = self._route_read_p2c(int(pair_index))
            if diverted:
                shard.redirected_in += 1
        else:
            shard, local, redirected = self._route_read(int(pair_index))
            if redirected:
                self.cross_rack_redirects += 1
                shard.redirected_in += 1
                extra["cross_rack"] = True
        self.routed += 1
        extra["rack"] = shard.index
        future = shard.bridge.submit_read(local, lpn, client, replica=replica)
        return self._finish(shard, "read", future, extra)

    def submit_write(self, pair_index: int, lpn: int,
                     client: str = "live") -> "asyncio.Future":
        shard = self._owner_of_pair(int(pair_index))
        self.routed += 1
        future = shard.bridge.submit_write(
            self._local_pair(shard, int(pair_index)), lpn, client
        )
        return self._finish(shard, "write", future, {"rack": shard.index})

    def submit_get(self, key: str, client: str = "live") -> "asyncio.Future":
        key = str(key)
        first, fallback = self.fleet.read_route(key)
        self.routed += 1
        if fallback is None:
            shard = self._by_index[first]
            future = shard.bridge.submit_get(key, client)
            return self._finish(shard, "read", future, {"rack": shard.index})
        return asyncio.ensure_future(
            self._dual_read(key, client, first, fallback)
        )

    async def _dual_read(self, key: str, client: str,
                         first_idx: int, fallback_idx: int) -> Dict[str, Any]:
        """Migration-window read: new owner first, old owner on a miss.

        The new owner serves freshly-moved (and forwarded) keys without
        touching the source; keys the stream has not reached yet miss
        and resolve at the still-authoritative old owner.  Latency is
        the sum of the legs actually taken.
        """
        first = self._by_index[first_idx]
        payload = dict(await first.bridge.submit_get(key, client))
        if payload.get("found"):
            payload["rack"] = first.index
            self.metrics.record("read", payload["latency_us"],
                                at=first.bridge.rack.sim.now)
            return payload
        self.fleet.counters["dual_read_fallbacks"] += 1
        second = self._by_index[fallback_idx]
        fell_back = dict(await second.bridge.submit_get(key, client))
        fell_back["rack"] = second.index
        fell_back["dual_read"] = True
        fell_back["latency_us"] = (payload["latency_us"] +
                                   fell_back["latency_us"])
        self.metrics.record("read", fell_back["latency_us"],
                            at=second.bridge.rack.sim.now)
        return fell_back

    def submit_put(self, key: str, value: str,
                   client: str = "live") -> "asyncio.Future":
        key = str(key)
        primary, forward = self.fleet.write_route(key)
        self.routed += 1
        if forward is None:
            shard = self._by_index[primary]
            future = shard.bridge.submit_put(key, value, client)
            return self._finish(shard, "write", future,
                                {"rack": shard.index})
        return asyncio.ensure_future(
            self._forwarded_write(key, value, client, primary, forward)
        )

    def submit_delete(self, key: str,
                      client: str = "live") -> "asyncio.Future":
        key = str(key)
        primary, forward = self.fleet.write_route(key)
        self.routed += 1
        if forward is None:
            shard = self._by_index[primary]
            future = shard.bridge.submit_delete(key, client)
            return self._finish(shard, "write", future,
                                {"rack": shard.index})
        return asyncio.ensure_future(
            self._forwarded_write(key, None, client, primary, forward,
                                  delete=True)
        )

    async def _forwarded_write(self, key: str, value: Optional[str],
                               client: str, primary_idx: int,
                               forward_idx: int,
                               delete: bool = False) -> Dict[str, Any]:
        """Migration-window write: old owner first (it stays fully
        authoritative, so an abort at any instant loses nothing), then
        chained to the new owner so the streamed copy never goes stale.
        The client's ack covers both legs; a failed forward surfaces as
        a retryable error with the primary already durably applied.
        """
        self.fleet.note_forwarded(key)
        self.fleet.counters["write_forwards"] += 1
        src = self._by_index[primary_idx]
        dst = self._by_index[forward_idx]

        def submit(bridge: SimTimeBridge) -> "asyncio.Future":
            if delete:
                return bridge.submit_delete(key, client)
            return bridge.submit_put(key, value, client)

        payload = dict(await submit(src.bridge))
        # Order after any in-flight stream put for this key, so the
        # forwarded value is deterministically the last writer at dst.
        await self.fleet.await_stream_put(key)
        forwarded = dict(await submit(dst.bridge))
        payload["rack"] = src.index
        payload["forwarded"] = True
        payload["latency_us"] = (payload["latency_us"] +
                                 forwarded["latency_us"])
        self.metrics.record("write", payload["latency_us"],
                            at=src.bridge.rack.sim.now)
        return payload

    def submit_scan(self, start_key: str, count: int,
                    client: str = "live") -> "asyncio.Future":
        """Scatter-gather: every shard scans, the router merges.

        Keys are placed by hash, so a range is spread over all shards;
        each scans ``count`` candidates and the merge keeps the
        ``count`` smallest keys ``>= start_key``.  Latency is the
        slowest shard's (the scatter completes when the last leg does).
        """
        count = int(count)
        self.routed += 1
        self.scatter_scans += 1
        legs = [
            (shard, shard.bridge.submit_scan(start_key, count, client))
            for shard in self.shards
        ]
        loop = asyncio.get_running_loop()
        outer: "asyncio.Future" = loop.create_future()
        remaining = len(legs)
        results: List[Optional[Dict[str, Any]]] = [None] * len(legs)

        def _leg_done(slot: int, shard: RackShard):
            def _cb(fut: "asyncio.Future") -> None:
                nonlocal remaining
                remaining -= 1
                if not outer.done():
                    if fut.cancelled():
                        outer.cancel()
                    else:
                        exc = fut.exception()
                        if exc is not None:
                            outer.set_exception(exc)
                        else:
                            results[slot] = fut.result()
                if remaining == 0 and not outer.done():
                    # Keep only items whose reporting shard is the key's
                    # authoritative owner: during (and right after) a
                    # migration window both the source and destination
                    # hold copies of moving keys, and post-abort shadow
                    # copies can linger until cleanup.
                    merged = sorted(
                        (key, value)
                        for slot, r in enumerate(results) if r
                        for key, value in r["items"]
                        if self.fleet.read_owner(key) == legs[slot][0].index
                    )[:count]
                    latency = max(r["latency_us"] for r in results if r)
                    self.metrics.record(
                        "read", latency, at=shard.bridge.rack.sim.now
                    )
                    outer.set_result({
                        "items": [list(item) for item in merged],
                        "count": len(merged),
                        "latency_us": latency,
                        "racks": len(results),
                    })
            return _cb

        def _cancelled(out: "asyncio.Future") -> None:
            if out.cancelled():
                for _, leg in legs:
                    if not leg.done():
                        leg.cancel()

        for slot, (shard, leg) in enumerate(legs):
            leg.add_done_callback(_leg_done(slot, shard))
        outer.add_done_callback(_cancelled)
        return outer

    # ------------------------------------------------------------ reporting

    def stats(self) -> BridgeStats:
        """Aggregate bridge counters (the drain summary's view)."""
        per = [shard.bridge.stats() for shard in self.shards]
        return BridgeStats(
            sim_now_us=max(s.sim_now_us for s in per),
            inflight=sum(s.inflight for s in per),
            submitted=sum(s.submitted for s in per),
            completed=sum(s.completed for s in per),
            timed_out=sum(s.timed_out for s in per),
            sim_chunks=sum(s.sim_chunks for s in per),
        )

    def router_section(self) -> Dict[str, float]:
        return {
            "racks": float(len(self.shards)),
            "virtual_nodes": float(self.ring.vnodes),
            "epoch": float(self.fleet.epoch),
            "routed": float(self.routed),
            "cross_rack_redirects": float(self.cross_rack_redirects),
            "scatter_scans": float(self.scatter_scans),
            "unroutable": float(self.unroutable),
            "gc_view_commits": float(self.gc_view_commits),
        }

    def routing_section(self) -> Dict[str, Any]:
        """The ``routing`` stats section: selector counters plus the
        live per-replica load view (absent entirely under hash policy,
        keeping that mode's payload byte-identical)."""
        assert self.selector is not None and self.load_view is not None
        out: Dict[str, Any] = self.selector.stats_section()
        replicas: Dict[str, Dict[str, float]] = {}
        for shard in self.shards:
            stats = self.load_view.replica(shard.index)
            replicas[str(shard.index)] = {
                "depth": float(stats.depth),
                "ewma_us": float(stats.ewma_us),
                # never-synced reads as -1 (inf is not valid JSON)
                "age_s": (-1.0 if stats.age_s == float("inf")
                          else float(stats.age_s)),
            }
        out[schema.FIELD_ROUTING_REPLICAS] = replicas
        return out

    def stats_payload(self) -> Dict[str, Any]:
        """The sharded stats body: aggregate sections + per-shard slices
        (see :mod:`repro.service.schema`)."""
        sections = {
            str(shard.index): shard.stats_section() for shard in self.shards
        }
        out = schema.aggregate_sections(list(sections.values()))
        out[schema.SECTION_METRICS] = self.metrics.summary()
        out[schema.SECTION_ROUTER] = self.router_section()
        out[schema.SECTION_MIGRATION] = self.fleet.stats_section()
        out[schema.SECTION_SHARDS] = sections
        if self.selector is not None:
            out[schema.SECTION_ROUTING] = self.routing_section()
        return out

    # ------------------------------------------------------------ membership

    def _stream_endpoints(self):
        """Bridge-level scan/put/delete endpoints for the migration
        stream -- the same simulated serving path foreground traffic
        takes, under the ``"migrate"`` client name."""
        async def scan(src: int, start: str, count: int):
            result = await self._by_index[src].bridge.submit_scan(
                start, count, "migrate"
            )
            return [(key, value) for key, value in result["items"]]

        async def put(dst: int, key: str, value: str) -> None:
            await self._by_index[dst].bridge.submit_put(key, value, "migrate")
            if self.read_cache is not None:
                self.read_cache.invalidate(key)

        async def delete(src: int, key: str) -> None:
            if src in self._by_index:
                await self._by_index[src].bridge.submit_delete(key, "migrate")
            if self.read_cache is not None:
                self.read_cache.invalidate(key)

        return scan, put, delete

    async def _run_stream(self, plan, *, batch_size: int, pause_s: float,
                          max_attempts: int,
                          retry_backoff_s: float) -> Tuple[MigrationStream,
                                                           Any]:
        """Drive the migration stream to completion, retrying tainted on
        mid-stream failure (a rack crash during migration lands here);
        raises :class:`MigrationStreamError` after the last attempt."""
        scan, put, delete = self._stream_endpoints()
        while True:
            stream = MigrationStream(
                self.fleet, plan, scan=scan, put=put, delete=delete,
                batch_size=batch_size, pause_s=pause_s,
            )
            try:
                return stream, await stream.run()
            except MigrationStreamError:
                if plan.attempt >= max_attempts:
                    raise
                plan = self.fleet.retry()
                await asyncio.sleep(retry_backoff_s * plan.attempt)

    def _register_shard(self, shard: RackShard) -> None:
        self.shards.append(shard)
        self._by_index[shard.index] = shard
        self._gc_views[shard.index] = tuple(
            False for _ in range(shard.num_pairs)
        )
        # Re-apply the after_chunk hook so the new shard's pump flushes
        # the server's write buffers like every incumbent's does.
        self.after_chunk = self._after_chunk

    def _deregister_shard(self, shard: RackShard) -> None:
        self.shards = [s for s in self.shards if s.index != shard.index]
        self._by_index.pop(shard.index, None)
        self._gc_views.pop(shard.index, None)

    async def admit_rack(self, config: Optional[RackConfig] = None, *,
                         batch_size: int = 64, pause_s: float = 0.002,
                         max_attempts: int = 3,
                         retry_backoff_s: float = 0.05) -> Dict[str, Any]:
        """Admit a new rack shard under live load.

        Builds rack ``max(index) + 1`` from the fleet's construction
        recipe (seed and fault-schedule slice derived exactly as
        :func:`build_shard_configs` would have), registers it, streams
        the moving ~1/(N+1) of keys over while dual-read and
        write-forwarding keep every request correct, then commits the
        epoch cutover and deletes the moved keys' shadow copies from
        their old owners.  A mid-stream failure retries up to
        ``max_attempts`` times (tainted: reads pin to the old owner);
        past that the plan aborts, the new shard is torn down, and the
        fleet is exactly as before -- no acked write lost either way.
        """
        base = config if config is not None else self._base_config
        if base is None:
            raise MembershipError(
                "this router was not built via from_config; pass an "
                "explicit RackConfig to admit_rack"
            )
        index = max(self._by_index) + 1
        plan = self.fleet.begin_add(index)
        schedule = base.fault_schedule
        if schedule is not None:
            schedule = schedule.for_rack(index)
        shard_config = dataclasses.replace(
            base, seed=base.seed + index, fault_schedule=schedule,
        )
        bridge = SimTimeBridge(shard_config,
                               precondition=self._precondition,
                               **self._bridge_kwargs)
        shard = RackShard(index, bridge,
                          AdmissionController(**self._admission_kwargs))
        try:
            await shard.start()
            self._register_shard(shard)
        except BaseException:
            self.fleet.abort()
            raise
        try:
            stream, report = await self._run_stream(
                plan, batch_size=batch_size, pause_s=pause_s,
                max_attempts=max_attempts, retry_backoff_s=retry_backoff_s,
            )
        except MigrationStreamError as exc:
            attempts = self.fleet.plan.attempt if self.fleet.plan else 0
            self.fleet.abort()
            self._deregister_shard(shard)
            await shard.stop(drain=False)
            raise MembershipError(
                f"admitting rack {index} failed after {attempts} "
                f"attempt(s): {exc}"
            ) from exc
        epoch = self.fleet.commit()
        if self.read_cache is not None:
            self.read_cache.fence(epoch)
        await stream.cleanup(report)
        return {
            "rack": index, "epoch": epoch, "kind": "add",
            "keys_moved": report.keys_moved,
            "bytes_streamed": report.bytes_streamed,
            "skipped_forwarded": report.skipped_forwarded,
            "attempts": plan.attempt,
            "moved_fraction": round(plan.moved_fraction, 6),
            "racks": self.ring.nodes,
        }

    async def drain_rack(self, index: int, *,
                         batch_size: int = 64, pause_s: float = 0.002,
                         max_attempts: int = 3,
                         retry_backoff_s: float = 0.05,
                         drain_timeout_s: float = 10.0) -> Dict[str, Any]:
        """Drain rack ``index`` out of the fleet under live load.

        Streams its keys to their new owners (the rack keeps serving --
        and keeps taking forwarded writes -- until the cutover), commits
        the epoch bump, then stops the shard with a graceful drain.  A
        rack that is already crashed drains through its own replica
        fail-over path; if even that cannot complete, the plan aborts
        and the rack simply stays a member.
        """
        index = int(index)
        if index not in self._by_index:
            raise MembershipError(f"rack {index} is not part of this fleet")
        plan = self.fleet.begin_drain(index)
        shard = self._by_index[index]
        try:
            stream, report = await self._run_stream(
                plan, batch_size=batch_size, pause_s=pause_s,
                max_attempts=max_attempts, retry_backoff_s=retry_backoff_s,
            )
        except MigrationStreamError as exc:
            attempts = self.fleet.plan.attempt if self.fleet.plan else 0
            self.fleet.abort()
            raise MembershipError(
                f"draining rack {index} failed after {attempts} "
                f"attempt(s): {exc}"
            ) from exc
        epoch = self.fleet.commit()
        if self.read_cache is not None:
            self.read_cache.fence(epoch)
        self._deregister_shard(shard)
        await shard.stop(drain=True, drain_timeout_s=drain_timeout_s)
        return {
            "rack": index, "epoch": epoch, "kind": "drain",
            "keys_moved": report.keys_moved,
            "bytes_streamed": report.bytes_streamed,
            "skipped_forwarded": report.skipped_forwarded,
            "attempts": plan.attempt,
            "moved_fraction": round(plan.moved_fraction, 6),
            "racks": self.ring.nodes,
        }

    # --------------------------------------------------------- construction

    @classmethod
    def from_config(cls, config: RackConfig, racks: int, *,
                    vnodes: int = DEFAULT_VNODES,
                    ring_seed: int = DEFAULT_RING_SEED,
                    gc_sync_s: float = DEFAULT_GC_SYNC_S,
                    read_policy: str = POLICY_HASH,
                    stale_after_s: float = DEFAULT_STALE_AFTER_S,
                    routing_trace: Optional[RoutingTrace] = None,
                    queue_depth: int = 256,
                    client_rate_per_sec: float = 0.0,
                    client_burst: float = 64.0,
                    precondition: bool = True,
                    **bridge_kwargs: Any) -> "ShardRouter":
        """Build N shards from one base config (seeds and fault schedules
        derived per rack by :func:`build_shard_configs`)."""
        admission_kwargs = dict(
            max_queue_depth=queue_depth,
            client_rate_per_sec=client_rate_per_sec,
            client_burst=client_burst,
        )
        shards = []
        for index, shard_config in enumerate(
                build_shard_configs(config, racks)):
            bridge = SimTimeBridge(shard_config, precondition=precondition,
                                   **bridge_kwargs)
            shards.append(RackShard(index, bridge,
                                    AdmissionController(**admission_kwargs)))
        router = cls(shards, vnodes=vnodes, ring_seed=ring_seed,
                     gc_sync_s=gc_sync_s, read_policy=read_policy,
                     stale_after_s=stale_after_s,
                     routing_trace=routing_trace)
        # Remember the recipe so ``admit_rack`` can build rack N+1 the
        # same way this fleet was built.
        router._base_config = config
        router._precondition = precondition
        router._bridge_kwargs = dict(bridge_kwargs)
        router._admission_kwargs = admission_kwargs
        return router


class ShardedRackService(RackService):
    """N racks behind one listener: the in-process sharded front-end."""

    def __init__(self, router: ShardRouter, host: str = "127.0.0.1",
                 port: int = 0, *,
                 max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
                 qos: Optional[QosScheduler] = None,
                 read_cache: Optional[ReadCache] = None,
                 ) -> None:
        super().__init__(
            router.shards[0].bridge.rack.config, host, port,
            bridge=router,  # the router speaks the bridge surface
            max_frame_bytes=max_frame_bytes,
            qos=qos, read_cache=read_cache,
        )
        self.router = router
        # The router invalidates on stream writes and fences at commits.
        router.read_cache = read_cache

    def _capabilities(self) -> List[str]:
        return super()._capabilities() + ["sharded"]

    def _hello_fields(self) -> Dict[str, Any]:
        fields = super()._hello_fields()
        fields["racks"] = len(self.router.shards)
        # Advertised only when active: hash mode stays byte-identical.
        if self.router.selector is not None:
            fields["read_policy"] = self.router.read_policy
        return fields

    def _admit(self, client: str, request: Dict[str, Any]) -> bool:
        return self.router.try_admit(client, request)

    def _current_epoch(self) -> int:
        return self.router.fleet.epoch

    def _fleet_status(self) -> Dict[str, Any]:
        return self.router.fleet.status()

    def _admin_mutation(self, op: str,
                        request: Dict[str, Any]) -> Optional[Any]:
        knobs: Dict[str, Any] = {}
        if "batch_size" in request:
            knobs["batch_size"] = int(request["batch_size"])
        if "pause_s" in request:
            knobs["pause_s"] = float(request["pause_s"])
        if "max_attempts" in request:
            knobs["max_attempts"] = int(request["max_attempts"])
        if op == "add_rack":
            return self.router.admit_rack(**knobs)
        if op == "drain_rack":
            return self.router.drain_rack(int(request["rack"]), **knobs)
        return None

    def _stats_payload(self) -> Dict[str, Any]:
        out = self.router.stats_payload()
        if self.qos is not None:
            out[schema.SECTION_TENANTS] = self.qos.stats_section()
        if self.read_cache is not None:
            out[schema.SECTION_READCACHE] = self.read_cache.stats_section()
        out[schema.FIELD_CONNECTIONS] = float(self.connections_accepted)
        return out


# --------------------------------------------------------------------------
# Multi-process mode: a relay proxy over one backend serve process per rack.
# --------------------------------------------------------------------------

_SERVING_RE = re.compile(r"\bon ([0-9.]+):(\d+)\s*$")

#: Request types the proxy meters against a tenant's QoS budget --
#: everything that reaches a backend's simulated data path.
_QOS_DATA_TYPES = frozenset(("read", "write", "get", "put", "del", "scan"))

#: Binary opcode -> request type, for the relay's QoS/cache bookkeeping.
_BIN_RTYPE = {
    protocol.OP_READ: "read", protocol.OP_WRITE: "write",
    protocol.OP_GET: "get", protocol.OP_PUT: "put",
}


class ProxyLoadView:
    """The multi-process proxy's load view, measured at the relay.

    The proxy has no sim-time or switch-state channel, so both signals
    are wall-clock facts of its own links: depth counts frames forwarded
    to a backend and not yet answered (summed across every client's
    link), and the EWMA blends the turnaround of every matched response
    -- reads and writes alike, since the relay never decodes response
    bodies and both measure how backed-up a backend is.  A backend that
    has answered nothing yet reads as stale, which the selector resolves
    to strict hash order.
    """

    def __init__(self, proxy: "ShardProxy", *,
                 ewma_alpha: float = DEFAULT_EWMA_ALPHA) -> None:
        self._proxy = proxy
        self.ewma_alpha = float(ewma_alpha)
        self._depth: Dict[int, int] = {}
        self._ewma: Dict[int, float] = {}
        self._seen: Dict[int, float] = {}

    def sent(self, node: int) -> None:
        self._depth[node] = self._depth.get(node, 0) + 1

    def done(self, node: int, latency_us: float) -> None:
        self._depth[node] = max(0, self._depth.get(node, 0) - 1)
        prev = self._ewma.get(node, 0.0)
        if prev <= 0.0:
            self._ewma[node] = float(latency_us)
        else:
            alpha = self.ewma_alpha
            self._ewma[node] = (1.0 - alpha) * prev + alpha * float(latency_us)
        self._seen[node] = time.monotonic()

    def lost(self, node: int, count: int) -> None:
        """A link died with ``count`` frames unanswered."""
        self._depth[node] = max(0, self._depth.get(node, 0) - int(count))

    def replica(self, node: int) -> ReplicaStats:
        if not 0 <= node < len(self._proxy.backends) \
                or node in self._proxy.drained:
            return ReplicaStats(live=False, age_s=float("inf"))
        seen = self._seen.get(node)
        age = float("inf") if seen is None else time.monotonic() - seen
        plan = self._proxy.fleet.plan
        return ReplicaStats(
            depth=float(self._depth.get(node, 0)),
            ewma_us=self._ewma.get(node, 0.0),
            age_s=age,
            live=True,
            draining=(plan is not None and plan.kind == "drain"
                      and plan.node == node),
        )


class _BackendLink:
    """One client's pipe to one backend: forward frames, relay responses.

    Responses are relayed at frame granularity via
    :class:`~repro.service.protocol.FrameSplitter` -- the body bytes are
    never re-encoded, only peeked for the ``id`` (a fixed-offset header
    read for binary frames, one ``json.loads`` for JSON) so the proxy
    can answer orphaned requests with a retryable ``TIMEOUT`` when a
    backend dies mid-flight.  All frames decoded from one socket read
    go back out as a single ``writelines`` call.
    """

    def __init__(self, node: int, client_writer: "asyncio.StreamWriter",
                 max_frame_bytes: int,
                 observer: Optional["ProxyLoadView"] = None,
                 on_response: Optional[Any] = None) -> None:
        self.node = node
        self.client_writer = client_writer
        self.max_frame_bytes = max_frame_bytes
        self.observer = observer
        #: QoS/cache completion hook (``(request_id, frame, latency_us)``,
        #: frame/latency ``None`` for orphans); ``None`` on plain relays.
        self.on_response = on_response
        self.reader: Optional["asyncio.StreamReader"] = None
        self.writer: Optional["asyncio.StreamWriter"] = None
        self.relay_task: Optional["asyncio.Task"] = None
        #: request id -> wall send time; the id's dual role: orphan
        #: detection (as before) and, with an observer attached, the
        #: per-backend depth/latency feed the p2c selector reads.
        self.inflight: Dict[Any, float] = {}
        self.relayed = 0
        self.dead = False

    async def open(self, host: str, port: int) -> None:
        self.reader, self.writer = await asyncio.open_connection(host, port)
        self.relay_task = asyncio.get_running_loop().create_task(
            self._relay()
        )

    def send_frames(self, frames: "List[Any]",
                    request_ids: "List[Any]") -> None:
        """Forward a batch of already-encoded frames in one write."""
        assert self.writer is not None
        now = time.monotonic()
        for request_id in request_ids:
            if request_id is not None:
                self.inflight[request_id] = now
                if self.observer is not None:
                    self.observer.sent(self.node)
        if not self.writer.is_closing():
            self.writer.writelines(frames)

    def _response_id(self, frame: Any) -> Any:
        try:
            return protocol.frame_request_id(frame)
        except protocol.FrameError:
            return None

    async def _relay(self) -> None:
        assert self.reader is not None
        splitter = protocol.FrameSplitter(self.max_frame_bytes)
        try:
            while True:
                data = await self.reader.read(65536)
                if not data:
                    break
                batch = []
                for frame in splitter.feed(data):
                    response_id = self._response_id(frame)
                    if response_id is not None:
                        sent_at = self.inflight.pop(response_id, None)
                        if sent_at is not None:
                            latency_us = (time.monotonic() - sent_at) * 1e6
                            if self.observer is not None:
                                self.observer.done(self.node, latency_us)
                            if self.on_response is not None:
                                self.on_response(response_id, frame,
                                                 latency_us)
                    batch.append(frame)
                if batch and not self.client_writer.is_closing():
                    self.client_writer.writelines(batch)
                    self.relayed += len(batch)
        except (ConnectionResetError, BrokenPipeError, protocol.FrameError,
                asyncio.CancelledError):
            pass
        finally:
            self.dead = True
            # Orphans get a retryable TIMEOUT: the backend (or its rack)
            # died with their responses; other shards are untouched.
            if not self.client_writer.is_closing():
                for request_id in sorted(self.inflight, key=str):
                    self.client_writer.write(protocol.encode_frame(
                        protocol.error_response(
                            protocol.TIMEOUT,
                            f"backend rack {self.node} connection lost",
                            request_id,
                        )
                    ))
            if self.observer is not None and self.inflight:
                self.observer.lost(self.node, len(self.inflight))
            if self.on_response is not None:
                for request_id in list(self.inflight):
                    self.on_response(request_id, None, None)
            self.inflight.clear()

    async def close(self) -> None:
        self.dead = True
        if self.writer is not None:
            self.writer.close()
        if self.relay_task is not None:
            self.relay_task.cancel()
            try:
                await self.relay_task
            except asyncio.CancelledError:
                pass
            self.relay_task = None


class ShardProxy:
    """Frame-level relay over one backend ``serve`` process per rack.

    JSON requests are decoded once (to route them and rewrite the global
    pair index to the backend's local index); binary (protocol v2)
    requests are routed *without decoding at all* -- the pair/key is
    read at its fixed offset and the only rewrite patches 4 bytes --
    and responses relay as raw frames in both directions.  Admission, simulation, and draining all
    happen in the backends; the proxy adds only placement.  GC-aware
    cross-rack fallback is an in-process-router feature -- the proxy has
    no switch-state channel -- so reads rely on the backends' own
    in-rack redirect (documented in ``docs/serving.md``), and scans go
    to the start-key owner only.
    """

    def __init__(self, backends: Sequence[Tuple[str, int]],
                 host: str = "127.0.0.1", port: int = 0, *,
                 pairs_per_rack: int,
                 vnodes: int = DEFAULT_VNODES,
                 ring_seed: int = DEFAULT_RING_SEED,
                 max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
                 read_policy: str = POLICY_HASH,
                 stale_after_s: float = DEFAULT_STALE_AFTER_S,
                 routing_trace: Optional[RoutingTrace] = None,
                 qos: Optional[QosScheduler] = None,
                 read_cache: Optional[ReadCache] = None,
                 ) -> None:
        if not backends:
            raise ConfigError("a proxy needs at least one backend")
        if pairs_per_rack < 1:
            raise ConfigError(
                f"pairs_per_rack must be >= 1, got {pairs_per_rack}"
            )
        if read_policy not in READ_POLICIES:
            raise ConfigError(
                f"read_policy must be one of {READ_POLICIES}, "
                f"got {read_policy!r}"
            )
        self.backends = list(backends)
        self.host = host
        self.port = port
        self.pairs_per_rack = pairs_per_rack
        self.max_frame_bytes = max_frame_bytes
        #: Membership control plane (same object the in-proc router
        #: uses); the proxy's ring lives inside it.  Drained backends
        #: keep their ``backends`` slot -- indices stay stable -- they
        #: just leave the ring.
        self.fleet = FleetController(HashRing(
            range(len(self.backends)), vnodes=vnodes, seed=ring_seed,
        ))
        self.drained: Set[int] = set()
        self._server: Optional["asyncio.base_events.Server"] = None
        self._connections: Set["asyncio.Task"] = set()
        self._admin_tasks: Set["asyncio.Task"] = set()
        self._draining = False
        self.connections_accepted = 0
        self.routed = 0
        self.unroutable = 0
        self.write_dups = 0
        #: Load-aware read placement; ``None`` under hash policy, which
        #: keeps that mode's relay byte-identical to today.
        #: Multi-tenant QoS + DRAM read cache, proxy flavour: admission
        #: and cache hits happen here at the front-end (the backends
        #: keep their own per-client admission), and completions are
        #: measured at the relay -- wall-clock turnaround, the only
        #: latency the proxy can see.  Both default off, keeping the
        #: plain relay byte-identical.
        self.qos = qos
        self.read_cache = read_cache
        self.read_policy = read_policy
        self.load_view: Optional[ProxyLoadView] = None
        self.selector: Optional[ReplicaSelector] = None
        if read_policy == POLICY_P2C:
            self.load_view = ProxyLoadView(self)
            self.selector = ReplicaSelector(
                self.load_view, policy=read_policy,
                stale_after_s=stale_after_s, trace=routing_trace,
            )

    @property
    def ring(self) -> HashRing:
        """The *current* ring -- swapped atomically at membership commit."""
        return self.fleet.ring

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._admin_tasks):
            task.cancel()
        if self._admin_tasks:
            await asyncio.gather(*self._admin_tasks, return_exceptions=True)
        self._admin_tasks.clear()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    # -------------------------------------------------------------- routing

    def _route(self, request: Dict[str, Any],
               ) -> Tuple[Optional[int], Optional[int]]:
        """``(node, forward)``: where the frame goes, plus the second
        backend a write is duplicated to during a migration window.

        The proxy relays frames without response matching, so it cannot
        dual-*read*; reads and scans pin to the authoritative (old)
        owner until the cutover -- correct, just without the in-proc
        router's new-owner-first optimisation (documented asymmetry,
        like the GC-fallback).
        """
        rtype = request.get("type")
        try:
            if rtype in ("read", "write"):
                global_pair = int(request["pair"])
                total = self.pairs_per_rack * len(self.ring)
                if not 0 <= global_pair < total:
                    raise ConfigError(
                        f"pair index {global_pair} out of range [0, {total})"
                    )
                node = self.ring.node_for(f"pair:{global_pair}")
                if rtype == "read" and self.selector is not None:
                    node = self._choose_read_node(global_pair, node)
                return node, None
            if rtype == "get":
                return self.fleet.read_owner(str(request["key"])), None
            if rtype in ("put", "del"):
                return self.fleet.write_route(str(request["key"]))
            if rtype == "scan":
                return self.fleet.read_owner(str(request.get("start", ""))), \
                    None
        except (KeyError, TypeError, ValueError, ConfigError):
            return None, None
        return None, None

    def _choose_read_node(self, global_pair: int, owner: int) -> int:
        """p2c over the pair's preference list (raw reads only).

        Every local pair index is ``global_pair % pairs_per_rack`` on
        any backend, so the divert needs no extra rewrite; the selector
        falls back to hash order -- ``owner`` -- whenever its view is
        not trustworthy.
        """
        assert self.selector is not None
        nodes = [
            node
            for node in self.ring.preference(f"pair:{global_pair}", count=2)
            if 0 <= node < len(self.backends) and node not in self.drained
        ]
        if not nodes:
            return owner
        plan = self.fleet.plan
        return self.selector.choose(
            f"pair:{global_pair}", nodes,
            migrating_node=plan.node if plan is not None else None,
            epoch=self.fleet.epoch,
        ).chosen

    # ---------------------------------------------------------- connections

    async def _handle_client(self, reader: "asyncio.StreamReader",
                             writer: "asyncio.StreamWriter") -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self.connections_accepted += 1
        links: Dict[int, _BackendLink] = {}
        # Per-connection tenancy: the hello-declared tenant plus the
        # response-time actions (QoS completion, cache fill/invalidate)
        # keyed by request id.  ``hook`` is None on a plain relay, which
        # keeps that path byte-identical.
        conn: Dict[str, Any] = {"tenant": DEFAULT_TENANT, "pending": {}}
        conn["hook"] = self._make_response_hook(conn)
        splitter = protocol.FrameSplitter(self.max_frame_bytes)
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                # Per-read batches: every frame bound for the same
                # backend inside one socket read coalesces into a
                # single writelines, preserving arrival order per link.
                batches: Dict[_BackendLink, Tuple[List[Any], List[Any]]] = {}
                try:
                    frames = splitter.feed(data)
                    for frame in frames:
                        if protocol.frame_is_binary(frame):
                            await self._begin_binary(frame, writer, links,
                                                     batches, conn)
                        else:
                            await self._begin(
                                self._parse_json_frame(frame), writer,
                                links, batches, conn,
                            )
                except protocol.FrameError as exc:
                    writer.write(protocol.encode_frame(
                        protocol.error_response(protocol.BAD_REQUEST,
                                                str(exc))
                    ))
                    self._flush_batches(batches)
                    break
                self._flush_batches(batches)
        except (asyncio.CancelledError, ConnectionResetError,
                BrokenPipeError):
            pass
        finally:
            for link in links.values():
                await link.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass
            if task is not None:
                self._connections.discard(task)

    @staticmethod
    def _parse_json_frame(frame: Any) -> Dict[str, Any]:
        """Decode one complete JSON frame (the splitter checked framing)."""
        try:
            request = json.loads(bytes(frame[4:]))
        except (UnicodeDecodeError, ValueError) as exc:
            raise protocol.FrameError(
                f"frame body is not valid JSON: {exc}"
            ) from exc
        if not isinstance(request, dict):
            raise protocol.FrameError(
                f"frame body must be a JSON object, "
                f"got {type(request).__name__}"
            )
        return request

    @staticmethod
    def _flush_batches(batches: "Dict[_BackendLink, Tuple[List[Any], List[Any]]]",
                       ) -> None:
        for link, (frames, request_ids) in batches.items():
            if not link.dead:
                link.send_frames(frames, request_ids)

    @staticmethod
    def _enqueue(batches: "Dict[_BackendLink, Tuple[List[Any], List[Any]]]",
                 link: _BackendLink, frame: Any, request_id: Any) -> None:
        batch = batches.get(link)
        if batch is None:
            batch = batches[link] = ([], [])
        batch[0].append(frame)
        batch[1].append(request_id)

    async def _link_for(self, node: int, writer: "asyncio.StreamWriter",
                        links: Dict[int, _BackendLink], request_id: Any,
                        binary: bool,
                        conn: Optional[Dict[str, Any]] = None,
                        ) -> Optional[_BackendLink]:
        """The live link to ``node``, dialing on first use; ``None`` (with
        the error already sent, in the request's codec) if unreachable."""
        link = links.get(node)
        if link is None or link.dead:
            if link is not None:
                await link.close()
            link = _BackendLink(node, writer, self.max_frame_bytes,
                                observer=self.load_view,
                                on_response=(conn or {}).get("hook"))
            host, port = self.backends[node]
            try:
                await link.open(host, port)
            except (ConnectionError, OSError) as exc:
                if not writer.is_closing():
                    writer.write(protocol.encode_frame_as(
                        protocol.error_response(
                            protocol.TIMEOUT,
                            f"backend rack {node} unreachable: {exc}",
                            request_id,
                        ), binary))
                return None
            links[node] = link
        return link

    # -------------------------------------------------------- tenancy hooks

    def _decode_response(self, frame: Any) -> Optional[Dict[str, Any]]:
        """Decode one complete response frame (either codec); None if bad."""
        try:
            messages = protocol.FrameDecoder(self.max_frame_bytes).feed(
                bytes(frame)
            )
        except protocol.FrameError:
            return None
        return messages[0] if messages else None

    def _make_response_hook(self, conn: Dict[str, Any]) -> Optional[Any]:
        """The relay's completion hook for one client connection.

        ``None`` when the proxy runs without QoS and cache, so the plain
        relay never decodes a response body.  With either on, tracked
        responses pay one decode: the QoS ledger needs the ok bit and
        cache fills need the value.  Dup-written frames carry the same
        id on two links; the pending entry pops on the first response
        and the second is a no-op, matching the client's own first-
        response-wins dedup.
        """
        if self.qos is None and self.read_cache is None:
            return None

        def hook(request_id: Any, frame: Any,
                 latency_us: Optional[float]) -> None:
            entry = conn["pending"].pop(request_id, None)
            if entry is None:
                return
            action, key, token, tenant = entry
            response = (self._decode_response(frame)
                        if frame is not None else None)
            ok = bool(response is not None and response.get("ok"))
            if self.qos is not None:
                latency_ms = (None if latency_us is None
                              else latency_us / 1000.0)
                self.qos.on_complete(tenant, latency_ms, ok=ok)
            if self.read_cache is None:
                return
            if action == "write" and key is not None:
                # Unconditional on completion -- invalidating on an
                # errored write is harmless, serving stale is not.
                self.read_cache.invalidate(key)
            elif (action == "get" and ok and key is not None
                    and token is not None and response.get("found")):
                self.read_cache.fill(key, response.get("value"), tenant,
                                     token)

        return hook

    def _track(self, conn: Optional[Dict[str, Any]], request_id: Any,
               rtype: str, key: Optional[str], token: Any,
               tenant: str) -> None:
        """Register the response-time QoS/cache actions for one frame."""
        if conn is None or conn.get("hook") is None or request_id is None:
            return
        if self.qos is not None:
            self.qos.on_submit(tenant)
        if rtype in ("put", "del"):
            action = "write"
        elif rtype == "get":
            action = "get"
        else:
            action = "other"
        conn["pending"][request_id] = (action, key, token, tenant)

    def _qos_shed(self, tenant: str, reply: Any, request_id: Any) -> bool:
        """Weighted-fair gate; True (with BUSY sent) when shed."""
        if self.qos is None or self.qos.try_admit(tenant):
            return False
        reply(protocol.error_response(
            protocol.BUSY,
            f"tenant {tenant!r} is over its QoS budget", request_id,
        ))
        return True

    def _cache_hit(self, key: str, tenant: str, reply: Any,
                   request_id: Any) -> Tuple[bool, Any]:
        """Probe the front-end cache for a ``get``.

        Returns ``(served, fill_token)``; a hit is answered here (in
        the request's codec, via ``reply``) and still feeds the
        tenant's SLO window as a near-zero-latency success.
        """
        assert self.read_cache is not None
        hit, value, token = self.read_cache.lookup(key, tenant)
        if not hit:
            return False, token
        if self.qos is not None:
            self.qos.on_submit(tenant)
            self.qos.on_complete(tenant, CACHE_HIT_LATENCY_US / 1000.0)
        reply(protocol.ok_response(
            request_id, value=value, found=True,
            latency_us=CACHE_HIT_LATENCY_US,
        ))
        return True, None

    async def _begin_binary(self, frame: Any,
                            writer: "asyncio.StreamWriter",
                            links: Dict[int, _BackendLink],
                            batches: Dict[_BackendLink, Tuple[List[Any], List[Any]]],
                            conn: Optional[Dict[str, Any]] = None,
                            ) -> None:
        """Route one binary frame without decoding it.

        The pair/key routing fact sits at a fixed offset
        (:func:`~repro.service.protocol.bin_frame_route`), and the only
        rewrite -- global to rack-local pair index -- patches 4 bytes in
        place (:func:`~repro.service.protocol.rewrite_bin_pair`).  Key
        ops relay the splitter's memoryview untouched.  Binary frames
        are v2 by construction, so the version gate does not apply.
        """
        request_id = protocol.frame_request_id(frame)

        def reply(response: Dict[str, Any]) -> None:
            if not writer.is_closing():
                writer.write(protocol.encode_frame_as(response, True))

        if self._draining:
            reply(protocol.error_response(
                protocol.SHUTTING_DOWN, "proxy is draining", request_id
            ))
            return
        try:
            route = protocol.bin_frame_route(frame)
        except protocol.FrameError as exc:
            self.unroutable += 1
            reply(protocol.error_response(
                protocol.BAD_REQUEST, f"malformed binary frame: {exc}",
                request_id,
            ))
            return
        if route is None:
            self.unroutable += 1
            reply(protocol.error_response(
                protocol.BAD_REQUEST,
                f"unroutable binary opcode 0x{frame[1]:02x}", request_id,
            ))
            return
        kind, value = route
        tenant = conn["tenant"] if conn is not None else DEFAULT_TENANT
        if self._qos_shed(tenant, reply, request_id):
            return
        fill_token: Any = None
        cache_key: Optional[str] = None
        if kind == "key":
            cache_key = str(value)
            if self.read_cache is not None and frame[1] == protocol.OP_GET:
                served, fill_token = self._cache_hit(
                    cache_key, tenant, reply, request_id
                )
                if served:
                    return
        forward_node: Optional[int] = None
        if kind == "pair":
            total = self.pairs_per_rack * len(self.ring)
            if not 0 <= value < total:
                self.unroutable += 1
                reply(protocol.error_response(
                    protocol.BAD_REQUEST,
                    f"pair index {value} out of range [0, {total})",
                    request_id,
                ))
                return
            node = self.ring.node_for(f"pair:{value}")
            if self.selector is not None and frame[1] == protocol.OP_READ:
                node = self._choose_read_node(value, node)
            out_frame: Any = protocol.rewrite_bin_pair(
                frame, value % self.pairs_per_rack
            )
        elif frame[1] == protocol.OP_PUT:
            node, forward_node = self.fleet.write_route(str(value))
            out_frame = frame
        else:
            node = self.fleet.read_owner(str(value))
            out_frame = frame
        link = await self._link_for(node, writer, links, request_id, True,
                                    conn)
        if link is None:
            return
        self.routed += 1
        self._enqueue(batches, link, out_frame, request_id)
        self._track(conn, request_id, _BIN_RTYPE.get(frame[1], "other"),
                    cache_key, fill_token, tenant)
        if forward_node is not None:
            await self._dup_write(str(value), out_frame, forward_node,
                                  writer, links, batches, request_id, True,
                                  conn)

    async def _begin(self, request: Dict[str, Any],
                     writer: "asyncio.StreamWriter",
                     links: Dict[int, _BackendLink],
                     batches: Dict[_BackendLink, Tuple[List[Any], List[Any]]],
                     conn: Optional[Dict[str, Any]] = None,
                     ) -> None:
        request_id = request.get("id")

        def reply(response: Dict[str, Any]) -> None:
            if not writer.is_closing():
                writer.write(protocol.encode_frame(response))

        bad_version = protocol.check_version(request)
        if bad_version is not None:
            reply(protocol.error_response(
                protocol.UNSUPPORTED_VERSION,
                f"server speaks v{protocol.PROTOCOL_VERSION}, "
                f"got v{bad_version!r}", request_id,
            ))
            return
        rtype = request.get("type")
        if rtype == "hello":
            hello_fields: Dict[str, Any] = dict(
                racks=len(self.ring), epoch=self.fleet.epoch,
            )
            # Advertised only when active: hash mode stays byte-identical.
            if self.selector is not None:
                hello_fields["read_policy"] = self.read_policy
            declared = request.get("tenant")
            if declared is not None:
                if not isinstance(declared, str) or not declared:
                    reply(protocol.error_response(
                        protocol.BAD_REQUEST,
                        f"tenant must be a non-empty string, "
                        f"got {declared!r}", request_id,
                    ))
                    return
                if self.qos is not None and not self.qos.knows(declared):
                    reply(protocol.error_response(
                        protocol.BAD_REQUEST,
                        f"unknown tenant {declared!r}; declared tenants: "
                        f"{self.qos.tenant_names}", request_id,
                    ))
                    return
                if conn is not None:
                    conn["tenant"] = declared
                hello_fields["tenant"] = declared
            capabilities = ["raw", "kv", "sharded", "proxy", "bin"]
            if self.qos is not None:
                capabilities.append("qos")
            reply(protocol.hello_response(
                request_id, capabilities=capabilities, **hello_fields,
            ))
            return
        if rtype == "ping":
            reply(protocol.ok_response(request_id, pong=True))
            return
        if rtype == "stats":
            try:
                reply(protocol.ok_response(
                    request_id, **(await self._gather_stats())
                ))
            except (ConnectionError, OSError, protocol.FrameError) as exc:
                reply(protocol.error_response(
                    protocol.INTERNAL, f"stats gather failed: {exc}",
                    request_id,
                ))
            return
        if rtype == "admin":
            self._begin_admin(request, writer)
            return
        epoch = request.get("epoch")
        if epoch is not None and epoch != self.fleet.epoch:
            reply(protocol.error_response(
                protocol.WRONG_SHARD,
                f"request pinned ring epoch {epoch!r}, fleet is at "
                f"epoch {self.fleet.epoch}", request_id,
            ))
            return
        if self._draining:
            reply(protocol.error_response(
                protocol.SHUTTING_DOWN, "proxy is draining", request_id
            ))
            return
        tenant = conn["tenant"] if conn is not None else DEFAULT_TENANT
        if rtype in _QOS_DATA_TYPES and self._qos_shed(tenant, reply,
                                                       request_id):
            return
        fill_token: Any = None
        cache_key = request.get("key") \
            if isinstance(request.get("key"), str) else None
        if (rtype == "get" and self.read_cache is not None
                and cache_key is not None):
            served, fill_token = self._cache_hit(cache_key, tenant, reply,
                                                 request_id)
            if served:
                return
        node, forward_node = self._route(request)
        if node is None:
            self.unroutable += 1
            reply(protocol.error_response(
                protocol.BAD_REQUEST,
                f"unroutable request type {rtype!r}", request_id,
            ))
            return
        out_request = dict(request)
        # The epoch gate is the proxy's: backend processes are fixed
        # single racks pinned at epoch 0 and would reject the fleet's.
        out_request.pop("epoch", None)
        if rtype in ("read", "write"):
            out_request["pair"] = int(request["pair"]) % self.pairs_per_rack
        link = await self._link_for(node, writer, links, request_id, False,
                                    conn)
        if link is None:
            return
        self.routed += 1
        frame = protocol.encode_frame(out_request)
        self._enqueue(batches, link, frame, request_id)
        self._track(conn, request_id, str(rtype), cache_key, fill_token,
                    tenant)
        if forward_node is not None:
            await self._dup_write(str(request.get("key", "")), frame,
                                  forward_node, writer, links, batches,
                                  request_id, False, conn)

    # ----------------------------------------------------------- membership

    async def _dup_write(self, key: str, frame: Any, forward_node: int,
                         writer: "asyncio.StreamWriter",
                         links: Dict[int, _BackendLink],
                         batches: Dict[_BackendLink, Tuple[List[Any], List[Any]]],
                         request_id: Any, binary: bool,
                         conn: Optional[Dict[str, Any]] = None) -> None:
        """Duplicate a migrating key's write to its future owner.

        The proxy relays frames without matching responses, so it cannot
        chain the two legs the way the in-proc router does; instead the
        *same* frame -- same id -- goes to both backends.  Both client
        implementations resolve an id exactly once and drop the
        duplicate response, so whichever leg answers first wins.  If the
        destination leg dies, its orphan ``TIMEOUT`` either arrives
        second (ignored) or first (a retryable error while the
        authoritative old owner durably applied the write) -- never a
        lost ack.
        """
        self.fleet.note_forwarded(key)
        self.fleet.counters["write_forwards"] += 1
        self.write_dups += 1
        # Order after any in-flight stream copy of the same key so the
        # forwarded (fresher) value lands last at the destination.
        await self.fleet.await_stream_put(key)
        # Dial errors reply with id ``None`` (clients ignore them): the
        # primary leg is already queued and must own the id's response.
        link = await self._link_for(forward_node, writer, links, None, binary,
                                    conn)
        if link is not None:
            self._enqueue(batches, link, frame, request_id)

    def _begin_admin(self, request: Dict[str, Any],
                     writer: "asyncio.StreamWriter") -> None:
        """In-band fleet administration, proxy flavour.

        ``status`` answers immediately; ``add_rack`` admits an
        *already-running* backend ``serve`` process (the proxy does not
        spawn processes -- the operator starts it and hands its
        ``host``/``port`` here) and ``drain_rack`` streams a backend's
        keys out, after which the operator may stop the process.  Both
        run as background tasks so foreground frames keep relaying.
        """
        request_id = request.get("id")

        def reply(response: Dict[str, Any]) -> None:
            if not writer.is_closing():
                writer.write(protocol.encode_frame(response))

        op = str(request.get("op", "status"))
        if op in ("status", "fleet_status"):
            status = self.fleet.status()
            status["drained"] = sorted(self.drained)
            reply(protocol.ok_response(request_id, **status))
            return
        try:
            knobs: Dict[str, Any] = {}
            if "batch_size" in request:
                knobs["batch_size"] = int(request["batch_size"])
            if "pause_s" in request:
                knobs["pause_s"] = float(request["pause_s"])
            if "max_attempts" in request:
                knobs["max_attempts"] = int(request["max_attempts"])
            if op == "add_rack":
                pending = self._admin_add_rack(request, knobs)
            elif op == "drain_rack":
                pending = self._admin_drain_rack(int(request["rack"]), knobs)
            else:
                reply(protocol.error_response(
                    protocol.BAD_REQUEST, f"unsupported admin op {op!r}",
                    request_id,
                ))
                return
        except (KeyError, TypeError, ValueError, ConfigError) as exc:
            reply(protocol.error_response(
                protocol.BAD_REQUEST, f"{type(exc).__name__}: {exc}",
                request_id,
            ))
            return
        task = asyncio.ensure_future(pending)
        self._admin_tasks.add(task)

        def _respond(done: "asyncio.Task") -> None:
            self._admin_tasks.discard(done)
            if done.cancelled():
                return
            exc = done.exception()
            if exc is None:
                reply(protocol.ok_response(request_id, **done.result()))
            elif isinstance(exc, MembershipBusy):
                reply(protocol.error_response(
                    protocol.BUSY, str(exc), request_id
                ))
            elif isinstance(exc, (KeyError, TypeError, ValueError,
                                  ConfigError)):
                reply(protocol.error_response(
                    protocol.BAD_REQUEST, f"{type(exc).__name__}: {exc}",
                    request_id,
                ))
            elif isinstance(exc, (MembershipError, asyncio.TimeoutError,
                                  ConnectionError, OSError)):
                reply(protocol.error_response(
                    protocol.INTERNAL, f"membership change failed: {exc}",
                    request_id,
                ))
            else:
                reply(protocol.error_response(
                    protocol.INTERNAL, str(exc), request_id
                ))

        task.add_done_callback(_respond)

    def _wire_endpoints(self):
        """Wire-level scan/put/delete endpoints for the migration
        stream: one :class:`~repro.service.client.ServiceClient` per
        involved backend under the ``migrate`` client name, dialed
        lazily.  Returns ``(scan, put, delete, close)``; the caller owns
        ``close`` (also used between retry attempts so a crashed
        backend gets a fresh dial)."""
        from repro.service.client import ServiceClient

        clients: Dict[int, "ServiceClient"] = {}

        async def client_for(node: int) -> "ServiceClient":
            client = clients.get(node)
            if client is None:
                host, port = self.backends[node]
                client = ServiceClient(host, port, "migrate")
                await client.connect()
                clients[node] = client
            return client

        async def scan(src: int, start: str, count: int):
            result = await (await client_for(src)).scan(start, count)
            return [(key, value) for key, value in result["items"]]

        async def put(dst: int, key: str, value: str) -> None:
            await (await client_for(dst)).put(key, value)
            if self.read_cache is not None:
                self.read_cache.invalidate(key)

        async def delete(src: int, key: str) -> None:
            if 0 <= src < len(self.backends) and src not in self.drained:
                await (await client_for(src)).delete(key)
            if self.read_cache is not None:
                self.read_cache.invalidate(key)

        async def close() -> None:
            for client in clients.values():
                await client.close()
            clients.clear()

        return scan, put, delete, close

    async def _run_stream(self, plan, *, batch_size: int = 64,
                          pause_s: float = 0.002, max_attempts: int = 3,
                          retry_backoff_s: float = 0.05):
        """Drive the migration stream over the wire, retrying tainted on
        mid-stream failure with freshly-dialed endpoints.  Returns
        ``(stream, report, close)``; raises
        :class:`MigrationStreamError` after the last attempt."""
        while True:
            scan, put, delete, close = self._wire_endpoints()
            stream = MigrationStream(
                self.fleet, plan, scan=scan, put=put, delete=delete,
                batch_size=batch_size, pause_s=pause_s,
            )
            try:
                report = await stream.run()
            except MigrationStreamError:
                await close()
                if plan.attempt >= max_attempts:
                    raise
                plan = self.fleet.retry()
                await asyncio.sleep(retry_backoff_s * plan.attempt)
                continue
            return stream, report, close

    async def _admin_add_rack(self, request: Dict[str, Any],
                              knobs: Dict[str, Any]) -> Dict[str, Any]:
        if "port" not in request:
            raise ConfigError(
                "add_rack via the proxy needs the new backend's host/port "
                "(start its serve process first)"
            )
        host = str(request.get("host", "127.0.0.1"))
        port = int(request["port"])
        node = len(self.backends)
        plan = self.fleet.begin_add(node)
        self.backends.append((host, port))
        try:
            stream, report, close = await self._run_stream(plan, **knobs)
        except MigrationStreamError as exc:
            attempts = self.fleet.plan.attempt if self.fleet.plan else 0
            self.fleet.abort()
            self.backends.pop()
            raise MembershipError(
                f"admitting rack {node} failed after {attempts} "
                f"attempt(s): {exc}"
            ) from exc
        epoch = self.fleet.commit()
        if self.read_cache is not None:
            self.read_cache.fence(epoch)
        try:
            await stream.cleanup(report)
        finally:
            await close()
        return {
            "rack": node, "epoch": epoch, "kind": "add",
            "keys_moved": report.keys_moved,
            "bytes_streamed": report.bytes_streamed,
            "skipped_forwarded": report.skipped_forwarded,
            "attempts": plan.attempt,
            "moved_fraction": round(plan.moved_fraction, 6),
            "racks": self.ring.nodes,
        }

    async def _admin_drain_rack(self, node: int,
                                knobs: Dict[str, Any]) -> Dict[str, Any]:
        if not 0 <= node < len(self.backends) or node in self.drained:
            raise ConfigError(f"rack {node} is not a live backend")
        plan = self.fleet.begin_drain(node)
        try:
            stream, report, close = await self._run_stream(plan, **knobs)
        except MigrationStreamError as exc:
            attempts = self.fleet.plan.attempt if self.fleet.plan else 0
            self.fleet.abort()
            raise MembershipError(
                f"draining rack {node} failed after {attempts} "
                f"attempt(s): {exc}"
            ) from exc
        epoch = self.fleet.commit()
        if self.read_cache is not None:
            self.read_cache.fence(epoch)
        await close()
        # The slot stays (indices must remain stable); the backend just
        # left the ring.  The operator stops the process at leisure.
        self.drained.add(node)
        return {
            "rack": node, "epoch": epoch, "kind": "drain",
            "keys_moved": report.keys_moved,
            "bytes_streamed": report.bytes_streamed,
            "skipped_forwarded": report.skipped_forwarded,
            "attempts": plan.attempt,
            "moved_fraction": round(plan.moved_fraction, 6),
            "racks": self.ring.nodes,
        }

    # ------------------------------------------------------------ reporting

    async def _gather_stats(self) -> Dict[str, Any]:
        """Scatter ``stats`` to every backend and fold the results."""
        sections: Dict[str, Dict[str, Any]] = {}
        for node, (host, port) in enumerate(self.backends):
            if node in self.drained:
                continue
            reader, writer = await asyncio.open_connection(host, port)
            try:
                protocol.write_frame(writer, {"type": "stats", "id": 0})
                response = await protocol.read_frame(
                    reader, self.max_frame_bytes
                )
            finally:
                writer.close()
            if response is None or not response.get("ok"):
                raise ConnectionError(f"backend rack {node} stats failed")
            sections[str(node)] = {
                key: response[key]
                for key in (schema.SECTION_BRIDGE, schema.SECTION_METRICS,
                            schema.SECTION_KVSTORE, schema.SECTION_ADMISSION,
                            schema.SECTION_CHAOS)
                if key in response
            }
        out = schema.aggregate_sections(list(sections.values()))
        out[schema.SECTION_METRICS] = schema.merge_metric_summaries(
            [s.get(schema.SECTION_METRICS, {}) for s in sections.values()]
        )
        out[schema.SECTION_ROUTER] = {
            "racks": float(len(self.ring)),
            "virtual_nodes": float(self.ring.vnodes),
            "routed": float(self.routed),
            "cross_rack_redirects": 0.0,
            "scatter_scans": 0.0,
            "unroutable": float(self.unroutable),
            "gc_view_commits": 0.0,
            "epoch": float(self.fleet.epoch),
        }
        out[schema.SECTION_MIGRATION] = self.fleet.stats_section()
        out[schema.SECTION_SHARDS] = sections
        if self.selector is not None and self.load_view is not None:
            routing: Dict[str, Any] = self.selector.stats_section()
            replicas: Dict[str, Dict[str, float]] = {}
            for node in range(len(self.backends)):
                if node in self.drained:
                    continue
                stats = self.load_view.replica(node)
                replicas[str(node)] = {
                    "depth": float(stats.depth),
                    "ewma_us": float(stats.ewma_us),
                    "age_s": (-1.0 if stats.age_s == float("inf")
                              else float(stats.age_s)),
                }
            routing[schema.FIELD_ROUTING_REPLICAS] = replicas
            out[schema.SECTION_ROUTING] = routing
        if self.qos is not None:
            out[schema.SECTION_TENANTS] = self.qos.stats_section()
        if self.read_cache is not None:
            out[schema.SECTION_READCACHE] = self.read_cache.stats_section()
        out[schema.FIELD_CONNECTIONS] = float(self.connections_accepted)
        return out


# --------------------------------------------------------------------------
# Backend process management (used by `repro.cli serve --shard-mode process`
# and the scaling benchmark).
# --------------------------------------------------------------------------


async def launch_backends(
    racks: int, backend_args: Sequence[str], *, seed: int,
    startup_timeout_s: float = 60.0, port: int = 0,
) -> Tuple[List["asyncio.subprocess.Process"], List[Tuple[str, int]]]:
    """Spawn one ``repro.cli serve`` process per rack.

    ``backend_args`` is everything after ``serve`` except ``--port`` and
    ``--seed``, which are set here (seed ``seed + rack``, the same
    derivation :func:`build_shard_configs` uses).  ``port`` defaults to
    0 -- an ephemeral port per backend; a fixed port is for
    ``SO_REUSEPORT`` per-core worker fleets that all share one listener
    (every child then also needs ``--reuseport`` in ``backend_args``).
    Returns the processes plus their ``(host, port)`` endpoints, parsed
    from each child's "serving ... on host:port" line.
    """
    import os
    import pathlib
    import sys

    import repro

    env = dict(os.environ)
    package_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        [package_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    procs: List["asyncio.subprocess.Process"] = []
    endpoints: List[Tuple[str, int]] = []
    try:
        for rack in range(racks):
            proc = await asyncio.create_subprocess_exec(
                sys.executable, "-m", "repro.cli", "serve",
                "--port", str(port), "--seed", str(seed + rack),
                *backend_args,
                stdout=asyncio.subprocess.PIPE,
                stderr=asyncio.subprocess.STDOUT,
                env=env,
            )
            procs.append(proc)
        for rack, proc in enumerate(procs):
            assert proc.stdout is not None
            deadline = asyncio.get_running_loop().time() + startup_timeout_s
            while True:
                remaining = deadline - asyncio.get_running_loop().time()
                if remaining <= 0:
                    raise ConfigError(
                        f"backend rack {rack} did not report a port within "
                        f"{startup_timeout_s:.0f}s"
                    )
                line = await asyncio.wait_for(proc.stdout.readline(),
                                              timeout=remaining)
                if not line:
                    raise ConfigError(
                        f"backend rack {rack} exited before serving "
                        f"(exit code {proc.returncode})"
                    )
                match = _SERVING_RE.search(line.decode("utf-8", "replace"))
                if match:
                    endpoints.append((match.group(1), int(match.group(2))))
                    break
    except BaseException:
        await shutdown_backends(procs)
        raise
    return procs, endpoints


async def shutdown_backends(
    procs: Sequence["asyncio.subprocess.Process"],
    timeout_s: float = 15.0,
) -> None:
    """SIGTERM every backend (graceful drain) and reap it."""
    import signal

    for proc in procs:
        if proc.returncode is None:
            try:
                proc.send_signal(signal.SIGTERM)
            except ProcessLookupError:
                pass
    for proc in procs:
        if proc.returncode is None:
            try:
                await asyncio.wait_for(proc.wait(), timeout=timeout_s)
            except asyncio.TimeoutError:
                proc.kill()
                await proc.wait()
