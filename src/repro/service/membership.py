"""Fleet membership: epoch-stamped ring versions and live migration state.

The serving fleet used to be frozen at ``serve`` time -- the
:class:`~repro.service.shard.HashRing` over N rack shards was built once,
so growing past N racks (or draining a failing one) meant a restart and a
cold fleet.  This module is the control plane that lifts that limit: a
:class:`FleetController` owns the *current* ring plus a monotonically
increasing **epoch**, and walks one membership change at a time through a
:class:`MigrationPlan`:

1. ``begin_add(node)`` / ``begin_drain(node)`` diff the old ring against
   the candidate ring with :meth:`HashRing.ranges_moving` -- the exact
   slices of ring space (~``1/(N+1)`` of it for a single add) that change
   owner;
2. while the plan is active, every key route consults the plan:

   * **writes** are applied to the *old* owner first (it stays fully
     authoritative, so an abort at any instant loses nothing), then
     **forwarded** to the new owner so the streamed copy can never go
     stale;
   * **reads** are served dual: new owner first, falling back to the old
     owner on a miss, so freshly-moved keys are cheap and not-yet-moved
     keys still resolve.  If a previous attempt at the same change was
     aborted (the destination may hold stale shadows), reads pin to the
     old owner instead;

3. a :class:`~repro.service.migration.MigrationStream` copies the cold
   keys over (skipping anything the write path already forwarded);
4. ``commit()`` installs the new ring and bumps the epoch -- the single
   atomic flip the :class:`~repro.service.router.ShardRouter`,
   :class:`~repro.service.router.ShardProxy`, and every per-core worker
   observe.  Clients that pinned an epoch get ``WRONG_SHARD`` and
   refresh; ``abort()`` discards the plan and the old ring simply keeps
   ruling.

This mirrors RackBlox's control-plane state synchronisation: membership
is coordinator-driven, versioned, and changes visibility in one step
rather than leaking partially-applied views to the data plane.
"""

import asyncio
import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.service.shard import RING_SPACE, HashRing, KeyRange

#: Plan phases, in order.
PHASE_STREAMING = "streaming"
PHASE_IDLE = "idle"


class MembershipError(ReproError):
    """A fleet membership change could not proceed."""


class MembershipBusy(MembershipError):
    """A membership change is already in flight (one at a time)."""


@dataclass
class MigrationPlan:
    """One membership change in flight: the ring diff plus its state."""

    kind: str                     # "add" | "drain"
    node: int                     # the rack joining or leaving
    old_ring: HashRing            # authoritative until commit
    new_ring: HashRing            # installed at commit
    ranges: Tuple[KeyRange, ...]  # sorted, non-overlapping
    attempt: int = 1
    #: True when the destination may hold stale shadow copies from an
    #: earlier aborted attempt -- reads then pin to the old owner.
    tainted: bool = False
    _starts: List[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._starts = [r.start for r in self.ranges]

    def moving_range_for(self, point: int) -> Optional[KeyRange]:
        """The moving range containing ``point``, if any."""
        idx = bisect.bisect_right(self._starts, point) - 1
        if idx >= 0 and self.ranges[idx].contains(point):
            return self.ranges[idx]
        return None

    def moving_range_for_key(self, key: str) -> Optional[KeyRange]:
        """The moving range a kv ``key`` falls in, if any.  The label
        derivation must match the router's (``key:<key>``), which is why
        it lives here rather than at every call site."""
        return self.moving_range_for(self.old_ring.point_for(f"key:{key}"))

    @property
    def moved_fraction(self) -> float:
        """Fraction of ring space this plan moves (~1/(N+1) for an add)."""
        return sum(r.span for r in self.ranges) / RING_SPACE


class FleetController:
    """Owns the current ring, the epoch, and at most one live migration.

    The controller is pure routing policy -- it never touches a socket or
    a bridge.  The router (or proxy) asks it three questions per request:

    * :meth:`read_route` -- where to read first, and where to fall back;
    * :meth:`write_route` -- where to apply, and where to forward;
    * :meth:`read_owner` -- which single shard is *authoritative* for a
      key right now (scan results from anyone else are shadow copies).

    and drives the lifecycle with :meth:`begin_add` / :meth:`begin_drain`
    -> :meth:`commit` | :meth:`abort`.
    """

    #: Counter names reported in the ``migration`` stats section
    #: (mirrored by ``schema.MIGRATION_FIELDS``).
    COUNTER_NAMES = (
        "keys_moved", "bytes_streamed", "batches", "dual_read_fallbacks",
        "write_forwards", "aborts", "cutovers", "cleanup_deletes",
        "racks_added", "racks_drained",
    )

    def __init__(self, ring: HashRing, epoch: int = 0) -> None:
        self.ring = ring
        self.epoch = int(epoch)
        self.plan: Optional[MigrationPlan] = None
        self.counters: Dict[str, int] = {name: 0 for name in
                                         self.COUNTER_NAMES}
        #: Keys dual-written while a plan is active; the stream must not
        #: clobber them with the older value it read from the source.
        self._forwarded: Set[str] = set()
        #: Keys with a stream put in flight to the destination.  The
        #: write path's forward step waits these out before issuing its
        #: own destination put, so the forwarded (fresher) value is
        #: deterministically the last writer.
        self._stream_puts: Dict[str, asyncio.Event] = {}
        #: Nodes whose last *drain* attempt aborted: the surviving
        #: destinations may hold stale shadows, so the next drain of the
        #: same node starts tainted.  (An aborted *add* destroys the
        #: joining shard, so adds only taint in-call retries.)
        self._tainted_nodes: Set[int] = set()

    # ------------------------------------------------------------ lifecycle

    @property
    def migrating(self) -> bool:
        return self.plan is not None

    def _check_idle(self) -> None:
        if self.plan is not None:
            raise MembershipBusy(
                f"a membership change is already in flight "
                f"({self.plan.kind} of rack {self.plan.node}, attempt "
                f"{self.plan.attempt}); one at a time"
            )

    def begin_add(self, node: int, *, tainted: bool = False) -> MigrationPlan:
        """Start admitting ``node``; returns the plan (ranges to stream)."""
        self._check_idle()
        node = int(node)
        if node in self.ring._nodes:
            raise MembershipError(f"rack {node} is already on the ring")
        new_ring = self.ring.with_node(node)
        ranges = tuple(HashRing.ranges_moving(self.ring, new_ring))
        self.plan = MigrationPlan("add", node, self.ring, new_ring, ranges,
                                  tainted=tainted)
        self._forwarded.clear()
        return self.plan

    def begin_drain(self, node: int, *,
                    tainted: bool = False) -> MigrationPlan:
        """Start draining ``node``; returns the plan (ranges to stream)."""
        self._check_idle()
        node = int(node)
        if node not in self.ring._nodes:
            raise MembershipError(f"rack {node} is not on the ring")
        if len(self.ring) < 2:
            raise MembershipError(
                "cannot drain the last rack; the fleet would be empty"
            )
        new_ring = self.ring.without_node(node)
        ranges = tuple(HashRing.ranges_moving(self.ring, new_ring))
        self.plan = MigrationPlan(
            "drain", node, self.ring, new_ring, ranges,
            tainted=tainted or node in self._tainted_nodes,
        )
        self._forwarded.clear()
        return self.plan

    def retry(self) -> MigrationPlan:
        """Roll the active plan into its next attempt after a mid-stream
        failure.  The destination kept whatever partially streamed, so
        the new attempt is tainted: reads pin to the old owner."""
        if self.plan is None:
            raise MembershipError("no migration in flight to retry")
        self.counters["aborts"] += 1
        self.plan.attempt += 1
        self.plan.tainted = True
        self._forwarded.clear()
        return self.plan

    def abort(self) -> None:
        """Discard the active plan; the old ring keeps ruling.  Nothing
        is lost: writes were always applied to the old owner first."""
        if self.plan is None:
            return
        self.counters["aborts"] += 1
        if self.plan.kind == "drain":
            # The surviving destinations keep whatever was streamed;
            # a later drain of the same node must not dual-read it.
            self._tainted_nodes.add(self.plan.node)
        self.plan = None
        self._forwarded.clear()

    def commit(self) -> int:
        """Install the new ring, bump the epoch, end the plan.  This is
        the one atomic cutover every routing view observes."""
        if self.plan is None:
            raise MembershipError("no migration in flight to commit")
        plan = self.plan
        self.ring = plan.new_ring
        self.epoch += 1
        self.counters["cutovers"] += len(plan.ranges)
        if plan.kind == "add":
            self.counters["racks_added"] += 1
        else:
            self.counters["racks_drained"] += 1
            self._tainted_nodes.discard(plan.node)
        self.plan = None
        self._forwarded.clear()
        return self.epoch

    # -------------------------------------------------------------- routing

    def note_forwarded(self, key: str) -> None:
        """Record that ``key`` was dual-written during the active plan."""
        if self.plan is not None:
            self._forwarded.add(key)

    def is_forwarded(self, key: str) -> bool:
        return key in self._forwarded

    def stream_put_begin(self, key: str) -> asyncio.Event:
        """The stream is about to put ``key`` at the destination."""
        event = asyncio.Event()
        self._stream_puts[key] = event
        return event

    def stream_put_end(self, key: str, event: asyncio.Event) -> None:
        event.set()
        if self._stream_puts.get(key) is event:
            del self._stream_puts[key]

    async def await_stream_put(self, key: str) -> None:
        """Forward-path ordering barrier: wait out any in-flight stream
        put for ``key`` so the forwarded value lands last."""
        event = self._stream_puts.get(key)
        if event is not None:
            await event.wait()

    def read_route(self, key: str) -> Tuple[int, Optional[int]]:
        """``(first, fallback)`` shards for a keyed read (raw kv key).

        Outside a migration window ``fallback`` is ``None``.  Inside it,
        keys in a moving range read the *new* owner first and fall back
        to the old owner on a miss -- unless the plan is tainted (a
        prior aborted attempt may have left stale shadows at the
        destination), in which case reads pin to the old owner, except
        for keys the write path has since re-forwarded (those are
        provably fresh at the destination).
        """
        owner = self.ring.node_for(f"key:{key}")
        plan = self.plan
        if plan is None:
            return owner, None
        rng = plan.moving_range_for_key(key)
        if rng is None:
            return owner, None
        if plan.tainted and not self.is_forwarded(key):
            return rng.src, None
        return rng.dst, rng.src

    def write_route(self, key: str) -> Tuple[int, Optional[int]]:
        """``(primary, forward)`` shards for a keyed write (raw kv key).

        The primary is always the currently authoritative (old) owner --
        it must ack before the client does, so an abort at any moment
        leaves every acked write durable.  ``forward`` is the new owner
        during a migration window: the write is chained there after the
        primary acks, keeping the streamed copy from ever going stale.
        """
        owner = self.ring.node_for(f"key:{key}")
        plan = self.plan
        if plan is None:
            return owner, None
        rng = plan.moving_range_for_key(key)
        if rng is None:
            return owner, None
        return rng.src, rng.dst

    def read_owner(self, key: str) -> int:
        """The single shard whose copy of ``key`` is authoritative right
        now -- the old owner until commit, the ring owner after.  Scan
        merges drop items reported by anyone else (shadow copies)."""
        owner = self.ring.node_for(f"key:{key}")
        plan = self.plan
        if plan is None:
            return owner
        rng = plan.moving_range_for_key(key)
        return owner if rng is None else rng.src

    # ------------------------------------------------------------ reporting

    def status(self) -> Dict[str, object]:
        """The operator-facing fleet view (CLI ``fleet status``)."""
        out: Dict[str, object] = {
            "epoch": self.epoch,
            "racks": self.ring.nodes,
            "migrating": self.migrating,
            "phase": PHASE_STREAMING if self.migrating else PHASE_IDLE,
            "counters": dict(self.counters),
        }
        if self.plan is not None:
            out["change"] = {
                "kind": self.plan.kind,
                "rack": self.plan.node,
                "attempt": self.plan.attempt,
                "tainted": self.plan.tainted,
                "ranges": len(self.plan.ranges),
                "moved_fraction": round(self.plan.moved_fraction, 6),
            }
        return out

    def stats_section(self) -> Dict[str, float]:
        """The ``migration`` section of the stats payload (all floats,
        per ``schema.MIGRATION_FIELDS``)."""
        out = {name: float(value) for name, value in self.counters.items()}
        out["epoch"] = float(self.epoch)
        out["active"] = 1.0 if self.migrating else 0.0
        return out
