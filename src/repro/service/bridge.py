"""The sim-time bridge: live asyncio requests into the discrete-event rack.

The simulator only moves when :meth:`Simulator.run` is called, so a live
service needs something to turn the crank.  The bridge runs a *pump*
task on the asyncio event loop: whenever at least one live request is in
flight it advances the simulator in bounded chunks (event-driven -- the
clock jumps straight to the next event, it does not tick), completing
each request's :class:`asyncio.Future` the moment its simulated response
reaches the client edge.  With nothing in flight the pump parks and the
simulated clock freezes, so an idle service burns neither CPU nor
simulated time.

Everything runs on the event-loop thread -- the simulator is never
touched concurrently -- which keeps the rack exactly as deterministic as
it is under the batch experiment runner.

Optionally the pump is *paced*: ``pace=1.0`` advances one simulated
microsecond per wall-clock microsecond (real time), ``pace=10`` runs the
rack ten times faster than real time, and the default ``pace=0`` is
free-running (as fast as the host allows; what benchmarks want).
"""

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.config import RackConfig
from repro.cluster.rack import Rack
from repro.errors import ConfigError
from repro.kvstore.store import RackKvStore
from repro.metrics.collector import ExperimentMetrics
from repro.sim.core import MSEC, SEC


@dataclass
class BridgeStats:
    """A snapshot of the bridge's life so far."""

    sim_now_us: float
    inflight: int
    submitted: int
    completed: int
    timed_out: int
    sim_chunks: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "sim_now_us": self.sim_now_us,
            "inflight": float(self.inflight),
            "submitted": float(self.submitted),
            "completed": float(self.completed),
            "timed_out": float(self.timed_out),
            "sim_chunks": float(self.sim_chunks),
        }


class _Live:
    """One live request riding the simulator."""

    __slots__ = ("future", "t0_us", "deadline_us")

    def __init__(self, future: "asyncio.Future", t0_us: float,
                 deadline_us: float) -> None:
        self.future = future
        self.t0_us = t0_us
        self.deadline_us = deadline_us


class SimTimeBridge:
    """Owns a rack and mediates between wall-clock and simulated time."""

    def __init__(
        self,
        config: RackConfig,
        *,
        chunk_us: float = 1.0 * MSEC,
        request_timeout_us: float = 5.0 * SEC,
        pace: float = 0.0,
        precondition: bool = True,
    ) -> None:
        if chunk_us <= 0:
            raise ConfigError(f"chunk_us must be positive, got {chunk_us}")
        if request_timeout_us <= 0:
            raise ConfigError("request_timeout_us must be positive")
        if pace < 0:
            raise ConfigError(f"pace must be >= 0, got {pace}")
        self.rack = Rack(config)
        if precondition:
            self.rack.precondition()
        self.kv = RackKvStore(self.rack, client_name="svc-kv")
        #: Sim-time latencies of live requests (read/write classes), the
        #: same collector the batch runner uses -- so ``/stats`` reports
        #: the service with the experiment engine's vocabulary.
        self.metrics = ExperimentMetrics()
        self.chunk_us = chunk_us
        self.request_timeout_us = request_timeout_us
        self.pace = pace
        self._live: Dict[int, _Live] = {}
        self._token = 0
        self.submitted = 0
        self.completed = 0
        self.timed_out = 0
        self.sim_chunks = 0
        self._running = False
        self._pump_task: Optional["asyncio.Task"] = None
        self._wakeup: Optional["asyncio.Event"] = None
        #: Called after every simulated chunk, once the completions in it
        #: have resolved their futures.  The server hangs its response
        #: flush here: one socket write per connection per chunk instead
        #: of one per response (each tiny cross-process send pays a
        #: scheduler wakeup, which at thousands of requests per second
        #: costs more than the simulation itself).
        self.after_chunk: Optional[Any] = None

    # -------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Start the pump on the running event loop (idempotent)."""
        if self._running:
            return
        self._running = True
        self._wakeup = asyncio.Event()
        self._pump_task = asyncio.get_running_loop().create_task(self._pump())

    async def stop(self, drain: bool = True,
                   drain_timeout_s: float = 10.0) -> None:
        """Stop the pump; with ``drain`` wait for in-flight requests first."""
        if not self._running:
            return
        if drain and self._live:
            pending = [live.future for live in self._live.values()]
            await asyncio.wait(pending, timeout=drain_timeout_s)
        self._running = False
        if self._wakeup is not None:
            self._wakeup.set()
        if self._pump_task is not None:
            await self._pump_task
            self._pump_task = None
        # Anything still live after a no-drain stop is cancelled so
        # callers awaiting those futures do not hang forever.
        for token, live in list(self._live.items()):
            if not live.future.done():
                live.future.cancel()
            self._live.pop(token, None)

    @property
    def inflight(self) -> int:
        return len(self._live)

    def stats(self) -> BridgeStats:
        return BridgeStats(
            sim_now_us=self.rack.sim.now,
            inflight=len(self._live),
            submitted=self.submitted,
            completed=self.completed,
            timed_out=self.timed_out,
            sim_chunks=self.sim_chunks,
        )

    # ------------------------------------------------------------ submission

    def submit_read(self, pair_index: int, lpn: int,
                    client: str = "live", replica: bool = False) -> "asyncio.Future":
        """Inject a raw vSSD read; resolves to ``{"latency_us": ...}``.

        ``replica=True`` addresses the pair's replica vSSD directly --
        the hedged-read escape hatch clients use when the primary is slow
        or silently dead.
        """
        pair = self._pair(pair_index)
        done = self.rack.issue_read(
            pair, int(lpn), client=client,
            target="replica" if replica else "primary",
        )
        return self._track("read", done, lambda pkt: {
            "latency_us": self.rack.sim.now - pkt.issue_time,
            "storage_us": pkt.payload.get("storage_us"),
        })

    def submit_write(self, pair_index: int, lpn: int,
                     client: str = "live") -> "asyncio.Future":
        """Inject a replicated write; resolves once every live replica acks."""
        pair = self._pair(pair_index)
        t0 = self.rack.sim.now
        done = self.rack.issue_write(pair, int(lpn), client=client)
        return self._track("write", done, lambda responses: {
            "replicas": len(responses),
            "latency_us": self.rack.sim.now - t0,
            "storage_us": max(
                (r.payload.get("storage_us", 0.0) for r in responses),
                default=None,
            ),
        })

    def submit_get(self, key: str, client: str = "live") -> "asyncio.Future":
        """KV point read; resolves to value (or None) + latency."""
        process = self.rack.sim.spawn(self.kv.get(str(key)))
        return self._track("read", process, lambda result: {
            "value": result[0], "found": result[0] is not None,
            "latency_us": result[1],
        })

    def submit_put(self, key: str, value: str,
                   client: str = "live") -> "asyncio.Future":
        """KV replicated write; resolves to the sim latency."""
        process = self.rack.sim.spawn(self.kv.put(str(key), str(value)))
        return self._track("write", process,
                           lambda latency: {"latency_us": latency})

    def submit_delete(self, key: str,
                      client: str = "live") -> "asyncio.Future":
        """KV replicated delete; resolves to the sim latency."""
        process = self.rack.sim.spawn(self.kv.delete(str(key)))
        return self._track("write", process,
                           lambda latency: {"latency_us": latency,
                                            "deleted": True})

    def submit_scan(self, start_key: str, count: int,
                    client: str = "live") -> "asyncio.Future":
        """KV range scan; resolves to the items + latency."""
        process = self.rack.sim.spawn(self.kv.scan(str(start_key), int(count)))
        return self._track("read", process, lambda result: {
            "items": [[k, v] for k, v in result[0]],
            "count": len(result[0]),
            "latency_us": result[1],
        })

    def _pair(self, pair_index: int):
        pairs = self.rack.pairs
        if not 0 <= pair_index < len(pairs):
            raise ConfigError(
                f"pair index {pair_index} out of range [0, {len(pairs)})"
            )
        return pairs[pair_index]

    def _track(self, kind: str, event, shape) -> "asyncio.Future":
        """Register a sim event as a live request with an asyncio future.

        ``shape`` turns the sim event's value into the response payload;
        it runs at completion time (on the event-loop thread, while the
        simulator sits at the completion instant, so ``sim.now`` reads
        as the finish time).
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        token = self._token = self._token + 1
        t0 = self.rack.sim.now
        self._live[token] = _Live(
            future, t0, t0 + self.request_timeout_us
        )
        self.submitted += 1

        def _on_done(ev) -> None:
            live = self._live.pop(token, None)
            if live is None or future.done():
                return
            self.completed += 1
            try:
                payload = shape(ev.value)
            except Exception as exc:  # surfaced to the awaiting handler
                future.set_exception(exc)
                return
            latency = self.rack.sim.now - live.t0_us
            self.metrics.record(kind, latency, at=self.rack.sim.now)
            future.set_result(payload)

        event.add_callback(_on_done)
        if self._wakeup is not None:
            self._wakeup.set()
        return future

    # ------------------------------------------------------------------ pump

    async def _pump(self) -> None:
        sim = self.rack.sim
        assert self._wakeup is not None
        loop = asyncio.get_running_loop()
        while True:
            if not self._live:
                if not self._running:
                    return
                self._wakeup.clear()
                # Re-check: a submission may have raced the clear.
                if not self._live and self._running:
                    await self._wakeup.wait()
                continue
            wall_start = loop.time()
            sim.run(until=sim.now + self.chunk_us)
            self.sim_chunks += 1
            self._expire(sim.now)
            if self.after_chunk is not None:
                # Futures resolve their done-callbacks via call_soon, so
                # the flush must queue *behind* them, not run here.
                loop.call_soon(self.after_chunk)
            if self.pace > 0:
                # Hold the simulated clock to pace * wall-clock.
                target_s = (self.chunk_us / SEC) / self.pace
                remaining = target_s - (loop.time() - wall_start)
                await asyncio.sleep(max(0.0, remaining))
            else:
                # Yield so connection handlers can read/write sockets
                # between chunks; free-running otherwise.
                await asyncio.sleep(0)

    def _expire(self, now_us: float) -> None:
        """Fail live requests whose sim deadline has passed.

        A read addressed to a crashed server is silently dropped by the
        rack (the packet dies at the dead NIC); without a deadline the
        pump would advance simulated time forever waiting for it.
        """
        if not self._live:
            return
        expired: List[Tuple[int, _Live]] = [
            (token, live) for token, live in self._live.items()
            if now_us >= live.deadline_us
        ]
        for token, live in expired:
            self._live.pop(token, None)
            self.timed_out += 1
            if not live.future.done():
                live.future.set_exception(
                    asyncio.TimeoutError(
                        f"simulated request exceeded "
                        f"{self.request_timeout_us / SEC:.1f}s deadline"
                    )
                )

    # ------------------------------------------------------------- reporting

    def stats_payload(self) -> Dict[str, Any]:
        """Everything ``/stats`` reports: bridge + collector + traces."""
        out: Dict[str, Any] = {"bridge": self.stats().as_dict()}
        out["metrics"] = self.metrics.summary()
        kv = self.kv
        out["kvstore"] = {
            "keys": float(len(kv)),
            "gets": float(kv.gets), "puts": float(kv.puts),
            "scans": float(kv.scans), "misses": float(kv.misses),
        }
        if self.rack.chaos is not None:
            out["chaos"] = self.rack.chaos.counters()
        tracer = self.rack.tracer
        if tracer.enabled:
            collection = tracer.collection()
            if collection is not None and len(collection.traces) > 0:
                out["traces"] = collection.summary()
                attribution = collection.attribution(percentile=99.0, kind="read")
                out["traces"]["p99_attribution"] = attribution.as_dict()
        return out
