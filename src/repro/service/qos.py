"""Multi-tenant QoS: tenant specs, weighted-fair admission, SLO burn.

Production traffic is many tenants with different service levels, not a
flat pool of clients.  This module gives the serving stack a per-tenant
data plane in the spirit of PAIO's software-defined storage stages:

* :class:`TenantSpec` -- one tenant's declared contract: scheduling
  ``weight``, p99 SLO target, token-bucket ``rate_per_sec``/``burst``,
  and relative DRAM cache share;
* :func:`load_tenant_specs` -- parse and validate a spec from a JSON
  file or an inline JSON string (the ``--tenants`` CLI value);
* :class:`QosScheduler` -- weighted-fair admission over the declared
  tenants plus per-tenant SLO-burn tracking.

Scheduling model
----------------

Each tenant holds a *guaranteed share* of the global queue depth
proportional to its weight: ``share_i = weight_i / sum(weights) x
depth``.  Admission is work-conserving: while total in-flight load is
below the contention threshold (half the depth), any tenant may borrow
idle capacity beyond its share; once the threshold is crossed, each
tenant is clamped to its guarantee, so a flooding tenant's overload
drains back to its share while everyone else's guarantee stays
admittable.  A per-tenant token bucket (same mechanism as per-client
admission, :class:`~repro.service.admission.WallClockTokenBucket`)
optionally meters each tenant's aggregate request rate before the fair
share is consulted.

SLO burn is tracked against a p99 target: over a sliding window of
completed requests, the fraction that missed ``slo_ms`` is divided by
the 1% error budget -- ``slo_burn`` of 1.0 means the tenant is burning
its budget exactly as fast as it accrues; above 1.0 the SLO is being
violated.

Connections declare their tenant once, in the ``hello`` exchange (the
binary codec's closed field sets leave no room for a per-request tenant
tag, and per-connection identity is cheaper anyway).  Undeclared
connections map to the implicit :data:`DEFAULT_TENANT`, which always
exists with weight 1 and no rate limit unless the spec overrides it.
"""

import json
import os
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Union

from repro.service.admission import WallClockTokenBucket

#: Tenant every connection belongs to until its ``hello`` says otherwise.
DEFAULT_TENANT = "default"

#: Cache entries a spec gets when it declares tenants but no capacity.
DEFAULT_CACHE_CAPACITY = 4096

#: Completed requests per tenant in the sliding SLO window.
SLO_WINDOW = 512

#: Fraction of requests allowed past the SLO target (p99 => 1%).
SLO_BUDGET = 0.01


class TenantSpecError(ValueError):
    """A tenant spec failed validation (bad JSON, bad field values)."""


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's declared service contract.

    ``weight`` sets the tenant's proportional share of queue depth;
    ``slo_ms`` is the p99 latency target the burn tracker scores
    against; ``rate_per_sec`` / ``burst`` meter the tenant's aggregate
    request rate (0 disables metering); ``cache_share`` is the tenant's
    relative share of the DRAM read-cache capacity.
    """

    name: str
    weight: float = 1.0
    slo_ms: float = 100.0
    rate_per_sec: float = 0.0
    burst: float = 64.0
    cache_share: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise TenantSpecError(f"tenant name must be a non-empty string, got {self.name!r}")
        if not self.name.isprintable() or any(c.isspace() for c in self.name):
            raise TenantSpecError(f"tenant name must be printable without spaces: {self.name!r}")
        for fname, value, floor in (
            ("weight", self.weight, 0.0),
            ("slo_ms", self.slo_ms, 0.0),
            ("burst", self.burst, 0.0),
        ):
            if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= floor:
                raise TenantSpecError(f"tenant {self.name!r}: {fname} must be > {floor:g}, "
                                      f"got {value!r}")
        for fname, value in (("rate_per_sec", self.rate_per_sec),
                             ("cache_share", self.cache_share)):
            if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
                raise TenantSpecError(f"tenant {self.name!r}: {fname} must be >= 0, "
                                      f"got {value!r}")


#: Spec-file keys accepted per tenant object (anything else is a typo).
_TENANT_KEYS = frozenset(
    ("name", "weight", "slo_ms", "rate_per_sec", "burst", "cache_share"))
_TOP_KEYS = frozenset(("tenants", "cache_capacity", "cache_segments"))


@dataclass(frozen=True)
class QosSpec:
    """A parsed ``--tenants`` spec: the tenant table plus cache sizing."""

    tenants: Dict[str, TenantSpec] = field(default_factory=dict)
    cache_capacity: int = DEFAULT_CACHE_CAPACITY
    cache_segments: int = 8


def _tenant_from_obj(obj: Any) -> TenantSpec:
    if not isinstance(obj, Mapping):
        raise TenantSpecError(f"tenant entries must be objects, got {type(obj).__name__}")
    unknown = set(obj) - _TENANT_KEYS
    if unknown:
        raise TenantSpecError(f"unknown tenant spec field(s) {sorted(unknown)}; "
                              f"allowed: {sorted(_TENANT_KEYS)}")
    if "name" not in obj:
        raise TenantSpecError("tenant entries need a 'name'")
    return TenantSpec(**dict(obj))


def load_tenant_specs(source: str) -> QosSpec:
    """Parse a tenant spec from a JSON file path or an inline JSON string.

    Two accepted shapes::

        [{"name": "gold", "weight": 3, "slo_ms": 20}, ...]
        {"tenants": [...], "cache_capacity": 8192, "cache_segments": 8}

    Returns a :class:`QosSpec`.  Raises :class:`TenantSpecError` on
    anything malformed -- unknown fields, duplicate names, non-positive
    weights -- so a bad spec fails at startup, not at request time.
    """
    text = source
    if not source.lstrip().startswith(("{", "[")):
        if not os.path.exists(source):
            raise TenantSpecError(
                f"--tenants value {source!r} is neither inline JSON nor an existing file")
        with open(source, "r") as fh:
            text = fh.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TenantSpecError(f"tenant spec is not valid JSON: {exc}")
    cache_capacity = DEFAULT_CACHE_CAPACITY
    cache_segments = 8
    if isinstance(data, Mapping):
        unknown = set(data) - _TOP_KEYS
        if unknown:
            raise TenantSpecError(f"unknown top-level spec field(s) {sorted(unknown)}; "
                                  f"allowed: {sorted(_TOP_KEYS)}")
        entries = data.get("tenants", [])
        cache_capacity = data.get("cache_capacity", cache_capacity)
        cache_segments = data.get("cache_segments", cache_segments)
        if not isinstance(cache_capacity, int) or isinstance(cache_capacity, bool) \
                or cache_capacity < 0:
            raise TenantSpecError(f"cache_capacity must be an int >= 0, got {cache_capacity!r}")
        if not isinstance(cache_segments, int) or isinstance(cache_segments, bool) \
                or cache_segments < 1:
            raise TenantSpecError(f"cache_segments must be an int >= 1, got {cache_segments!r}")
    elif isinstance(data, list):
        entries = data
    else:
        raise TenantSpecError(f"tenant spec must be a JSON list or object, "
                              f"got {type(data).__name__}")
    if not isinstance(entries, list):
        raise TenantSpecError("'tenants' must be a list of tenant objects")
    tenants: Dict[str, TenantSpec] = {}
    for obj in entries:
        spec = _tenant_from_obj(obj)
        if spec.name in tenants:
            raise TenantSpecError(f"duplicate tenant {spec.name!r}")
        tenants[spec.name] = spec
    return QosSpec(tenants=tenants, cache_capacity=cache_capacity,
                   cache_segments=cache_segments)


class _TenantState:
    """Mutable per-tenant runtime state beside the frozen spec."""

    __slots__ = ("spec", "bucket", "inflight", "admitted", "shed_rate_limited",
                 "shed_over_share", "completed", "slo_violations", "window")

    def __init__(self, spec: TenantSpec):
        self.spec = spec
        self.bucket: Optional[WallClockTokenBucket] = None
        if spec.rate_per_sec > 0:
            self.bucket = WallClockTokenBucket(spec.rate_per_sec, spec.burst)
        self.inflight = 0
        self.admitted = 0
        self.shed_rate_limited = 0
        self.shed_over_share = 0
        self.completed = 0
        self.slo_violations = 0
        self.window: deque = deque(maxlen=SLO_WINDOW)

    def slo_burn(self) -> float:
        if not self.window:
            return 0.0
        missed = sum(self.window) / len(self.window)
        return missed / SLO_BUDGET


class QosScheduler:
    """Weighted-fair tenant admission with per-tenant SLO-burn tracking.

    One scheduler fronts one service (single rack, sharded router, or
    proxy); it owns its own in-flight tally, incremented by
    :meth:`on_submit` and drained by :meth:`on_complete`, independent of
    the per-shard admission queues behind it.
    """

    def __init__(self, tenants: Union[Mapping[str, TenantSpec], Iterable[TenantSpec], None],
                 *, max_queue_depth: int = 256):
        if max_queue_depth < 1:
            raise TenantSpecError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        specs: Dict[str, TenantSpec] = {}
        if tenants:
            values = tenants.values() if isinstance(tenants, Mapping) else tenants
            for spec in values:
                specs[spec.name] = spec
        # The implicit default tenant always exists: undeclared
        # connections are first-class, just unweighted and unmetered.
        specs.setdefault(DEFAULT_TENANT, TenantSpec(DEFAULT_TENANT))
        self.max_queue_depth = max_queue_depth
        self._contention_threshold = max(1, max_queue_depth // 2)
        self._states = {name: _TenantState(spec) for name, spec in specs.items()}
        total_weight = sum(s.weight for s in specs.values())
        self._shares = {
            name: max(1.0, spec.weight / total_weight * max_queue_depth)
            for name, spec in specs.items()
        }
        self.total_inflight = 0

    # -- identity ------------------------------------------------------

    def knows(self, tenant: str) -> bool:
        return tenant in self._states

    @property
    def tenant_names(self):
        return sorted(self._states)

    def cache_shares(self) -> Dict[str, float]:
        """Per-tenant relative cache shares, for :class:`ReadCache`."""
        return {name: st.spec.cache_share for name, st in self._states.items()}

    def guaranteed_share(self, tenant: str) -> float:
        return self._shares[tenant]

    # -- admission -----------------------------------------------------

    def try_admit(self, tenant: str, now: Optional[float] = None) -> bool:
        """Admit or shed one request for ``tenant``.

        Order matters: the rate gate runs first (a metered tenant over
        its contracted rate is shed regardless of idle capacity), then
        the fair share -- under the guarantee always admits; over it
        admits only while the scheduler as a whole is uncontended, so
        spare capacity is never wasted but contention clamps every
        tenant back to its weight.
        """
        state = self._states.get(tenant)
        if state is None:
            state = self._states[DEFAULT_TENANT]
        if state.bucket is not None and not state.bucket.try_take(now):
            state.shed_rate_limited += 1
            return False
        if (state.inflight >= self._shares[state.spec.name]
                and self.total_inflight >= self._contention_threshold):
            state.shed_over_share += 1
            return False
        state.admitted += 1
        return True

    def on_submit(self, tenant: str) -> None:
        state = self._states.get(tenant) or self._states[DEFAULT_TENANT]
        state.inflight += 1
        self.total_inflight += 1

    def on_complete(self, tenant: str, latency_ms: Optional[float],
                    ok: bool = True) -> None:
        """Drain one in-flight request and score it against the SLO.

        ``latency_ms`` of ``None`` (a timeout or error with no measured
        latency) counts as a violation -- a request the tenant never got
        an answer for is the worst kind of SLO miss.
        """
        state = self._states.get(tenant) or self._states[DEFAULT_TENANT]
        state.inflight = max(0, state.inflight - 1)
        self.total_inflight = max(0, self.total_inflight - 1)
        state.completed += 1
        missed = (not ok) or latency_ms is None or latency_ms > state.spec.slo_ms
        if missed:
            state.slo_violations += 1
        state.window.append(1 if missed else 0)

    # -- stats ---------------------------------------------------------

    def stats_section(self) -> Dict[str, Dict[str, float]]:
        """The ``tenants`` stats section: one numeric map per tenant."""
        out = {}
        for name, st in sorted(self._states.items()):
            out[name] = {
                "weight": float(st.spec.weight),
                "slo_target_ms": float(st.spec.slo_ms),
                "share": float(self._shares[name]),
                "admitted": float(st.admitted),
                "shed_rate_limited": float(st.shed_rate_limited),
                "shed_over_share": float(st.shed_over_share),
                "inflight": float(st.inflight),
                "completed": float(st.completed),
                "slo_violations": float(st.slo_violations),
                "slo_burn": float(st.slo_burn()),
            }
        return out
