"""Live serving layer: the rack (or a sharded fleet of racks) as a
network service.

The batch experiment engine drives a :class:`~repro.cluster.rack.Rack`
from scripts; this package puts the same rack behind an asyncio TCP
front-end so real clients can issue raw vSSD I/O and key-value
GET/PUT/SCAN over a small length-prefixed JSON wire protocol:

* :mod:`repro.service.protocol` -- framing, versioning (``hello``), the
  request/response schema, and the negotiated v2 binary codec for the
  hot ops (JSON stays the fallback and the handshake wire);
* :mod:`repro.service.schema` -- the one documented shape every
  ``stats`` payload follows;
* :mod:`repro.service.bridge` -- the sim-time bridge that injects live
  requests into the discrete-event simulator and completes asyncio
  futures when the simulated request finishes;
* :mod:`repro.service.admission` -- per-client token buckets and the
  global queue-depth cap (``BUSY`` shedding instead of unbounded queues);
* :mod:`repro.service.server` -- the TCP service with graceful drain;
* :mod:`repro.service.shard` / :mod:`repro.service.router` -- the
  consistent-hash ring and the multi-rack front-ends built on it;
* :mod:`repro.service.selector` -- load-aware replica read routing
  (power-of-two-choices) plus its deterministic test harness;
* :mod:`repro.service.membership` / :mod:`repro.service.migration` --
  the elastic-fleet control plane: online rack add/drain with live key
  migration behind an epoch-stamped ring;
* :mod:`repro.service.qos` / :mod:`repro.service.readcache` -- the
  multi-tenant layer: declared tenant specs, the weighted-fair QoS
  scheduler with SLO-burn tracking, and the sharded DRAM read-through
  cache with per-tenant capacity shares;
* :mod:`repro.service.client` -- a pipelined async client;
* :mod:`repro.service.loadgen` -- open/closed-loop load generation.
"""

from repro.service.admission import AdmissionController, WallClockTokenBucket
from repro.service.bridge import BridgeStats, SimTimeBridge
from repro.service.client import ClientConfig, ServiceClient, ServiceError
from repro.service.loadgen import (
    LoadgenReport,
    ZipfSampler,
    make_key_sampler,
    run_loadgen,
)
from repro.service.selector import (
    READ_POLICIES,
    Decision,
    FakeLoadView,
    ReplicaSelector,
    ReplicaStats,
    RoutingTrace,
)
from repro.service.membership import (
    FleetController,
    MembershipBusy,
    MembershipError,
    MigrationPlan,
)
from repro.service.migration import (
    MigrationStream,
    MigrationStreamError,
    StreamReport,
)
from repro.service.protocol import (
    BIN_CODEC,
    BIN_MAGIC,
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    BinFrameCodec,
    FrameDecoder,
    FrameError,
    FrameSplitter,
    FrameTooLarge,
    TruncatedFrame,
    UnencodableFrame,
    check_version,
    encode_frame,
    encode_frame_as,
    error_response,
    frame_is_binary,
    hello_response,
    ok_response,
    read_frame,
    write_frame,
)
from repro.service.qos import (
    DEFAULT_TENANT,
    QosScheduler,
    QosSpec,
    TenantSpec,
    TenantSpecError,
    load_tenant_specs,
)
from repro.service.readcache import ReadCache
from repro.service.router import (
    ShardedRackService,
    ShardProxy,
    ShardRouter,
    build_shard_configs,
)
from repro.service.schema import StatsSchemaError, validate_stats
from repro.service.server import RackService
from repro.service.shard import HashRing, KeyRange, RackShard

__all__ = [
    "AdmissionController",
    "WallClockTokenBucket",
    "BridgeStats",
    "SimTimeBridge",
    "ServiceClient",
    "ClientConfig",
    "ServiceError",
    "LoadgenReport",
    "run_loadgen",
    "ZipfSampler",
    "make_key_sampler",
    "READ_POLICIES",
    "Decision",
    "FakeLoadView",
    "ReplicaSelector",
    "ReplicaStats",
    "RoutingTrace",
    "BIN_CODEC",
    "BIN_MAGIC",
    "DEFAULT_MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "BinFrameCodec",
    "FrameDecoder",
    "FrameError",
    "FrameSplitter",
    "FrameTooLarge",
    "TruncatedFrame",
    "UnencodableFrame",
    "check_version",
    "encode_frame",
    "encode_frame_as",
    "error_response",
    "frame_is_binary",
    "hello_response",
    "ok_response",
    "read_frame",
    "write_frame",
    "RackService",
    "HashRing",
    "KeyRange",
    "RackShard",
    "ShardRouter",
    "ShardedRackService",
    "ShardProxy",
    "build_shard_configs",
    "FleetController",
    "MembershipBusy",
    "MembershipError",
    "MigrationPlan",
    "MigrationStream",
    "MigrationStreamError",
    "StreamReport",
    "DEFAULT_TENANT",
    "TenantSpec",
    "TenantSpecError",
    "QosSpec",
    "QosScheduler",
    "load_tenant_specs",
    "ReadCache",
    "StatsSchemaError",
    "validate_stats",
]
