"""Sharded DRAM read-through cache with per-tenant capacity shares.

RackBlox's own DRAM tier absorbs writes in front of flash; this is the
read-side analogue for the serving stack: zipfian-hot KV ``get``\\ s are
answered from front-end DRAM and never touch the simulated vSSD path.
Design points:

* **Sharded.**  Keys hash (crc32, stable across processes -- never
  ``hash()``) onto ``segments`` independent segments, each with its own
  LRU state and invalidation sequence number, so invalidation cost and
  fill races stay local.
* **Per-tenant capacity shares.**  Each segment keeps one LRU per
  tenant; an entry is charged against the budget of the tenant that
  *filled* it (proportional to its spec's ``cache_share``), but lookup
  is global by key -- tenants share one keyspace, so any tenant's hit
  can be served by any tenant's entry.  A zero-share tenant reads
  through without ever filling.
* **Write-through invalidation, race-proof fills.**  ``lookup`` hands
  back a fill *token* capturing the segment's invalidation sequence;
  ``fill`` applies only if the sequence is unchanged.  Any write
  (including a migration stream put or a forwarded write, which bypass
  the normal submit path) calls :meth:`invalidate` on completion,
  bumping the sequence -- so a read that raced the write can never
  install the stale value it saw.  The cache can serve stale bytes
  **never**, at the cost of occasionally dropping a racing fill.
* **Epoch-fenced.**  Fleet membership changes call :meth:`fence` with
  the new routing epoch: every in-flight fill drops and entries from
  older epochs are lazily treated as misses, so a key whose owner just
  moved cannot be served from a pre-migration snapshot.

Only KV ``get`` values are cached (raw pair reads return synthesized
page latencies, not bytes worth caching); misses are not negatively
cached.
"""

import zlib
from collections import OrderedDict
from typing import Any, Dict, Mapping, Optional, Tuple

#: Fill token meaning "do not fill" (zero-share tenant or cache off).
NO_FILL = (-1, -1)


class _Segment:
    __slots__ = ("lrus", "owner", "seq")

    def __init__(self):
        # tenant -> OrderedDict[key -> (value, epoch)]; LRU order is
        # per owning tenant so one tenant's scan cannot evict another's
        # working set.
        self.lrus: Dict[str, OrderedDict] = {}
        self.owner: Dict[str, str] = {}
        self.seq = 0


class ReadCache:
    """A segmented LRU read-through cache with per-tenant budgets.

    ``capacity`` is counted in entries; ``shares`` maps tenant name to
    a relative share weight (a missing tenant gets the ``default``
    share if present, else 1.0).  A tenant's budget is its share of the
    capacity, spread evenly across segments (at least one entry per
    segment so tiny caches still function).
    """

    def __init__(self, capacity: int, *, shares: Optional[Mapping[str, float]] = None,
                 segments: int = 8):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if segments < 1:
            raise ValueError(f"segments must be >= 1, got {segments}")
        self.capacity = int(capacity)
        self.segments = int(segments)
        self._shares = dict(shares or {})
        total = sum(v for v in self._shares.values() if v > 0) or 1.0
        self._budget_per_segment = {
            name: max(1, int(capacity * share / total / segments))
            for name, share in self._shares.items() if share > 0
        }
        self._default_budget = max(1, int(capacity / total / segments))
        self._segs = [_Segment() for _ in range(self.segments)]
        self.epoch = 0
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.fill_races = 0
        self.invalidations = 0
        self.evictions = 0
        self.entries = 0
        self._tenant_hits: Dict[str, int] = {}

    def _segment(self, key: str) -> Tuple[int, _Segment]:
        index = zlib.crc32(key.encode("utf-8")) % self.segments
        return index, self._segs[index]

    def _budget(self, tenant: str) -> int:
        if tenant in self._budget_per_segment:
            return self._budget_per_segment[tenant]
        if tenant in self._shares:        # declared with share 0: no budget
            return 0
        return self._default_budget

    # -- read path -----------------------------------------------------

    def lookup(self, key: str, tenant: str) -> Tuple[bool, Any, Tuple[int, int]]:
        """Probe the cache; returns ``(hit, value, fill_token)``.

        On a miss the caller reads through and later calls
        :meth:`fill` with the token; a token is only valid while no
        invalidation has touched the key's segment since the probe.
        """
        if self.capacity == 0:
            return False, None, NO_FILL
        index, seg = self._segment(key)
        owner = seg.owner.get(key)
        if owner is not None:
            lru = seg.lrus[owner]
            value, epoch = lru[key]
            if epoch == self.epoch:
                lru.move_to_end(key)
                self.hits += 1
                self._tenant_hits[tenant] = self._tenant_hits.get(tenant, 0) + 1
                return True, value, NO_FILL
            # Stale epoch: the fleet changed under this entry; purge it.
            del lru[key]
            del seg.owner[key]
            self.entries -= 1
            self.invalidations += 1
        self.misses += 1
        if self._budget(tenant) == 0:
            return False, None, NO_FILL
        return False, None, (index, seg.seq)

    def fill(self, key: str, value: Any, tenant: str,
             token: Tuple[int, int]) -> bool:
        """Install a read-through result, unless the token went stale."""
        if token == NO_FILL or self.capacity == 0:
            return False
        index, seq = token
        seg = self._segs[index]
        if seg.seq != seq:
            self.fill_races += 1
            return False
        budget = self._budget(tenant)
        if budget == 0:
            return False
        prior = seg.owner.get(key)
        if prior is not None:
            del seg.lrus[prior][key]
            self.entries -= 1
        lru = seg.lrus.setdefault(tenant, OrderedDict())
        lru[key] = (value, self.epoch)
        lru.move_to_end(key)
        seg.owner[key] = tenant
        self.entries += 1
        self.fills += 1
        while len(lru) > budget:
            evicted, _ = lru.popitem(last=False)
            del seg.owner[evicted]
            self.entries -= 1
            self.evictions += 1
        return True

    # -- write path ----------------------------------------------------

    def invalidate(self, key: str) -> None:
        """A write to ``key`` completed: purge it and fence racing fills."""
        if self.capacity == 0:
            return
        _, seg = self._segment(key)
        seg.seq += 1
        owner = seg.owner.pop(key, None)
        if owner is not None:
            del seg.lrus[owner][key]
            self.entries -= 1
            self.invalidations += 1

    def fence(self, epoch: int) -> None:
        """The routing epoch moved: drop in-flight fills, stale old entries.

        Old-epoch entries are purged lazily on their next lookup rather
        than eagerly swept -- a fence is O(segments), not O(entries).
        """
        self.epoch = epoch
        for seg in self._segs:
            seg.seq += 1

    # -- stats ---------------------------------------------------------

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def tenant_hits(self, tenant: str) -> int:
        return self._tenant_hits.get(tenant, 0)

    def stats_section(self) -> Dict[str, float]:
        """The ``readcache`` stats section (flat numeric map)."""
        return {
            "capacity": float(self.capacity),
            "segments": float(self.segments),
            "entries": float(self.entries),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": float(self.hit_rate()),
            "fills": float(self.fills),
            "fill_races": float(self.fill_races),
            "invalidations": float(self.invalidations),
            "evictions": float(self.evictions),
            "epoch": float(self.epoch),
        }
