"""Async client for the rack service.

One :class:`ServiceClient` owns one TCP connection and multiplexes any
number of concurrent requests over it: every request carries a
client-assigned ``id``, a background reader task matches responses back
to their futures, so ``await client.get(...)`` from many tasks at once
just works (and is exactly how the closed-loop load generator drives a
connection at depth > 1).

Behaviour is configured with one :class:`ClientConfig` object
(``ServiceClient(host, port, name, config=ClientConfig(...))``); the
pre-config individual kwargs still work behind a deprecation shim.
Resilience is opt-in and off by default (``max_retries=0`` keeps the
historical fail-fast behaviour):

* **Retry** -- ``max_retries`` re-attempts on the retryable outcomes:
  ``BUSY``/``TIMEOUT`` answers, connection loss (with an automatic
  reconnect), and client-side ``request_timeout_s`` expiry.  Backoff is
  exponential from ``retry_backoff_s``.
* **Hedged reads** -- with ``hedge_reads``, a read still unanswered
  after a tail-latency delay fires a duplicate addressed at the
  *replica* vSSD; first success wins.  The delay defaults to the p99 of
  this client's recent read latencies (the classic "tied request"
  policy), so hedges only spawn for genuine stragglers.

Counters (``retries``, ``hedged``, ``hedged_wins``, ``reconnects``,
``timeouts``, ``bytes_sent``, ``bytes_received``,
``ring_refreshes``) accumulate in
:attr:`counters` and are merged into :meth:`stats` responses under
``"client"``.

Protocol selection (``wire_protocol``): ``"json"`` (default) speaks v1
length-prefixed JSON only -- byte-identical to older clients.
``"auto"`` performs the ``hello`` exchange on connect and switches the
hot ops to the binary codec iff the server advertises the ``"bin"``
capability.  ``"bin"`` does the same but raises if the server lacks the
capability.  Either way the first bytes on the wire are a JSON
``hello`` -- binary frames only ever follow a successful negotiation.
"""

import asyncio
import dataclasses
import itertools
import time
import warnings
from typing import Any, Dict, List, Optional

from repro.service import protocol


@dataclasses.dataclass(frozen=True)
class ClientConfig:
    """Connection behaviour for :class:`ServiceClient`, as one object.

    Replaces the client's historical sprawl of constructor kwargs;
    ``ServiceClient(host, port, name, config=ClientConfig(...))`` is the
    supported spelling, the old kwargs still work through a deprecation
    shim.  All fields default to the historical fail-fast behaviour.

    ``tenant`` names the QoS tenant this connection serves (declared in
    the server's tenant spec); it is announced in the ``hello`` exchange
    and every request on the connection is scheduled and metered under
    that tenant.  ``None`` rides the implicit ``default`` tenant.
    """

    max_retries: int = 0
    retry_backoff_s: float = 0.02
    retry_backoff_max_s: float = 0.5
    request_timeout_s: Optional[float] = None
    hedge_reads: bool = False
    hedge_delay_s: Optional[float] = None
    hedge_delay_floor_s: float = 0.002
    wire_protocol: str = "json"
    track_epoch: bool = False
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if self.wire_protocol not in ("json", "auto", "bin"):
            raise ValueError(
                f"wire_protocol must be 'json', 'auto', or 'bin', "
                f"got {self.wire_protocol!r}"
            )
        if self.tenant is not None and (
                not isinstance(self.tenant, str) or not self.tenant):
            raise ValueError(
                f"tenant must be a non-empty string, got {self.tenant!r}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )


#: Constructor kwargs the pre-``ClientConfig`` client accepted directly.
_LEGACY_KWARGS = frozenset(
    field.name for field in dataclasses.fields(ClientConfig)
) - {"tenant"}

_legacy_kwargs_warned = False


def _config_from_legacy(kwargs: Dict[str, Any]) -> ClientConfig:
    """Map deprecated ``ServiceClient`` kwargs onto a ClientConfig."""
    global _legacy_kwargs_warned
    unknown = set(kwargs) - _LEGACY_KWARGS
    if unknown:
        raise TypeError(
            f"ServiceClient() got unexpected keyword argument(s) "
            f"{sorted(unknown)}; pass a ClientConfig via config=..."
        )
    if not _legacy_kwargs_warned:
        _legacy_kwargs_warned = True
        warnings.warn(
            f"passing {sorted(kwargs)} directly to ServiceClient() is "
            f"deprecated; pass config=ClientConfig(...) instead",
            DeprecationWarning, stacklevel=3,
        )
    return ClientConfig(**kwargs)


class ServiceError(Exception):
    """A request the server answered with ``ok: false``."""

    def __init__(self, code: str, message: str = "") -> None:
        super().__init__(f"{code}: {message}" if message else code)
        self.code = code
        self.message = message

    @property
    def is_busy(self) -> bool:
        """Shed by admission control -- retryable by design."""
        return self.code == protocol.BUSY


#: Server answers it is safe to re-send: shedding and sim-time deadline
#: expiry.  (BAD_REQUEST would fail identically forever.)
RETRYABLE_CODES = (protocol.BUSY, protocol.TIMEOUT)

#: Request types that ride the data plane and may pin a ring epoch
#: (``track_epoch``); control traffic (hello/ping/stats/admin) never does.
_DATA_OPS = ("read", "write", "get", "put", "del", "scan")


def _swallow(task: "asyncio.Task") -> None:
    """Reap a losing hedge task so its exception is never 'unretrieved'."""
    if not task.cancelled():
        task.exception()


class ServiceClient:
    """A pipelined connection to a :class:`~repro.service.server.RackService`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7337,
                 client_name: Optional[str] = None, *,
                 config: Optional[ClientConfig] = None,
                 **legacy_kwargs: Any) -> None:
        if legacy_kwargs:
            if config is not None:
                raise TypeError(
                    "pass either config=ClientConfig(...) or the "
                    "deprecated individual kwargs, not both"
                )
            config = _config_from_legacy(legacy_kwargs)
        if config is None:
            config = ClientConfig()
        #: The resolved :class:`ClientConfig`; the flat attributes below
        #: mirror it for existing call sites that read them.
        self.config = config
        self.host = host
        self.port = port
        self.client_name = client_name
        self.wire_protocol = config.wire_protocol
        self._use_bin = False
        self.max_retries = config.max_retries
        self.retry_backoff_s = config.retry_backoff_s
        self.retry_backoff_max_s = config.retry_backoff_max_s
        self.request_timeout_s = config.request_timeout_s
        self.hedge_reads = config.hedge_reads
        self.hedge_delay_s = config.hedge_delay_s
        self.hedge_delay_floor_s = config.hedge_delay_floor_s
        self.tenant = config.tenant
        self.counters: Dict[str, int] = {
            "retries": 0, "hedged": 0, "hedged_wins": 0,
            "reconnects": 0, "timeouts": 0,
            "bytes_sent": 0, "bytes_received": 0,
            "ring_refreshes": 0,
        }
        #: The last ``hello`` response (version, capabilities, racks).
        self.server_info: Optional[Dict[str, Any]] = None
        #: With ``track_epoch``, data requests pin the ring epoch learned
        #: from the last ``hello``; a fleet membership cutover then
        #: answers ``WRONG_SHARD`` and the client refreshes its view and
        #: retries once (epoch-pinned requests ride the JSON wire).
        self.track_epoch = config.track_epoch
        self.ring_epoch: Optional[int] = None
        self._reader: Optional["asyncio.StreamReader"] = None
        self._writer: Optional["asyncio.StreamWriter"] = None
        self._reader_task: Optional["asyncio.Task"] = None
        self._pending: Dict[int, "asyncio.Future"] = {}
        self._ids = itertools.count(1)
        self._closing = False
        # Requests issued in the same event-loop tick coalesce into one
        # socket write -- at depth > 1 this halves the syscall count.
        self._outbox = bytearray()
        self._flush_scheduled = False
        # Recent successful read wall-latencies (seconds), for the
        # p99-based hedge delay.
        self._read_latencies_s: List[float] = []

    async def connect(self) -> "ServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )
        # A tenant-bound connection must announce itself before any data
        # op, so it hellos on connect even on the plain JSON wire.
        if self.wire_protocol != "json" or self.tenant is not None:
            await self.hello()
        return self

    @property
    def negotiated_protocol(self) -> str:
        """``"bin"`` once binary framing has been negotiated, else ``"json"``."""
        return "bin" if self._use_bin else "json"

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def close(self) -> None:
        self._closing = True
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        self._fail_pending(ConnectionError("client closed"))

    async def _reconnect(self) -> None:
        """Tear down a dead transport and dial again (retry path only)."""
        self.counters["reconnects"] += 1
        if self._writer is not None:
            self._writer.close()
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        self._fail_pending(ConnectionError("reconnecting"))
        self._reader = self._writer = None
        self._outbox.clear()
        self._flush_scheduled = False
        self._use_bin = False  # re-negotiated by connect() per wire_protocol
        await self.connect()

    def _flush_outbox(self) -> None:
        self._flush_scheduled = False
        if not self._outbox or self._writer is None:
            return
        if self._writer.is_closing():
            self._outbox.clear()
            return
        data = bytes(self._outbox)
        self._outbox.clear()
        try:
            self._writer.write(data)
        except (ConnectionResetError, BrokenPipeError):
            return
        self.counters["bytes_sent"] += len(data)

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def _read_loop(self) -> None:
        assert self._reader is not None
        decoder = protocol.FrameDecoder()
        try:
            while True:
                data = await self._reader.read(65536)
                if not data:
                    break
                self.counters["bytes_received"] += len(data)
                for response in decoder.feed(data):
                    future = self._pending.pop(response.get("id"), None)
                    if future is not None and not future.done():
                        future.set_result(response)
        except (protocol.FrameError, ConnectionResetError) as exc:
            if not self._closing:
                self._fail_pending(ConnectionError(str(exc)))
            return
        except asyncio.CancelledError:
            raise
        if not self._closing:
            self._fail_pending(ConnectionError("server closed the connection"))

    # ---------------------------------------------------------------- request

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request; return the raw (``ok: true``) response.

        Raises :class:`ServiceError` for ``ok: false`` answers -- check
        ``exc.is_busy`` to distinguish shedding from real failures.
        With ``max_retries > 0``, retryable failures (``BUSY``,
        ``TIMEOUT``, connection loss, client-side timeout) are retried
        with exponential backoff, reconnecting as needed.

        ``WRONG_SHARD`` (the request pinned a ring epoch a membership
        cutover invalidated) refreshes the routing view with a fresh
        ``hello`` and retries once, independent of ``max_retries`` --
        the second failure surfaces.
        """
        attempt = 0
        refreshed = False
        while True:
            try:
                return await self._attempt(payload)
            except ServiceError as exc:
                if exc.code == protocol.WRONG_SHARD and not refreshed:
                    refreshed = True
                    self.counters["ring_refreshes"] += 1
                    try:
                        await self.hello()
                    except (ServiceError, ConnectionError, OSError,
                            asyncio.TimeoutError):
                        pass  # the data op's own retry path reconnects
                    continue
                if exc.code not in RETRYABLE_CODES or attempt >= self.max_retries:
                    raise
            except (ConnectionError, asyncio.TimeoutError, OSError):
                if attempt >= self.max_retries:
                    raise
            attempt += 1
            self.counters["retries"] += 1
            backoff = min(
                self.retry_backoff_s * (2 ** (attempt - 1)),
                self.retry_backoff_max_s,
            )
            await asyncio.sleep(backoff)

    async def _attempt(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        if self._writer is None or self._writer.is_closing():
            if self._closing or (self.max_retries <= 0 and self._writer is None):
                raise ConnectionError("not connected (call connect() first)")
            await self._reconnect()
        hedging = self.hedge_reads and payload.get("type") == "read"
        coro = self._race_hedge(payload) if hedging else self._send_and_wait(payload)
        if self.request_timeout_s is None:
            return await coro
        try:
            return await asyncio.wait_for(coro, self.request_timeout_s)
        except asyncio.TimeoutError:
            self.counters["timeouts"] += 1
            raise

    async def _send_and_wait(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        if self._writer is None:
            raise ConnectionError("not connected (call connect() first)")
        request_id = next(self._ids)
        message = dict(payload)
        message["id"] = request_id
        if self.client_name and "client" not in message:
            message["client"] = self.client_name
        if self.track_epoch and self.ring_epoch is not None and \
                "epoch" not in message and message.get("type") in _DATA_OPS:
            message["epoch"] = self.ring_epoch
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._pending[request_id] = future
        self._outbox += protocol.encode_frame_as(message, self._use_bin)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            loop.call_soon(self._flush_outbox)
        started = time.monotonic()
        response = await future
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "UNKNOWN"), response.get("message", "")
            )
        if payload.get("type") == "read":
            self._note_read_latency(time.monotonic() - started)
        return response

    # ---------------------------------------------------------------- hedging

    def _note_read_latency(self, seconds: float) -> None:
        lat = self._read_latencies_s
        lat.append(seconds)
        if len(lat) > 512:
            del lat[:256]

    def _hedge_delay(self) -> float:
        """When to fire the duplicate: p99 of recent reads, floored."""
        if self.hedge_delay_s is not None:
            return self.hedge_delay_s
        lat = self._read_latencies_s
        if len(lat) < 20:
            return self.hedge_delay_floor_s
        ordered = sorted(lat)
        p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
        return max(p99, self.hedge_delay_floor_s)

    async def _race_hedge(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Primary read, then a replica-addressed duplicate after the
        hedge delay; first success wins, the loser is reaped quietly."""
        loop = asyncio.get_running_loop()
        primary = loop.create_task(self._send_and_wait(payload))
        try:
            return await asyncio.wait_for(
                asyncio.shield(primary), self._hedge_delay()
            )
        except asyncio.TimeoutError:
            pass  # still pending: hedge below
        except BaseException:
            _swallow(primary)
            raise
        hedge_payload = dict(payload)
        hedge_payload["replica"] = True
        self.counters["hedged"] += 1
        hedge = loop.create_task(self._send_and_wait(hedge_payload))
        pending = {primary, hedge}
        last_exc: Optional[BaseException] = None
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                if task.cancelled():
                    continue
                exc = task.exception()
                if exc is None:
                    if task is hedge:
                        self.counters["hedged_wins"] += 1
                    for loser in pending:
                        loser.add_done_callback(_swallow)
                    return task.result()
                last_exc = exc
        assert last_exc is not None
        raise last_exc

    # ---------------------------------------------------------------- helpers

    async def hello(self) -> Dict[str, Any]:
        """The HELLO exchange: learn the server's protocol version and
        capabilities (``"sharded"`` marks a multi-rack front-end,
        ``"bin"`` offers binary framing).  The response is cached on
        :attr:`server_info`, and under ``wire_protocol="auto"``/``"bin"``
        it decides whether the hot ops switch to the binary codec."""
        request: Dict[str, Any] = {"type": "hello",
                                   "v": protocol.PROTOCOL_VERSION}
        if self.tenant is not None:
            request["tenant"] = self.tenant
        response = await self.request(request)
        self.server_info = response
        if "epoch" in response:
            self.ring_epoch = response["epoch"]
        if self.wire_protocol != "json":
            capable = "bin" in (response.get("capabilities") or [])
            if not capable and self.wire_protocol == "bin":
                raise ServiceError(
                    protocol.BAD_REQUEST,
                    "server does not offer the 'bin' capability",
                )
            self._use_bin = capable
        return response

    async def ping(self) -> Dict[str, Any]:
        return await self.request({"type": "ping"})

    async def read(self, pair: int, lpn: int) -> Dict[str, Any]:
        """Raw vSSD read of one logical page."""
        return await self.request({"type": "read", "pair": pair, "lpn": lpn})

    async def write(self, pair: int, lpn: int) -> Dict[str, Any]:
        """Raw replicated vSSD write of one logical page."""
        return await self.request({"type": "write", "pair": pair, "lpn": lpn})

    async def get(self, key: str) -> Dict[str, Any]:
        return await self.request({"type": "get", "key": key})

    async def put(self, key: str, value: str) -> Dict[str, Any]:
        return await self.request({"type": "put", "key": key, "value": value})

    async def delete(self, key: str) -> Dict[str, Any]:
        return await self.request({"type": "del", "key": key})

    async def scan(self, start: str = "", count: int = 10) -> Dict[str, Any]:
        return await self.request(
            {"type": "scan", "start": start, "count": count}
        )

    # ------------------------------------------------------------ fleet admin

    async def fleet_status(self) -> Dict[str, Any]:
        """The fleet's membership view: epoch, racks, live migration."""
        return await self.request({"type": "admin", "op": "status"})

    async def fleet_add_rack(self, **options: Any) -> Dict[str, Any]:
        """Admit a new rack under live load; returns when the cutover
        lands (or the migration aborts).  ``options`` pass through to
        the server: ``batch_size``, ``pause_s``, ``max_attempts``, and
        for process-mode proxies the new backend's ``host``/``port``."""
        return await self.request({"type": "admin", "op": "add_rack",
                                   **options})

    async def fleet_drain_rack(self, rack: int,
                               **options: Any) -> Dict[str, Any]:
        """Drain rack ``rack`` out of the fleet under live load."""
        return await self.request({"type": "admin", "op": "drain_rack",
                                   "rack": int(rack), **options})

    async def stats(self) -> Dict[str, Any]:
        """Live collector + trace-attribution metrics from the server,
        with this client's own resilience counters under ``"client"``."""
        response = await self.request({"type": "stats"})
        response["client"] = {k: float(v) for k, v in self.counters.items()}
        return response
