"""Async client for the rack service.

One :class:`ServiceClient` owns one TCP connection and multiplexes any
number of concurrent requests over it: every request carries a
client-assigned ``id``, a background reader task matches responses back
to their futures, so ``await client.get(...)`` from many tasks at once
just works (and is exactly how the closed-loop load generator drives a
connection at depth > 1).
"""

import asyncio
import itertools
from typing import Any, Dict, Optional

from repro.service import protocol


class ServiceError(Exception):
    """A request the server answered with ``ok: false``."""

    def __init__(self, code: str, message: str = "") -> None:
        super().__init__(f"{code}: {message}" if message else code)
        self.code = code
        self.message = message

    @property
    def is_busy(self) -> bool:
        """Shed by admission control -- retryable by design."""
        return self.code == protocol.BUSY


class ServiceClient:
    """A pipelined connection to a :class:`~repro.service.server.RackService`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7337,
                 client_name: Optional[str] = None) -> None:
        self.host = host
        self.port = port
        self.client_name = client_name
        self._reader: Optional["asyncio.StreamReader"] = None
        self._writer: Optional["asyncio.StreamWriter"] = None
        self._reader_task: Optional["asyncio.Task"] = None
        self._pending: Dict[int, "asyncio.Future"] = {}
        self._ids = itertools.count(1)
        self._closing = False
        # Requests issued in the same event-loop tick coalesce into one
        # socket write -- at depth > 1 this halves the syscall count.
        self._outbox = bytearray()
        self._flush_scheduled = False

    async def connect(self) -> "ServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )
        return self

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def close(self) -> None:
        self._closing = True
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        self._fail_pending(ConnectionError("client closed"))

    def _flush_outbox(self) -> None:
        self._flush_scheduled = False
        if not self._outbox or self._writer is None:
            return
        if self._writer.is_closing():
            self._outbox.clear()
            return
        data = bytes(self._outbox)
        self._outbox.clear()
        try:
            self._writer.write(data)
        except (ConnectionResetError, BrokenPipeError):
            pass

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def _read_loop(self) -> None:
        assert self._reader is not None
        decoder = protocol.FrameDecoder()
        try:
            while True:
                data = await self._reader.read(65536)
                if not data:
                    break
                for response in decoder.feed(data):
                    future = self._pending.pop(response.get("id"), None)
                    if future is not None and not future.done():
                        future.set_result(response)
        except (protocol.FrameError, ConnectionResetError) as exc:
            if not self._closing:
                self._fail_pending(ConnectionError(str(exc)))
            return
        except asyncio.CancelledError:
            raise
        if not self._closing:
            self._fail_pending(ConnectionError("server closed the connection"))

    # ---------------------------------------------------------------- request

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request; return the raw (``ok: true``) response.

        Raises :class:`ServiceError` for ``ok: false`` answers -- check
        ``exc.is_busy`` to distinguish shedding from real failures.
        """
        if self._writer is None:
            raise ConnectionError("not connected (call connect() first)")
        request_id = next(self._ids)
        message = dict(payload)
        message["id"] = request_id
        if self.client_name and "client" not in message:
            message["client"] = self.client_name
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._pending[request_id] = future
        self._outbox += protocol.encode_frame(message)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            loop.call_soon(self._flush_outbox)
        response = await future
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "UNKNOWN"), response.get("message", "")
            )
        return response

    # ---------------------------------------------------------------- helpers

    async def ping(self) -> Dict[str, Any]:
        return await self.request({"type": "ping"})

    async def read(self, pair: int, lpn: int) -> Dict[str, Any]:
        """Raw vSSD read of one logical page."""
        return await self.request({"type": "read", "pair": pair, "lpn": lpn})

    async def write(self, pair: int, lpn: int) -> Dict[str, Any]:
        """Raw replicated vSSD write of one logical page."""
        return await self.request({"type": "write", "pair": pair, "lpn": lpn})

    async def get(self, key: str) -> Dict[str, Any]:
        return await self.request({"type": "get", "key": key})

    async def put(self, key: str, value: str) -> Dict[str, Any]:
        return await self.request({"type": "put", "key": key, "value": value})

    async def scan(self, start: str = "", count: int = 10) -> Dict[str, Any]:
        return await self.request(
            {"type": "scan", "start": start, "count": count}
        )

    async def stats(self) -> Dict[str, Any]:
        """Live collector + trace-attribution metrics from the server."""
        return await self.request({"type": "stats"})
